//! Strong-scaling sweeps (the machinery behind Figure 1).

use crate::machine::MachineParams;
use crate::model::{predict_time, TimeBreakdown};
use spcg_dist::{Counters, MachineTopology};

/// One point of a strong-scaling curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Node count of this point.
    pub nodes: usize,
    /// Modeled time breakdown.
    pub time: TimeBreakdown,
}

/// Sweeps the node counts for a fixed problem: the counters of one solve
/// are re-priced at each topology. `halo_words_per_rank` maps the rank
/// count to the average per-rank halo volume of one SpMV (strong scaling
/// shrinks the local block, changing the surface-to-volume ratio).
pub fn strong_scaling(
    counters: &Counters,
    machine: &MachineParams,
    nodes_list: &[usize],
    ranks_per_node: usize,
    halo_words_per_rank: impl Fn(usize) -> f64,
) -> Vec<ScalingPoint> {
    nodes_list
        .iter()
        .map(|&nodes| {
            let topo = MachineTopology::new(nodes, ranks_per_node);
            let halo = halo_words_per_rank(topo.total_ranks());
            ScalingPoint {
                nodes,
                time: predict_time(counters, machine, &topo, halo),
            }
        })
        .collect()
}

/// Halo volume per rank for a block-row-partitioned 3D 7-point stencil on
/// an `m³` grid: each rank's block exposes two grid planes of `m²` points
/// (fewer ranks than planes assumed; capped at the local block size).
pub fn poisson3d_halo_per_rank(m: usize, ranks: usize) -> f64 {
    let n = (m * m * m) as f64;
    let local = n / ranks as f64;
    (2.0 * (m * m) as f64).min(local)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcg_like_counters(iters: u64, n: u64, nnz: u64) -> Counters {
        let mut c = Counters::new();
        c.spmv_count = iters;
        c.spmv_flops = iters * 2 * nnz;
        c.precond_count = iters;
        c.precond_flops = iters * n;
        c.blas1_flops = iters * 6 * n;
        c.record_dots(2 * iters, n);
        c.global_collectives = 2 * iters;
        c.allreduce_words = 2 * iters;
        c
    }

    fn spcg_like_counters(iters: u64, s: u64, n: u64, nnz: u64) -> Counters {
        let outer = iters / s;
        let mut c = Counters::new();
        c.spmv_count = iters;
        c.spmv_flops = iters * 2 * nnz;
        c.precond_count = iters;
        c.precond_flops = iters * n;
        c.blas3_flops = outer * 4 * s * s * n;
        c.blas2_flops = outer * (4 * s + 5 * s) * n;
        c.record_dots(outer * 2 * s * (s + 1), n);
        c.global_collectives = outer;
        c.allreduce_words = outer * 2 * s * (s + 1);
        c
    }

    #[test]
    fn pcg_stops_scaling_sstep_continues() {
        // The Figure-1 shape in miniature: a 256³ Poisson-like problem.
        let m = 256usize;
        let n = (m * m * m) as u64;
        let nnz = 7 * n;
        let machine = MachineParams::default();
        let nodes = [1usize, 2, 4, 8, 16, 32, 64, 128];
        let halo = |ranks: usize| poisson3d_halo_per_rank(m, ranks);
        let pcg = strong_scaling(&pcg_like_counters(600, n, nnz), &machine, &nodes, 128, halo);
        let spcg = strong_scaling(
            &spcg_like_counters(600, 10, n, nnz),
            &machine,
            &nodes,
            128,
            halo,
        );
        // PCG: no speedup from 32 to 128 nodes worth mentioning.
        let t32 = pcg[5].time.total();
        let t128 = pcg[7].time.total();
        assert!(t128 > 0.8 * t32, "PCG kept scaling: {t32} -> {t128}");
        // sPCG at 128 nodes clearly beats PCG at 128 nodes.
        assert!(spcg[7].time.total() < 0.5 * t128);
        // At 1 node PCG wins (s-step pays extra local flops).
        assert!(pcg[0].time.total() < spcg[0].time.total());
    }

    #[test]
    fn halo_model_caps_at_local_size() {
        // With extremely many ranks the halo cannot exceed the local block.
        let h = poisson3d_halo_per_rank(16, 16 * 16 * 16 * 4);
        assert!(h <= (16.0f64 * 16.0 * 16.0) / (16.0 * 16.0 * 16.0 * 4.0) + 1e-12);
    }

    #[test]
    fn scaling_points_cover_requested_nodes() {
        let machine = MachineParams::default();
        let c = pcg_like_counters(10, 1000, 5000);
        let pts = strong_scaling(&c, &machine, &[1, 3, 9], 4, |_| 10.0);
        let got: Vec<usize> = pts.iter().map(|p| p.nodes).collect();
        assert_eq!(got, vec![1, 3, 9]);
    }
}
