//! The α-β time model: instrumented counters → modeled cluster time.

use crate::machine::MachineParams;
use spcg_dist::{Counters, MachineTopology};

/// Modeled time of a solve, broken down by cost class (seconds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeBreakdown {
    /// SpMV compute.
    pub spmv: f64,
    /// Preconditioner compute.
    pub precond: f64,
    /// BLAS1 vector updates and local reduction arithmetic.
    pub blas1: f64,
    /// Blocked BLAS2/BLAS3 updates.
    pub blas23: f64,
    /// Replicated O(s³) scalar work.
    pub small: f64,
    /// Global reductions (latency + payload).
    pub allreduce: f64,
    /// Neighbour halo exchange attached to SpMVs.
    pub halo: f64,
}

impl TimeBreakdown {
    /// Total modeled wall time.
    pub fn total(&self) -> f64 {
        self.spmv
            + self.precond
            + self.blas1
            + self.blas23
            + self.small
            + self.allreduce
            + self.halo
    }

    /// Fraction of total time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.allreduce + self.halo) / t
        }
    }
}

/// Time of one allreduce of `words` values on `topo`: a reduce+broadcast
/// tree over nodes (inter-node hops) after an intra-node tree.
pub fn allreduce_time(machine: &MachineParams, topo: &MachineTopology, words: f64) -> f64 {
    let inter = topo.internode_hops() as f64;
    let intra = topo.intranode_hops() as f64;
    2.0 * (inter * (machine.alpha_inter + words * machine.beta_inter)
        + intra * (machine.alpha_intra + words * machine.beta_intra))
}

/// Converts a solve's counters into modeled time on `topo`.
///
/// `halo_words_per_rank` is the average number of remote vector entries one
/// rank consumes per SpMV under block-row partitioning (use
/// `BlockRowPartition::halo_volume / nranks`, or the stencil closed form).
pub fn predict_time(
    counters: &Counters,
    machine: &MachineParams,
    topo: &MachineTopology,
    halo_words_per_rank: f64,
) -> TimeBreakdown {
    machine.validate();
    let p = topo.total_ranks() as f64;
    let words_per_collective = if counters.global_collectives == 0 {
        0.0
    } else {
        counters.allreduce_words as f64 / counters.global_collectives as f64
    };
    TimeBreakdown {
        spmv: counters.spmv_flops as f64 / p / machine.spmv_flops,
        precond: counters.precond_flops as f64 / p / machine.spmv_flops,
        blas1: counters.blas1_flops as f64 / p / machine.blas1_flops,
        // Local reductions are Gram blocks (Uᵀ·S etc.) — GEMM-shaped and
        // cache-blocked, so they run at the blocked rate. (Standard PCG's
        // two scalar dots are slightly undercharged by this; they are a
        // few percent of its per-iteration work.)
        blas23: (counters.blas2_flops + counters.blas3_flops + counters.local_reduction_flops)
            as f64
            / p
            / machine.blas23_flops,
        small: counters.small_flops as f64 / machine.small_flops,
        allreduce: counters.global_collectives as f64
            * allreduce_time(machine, topo, words_per_collective),
        halo: counters.spmv_count as f64
            * (2.0 * machine.alpha_p2p + halo_words_per_rank * machine.beta_p2p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> Counters {
        let mut c = Counters::new();
        c.spmv_count = 100;
        c.spmv_flops = 100 * 2_000_000;
        c.precond_count = 100;
        c.precond_flops = 100 * 1_000_000;
        c.blas1_flops = 100 * 600_000;
        c.record_dots(200, 100_000);
        c.global_collectives = 200;
        c.allreduce_words = 200;
        c
    }

    #[test]
    fn compute_shrinks_with_ranks_comm_grows_with_nodes() {
        let m = MachineParams::default();
        let c = sample_counters();
        let t1 = predict_time(&c, &m, &MachineTopology::paper(1), 1000.0);
        let t16 = predict_time(&c, &m, &MachineTopology::paper(16), 1000.0);
        assert!(t16.spmv < t1.spmv);
        assert!(t16.blas1 < t1.blas1);
        assert!(t16.allreduce > t1.allreduce);
    }

    #[test]
    fn allreduce_time_monotone_in_nodes_and_words() {
        let m = MachineParams::default();
        let t4 = allreduce_time(&m, &MachineTopology::paper(4), 1.0);
        let t64 = allreduce_time(&m, &MachineTopology::paper(64), 1.0);
        assert!(t64 > t4);
        let tbig = allreduce_time(&m, &MachineTopology::paper(4), 1e6);
        assert!(tbig > t4);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let m = MachineParams::default();
        let c = sample_counters();
        let t = predict_time(&c, &m, &MachineTopology::paper(2), 10.0);
        let sum = t.spmv + t.precond + t.blas1 + t.blas23 + t.small + t.allreduce + t.halo;
        assert!((t.total() - sum).abs() < 1e-15);
        assert!(t.comm_fraction() > 0.0 && t.comm_fraction() < 1.0);
    }

    #[test]
    fn small_work_is_not_parallelized() {
        let m = MachineParams::default();
        let mut c = Counters::new();
        c.small_flops = 1_000_000;
        let t1 = predict_time(&c, &m, &MachineTopology::paper(1), 0.0);
        let t64 = predict_time(&c, &m, &MachineTopology::paper(64), 0.0);
        assert_eq!(t1.small, t64.small);
    }

    #[test]
    fn zero_counters_give_zero_time() {
        let m = MachineParams::default();
        let t = predict_time(&Counters::new(), &m, &MachineTopology::paper(1), 0.0);
        assert_eq!(t.total(), 0.0);
    }
}
