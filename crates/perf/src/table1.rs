//! Closed-form computational costs per s steps — the paper's Table 1.
//!
//! Units follow the paper: local reductions and vector computations are
//! FLOPs *per matrix row* (one length-n dot product ≡ 1 FLOP/row), MV and
//! preconditioner applications are counts. The
//! [`verify_against_counters`] helper cross-checks these formulas against
//! what the instrumented solvers actually did — the reproduction of
//! Table 1 is that check plus the printed table.

use spcg_dist::Counters;

/// The five algorithms of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Standard PCG (s steps = s iterations).
    Pcg,
    /// Monomial-basis s-step PCG of Chronopoulos/Gear.
    SPcgMon,
    /// The paper's sPCG.
    SPcg,
    /// Toledo's CA-PCG.
    CaPcg,
    /// Hoemmen's CA-PCG3.
    CaPcg3,
}

impl Algorithm {
    /// All rows of Table 1 in paper order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Pcg,
        Algorithm::SPcgMon,
        Algorithm::SPcg,
        Algorithm::CaPcg,
        Algorithm::CaPcg3,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Pcg => "PCG",
            Algorithm::SPcgMon => "sPCG_mon",
            Algorithm::SPcg => "sPCG",
            Algorithm::CaPcg => "CA-PCG",
            Algorithm::CaPcg3 => "CA-PCG3",
        }
    }

    /// Column 2: number of MV products (= preconditioner applications) per
    /// s steps.
    pub fn mv_and_precond(&self, s: u64) -> u64 {
        match self {
            Algorithm::CaPcg => 2 * s - 1,
            _ => s,
        }
    }

    /// Local-reduction FLOPs per row per s steps (dot-product count).
    pub fn local_reductions(&self, s: u64) -> u64 {
        match self {
            Algorithm::Pcg | Algorithm::SPcgMon => 2 * s,
            Algorithm::SPcg => 2 * s * (s + 1),
            Algorithm::CaPcg | Algorithm::CaPcg3 => (2 * s + 1) * (2 * s + 1),
        }
    }

    /// Vector/matrix-column computation FLOPs per row per s steps with the
    /// monomial basis.
    pub fn vector_flops_monomial(&self, s: u64) -> u64 {
        match self {
            Algorithm::Pcg => 6 * s,
            Algorithm::SPcgMon | Algorithm::SPcg => 4 * s * s + 4 * s,
            Algorithm::CaPcg => 20 * s + 6,
            Algorithm::CaPcg3 => 8 * s * s + 17 * s,
        }
    }

    /// Additional FLOPs per row per s steps for an arbitrary basis
    /// (`None` for the monomial-only algorithms).
    pub fn vector_flops_extra_arbitrary(&self, s: u64) -> Option<u64> {
        match self {
            Algorithm::Pcg | Algorithm::SPcgMon => None,
            Algorithm::SPcg => Some(10 * s - 4),
            Algorithm::CaPcg => Some(10 * s - 9),
            Algorithm::CaPcg3 => Some(5 * s - 2),
        }
    }

    /// Total remaining FLOPs per row per s steps, monomial basis
    /// (last-but-one column of Table 1).
    pub fn total_monomial(&self, s: u64) -> u64 {
        self.local_reductions(s) + self.vector_flops_monomial(s)
    }

    /// Total remaining FLOPs per row per s steps, arbitrary basis (last
    /// column; `None` where the algorithm supports only the monomial basis).
    pub fn total_arbitrary(&self, s: u64) -> Option<u64> {
        self.vector_flops_extra_arbitrary(s)
            .map(|e| self.total_monomial(s) + e)
    }

    /// Global collectives per s steps.
    pub fn collectives(&self, _s: u64) -> u64 {
        match self {
            Algorithm::Pcg => 2 * _s,
            _ => 1,
        }
    }

    /// Words per collective (payload of the one reduction per s steps; for
    /// PCG, per reduction).
    pub fn collective_words(&self, s: u64) -> u64 {
        match self {
            Algorithm::Pcg => 1,
            Algorithm::SPcgMon => 2 * s,
            Algorithm::SPcg => 2 * s * (s + 1),
            Algorithm::CaPcg | Algorithm::CaPcg3 => (2 * s + 1) * (2 * s + 1),
        }
    }
}

/// Discrepancy report from checking the formulas against measured counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Check {
    /// Measured MV + preconditioner applications per s steps.
    pub measured_mv_precond: f64,
    /// Formula value.
    pub formula_mv_precond: f64,
    /// Measured dot products per s steps.
    pub measured_reductions: f64,
    /// Formula value.
    pub formula_reductions: f64,
    /// Measured remaining vector FLOPs per row per s steps (excluding the
    /// dot products counted above).
    pub measured_vector_flops: f64,
    /// Formula value (monomial or arbitrary-basis total minus reductions).
    pub formula_vector_flops: f64,
}

impl Table1Check {
    /// Largest relative deviation across the three measures.
    pub fn max_relative_error(&self) -> f64 {
        let rel = |m: f64, f: f64| if f == 0.0 { m.abs() } else { (m - f).abs() / f };
        rel(self.measured_mv_precond, self.formula_mv_precond)
            .max(rel(self.measured_reductions, self.formula_reductions))
            .max(rel(self.measured_vector_flops, self.formula_vector_flops))
    }
}

/// Compares a solver's measured counters against the Table-1 formulas.
///
/// `counters` must come from a solve with the *free* M-norm criterion so no
/// criterion overhead is mixed in; `n` is the matrix dimension and
/// `arbitrary_basis` selects which total to compare with. MV+precond counts
/// are normalized per s steps = `2 · mv_and_precond / (2·outer)`-style via
/// the recorded outer iterations.
pub fn verify_against_counters(
    alg: Algorithm,
    s: u64,
    n: usize,
    arbitrary_basis: bool,
    counters: &Counters,
) -> Table1Check {
    // Outer iterations include the final check-only Gram/MPK round for
    // s-step methods; normalize by the actual count of rounds charged.
    let rounds = if alg == Algorithm::Pcg {
        (counters.outer_iterations as f64) / s as f64
    } else {
        counters.outer_iterations as f64 + 1.0
    };
    let per_round = |v: f64| v / rounds;
    let mv = per_round((counters.spmv_count + counters.precond_count) as f64) / 2.0;
    let dots = per_round(counters.dot_count as f64);
    let vec_flops = per_round(
        (counters.blas1_flops + counters.blas2_flops + counters.blas3_flops) as f64 / n as f64,
    );
    let formula_total = if arbitrary_basis {
        alg.total_arbitrary(s)
            .expect("algorithm supports only the monomial basis") as f64
    } else {
        alg.total_monomial(s) as f64
    };
    Table1Check {
        measured_mv_precond: mv,
        formula_mv_precond: alg.mv_and_precond(s) as f64,
        measured_reductions: dots,
        formula_reductions: alg.local_reductions(s) as f64,
        measured_vector_flops: vec_flops,
        formula_vector_flops: formula_total - alg.local_reductions(s) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_table1() {
        // Spot values from the printed table, s = 10.
        let s = 10;
        assert_eq!(Algorithm::Pcg.total_monomial(s), 80);
        assert_eq!(Algorithm::SPcgMon.total_monomial(s), 460);
        assert_eq!(Algorithm::SPcg.total_monomial(s), 660);
        assert_eq!(Algorithm::SPcg.total_arbitrary(s), Some(756));
        assert_eq!(Algorithm::CaPcg.total_monomial(s), 647);
        assert_eq!(Algorithm::CaPcg.total_arbitrary(s), Some(738));
        assert_eq!(Algorithm::CaPcg3.total_monomial(s), 1411);
        assert_eq!(Algorithm::CaPcg3.total_arbitrary(s), Some(1459));
    }

    #[test]
    fn algebraic_identities_for_all_s() {
        for s in 1u64..=20 {
            // Totals decompose as reductions + vector work.
            for alg in Algorithm::ALL {
                assert_eq!(
                    alg.total_monomial(s),
                    alg.local_reductions(s) + alg.vector_flops_monomial(s)
                );
            }
            // CA-PCG: 4s² + 24s + 7 (paper row 4).
            assert_eq!(Algorithm::CaPcg.total_monomial(s), 4 * s * s + 24 * s + 7);
            // CA-PCG3: 12s² + 21s + 1.
            assert_eq!(Algorithm::CaPcg3.total_monomial(s), 12 * s * s + 21 * s + 1);
            // sPCG: 6s² + 6s monomial, 6s² + 16s − 4 arbitrary.
            assert_eq!(Algorithm::SPcg.total_monomial(s), 6 * s * s + 6 * s);
            if s >= 1 {
                assert_eq!(
                    Algorithm::SPcg.total_arbitrary(s),
                    Some(6 * s * s + 16 * s - 4)
                );
            }
        }
    }

    #[test]
    fn spcg_is_cheapest_arbitrary_basis_s_step_for_small_s() {
        // §4.3: sPCG beats CA-PCG3 in local vector ops for all s, and
        // CA-PCG in MV+precond everywhere.
        for s in 2u64..=20 {
            assert!(Algorithm::SPcg.total_arbitrary(s) < Algorithm::CaPcg3.total_arbitrary(s));
            assert!(Algorithm::SPcg.mv_and_precond(s) < Algorithm::CaPcg.mv_and_precond(s));
        }
        // CA-PCG has the fewest local vector ops for s ≥ 10 (§4.3)…
        assert!(
            Algorithm::CaPcg.total_arbitrary(10).unwrap()
                < Algorithm::SPcg.total_arbitrary(10).unwrap()
        );
        // …but not for small s.
        assert!(
            Algorithm::CaPcg.total_arbitrary(3).unwrap()
                > Algorithm::SPcg.total_arbitrary(3).unwrap()
        );
    }

    #[test]
    fn collectives_reduced_by_2s() {
        for s in 1u64..=16 {
            assert_eq!(Algorithm::Pcg.collectives(s), 2 * s);
            assert_eq!(Algorithm::SPcg.collectives(s), 1);
        }
    }
}
