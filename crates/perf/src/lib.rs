//! Performance analysis: Table-1 cost formulas and the cluster time model.
//!
//! The paper's scalability results (Table 3, Figure 1) come from an MPI
//! cluster we do not have. This crate replaces the cluster with an
//! analytic α-β machine model applied to the solvers' *instrumented
//! operation counts* (`spcg_dist::Counters`): compute classes run at
//! class-specific rates (BLAS1 is memory-bound, blocked BLAS2/3 and SpMV
//! have their own rates), global collectives pay a logarithmic latency
//! tree over nodes and ranks, and SpMV pays neighbour halo exchange. The
//! claims this preserves — who wins, where PCG stops scaling, how the gap
//! depends on s — are functions of operation *counts* and latency
//! *structure*, which are exact; absolute seconds are calibrated, not
//! measured.

pub mod calib;
pub mod machine;
pub mod model;
pub mod scaling;
pub mod table1;

pub use calib::{CalibSample, Calibration, Calibrator};
pub use machine::MachineParams;
pub use model::{predict_time, TimeBreakdown};
pub use scaling::strong_scaling;
