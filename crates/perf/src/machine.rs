//! Machine parameters for the α-β cluster model.
//!
//! The defaults are calibrated to a contemporary HPC node of the ASC-class
//! cluster used in the paper: 128 ranks per node sharing memory bandwidth
//! (making the per-rank streaming rates low), a sub-microsecond intra-node
//! reduction hop, and a few-microsecond inter-node hop. The absolute values
//! only set the time scale; the paper-shape conclusions (crossover node
//! counts, method ordering) are driven by the ratios — BLAS1 vs blocked
//! rates, and latency vs bandwidth.

/// Rates and latencies of the modeled cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineParams {
    /// Per-rank rate for memory-bound BLAS1 work (FLOP/s).
    pub blas1_flops: f64,
    /// Per-rank rate for blocked BLAS2/BLAS3 work (FLOP/s).
    pub blas23_flops: f64,
    /// Per-rank rate for SpMV-shaped work (FLOP/s) — lowest, being both
    /// memory-bound and irregular.
    pub spmv_flops: f64,
    /// Rate for the replicated `O(s³)` scalar work (FLOP/s, not divided by
    /// rank count — every rank does it redundantly).
    pub small_flops: f64,
    /// Inter-node latency per reduction-tree hop (seconds). Calibrated so
    /// a 128-rank-per-node allreduce costs a few hundred microseconds at
    /// 32+ nodes — where the paper's PCG stops scaling.
    pub alpha_inter: f64,
    /// Intra-node latency per reduction-tree hop (seconds).
    pub alpha_intra: f64,
    /// Inter-node time per word in a reduction (seconds/word).
    pub beta_inter: f64,
    /// Intra-node time per word in a reduction (seconds/word).
    pub beta_intra: f64,
    /// Point-to-point latency of one halo message (seconds).
    pub alpha_p2p: f64,
    /// Point-to-point time per halo word (seconds/word).
    pub beta_p2p: f64,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            // 128 ranks share ~200 GB/s: ~1.6 GB/s/rank → 0.2 Gflop/s for
            // 1 flop per 8-byte read BLAS1; SpMV a bit worse; blocked work
            // ~4× BLAS1.
            blas1_flops: 2.0e8,
            blas23_flops: 8.0e8,
            spmv_flops: 1.5e8,
            small_flops: 1.0e9,
            alpha_inter: 3.0e-5,
            alpha_intra: 0.8e-6,
            beta_inter: 4.0e-9,
            beta_intra: 1.0e-9,
            alpha_p2p: 2.0e-6,
            beta_p2p: 1.0e-9,
        }
    }
}

impl MachineParams {
    /// Validates that all rates and latencies are positive.
    pub fn validate(&self) {
        for (name, v) in [
            ("blas1_flops", self.blas1_flops),
            ("blas23_flops", self.blas23_flops),
            ("spmv_flops", self.spmv_flops),
            ("small_flops", self.small_flops),
            ("alpha_inter", self.alpha_inter),
            ("alpha_intra", self.alpha_intra),
            ("beta_inter", self.beta_inter),
            ("beta_intra", self.beta_intra),
            ("alpha_p2p", self.alpha_p2p),
            ("beta_p2p", self.beta_p2p),
        ] {
            assert!(v > 0.0, "MachineParams: {name} must be positive (got {v})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_ordered() {
        let m = MachineParams::default();
        m.validate();
        // The model's qualitative assumptions.
        assert!(m.blas23_flops > m.blas1_flops);
        assert!(m.blas1_flops > m.spmv_flops);
        assert!(m.alpha_inter > m.alpha_intra);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn validate_rejects_zero_rate() {
        let m = MachineParams {
            blas1_flops: 0.0,
            ..Default::default()
        };
        m.validate();
    }
}
