//! Trace-calibrated machine parameters: fitting the α-β-γ model to
//! *measured* span distributions instead of hand-picked constants.
//!
//! The modeled cluster in [`MachineParams::default`] is the paper's: its
//! absolute rates were chosen by hand to put the Figure-1 crossovers where
//! the paper's runs put them. This module replaces the hand-picked
//! absolutes with constants fitted to this machine's own backends:
//!
//! * **α, β** — one calibration solve per configuration yields a point
//!   `(w, t)`: mean halo words moved per exchange (from
//!   `Counters::halo_words / halo_exchanges`) and mean `ExchangeWait`
//!   span duration (from the tracer). Ordinary least squares over the
//!   points fits `t = α + β·w` — α is the transport's latency floor, β
//!   its inverse bandwidth. Thread and proc backends get separate fits;
//!   the socket hop is visibly more expensive than the shared-memory
//!   flag, which is the whole point of measuring.
//! * **γ** — the SpMV flop rate: total `Counters::spmv_flops` divided by
//!   the summed compute span time (`Spmv` + `Frontier` + `MpkLevel`).
//!
//! [`Calibration::machine_params`] then scales the default cluster to the
//! measured absolutes while preserving the default's *ratios* (inter- vs
//! intra-node latency, BLAS1 vs blocked rates): the paper-shape
//! conclusions are ratio-driven, and a single-node calibration cannot
//! observe a real inter-node hop — it can only anchor the time scale.
//!
//! Calibration runs should disable overlap: under the overlapped schedule
//! the `ExchangeWait` span also absorbs scheduling effects of the
//! interior compute running around it, biasing α upward.

use crate::machine::MachineParams;
use spcg_dist::Counters;
use spcg_obs::{Phase, Tracer};

/// One calibration point: a solve configuration reduced to its mean
/// exchange cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibSample {
    /// Mean halo words moved per exchange in this configuration.
    pub halo_words_per_exchange: f64,
    /// Mean `ExchangeWait` span duration (seconds).
    pub wait_seconds_per_exchange: f64,
}

/// Accumulates solve measurements for one backend into a fit.
#[derive(Debug, Clone, Default)]
pub struct Calibrator {
    samples: Vec<CalibSample>,
    spmv_flops: f64,
    compute_seconds: f64,
}

impl Calibrator {
    /// An empty calibrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one traced solve into the fit: the tracer must hold exactly
    /// this solve's tracks (use a fresh tracer per configuration), and
    /// `counters` must be that solve's counter block.
    ///
    /// Configurations without exchange traffic (single-rank solves, or
    /// trackless runs) still contribute to γ but produce no α-β point.
    pub fn ingest(&mut self, tracer: &Tracer, counters: &Counters) {
        let mut wait_s = 0.0;
        let mut waits = 0u64;
        let mut compute_s = 0.0;
        for track in tracer.tracks() {
            for span in &track.spans {
                let dt = span.end_s - span.begin_s;
                match span.phase {
                    Phase::ExchangeWait => {
                        wait_s += dt;
                        waits += 1;
                    }
                    Phase::Spmv | Phase::Frontier | Phase::MpkLevel => compute_s += dt,
                    _ => {}
                }
            }
        }
        self.spmv_flops += counters.spmv_flops as f64;
        self.compute_seconds += compute_s;
        if waits > 0 && counters.halo_exchanges > 0 {
            self.samples.push(CalibSample {
                halo_words_per_exchange: counters.halo_words as f64
                    / counters.halo_exchanges as f64,
                wait_seconds_per_exchange: wait_s / waits as f64,
            });
        }
    }

    /// Points ingested so far.
    pub fn samples(&self) -> &[CalibSample] {
        &self.samples
    }

    /// Fits the accumulated measurements, labelling γ with the sparse
    /// format the calibration solves ran on (`"csr"` | `"sell"`): the
    /// compute rate is a property of the kernel that produced it, and the
    /// scaling replay should say which one it replays.
    ///
    /// # Panics
    /// Panics when nothing was ingested (no samples and no compute time) —
    /// a fit of nothing is a bug in the calling sweep.
    pub fn fit_format(&self, backend: &str, format: &str) -> Calibration {
        assert!(
            !self.samples.is_empty() || self.compute_seconds > 0.0,
            "calibration: no measurements ingested"
        );
        let (mut alpha, mut beta) = fit_affine(&self.samples);
        if !self.samples.is_empty() && alpha <= 0.0 {
            // The sweep's word counts cluster (a block-row halo surface
            // barely varies with rank count), so the extrapolation to
            // zero words can land below zero. Anchor the latency floor
            // at a fraction of the smallest measured wait — still a
            // measurement of this transport — and refit the slope
            // around it.
            let min_wait = self
                .samples
                .iter()
                .map(|s| s.wait_seconds_per_exchange)
                .fold(f64::INFINITY, f64::min);
            alpha = 0.1 * min_wait;
            let sww: f64 = self
                .samples
                .iter()
                .map(|s| s.halo_words_per_exchange * s.halo_words_per_exchange)
                .sum();
            if sww > 0.0 {
                beta = self
                    .samples
                    .iter()
                    .map(|s| s.halo_words_per_exchange * (s.wait_seconds_per_exchange - alpha))
                    .sum::<f64>()
                    / sww;
            }
        }
        // Last-resort floors keep a noise-dominated fit inside
        // MachineParams::validate's domain; real measurements sit orders
        // of magnitude above them.
        let alpha = alpha.max(1e-9);
        let beta = beta.max(1e-13);
        let gamma = if self.compute_seconds > 0.0 {
            (self.spmv_flops / self.compute_seconds).max(1e4)
        } else {
            MachineParams::default().spmv_flops
        };
        Calibration {
            backend: backend.to_string(),
            format: format.to_string(),
            alpha,
            beta,
            gamma,
            samples: self.samples.len(),
        }
    }

    /// [`Calibrator::fit_format`] with the default CSR format label.
    pub fn fit(&self, backend: &str) -> Calibration {
        self.fit_format(backend, "csr")
    }
}

/// Ordinary least squares for `t = α + β·w`. With fewer than two distinct
/// abscissae the slope is unidentifiable: the mean wait becomes α and β
/// falls to the floor in [`Calibrator::fit`].
fn fit_affine(samples: &[CalibSample]) -> (f64, f64) {
    let n = samples.len() as f64;
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean_w = samples
        .iter()
        .map(|s| s.halo_words_per_exchange)
        .sum::<f64>()
        / n;
    let mean_t = samples
        .iter()
        .map(|s| s.wait_seconds_per_exchange)
        .sum::<f64>()
        / n;
    let mut sww = 0.0;
    let mut swt = 0.0;
    for s in samples {
        let dw = s.halo_words_per_exchange - mean_w;
        sww += dw * dw;
        swt += dw * (s.wait_seconds_per_exchange - mean_t);
    }
    if sww == 0.0 {
        return (mean_t, 0.0);
    }
    let beta = swt / sww;
    (mean_t - beta * mean_w, beta)
}

/// Fitted transport and compute constants of one backend.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Backend the constants describe (`"thread"` or `"proc"`).
    pub backend: String,
    /// Sparse format γ was measured on (`"csr"` or `"sell"`) — the two
    /// kernels run at different flop rates, so a replay must price
    /// compute with the matching fit.
    pub format: String,
    /// Exchange latency floor (seconds): the fitted wait at zero words.
    pub alpha: f64,
    /// Inverse exchange bandwidth (seconds per word).
    pub beta: f64,
    /// Measured SpMV flop rate (FLOP/s per rank).
    pub gamma: f64,
    /// α-β points behind the fit.
    pub samples: usize,
}

impl Calibration {
    /// Scales the default modeled cluster to this backend's measured
    /// absolutes, preserving the default's ratios (see the module docs).
    /// The result always passes [`MachineParams::validate`].
    pub fn machine_params(&self) -> MachineParams {
        let d = MachineParams::default();
        let p = MachineParams {
            spmv_flops: self.gamma,
            blas1_flops: self.gamma * (d.blas1_flops / d.spmv_flops),
            blas23_flops: self.gamma * (d.blas23_flops / d.spmv_flops),
            small_flops: self.gamma * (d.small_flops / d.spmv_flops),
            alpha_intra: self.alpha,
            alpha_inter: self.alpha * (d.alpha_inter / d.alpha_intra),
            alpha_p2p: self.alpha * (d.alpha_p2p / d.alpha_intra),
            beta_intra: self.beta,
            beta_inter: self.beta * (d.beta_inter / d.beta_intra),
            beta_p2p: self.beta * (d.beta_p2p / d.beta_intra),
        };
        p.validate();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_fit_recovers_planted_line() {
        let samples: Vec<CalibSample> = [100.0, 200.0, 400.0, 800.0]
            .iter()
            .map(|&w| CalibSample {
                halo_words_per_exchange: w,
                wait_seconds_per_exchange: 3.0e-6 + 2.0e-9 * w,
            })
            .collect();
        let (alpha, beta) = fit_affine(&samples);
        assert!((alpha - 3.0e-6).abs() < 1e-12, "alpha {alpha}");
        assert!((beta - 2.0e-9).abs() < 1e-15, "beta {beta}");
    }

    #[test]
    fn degenerate_fit_falls_back_to_mean_and_floor() {
        let samples = vec![
            CalibSample {
                halo_words_per_exchange: 50.0,
                wait_seconds_per_exchange: 4.0e-6,
            },
            CalibSample {
                halo_words_per_exchange: 50.0,
                wait_seconds_per_exchange: 6.0e-6,
            },
        ];
        let (alpha, beta) = fit_affine(&samples);
        assert!((alpha - 5.0e-6).abs() < 1e-12);
        assert_eq!(beta, 0.0);
    }

    #[test]
    fn negative_intercept_falls_back_to_measured_floor() {
        // Two word clusters whose OLS line extrapolates below zero at
        // w = 0: the fallback must anchor α to a fraction of the
        // smallest wait, not a hard-coded constant.
        let mut c = Calibrator::new();
        c.samples = vec![
            CalibSample {
                halo_words_per_exchange: 1000.0,
                wait_seconds_per_exchange: 1.0e-5,
            },
            CalibSample {
                halo_words_per_exchange: 2000.0,
                wait_seconds_per_exchange: 4.0e-5,
            },
        ];
        c.compute_seconds = 1.0;
        c.spmv_flops = 1.0e9;
        let cal = c.fit("thread");
        assert!(
            (cal.alpha - 0.1 * 1.0e-5).abs() < 1e-12,
            "alpha {}",
            cal.alpha
        );
        assert!(cal.beta > 0.0);
        cal.machine_params().validate();
    }

    #[test]
    fn machine_params_preserve_default_ratios() {
        let cal = Calibration {
            backend: "thread".into(),
            format: "csr".into(),
            alpha: 5.0e-7,
            beta: 2.0e-10,
            gamma: 3.0e9,
            samples: 4,
        };
        let p = cal.machine_params();
        let d = MachineParams::default();
        assert_eq!(p.alpha_intra, cal.alpha);
        assert_eq!(p.spmv_flops, cal.gamma);
        assert!((p.alpha_inter / p.alpha_intra - d.alpha_inter / d.alpha_intra).abs() < 1e-9);
        assert!((p.blas23_flops / p.blas1_flops - d.blas23_flops / d.blas1_flops).abs() < 1e-9);
    }

    #[test]
    fn calibrator_without_exchange_traffic_still_yields_gamma() {
        let mut c = Calibrator::new();
        let tracer = Tracer::new();
        {
            let track = tracer.track(0);
            let s = track.span(Phase::Spmv);
            std::thread::sleep(std::time::Duration::from_millis(2));
            drop(s);
        }
        let mut counters = Counters::new();
        counters.spmv_flops = 1_000_000;
        c.ingest(&tracer, &counters);
        let cal = c.fit("thread");
        assert_eq!(cal.samples, 0);
        assert!(cal.gamma > 1e4);
        cal.machine_params().validate();
    }

    #[test]
    fn fit_carries_backend_and_format_labels() {
        let mut c = Calibrator::new();
        c.compute_seconds = 0.5;
        c.spmv_flops = 2.0e9;
        let cal = c.fit_format("proc", "sell");
        assert_eq!(cal.backend, "proc");
        assert_eq!(cal.format, "sell");
        assert_eq!(c.fit("proc").format, "csr", "fit() defaults to csr");
        assert_eq!(
            cal.gamma,
            c.fit("proc").gamma,
            "label does not change the fit"
        );
    }

    #[test]
    #[should_panic(expected = "no measurements")]
    fn fitting_nothing_panics() {
        Calibrator::new().fit("thread");
    }
}
