//! Serializable preconditioner recipes.
//!
//! A `Box<dyn Preconditioner>` cannot cross a process boundary, but every
//! preconditioner in this crate is a pure function of the system matrix
//! plus a handful of scalars. [`PrecondSpec`] captures exactly that recipe:
//! the proc backend ships the spec to its rank workers, each of which
//! [`PrecondSpec::build`]s an operator **bitwise identical** to the
//! parent's from its own copy of `A` — the construction paths are
//! deterministic, so thread and proc solves precondition identically.
//!
//! A preconditioner advertises its recipe through
//! [`Preconditioner::spec`]; operators that cannot be reconstructed
//! remotely (user-defined, matrix-free with captured state, …) return
//! `None`, and the proc backend falls back to the thread transport for
//! them.

use crate::block_jacobi::BlockJacobi;
use crate::chebyshev::ChebyshevPrecond;
use crate::ic0::Ic0;
use crate::identity::Identity;
use crate::jacobi::Jacobi;
use crate::ssor::Ssor;
use crate::traits::Preconditioner;
use spcg_sparse::CsrMatrix;
use std::sync::Arc;

/// A recipe that rebuilds one of this crate's preconditioners from the
/// system matrix. See the module docs for the reconstruction contract.
#[derive(Debug, Clone, PartialEq)]
pub enum PrecondSpec {
    /// [`Identity`] of dimension `n`.
    Identity {
        /// Operator dimension.
        n: usize,
    },
    /// [`Jacobi`] with an explicit inverse diagonal — shipped verbatim so
    /// a worker reproduces even a hand-tuned `from_inv_diagonal` operator.
    Jacobi {
        /// Elementwise weights (`diag(A)⁻¹` in the common case).
        inv_diag: Vec<f64>,
    },
    /// [`BlockJacobi`] with contiguous blocks of size `block`.
    BlockJacobi {
        /// Requested block size (the last block may be smaller).
        block: usize,
    },
    /// [`ChebyshevPrecond`] of the given degree on `[lo, hi]`.
    Chebyshev {
        /// Polynomial degree.
        degree: usize,
        /// Lower interval bound.
        lo: f64,
        /// Upper interval bound.
        hi: f64,
    },
    /// [`Ssor`] with relaxation parameter `omega`.
    Ssor {
        /// Relaxation parameter in `(0, 2)`.
        omega: f64,
    },
    /// [`Ic0`] — the shifted factorization is recomputed deterministically
    /// from `A`, so the recipe carries no state.
    Ic0,
}

impl PrecondSpec {
    /// Rebuilds the operator against `a`. Deterministic: two builds from
    /// equal inputs produce bitwise-identical operators.
    ///
    /// # Panics
    /// Panics if the recipe does not fit `a` (dimension mismatch, invalid
    /// parameters) — the same validation the original constructors apply.
    pub fn build(&self, a: &Arc<CsrMatrix>) -> Box<dyn Preconditioner> {
        match self {
            PrecondSpec::Identity { n } => {
                assert_eq!(*n, a.nrows(), "PrecondSpec::Identity: dimension mismatch");
                Box::new(Identity::new(*n))
            }
            PrecondSpec::Jacobi { inv_diag } => {
                assert_eq!(
                    inv_diag.len(),
                    a.nrows(),
                    "PrecondSpec::Jacobi: dimension mismatch"
                );
                Box::new(Jacobi::from_inv_diagonal(inv_diag.clone()))
            }
            PrecondSpec::BlockJacobi { block } => Box::new(BlockJacobi::new(a, *block)),
            PrecondSpec::Chebyshev { degree, lo, hi } => {
                Box::new(ChebyshevPrecond::new(Arc::clone(a), *degree, *lo, *hi))
            }
            PrecondSpec::Ssor { omega } => Box::new(Ssor::new(a, *omega)),
            PrecondSpec::Ic0 => Box::new(Ic0::new(a)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson::poisson_2d;

    /// Every built-in preconditioner round-trips through its spec to a
    /// bitwise-identical operator.
    #[test]
    fn spec_roundtrip_is_bitwise() {
        let a = Arc::new(poisson_2d(7));
        let n = a.nrows();
        let originals: Vec<Box<dyn Preconditioner>> = vec![
            Box::new(Identity::new(n)),
            Box::new(Jacobi::new(&a)),
            Box::new(BlockJacobi::new(&a, 6)),
            Box::new(ChebyshevPrecond::from_matrix(Arc::clone(&a), 3, 30.0)),
            Box::new(Ssor::new(&a, 1.2)),
            Box::new(Ic0::new(&a)),
        ];
        let r: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        for m in originals {
            let spec = m.spec().unwrap_or_else(|| panic!("{}: no spec", m.name()));
            let rebuilt = spec.build(&a);
            assert_eq!(rebuilt.name(), m.name());
            assert_eq!(rebuilt.flops_per_apply(), m.flops_per_apply());
            assert_eq!(
                rebuilt.apply_alloc(&r),
                m.apply_alloc(&r),
                "{}: rebuilt apply differs",
                m.name()
            );
            assert_eq!(rebuilt.spec(), Some(spec), "{}: spec unstable", m.name());
        }
    }

    #[test]
    fn uneven_block_jacobi_reproduces_offsets() {
        let a = Arc::new(poisson_2d(5)); // n = 25, blocks of 7 → 7,7,7,4
        let bj = BlockJacobi::new(&a, 7);
        let spec = bj.spec().unwrap();
        assert_eq!(spec, PrecondSpec::BlockJacobi { block: 7 });
        match spec.build(&a).spec() {
            Some(PrecondSpec::BlockJacobi { block }) => assert_eq!(block, 7),
            other => panic!("unexpected spec {other:?}"),
        }
    }
}
