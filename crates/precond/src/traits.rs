//! The preconditioner abstraction, and its distributed decomposition.
//!
//! Besides the serial [`Preconditioner::apply`] entry point, every
//! preconditioner advertises a [`DistForm`] describing how it decomposes
//! under a block-row rank partition. The distributed engine in
//! `spcg-solvers` dispatches on this form to pick the cheapest correct
//! application strategy — and, for pointwise forms, to ghost the operator
//! into the depth-s matrix powers kernel.

/// How a preconditioner decomposes under a contiguous block-row partition.
///
/// Returned by [`Preconditioner::dist_form`]; borrowed views into the
/// preconditioner's own storage, so constructing one is free.
pub enum DistForm<'a> {
    /// `z[i] = w[i] · r[i]` with a global weight vector `w` of length `n`.
    ///
    /// Appliable on *any* index subset — including the ghost rows of a
    /// depth-s ghost zone, which is what lets the distributed matrix powers
    /// kernel run all s preconditioned levels from a single exchange.
    /// Jacobi (`w = diag(A)⁻¹`) and the identity (`w = 1`) take this form.
    Pointwise(&'a [f64]),
    /// Block-diagonal with the given block `offsets` (length `nblocks+1`,
    /// first 0, last `n`). The engine applies it rank-locally with zero
    /// communication when every partition boundary is a block boundary,
    /// and falls back to [`DistForm::Coupled`] handling otherwise.
    RankLocal {
        offsets: &'a [usize],
        op: &'a dyn RankLocalApply,
    },
    /// A fixed polynomial in `A`: the application is a short sequence of
    /// SpMVs plus pointwise vector work, so the engine can distribute it by
    /// substituting its own halo-exchanged SpMV (Chebyshev).
    SpmvPolynomial(&'a dyn SpmvPolyApply),
    /// No exploitable structure (e.g. SSOR, IC(0) triangular solves): the
    /// engine gathers the full residual, applies the serial operator, and
    /// keeps its own rows.
    Coupled,
}

/// Rank-local application of a block-diagonal operator on an aligned row
/// range.
pub trait RankLocalApply: Send + Sync {
    /// Applies the blocks covering `[lo, hi)` to the local slices `r`, `z`
    /// (both of length `hi − lo`).
    ///
    /// # Panics
    /// Panics unless `lo` and `hi` are block boundaries.
    fn apply_rows(&self, lo: usize, hi: usize, r: &[f64], z: &mut [f64]);
}

/// A preconditioner whose application is a polynomial in `A`, expressed
/// against an injected SpMV so the same recurrence runs serially or over a
/// distributed operator.
pub trait SpmvPolyApply: Send + Sync {
    /// Applies `z ← q(A) r` where every product with `A` goes through
    /// `spmv`. Vector lengths follow `r.len()` (local length under a rank
    /// partition), not the global dimension.
    fn apply_with_spmv(&self, r: &[f64], z: &mut [f64], spmv: &mut dyn FnMut(&[f64], &mut [f64]));

    /// Number of `spmv` calls one application makes (= halo exchanges the
    /// distributed engine will perform per apply).
    fn spmvs_per_apply(&self) -> usize;
}

use spcg_sparse::ParKernels;

/// A fixed symmetric-positive-definite linear operator `M⁻¹` applied as
/// `z = M⁻¹ r`.
///
/// Implementations must be deterministic linear maps: the s-step solvers
/// apply `M⁻¹` inside polynomial recurrences and the algebra (e.g.
/// `U^(k) = M⁻¹ R^(k)`, eq. (7)) silently assumes linearity. Nonlinear
/// "preconditioners" (e.g. flexible inner solves) would break every method
/// in this workspace except standard PCG.
pub trait Preconditioner: Send + Sync {
    /// Applies `z ← M⁻¹ r`.
    ///
    /// # Panics
    /// Implementations panic if `r.len()` or `z.len()` differ from the
    /// operator dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Operator dimension `n`.
    fn dim(&self) -> usize;

    /// FLOPs of one application (used to charge the instrumentation).
    fn flops_per_apply(&self) -> u64;

    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Applies `z ← M⁻¹ r` with the intra-rank thread pool `pk` available
    /// for row-parallel work. Implementations must stay **bitwise
    /// identical** to [`Preconditioner::apply`] for every thread count —
    /// the solvers' determinism guarantee extends through the
    /// preconditioner. The default ignores the pool and applies serially
    /// (always correct); structured operators override it.
    fn apply_par(&self, pk: &ParKernels, r: &[f64], z: &mut [f64]) {
        let _ = pk;
        self.apply(r, z);
    }

    /// Applies in place via an internal scratch buffer allocation. Solvers
    /// prefer [`Preconditioner::apply`]; this is a convenience for setup
    /// code.
    fn apply_alloc(&self, r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; r.len()];
        self.apply(r, &mut z);
        z
    }

    /// How this operator decomposes under a block-row rank partition.
    /// Defaults to [`DistForm::Coupled`] (correct for everything, optimal
    /// for nothing); structured preconditioners override it.
    fn dist_form(&self) -> DistForm<'_> {
        DistForm::Coupled
    }

    /// The serializable recipe that rebuilds this operator from the system
    /// matrix in another process (see [`crate::spec`]), or `None` when the
    /// operator cannot be reconstructed remotely. Defaults to `None` —
    /// only proc-backend transport needs it; every built-in
    /// preconditioner overrides it.
    fn spec(&self) -> Option<crate::spec::PrecondSpec> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Identity;

    #[test]
    fn apply_alloc_matches_apply() {
        let p = Identity::new(4);
        let r = vec![1.0, -2.0, 3.0, 4.0];
        let mut z = vec![0.0; 4];
        p.apply(&r, &mut z);
        assert_eq!(z, p.apply_alloc(&r));
    }
}
