//! The preconditioner abstraction.

/// A fixed symmetric-positive-definite linear operator `M⁻¹` applied as
/// `z = M⁻¹ r`.
///
/// Implementations must be deterministic linear maps: the s-step solvers
/// apply `M⁻¹` inside polynomial recurrences and the algebra (e.g.
/// `U^(k) = M⁻¹ R^(k)`, eq. (7)) silently assumes linearity. Nonlinear
/// "preconditioners" (e.g. flexible inner solves) would break every method
/// in this workspace except standard PCG.
pub trait Preconditioner: Send + Sync {
    /// Applies `z ← M⁻¹ r`.
    ///
    /// # Panics
    /// Implementations panic if `r.len()` or `z.len()` differ from the
    /// operator dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Operator dimension `n`.
    fn dim(&self) -> usize;

    /// FLOPs of one application (used to charge the instrumentation).
    fn flops_per_apply(&self) -> u64;

    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Applies in place via an internal scratch buffer allocation. Solvers
    /// prefer [`Preconditioner::apply`]; this is a convenience for setup
    /// code.
    fn apply_alloc(&self, r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; r.len()];
        self.apply(r, &mut z);
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Identity;

    #[test]
    fn apply_alloc_matches_apply() {
        let p = Identity::new(4);
        let r = vec![1.0, -2.0, 3.0, 4.0];
        let mut z = vec![0.0; 4];
        p.apply(&r, &mut z);
        assert_eq!(z, p.apply_alloc(&r));
    }
}
