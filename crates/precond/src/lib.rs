//! Preconditioners for (s-step) PCG.
//!
//! The paper evaluates with Jacobi and Chebyshev (polynomial)
//! preconditioners because both "require little or no communication and are
//! thus suitable for s-step methods" (§5.1): applying them to a block-row
//! distributed vector needs no global reduction. This crate implements both,
//! plus identity, block-Jacobi, SSOR and IC(0) variants used in tests and
//! ablations.
//!
//! All preconditioners are *fixed linear operators* `M⁻¹` (a requirement for
//! plain PCG and for the s-step basis construction, where `M⁻¹` is applied
//! inside a polynomial recurrence) and report their FLOP cost per
//! application so solvers can charge `spcg_dist::Counters` accurately.

pub mod block_jacobi;
pub mod chebyshev;
pub mod ic0;
pub mod identity;
pub mod jacobi;
pub mod spec;
pub mod ssor;
pub mod traits;

pub use block_jacobi::BlockJacobi;
pub use chebyshev::ChebyshevPrecond;
pub use ic0::Ic0;
pub use identity::Identity;
pub use jacobi::Jacobi;
pub use spec::PrecondSpec;
pub use ssor::Ssor;
pub use traits::{DistForm, Preconditioner, RankLocalApply, SpmvPolyApply};
