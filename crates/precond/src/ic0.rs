//! Incomplete Cholesky factorization with zero fill-in, IC(0).
//!
//! `M = L·Lᵀ` where `L` keeps exactly the sparsity of `A`'s lower triangle.
//! A strong serial preconditioner for M-matrices (Poisson-type problems);
//! like SSOR its triangular solves are sequential, so the paper's s-step
//! setting would not deploy it at scale — it serves as an ablation baseline
//! showing the solvers work with any fixed SPD operator.
//!
//! Breakdown handling: IC(0) can hit non-positive pivots on general SPD
//! matrices; the constructor retries with an increasing diagonal shift
//! (Manteuffel's shifted incomplete factorization) until the factorization
//! exists.

use crate::spec::PrecondSpec;
use crate::traits::Preconditioner;
use spcg_sparse::{CooMatrix, CsrMatrix};

/// IC(0) preconditioner `M⁻¹ = (L·Lᵀ)⁻¹`.
pub struct Ic0 {
    /// Lower-triangular factor in CSR (diagonal stored last in each row).
    l: CsrMatrix,
    /// Shift that was needed for the factorization to exist.
    shift: f64,
}

impl Ic0 {
    /// Factors `a`, shifting the diagonal as needed.
    ///
    /// # Panics
    /// Panics if the factorization fails even with a large shift (the
    /// matrix is far from SPD) or if `a` is not square.
    pub fn new(a: &CsrMatrix) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "Ic0: matrix must be square");
        let mut shift = 0.0;
        for attempt in 0..12 {
            if let Some(l) = try_factor(a, shift) {
                return Ic0 { l, shift };
            }
            shift = if shift == 0.0 { 1e-3 } else { shift * 4.0 };
            let _ = attempt;
        }
        panic!("Ic0: factorization failed even with shift {shift}");
    }

    /// The diagonal shift the factorization required (0 for M-matrices).
    pub fn shift(&self) -> f64 {
        self.shift
    }
}

/// Attempts IC(0) of `a + shift·diag(a)`; `None` on a non-positive pivot.
fn try_factor(a: &CsrMatrix, shift: f64) -> Option<CsrMatrix> {
    let n = a.nrows();
    // Row-major working copy of the lower triangle (incl. diagonal).
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    for i in 0..n {
        let (cols, vals) = a.row(i);
        let mut row: Vec<(usize, f64)> = cols
            .iter()
            .zip(vals)
            .filter(|&(&c, _)| c <= i)
            .map(|(&c, &v)| {
                if c == i {
                    (c, v * (1.0 + shift))
                } else {
                    (c, v)
                }
            })
            .collect();
        row.sort_unstable_by_key(|&(c, _)| c);
        rows.push(row);
    }
    // Standard up-looking IC(0): for each row i, eliminate with rows k < i
    // restricted to the existing pattern.
    for i in 0..n {
        // Split to appease the borrow checker: rows[..i] are finished.
        let (done, rest) = rows.split_at_mut(i);
        let row_i = &mut rest[0];
        let mut diag = 0.0;
        for idx in 0..row_i.len() {
            let (k, mut v) = row_i[idx];
            // v -= Σ_{j<k} L[i][j]·L[k][j]
            if k > 0 {
                let row_k: &[(usize, f64)] = if k < i { &done[k] } else { &row_i[..idx] };
                // Sparse dot of row_i[..idx] and row_k (both sorted, j < k).
                let mut p = 0usize;
                let mut q = 0usize;
                while p < idx && q < row_k.len() {
                    let (cj, cv) = row_i[p];
                    let (dj, dv) = row_k[q];
                    if cj == dj {
                        if cj < k {
                            v -= cv * dv;
                        }
                        p += 1;
                        q += 1;
                    } else if cj < dj {
                        p += 1;
                    } else {
                        q += 1;
                    }
                }
            }
            if k == i {
                if !(v > 0.0) || !v.is_finite() {
                    return None;
                }
                diag = v.sqrt();
                row_i[idx].1 = diag;
            } else {
                // Divide by the pivot of row k.
                let lkk = done[k].last().expect("row k has a diagonal").1;
                row_i[idx].1 = v / lkk;
            }
        }
        debug_assert!(diag > 0.0);
    }
    // Assemble CSR.
    let mut coo = CooMatrix::new(n, n);
    for (i, row) in rows.iter().enumerate() {
        for &(c, v) in row {
            coo.push(i, c, v);
        }
    }
    Some(coo.to_csr())
}

impl Preconditioner for Ic0 {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.l.nrows();
        assert_eq!(r.len(), n, "Ic0::apply: input length mismatch");
        assert_eq!(z.len(), n, "Ic0::apply: output length mismatch");
        // Forward solve L·y = r.
        for i in 0..n {
            let (cols, vals) = self.l.row(i);
            let mut acc = r[i];
            let last = cols.len() - 1;
            for k in 0..last {
                acc -= vals[k] * z[cols[k]];
            }
            z[i] = acc / vals[last];
        }
        // Backward solve Lᵀ·z = y (column sweep over L).
        for i in (0..n).rev() {
            let (cols, vals) = self.l.row(i);
            let last = cols.len() - 1;
            z[i] /= vals[last];
            let zi = z[i];
            for k in 0..last {
                z[cols[k]] -= vals[k] * zi;
            }
        }
    }

    fn dim(&self) -> usize {
        self.l.nrows()
    }

    fn flops_per_apply(&self) -> u64 {
        4 * self.l.nnz() as u64
    }

    fn name(&self) -> String {
        "ic0".to_string()
    }

    fn spec(&self) -> Option<PrecondSpec> {
        Some(PrecondSpec::Ic0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::Jacobi;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn exact_for_tridiagonal_mmatrix() {
        // IC(0) of a tridiagonal matrix IS its full Cholesky: M⁻¹A = I.
        let a = poisson_1d(20);
        let p = Ic0::new(&a);
        assert_eq!(p.shift(), 0.0);
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut ax = vec![0.0; 20];
        a.spmv(&x, &mut ax);
        let z = p.apply_alloc(&ax);
        for (zi, xi) in z.iter().zip(&x) {
            assert!((zi - xi).abs() < 1e-12, "{zi} vs {xi}");
        }
    }

    #[test]
    fn symmetric_positive_operator() {
        let a = poisson_2d(8);
        let p = Ic0::new(&a);
        let n = 64;
        let x: Vec<f64> = (0..n).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let px = p.apply_alloc(&x);
        let py = p.apply_alloc(&y);
        let ip1: f64 = px.iter().zip(&y).map(|(a, b)| a * b).sum();
        let ip2: f64 = x.iter().zip(&py).map(|(a, b)| a * b).sum();
        assert!((ip1 - ip2).abs() < 1e-9 * ip1.abs().max(1.0));
        let q: f64 = px.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!(q > 0.0);
    }

    #[test]
    fn beats_jacobi_on_poisson() {
        use spcg_solvers_shim::*;
        // Inline mini-PCG to avoid a dev-dependency cycle with spcg-solvers.
        mod spcg_solvers_shim {
            use crate::Preconditioner;
            use spcg_sparse::{blas, CsrMatrix};
            pub fn pcg_iters(a: &CsrMatrix, m: &dyn Preconditioner, b: &[f64], tol: f64) -> usize {
                let n = a.nrows();
                let mut x = vec![0.0; n];
                let mut r = b.to_vec();
                let mut u = vec![0.0; n];
                m.apply(&r, &mut u);
                let mut p = u.clone();
                let mut s = vec![0.0; n];
                let mut rtu = blas::dot(&r, &u);
                let r0 = blas::norm2(&r);
                for it in 0..10_000 {
                    if blas::norm2(&r) < tol * r0 {
                        return it;
                    }
                    a.spmv(&p, &mut s);
                    let alpha = rtu / blas::dot(&p, &s);
                    blas::axpy(alpha, &p, &mut x);
                    blas::axpy(-alpha, &s, &mut r);
                    m.apply(&r, &mut u);
                    let rtu_new = blas::dot(&r, &u);
                    let beta = rtu_new / rtu;
                    rtu = rtu_new;
                    blas::xpby(&u, beta, &mut p);
                }
                10_000
            }
        }
        let a = poisson_2d(24);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 5) as f64).collect();
        let jac = Jacobi::new(&a);
        let ic = Ic0::new(&a);
        let it_j = pcg_iters(&a, &jac, &b, 1e-8);
        let it_i = pcg_iters(&a, &ic, &b, 1e-8);
        assert!(it_i < it_j, "IC(0) {it_i} not better than Jacobi {it_j}");
        // Classical result: IC(0) roughly halves Poisson's iteration count.
        assert!(
            it_i <= it_j / 2,
            "IC(0) should roughly halve the count: {it_i} vs {it_j}"
        );
    }
}
