//! Symmetric successive over-relaxation (SSOR) preconditioner.
//!
//! `M = (D/ω + L) · (D/ω)⁻¹ · (D/ω + Lᵀ) · ω/(2−ω)` for `A = L + D + Lᵀ`.
//! SSOR is symmetric positive definite for SPD `A` and `ω ∈ (0, 2)`, making
//! it a valid PCG preconditioner. Unlike Jacobi/Chebyshev its triangular
//! solves are inherently sequential across the matrix bandwidth, so the
//! paper's s-step setting would not use it at scale — it is included for
//! ablations and as a stronger serial baseline.

use crate::spec::PrecondSpec;
use crate::traits::Preconditioner;
use spcg_sparse::CsrMatrix;

/// SSOR preconditioner with relaxation parameter ω.
pub struct Ssor {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    omega: f64,
}

impl Ssor {
    /// Builds from `a` (which must have a fully stored positive diagonal).
    ///
    /// # Panics
    /// Panics unless `0 < omega < 2` and the diagonal is strictly positive.
    pub fn new(a: &CsrMatrix, omega: f64) -> Self {
        assert!(omega > 0.0 && omega < 2.0, "Ssor: omega must be in (0, 2)");
        let inv_diag: Vec<f64> = a
            .diagonal()
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                assert!(d > 0.0, "Ssor: non-positive diagonal at row {i}");
                1.0 / d
            })
            .collect();
        Ssor {
            a: a.clone(),
            inv_diag,
            omega,
        }
    }
}

impl Preconditioner for Ssor {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.a.nrows();
        assert_eq!(r.len(), n, "Ssor::apply: input length mismatch");
        assert_eq!(z.len(), n, "Ssor::apply: output length mismatch");
        let w = self.omega;
        // Forward sweep: (D/ω + L) y = r.
        for i in 0..n {
            let (cols, vals) = self.a.row(i);
            let mut acc = r[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c < i {
                    acc -= v * z[c];
                }
            }
            z[i] = acc * w * self.inv_diag[i];
        }
        // Scale by D/ω: y ← (D/ω) y.
        for i in 0..n {
            z[i] /= w * self.inv_diag[i];
        }
        // Backward sweep: (D/ω + Lᵀ) z = y (using symmetry: Lᵀ entries are
        // the upper-triangular entries of A).
        for i in (0..n).rev() {
            let (cols, vals) = self.a.row(i);
            let mut acc = z[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c > i {
                    acc -= v * z[c];
                }
            }
            z[i] = acc * w * self.inv_diag[i];
        }
        // Final scaling ω/(2−ω) of M⁻¹ — constant factor (2−ω)/ω applied to z.
        let s = (2.0 - w) / w;
        for v in z.iter_mut() {
            *v *= s;
        }
    }

    fn dim(&self) -> usize {
        self.a.nrows()
    }

    fn flops_per_apply(&self) -> u64 {
        // Two triangular sweeps ≈ 2·nnz plus 4n scalings.
        2 * self.a.nnz() as u64 + 4 * self.a.nrows() as u64
    }

    fn name(&self) -> String {
        format!("ssor(omega={})", self.omega)
    }

    fn spec(&self) -> Option<PrecondSpec> {
        Some(PrecondSpec::Ssor { omega: self.omega })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn symmetric_operator() {
        let a = poisson_2d(5);
        let p = Ssor::new(&a, 1.2);
        let x: Vec<f64> = (0..25).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        let y: Vec<f64> = (0..25).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let px = p.apply_alloc(&x);
        let py = p.apply_alloc(&y);
        let ip1: f64 = px.iter().zip(&y).map(|(a, b)| a * b).sum();
        let ip2: f64 = x.iter().zip(&py).map(|(a, b)| a * b).sum();
        assert!(
            (ip1 - ip2).abs() < 1e-10 * ip1.abs().max(1.0),
            "{ip1} vs {ip2}"
        );
    }

    #[test]
    fn positive_definite_quadratic_form() {
        let a = poisson_1d(10);
        let p = Ssor::new(&a, 1.0);
        for seed in 0..5 {
            let x: Vec<f64> = (0..10)
                .map(|i| ((i * 7 + seed * 3) % 5) as f64 - 2.0)
                .collect();
            if x.iter().all(|&v| v == 0.0) {
                continue;
            }
            let px = p.apply_alloc(&x);
            let q: f64 = px.iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!(q > 0.0, "quadratic form not positive: {q}");
        }
    }

    #[test]
    fn omega_one_is_symmetric_gauss_seidel_exact_for_diagonal() {
        // For a diagonal matrix SSOR with any ω reduces to D⁻¹ (times the
        // ω-scalings which cancel).
        let a = CsrMatrix::from_diagonal(&[2.0, 4.0]);
        let p = Ssor::new(&a, 1.0);
        let z = p.apply_alloc(&[2.0, 4.0]);
        assert!((z[0] - 1.0).abs() < 1e-15);
        assert!((z[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "omega must be in")]
    fn rejects_bad_omega() {
        let a = poisson_1d(3);
        Ssor::new(&a, 2.5);
    }
}
