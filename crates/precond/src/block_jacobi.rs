//! Block-Jacobi preconditioner.
//!
//! `M = blockdiag(A₁₁, …, A_BB)` with dense Cholesky factorization of each
//! diagonal block. With blocks aligned to the rank partition this is the
//! classic communication-free domain preconditioner; it generalizes Jacobi
//! (block size 1) and is used in ablation benchmarks.

use crate::spec::PrecondSpec;
use crate::traits::{DistForm, Preconditioner, RankLocalApply};
use spcg_sparse::smallsolve::Cholesky;
use spcg_sparse::{CsrMatrix, DenseMat, ParKernels};

/// Dense-Cholesky block-diagonal preconditioner.
pub struct BlockJacobi {
    n: usize,
    offsets: Vec<usize>,
    factors: Vec<Cholesky>,
    flops: u64,
}

impl BlockJacobi {
    /// Builds with contiguous blocks of size `block` (last block may be
    /// smaller). The diagonal blocks of an SPD matrix are SPD, so the
    /// Cholesky factorizations cannot fail for valid input.
    ///
    /// # Panics
    /// Panics if `block == 0` or a diagonal block is not numerically SPD.
    pub fn new(a: &CsrMatrix, block: usize) -> Self {
        assert!(block > 0, "BlockJacobi: block size must be positive");
        let n = a.nrows();
        let mut offsets = vec![0];
        while *offsets.last().unwrap() < n {
            offsets.push((offsets.last().unwrap() + block).min(n));
        }
        let mut factors = Vec::with_capacity(offsets.len() - 1);
        let mut flops = 0u64;
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let b = hi - lo;
            let mut blk = DenseMat::zeros(b, b);
            for r in lo..hi {
                let (cols, vals) = a.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    if c >= lo && c < hi {
                        blk[(r - lo, c - lo)] = v;
                    }
                }
            }
            factors.push(
                Cholesky::factor(&blk).expect("BlockJacobi: diagonal block not positive definite"),
            );
            // Triangular solves: ~2·b² FLOPs per application of this block.
            flops += 2 * (b * b) as u64;
        }
        BlockJacobi {
            n,
            offsets,
            factors,
            flops,
        }
    }

    /// Block boundaries (length `nblocks + 1`, first 0, last `n`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

impl RankLocalApply for BlockJacobi {
    fn apply_rows(&self, lo: usize, hi: usize, r: &[f64], z: &mut [f64]) {
        assert_eq!(
            r.len(),
            hi - lo,
            "BlockJacobi::apply_rows: input length mismatch"
        );
        assert_eq!(
            z.len(),
            hi - lo,
            "BlockJacobi::apply_rows: output length mismatch"
        );
        let first = self
            .offsets
            .binary_search(&lo)
            .unwrap_or_else(|_| panic!("BlockJacobi::apply_rows: {lo} is not a block boundary"));
        assert!(
            self.offsets.binary_search(&hi).is_ok(),
            "BlockJacobi::apply_rows: {hi} is not a block boundary"
        );
        z.copy_from_slice(r);
        for (i, w) in self.offsets[first..].windows(2).enumerate() {
            if w[0] >= hi {
                break;
            }
            self.factors[first + i].solve_in_place(&mut z[w[0] - lo..w[1] - lo]);
        }
    }
}

impl Preconditioner for BlockJacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "BlockJacobi::apply: input length mismatch");
        assert_eq!(
            z.len(),
            self.n,
            "BlockJacobi::apply: output length mismatch"
        );
        z.copy_from_slice(r);
        for (i, w) in self.offsets.windows(2).enumerate() {
            self.factors[i].solve_in_place(&mut z[w[0]..w[1]]);
        }
    }

    fn apply_par(&self, pk: &ParKernels, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "BlockJacobi::apply: input length mismatch");
        assert_eq!(
            z.len(),
            self.n,
            "BlockJacobi::apply: output length mismatch"
        );
        // Blocks are independent triangular solves — parallelizing over
        // them is bitwise identical to the serial sweep.
        z.copy_from_slice(r);
        pk.for_each_range_mut(z, &self.offsets, |i, zb| {
            self.factors[i].solve_in_place(zb);
        });
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn flops_per_apply(&self) -> u64 {
        self.flops
    }

    fn name(&self) -> String {
        let block = self
            .offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0);
        format!("block-jacobi(b={block})")
    }

    fn dist_form(&self) -> DistForm<'_> {
        DistForm::RankLocal {
            offsets: &self.offsets,
            op: self,
        }
    }

    fn spec(&self) -> Option<PrecondSpec> {
        // Blocks are contiguous and fixed-size from row 0, so the first
        // boundary recovers the requested block size exactly (the last
        // block may be smaller, but rebuilding reproduces that too).
        let block = if self.offsets.len() > 1 {
            self.offsets[1]
        } else {
            1
        };
        Some(PrecondSpec::BlockJacobi { block })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::Jacobi;
    use spcg_sparse::generators::poisson::poisson_1d;

    #[test]
    fn block_size_one_matches_jacobi() {
        let a = poisson_1d(8);
        let bj = BlockJacobi::new(&a, 1);
        let j = Jacobi::new(&a);
        let r: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        for (x, y) in bj.apply_alloc(&r).iter().zip(j.apply_alloc(&r)) {
            assert!((x - y).abs() < 1e-14);
        }
    }

    #[test]
    fn full_block_is_exact_inverse() {
        let a = poisson_1d(6);
        let bj = BlockJacobi::new(&a, 6);
        // M⁻¹ A x = x when the single block is the whole matrix.
        let x: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
        let mut ax = vec![0.0; 6];
        a.spmv(&x, &mut ax);
        let z = bj.apply_alloc(&ax);
        for (zi, xi) in z.iter().zip(&x) {
            assert!((zi - xi).abs() < 1e-12);
        }
    }

    #[test]
    fn uneven_last_block() {
        let a = poisson_1d(7);
        let bj = BlockJacobi::new(&a, 3); // blocks 3, 3, 1
        let r = vec![1.0; 7];
        let z = bj.apply_alloc(&r);
        assert!(z.iter().all(|v| v.is_finite()));
        // Last block is the 1x1 [2.0] → z[6] = 0.5.
        assert!((z[6] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn apply_par_matches_apply_bitwise() {
        let a = spcg_sparse::generators::poisson::poisson_3d(12);
        let n = a.nrows();
        let bj = BlockJacobi::new(&a, 37); // uneven last block
        let r: Vec<f64> = (0..n).map(|i| ((i * 11 % 17) as f64) - 8.0).collect();
        let mut z_ref = vec![0.0; n];
        bj.apply(&r, &mut z_ref);
        for t in [1usize, 2, 4, 8] {
            let pk = ParKernels::new(t);
            let mut z = vec![1.0; n];
            bj.apply_par(&pk, &r, &mut z);
            assert_eq!(z, z_ref, "threads {t}");
        }
    }

    #[test]
    fn symmetric_operator() {
        let a = spcg_sparse::generators::poisson::poisson_2d(5);
        let bj = BlockJacobi::new(&a, 7);
        let x: Vec<f64> = (0..25).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        let y: Vec<f64> = (0..25).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let px = bj.apply_alloc(&x);
        let py = bj.apply_alloc(&y);
        let ip1: f64 = px.iter().zip(&y).map(|(a, b)| a * b).sum();
        let ip2: f64 = x.iter().zip(&py).map(|(a, b)| a * b).sum();
        assert!((ip1 - ip2).abs() < 1e-10 * ip1.abs().max(1.0));
    }
}
