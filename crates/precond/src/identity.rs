//! Identity preconditioner (`M = I`), turning PCG into plain CG.

use crate::spec::PrecondSpec;
use crate::traits::{DistForm, Preconditioner};

/// The identity operator.
#[derive(Debug, Clone)]
pub struct Identity {
    n: usize,
    /// Unit weights backing the [`DistForm::Pointwise`] view.
    ones: Vec<f64>,
}

impl Identity {
    /// Identity of dimension `n`.
    pub fn new(n: usize) -> Self {
        Identity {
            n,
            ones: vec![1.0; n],
        }
    }
}

impl Preconditioner for Identity {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "Identity::apply: input length mismatch");
        assert_eq!(z.len(), self.n, "Identity::apply: output length mismatch");
        z.copy_from_slice(r);
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn flops_per_apply(&self) -> u64 {
        0
    }

    fn name(&self) -> String {
        "identity".to_string()
    }

    fn dist_form(&self) -> DistForm<'_> {
        DistForm::Pointwise(&self.ones)
    }

    fn spec(&self) -> Option<PrecondSpec> {
        Some(PrecondSpec::Identity { n: self.n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_input() {
        let p = Identity::new(3);
        let mut z = vec![0.0; 3];
        p.apply(&[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
        assert_eq!(p.flops_per_apply(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        let p = Identity::new(3);
        let mut z = vec![0.0; 2];
        p.apply(&[1.0, 2.0, 3.0], &mut z);
    }
}
