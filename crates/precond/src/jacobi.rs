//! Jacobi (diagonal) preconditioner: `M = diag(A)`.
//!
//! The cheapest communication-free preconditioner; used in the paper's
//! Table 3 (columns 6–9) and Figure 1.

use crate::spec::PrecondSpec;
use crate::traits::{DistForm, Preconditioner};
use spcg_sparse::{CsrMatrix, ParKernels};

/// `M⁻¹ = diag(A)⁻¹`.
#[derive(Debug, Clone)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Builds from the diagonal of `a`.
    ///
    /// # Panics
    /// Panics if any diagonal entry is zero or not strictly positive (the
    /// matrix is expected to be SPD, whose diagonal is positive).
    pub fn new(a: &CsrMatrix) -> Self {
        let diag = a.diagonal();
        let inv_diag: Vec<f64> = diag
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                assert!(
                    d > 0.0,
                    "Jacobi: non-positive diagonal entry {d} at row {i}"
                );
                1.0 / d
            })
            .collect();
        Jacobi { inv_diag }
    }

    /// Builds directly from an inverse-diagonal vector (for tests).
    pub fn from_inv_diagonal(inv_diag: Vec<f64>) -> Self {
        Jacobi { inv_diag }
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(
            r.len(),
            self.inv_diag.len(),
            "Jacobi::apply: input length mismatch"
        );
        assert_eq!(
            z.len(),
            self.inv_diag.len(),
            "Jacobi::apply: output length mismatch"
        );
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }

    fn apply_par(&self, pk: &ParKernels, r: &[f64], z: &mut [f64]) {
        assert_eq!(
            r.len(),
            self.inv_diag.len(),
            "Jacobi::apply: input length mismatch"
        );
        assert_eq!(
            z.len(),
            self.inv_diag.len(),
            "Jacobi::apply: output length mismatch"
        );
        pk.pointwise_mul(&self.inv_diag, r, z);
    }

    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn flops_per_apply(&self) -> u64 {
        self.inv_diag.len() as u64
    }

    fn name(&self) -> String {
        "jacobi".to_string()
    }

    fn dist_form(&self) -> DistForm<'_> {
        DistForm::Pointwise(&self.inv_diag)
    }

    fn spec(&self) -> Option<PrecondSpec> {
        Some(PrecondSpec::Jacobi {
            inv_diag: self.inv_diag.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson::poisson_1d;

    #[test]
    fn divides_by_diagonal() {
        let a = poisson_1d(4); // diagonal 2 everywhere
        let p = Jacobi::new(&a);
        let mut z = vec![0.0; 4];
        p.apply(&[2.0, 4.0, 6.0, 8.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.flops_per_apply(), 4);
    }

    #[test]
    fn exact_for_diagonal_matrix() {
        let a = CsrMatrix::from_diagonal(&[2.0, 5.0, 10.0]);
        let p = Jacobi::new(&a);
        // M⁻¹ A = I for diagonal A.
        let x = vec![1.0, -2.0, 0.5];
        let mut ax = vec![0.0; 3];
        a.spmv(&x, &mut ax);
        let z = p.apply_alloc(&ax);
        for (zi, xi) in z.iter().zip(&x) {
            assert!((zi - xi).abs() < 1e-15);
        }
    }

    #[test]
    fn apply_par_matches_apply_bitwise() {
        let a = spcg_sparse::generators::poisson::poisson_3d(14);
        let n = a.nrows();
        let p = Jacobi::new(&a);
        let r: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut z_ref = vec![0.0; n];
        p.apply(&r, &mut z_ref);
        for t in [1usize, 2, 4, 8] {
            let pk = ParKernels::new(t);
            let mut z = vec![1.0; n];
            p.apply_par(&pk, &r, &mut z);
            assert_eq!(z, z_ref, "threads {t}");
        }
    }

    #[test]
    #[should_panic(expected = "non-positive diagonal")]
    fn rejects_zero_diagonal() {
        let a = CsrMatrix::from_diagonal(&[1.0, 0.0]);
        Jacobi::new(&a);
    }
}
