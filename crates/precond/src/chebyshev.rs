//! Chebyshev polynomial preconditioner.
//!
//! `M⁻¹ = q_d(A)` where `q_d` is the degree-`d` polynomial produced by `d`
//! steps of Chebyshev iteration on `A z = r` (zero initial guess) for a
//! target interval `[λ_lo, λ_hi]` (Saad, *Iterative Methods for Sparse
//! Linear Systems*, Alg. 12.1). Being a fixed polynomial in the SPD matrix
//! `A`, `q_d(A)` is symmetric, and positive definite whenever the spectrum
//! of `A` lies inside the target interval — the setting the paper uses with
//! degree 3 (§5.1–5.3).
//!
//! Applying it costs `d` SpMVs and no communication, which is exactly why
//! the paper pairs it with s-step methods. Eigenvalue bounds come from a
//! few warm-up iterations (see `spcg-basis::ritz`) or Gershgorin circles;
//! like Trilinos/Ifpack2 the lower bound defaults to `λ_hi / ratio`.

use crate::spec::PrecondSpec;
use crate::traits::{DistForm, Preconditioner, SpmvPolyApply};
use spcg_sparse::blas::REDUCE_BLOCK;
use spcg_sparse::{CsrMatrix, ParKernels};
use std::sync::Arc;

/// Chebyshev polynomial preconditioner of a given degree.
pub struct ChebyshevPrecond {
    a: Arc<CsrMatrix>,
    degree: usize,
    lambda_lo: f64,
    lambda_hi: f64,
}

impl ChebyshevPrecond {
    /// Builds for the target interval `[lambda_lo, lambda_hi]`.
    ///
    /// # Panics
    /// Panics unless `0 < lambda_lo < lambda_hi` and `degree ≥ 1`.
    pub fn new(a: Arc<CsrMatrix>, degree: usize, lambda_lo: f64, lambda_hi: f64) -> Self {
        assert!(degree >= 1, "ChebyshevPrecond: degree must be at least 1");
        assert!(
            lambda_lo > 0.0 && lambda_lo < lambda_hi,
            "ChebyshevPrecond: need 0 < lambda_lo < lambda_hi (got {lambda_lo}, {lambda_hi})"
        );
        assert_eq!(
            a.nrows(),
            a.ncols(),
            "ChebyshevPrecond: matrix must be square"
        );
        ChebyshevPrecond {
            a,
            degree,
            lambda_lo,
            lambda_hi,
        }
    }

    /// Builds with bounds from Gershgorin circles: `λ_hi` is the (safe)
    /// Gershgorin upper bound boosted by 10%, `λ_lo = λ_hi / ratio`
    /// (Ifpack2's `eigRatio`, default 30).
    pub fn from_matrix(a: Arc<CsrMatrix>, degree: usize, ratio: f64) -> Self {
        assert!(ratio > 1.0, "ChebyshevPrecond: ratio must exceed 1");
        let (_, hi) = a.gershgorin_bounds();
        let hi = hi * 1.1;
        Self::new(a, degree, hi / ratio, hi)
    }

    /// The target interval.
    pub fn interval(&self) -> (f64, f64) {
        (self.lambda_lo, self.lambda_hi)
    }

    /// Polynomial degree (= SpMVs per application).
    pub fn degree(&self) -> usize {
        self.degree
    }
}

impl SpmvPolyApply for ChebyshevPrecond {
    fn apply_with_spmv(&self, r: &[f64], z: &mut [f64], spmv: &mut dyn FnMut(&[f64], &mut [f64])) {
        let n = r.len();
        assert_eq!(z.len(), n, "ChebyshevPrecond: output length mismatch");
        let theta = 0.5 * (self.lambda_hi + self.lambda_lo);
        let delta = 0.5 * (self.lambda_hi - self.lambda_lo);
        let sigma1 = theta / delta;
        // x1 = r/θ — the degree-0 iterate.
        let mut d: Vec<f64> = r.iter().map(|v| v / theta).collect();
        z.copy_from_slice(&d);
        let mut rho_prev = 1.0 / sigma1;
        let mut ax = vec![0.0; n];
        for _ in 0..self.degree {
            let rho = 1.0 / (2.0 * sigma1 - rho_prev);
            // res = r − A z (one SpMV).
            spmv(z, &mut ax);
            let c1 = rho * rho_prev;
            let c2 = 2.0 * rho / delta;
            for i in 0..n {
                d[i] = c1 * d[i] + c2 * (r[i] - ax[i]);
                z[i] += d[i];
            }
            rho_prev = rho;
        }
    }

    fn spmvs_per_apply(&self) -> usize {
        self.degree
    }
}

impl Preconditioner for ChebyshevPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.a.nrows();
        assert_eq!(r.len(), n, "ChebyshevPrecond::apply: input length mismatch");
        assert_eq!(
            z.len(),
            n,
            "ChebyshevPrecond::apply: output length mismatch"
        );
        self.apply_with_spmv(r, z, &mut |x, y| self.a.spmv(x, y));
    }

    fn apply_par(&self, pk: &ParKernels, r: &[f64], z: &mut [f64]) {
        let n = self.a.nrows();
        assert_eq!(r.len(), n, "ChebyshevPrecond::apply: input length mismatch");
        assert_eq!(
            z.len(),
            n,
            "ChebyshevPrecond::apply: output length mismatch"
        );
        let theta = 0.5 * (self.lambda_hi + self.lambda_lo);
        let delta = 0.5 * (self.lambda_hi - self.lambda_lo);
        let sigma1 = theta / delta;
        // Same recurrence as `apply_with_spmv`, with the SpMV and the
        // elementwise passes row-partitioned. Every entry is updated by the
        // same expression as the serial fused loop, so the split into two
        // chunked passes stays bitwise identical.
        let mut d = vec![0.0; n];
        pk.for_each_chunk_mut(&mut d, REDUCE_BLOCK, |_, lo, piece| {
            for (i, di) in piece.iter_mut().enumerate() {
                *di = r[lo + i] / theta;
            }
        });
        z.copy_from_slice(&d);
        let mut rho_prev = 1.0 / sigma1;
        let mut ax = vec![0.0; n];
        for _ in 0..self.degree {
            let rho = 1.0 / (2.0 * sigma1 - rho_prev);
            pk.spmv(&self.a, z, &mut ax);
            let c1 = rho * rho_prev;
            let c2 = 2.0 * rho / delta;
            {
                let (rr, aa) = (&r[..n], &ax[..n]);
                pk.for_each_chunk_mut(&mut d, REDUCE_BLOCK, |_, lo, piece| {
                    for (i, di) in piece.iter_mut().enumerate() {
                        let g = lo + i;
                        *di = c1 * *di + c2 * (rr[g] - aa[g]);
                    }
                });
            }
            {
                let dd = &d[..n];
                pk.for_each_chunk_mut(z, REDUCE_BLOCK, |_, lo, piece| {
                    for (i, zi) in piece.iter_mut().enumerate() {
                        *zi += dd[lo + i];
                    }
                });
            }
            rho_prev = rho;
        }
    }

    fn dim(&self) -> usize {
        self.a.nrows()
    }

    fn flops_per_apply(&self) -> u64 {
        let n = self.a.nrows() as u64;
        // Init: divide (n). Per degree: SpMV + 6n vector work.
        n + self.degree as u64 * (self.a.spmv_flops() + 6 * n)
    }

    fn name(&self) -> String {
        format!("chebyshev(deg={})", self.degree)
    }

    fn dist_form(&self) -> DistForm<'_> {
        DistForm::SpmvPolynomial(self)
    }

    fn spec(&self) -> Option<PrecondSpec> {
        Some(PrecondSpec::Chebyshev {
            degree: self.degree,
            lo: self.lambda_lo,
            hi: self.lambda_hi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_matrix(vals: &[f64]) -> Arc<CsrMatrix> {
        Arc::new(CsrMatrix::from_diagonal(vals))
    }

    #[test]
    fn approximates_inverse_on_interval() {
        // Diagonal spectrum inside [1, 2] with exact bounds: degree 5 gives
        // a relative error ≤ 1/T_5(3) ≈ 3e-4.
        let ev: Vec<f64> = (0..20).map(|i| 1.0 + i as f64 / 19.0).collect();
        let a = diag_matrix(&ev);
        let p = ChebyshevPrecond::new(Arc::clone(&a), 5, 1.0, 2.0);
        let r = vec![1.0; 20];
        let z = p.apply_alloc(&r);
        for (zi, &li) in z.iter().zip(&ev) {
            let exact = 1.0 / li;
            assert!((zi - exact).abs() < 2e-3, "λ={li}: got {zi}, want {exact}");
        }
    }

    #[test]
    fn error_decreases_with_degree() {
        let ev: Vec<f64> = (0..50).map(|i| 0.5 + 1.5 * i as f64 / 49.0).collect();
        let a = diag_matrix(&ev);
        let r = vec![1.0; 50];
        let mut last = f64::INFINITY;
        for deg in [1usize, 2, 4, 8] {
            let p = ChebyshevPrecond::new(Arc::clone(&a), deg, 0.5, 2.0);
            let z = p.apply_alloc(&r);
            let err: f64 = z
                .iter()
                .zip(&ev)
                .map(|(zi, &li)| (zi - 1.0 / li).abs())
                .fold(0.0, f64::max);
            assert!(err < last, "degree {deg} did not improve: {err} vs {last}");
            last = err;
        }
        // Asymptotic factor ρ = σ−√(σ²−1) = 1/3 on this interval: deg 8
        // leaves ≈ 2·ρ⁸/λmin ≈ 1.2e-3.
        assert!(last < 5e-3);
    }

    #[test]
    fn is_linear_and_symmetric() {
        // q(A) must be a linear operator and symmetric; test on a
        // non-diagonal SPD matrix by checking ⟨q(A)x, y⟩ = ⟨x, q(A)y⟩.
        let a = Arc::new(spcg_sparse::generators::poisson::poisson_2d(6));
        let p = ChebyshevPrecond::from_matrix(Arc::clone(&a), 3, 30.0);
        let n = 36;
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let px = p.apply_alloc(&x);
        let py = p.apply_alloc(&y);
        let ip1: f64 = px.iter().zip(&y).map(|(a, b)| a * b).sum();
        let ip2: f64 = x.iter().zip(&py).map(|(a, b)| a * b).sum();
        assert!((ip1 - ip2).abs() < 1e-10 * ip1.abs().max(1.0));
        // Linearity: q(A)(x + 2y) = q(A)x + 2 q(A)y.
        let xy: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + 2.0 * b).collect();
        let pxy = p.apply_alloc(&xy);
        for i in 0..n {
            assert!((pxy[i] - (px[i] + 2.0 * py[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn positive_definite_on_interval() {
        // For a diagonal matrix with spectrum inside the interval, q(λ) > 0.
        let ev: Vec<f64> = (0..30).map(|i| 1.0 + 9.0 * i as f64 / 29.0).collect();
        let a = diag_matrix(&ev);
        let p = ChebyshevPrecond::new(Arc::clone(&a), 3, 1.0, 10.0);
        // q(λ_i) is the i-th entry of q(A) e_i.
        for i in 0..30 {
            let mut e = vec![0.0; 30];
            e[i] = 1.0;
            let q = p.apply_alloc(&e);
            assert!(q[i] > 0.0, "q(λ)≤0 at λ={}", ev[i]);
        }
    }

    #[test]
    fn apply_par_matches_apply_bitwise() {
        let a = Arc::new(spcg_sparse::generators::poisson::poisson_3d(12));
        let n = a.nrows();
        let p = ChebyshevPrecond::from_matrix(Arc::clone(&a), 3, 30.0);
        let r: Vec<f64> = (0..n).map(|i| ((i * 13 % 19) as f64) - 9.0).collect();
        let mut z_ref = vec![0.0; n];
        p.apply(&r, &mut z_ref);
        for t in [1usize, 2, 4, 8] {
            let pk = ParKernels::new(t);
            let mut z = vec![1.0; n];
            p.apply_par(&pk, &r, &mut z);
            assert_eq!(z, z_ref, "threads {t}");
        }
    }

    #[test]
    fn flops_scale_with_degree() {
        let a = diag_matrix(&[1.0, 2.0]);
        let p1 = ChebyshevPrecond::new(Arc::clone(&a), 1, 0.5, 3.0);
        let p4 = ChebyshevPrecond::new(Arc::clone(&a), 4, 0.5, 3.0);
        assert!(p4.flops_per_apply() > 3 * p1.flops_per_apply());
    }

    #[test]
    #[should_panic(expected = "need 0 < lambda_lo")]
    fn rejects_bad_interval() {
        let a = diag_matrix(&[1.0]);
        ChebyshevPrecond::new(a, 3, 2.0, 1.0);
    }
}
