//! The solve service: fingerprint-keyed setup cache + batch admission.
//!
//! [`SolveService`] is the resident front door for repeated solves. Each
//! submission is fingerprinted ([`crate::fingerprint()`]); the first
//! submission under a fingerprint builds a [`SolverHandle`] (the expensive
//! setup), every later one reuses it — an LRU of configurable capacity
//! holds the resident handles.
//!
//! Concurrent submissions that share a fingerprint are **coalesced**: the
//! first submitting thread becomes the fingerprint's *leader*, drains the
//! pending queue (up to [`ServiceConfig::max_batch`] requests), and runs
//! one blocked multi-RHS solve for the whole batch; the other threads
//! park until their column's result is published. Requests that arrive
//! while a batch is in flight are picked up by the leader's next drain,
//! so a hot operator under concurrent load naturally runs wide batches —
//! one matrix stream per iteration serving every queued right-hand side.
//! Admission never changes results: column `j` of any batch is bitwise
//! identical to a standalone solve of that right-hand side (see
//! [`spcg_solvers::batch`]).

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::handle::{SolveSpec, SolverHandle};
use spcg_obs::Phase;
use spcg_solvers::{BatchRequest, SolveResult};
use spcg_sparse::CsrMatrix;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Largest batch one admission drain hands to the blocked solver.
    pub max_batch: usize,
    /// Resident [`SolverHandle`]s kept; least-recently-used is evicted.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_batch: 16,
            cache_capacity: 8,
        }
    }
}

/// Monotonic service counters (snapshot via [`SolveService::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions answered by a resident handle.
    pub hits: u64,
    /// Submissions that had to build a handle.
    pub misses: u64,
    /// Handles evicted by the LRU.
    pub evictions: u64,
    /// Requests admitted (every submission, plus every column of a
    /// [`SolveService::submit_batch`]).
    pub requests: u64,
    /// Blocked solves dispatched.
    pub batches: u64,
    /// Requests that rode along in a batch behind another request
    /// (batch width minus one, summed).
    pub coalesced: u64,
}

/// One parked submission's result slot.
struct Waiter {
    slot: Mutex<Option<SolveResult>>,
    cv: Condvar,
}

/// A queued right-hand side awaiting admission.
struct QueuedRequest {
    b: Vec<f64>,
    deadline: Option<Instant>,
    waiter: Arc<Waiter>,
}

/// Per-fingerprint admission queue.
#[derive(Default)]
struct AdmissionQueue {
    pending: VecDeque<QueuedRequest>,
    /// A thread is currently draining this queue.
    has_leader: bool,
}

struct State {
    /// MRU-ordered resident handles.
    handles: Vec<(u64, Arc<SolverHandle>)>,
    queues: HashMap<u64, AdmissionQueue>,
    stats: ServiceStats,
}

/// The resident solve service. Cheap to share: all state sits behind one
/// internal lock; solves themselves run outside it.
pub struct SolveService {
    cfg: ServiceConfig,
    state: Mutex<State>,
}

impl Default for SolveService {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl SolveService {
    /// An empty service.
    pub fn new(cfg: ServiceConfig) -> Self {
        assert!(cfg.max_batch >= 1, "SolveService: max_batch must be ≥ 1");
        assert!(
            cfg.cache_capacity >= 1,
            "SolveService: cache_capacity must be ≥ 1"
        );
        SolveService {
            cfg,
            state: Mutex::new(State {
                handles: Vec::new(),
                queues: HashMap::new(),
                stats: ServiceStats::default(),
            }),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.state.lock().unwrap().stats
    }

    /// The resident handle for `(a, spec)`, building it on first use.
    /// Records a cache hit or miss and refreshes the LRU position.
    pub fn handle_for(&self, a: &Arc<CsrMatrix>, spec: &SolveSpec) -> Arc<SolverHandle> {
        let fp = fingerprint(a, spec);
        self.handle_for_fp(a, spec, fp)
    }

    fn handle_for_fp(
        &self,
        a: &Arc<CsrMatrix>,
        spec: &SolveSpec,
        fp: Fingerprint,
    ) -> Arc<SolverHandle> {
        let mut st = self.state.lock().unwrap();
        if let Some(pos) = st.handles.iter().position(|(k, _)| *k == fp.0) {
            st.stats.hits += 1;
            let entry = st.handles.remove(pos);
            st.handles.insert(0, entry);
            return Arc::clone(&st.handles[0].1);
        }
        // Build under the lock: simple, and it guarantees concurrent
        // submissions of a new fingerprint build exactly once. Setup is
        // bounded (factorization + warm-up), solves happen outside.
        st.stats.misses += 1;
        let handle = Arc::new(SolverHandle::build(Arc::clone(a), spec.clone()));
        st.handles.insert(0, (fp.0, Arc::clone(&handle)));
        while st.handles.len() > self.cfg.cache_capacity {
            st.handles.pop();
            st.stats.evictions += 1;
        }
        handle
    }

    /// Solves one right-hand side, coalescing with concurrent submissions
    /// that share the fingerprint. Blocks until the result is ready (or
    /// the deadline freezes the request — see
    /// [`spcg_solvers::Outcome::DeadlineExpired`]).
    pub fn submit(
        &self,
        a: &Arc<CsrMatrix>,
        spec: &SolveSpec,
        b: &[f64],
        deadline: Option<Instant>,
    ) -> SolveResult {
        let fp = fingerprint(a, spec);
        let handle = self.handle_for_fp(a, spec, fp);
        let waiter = Arc::new(Waiter {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        let lead = {
            let mut st = self.state.lock().unwrap();
            st.stats.requests += 1;
            let q = st.queues.entry(fp.0).or_default();
            q.pending.push_back(QueuedRequest {
                b: b.to_vec(),
                deadline,
                waiter: Arc::clone(&waiter),
            });
            if q.has_leader {
                false
            } else {
                q.has_leader = true;
                true
            }
        };
        if lead {
            self.drain(fp, &handle);
        }
        let mut slot = waiter.slot.lock().unwrap();
        while slot.is_none() {
            slot = waiter.cv.wait(slot).unwrap();
        }
        slot.take().expect("waiter woken with a result")
    }

    /// Solves a caller-assembled batch directly against the cached handle —
    /// the service's synchronous wide entry point (the admission queue is
    /// for *concurrent* callers). Returns one result per right-hand side,
    /// in order.
    pub fn submit_batch(
        &self,
        a: &Arc<CsrMatrix>,
        spec: &SolveSpec,
        rhs: &[&[f64]],
        deadline: Option<Instant>,
    ) -> Vec<SolveResult> {
        let handle = self.handle_for(a, spec);
        {
            let mut st = self.state.lock().unwrap();
            st.stats.requests += rhs.len() as u64;
            if !rhs.is_empty() {
                st.stats.batches += 1;
                st.stats.coalesced += rhs.len() as u64 - 1;
            }
        }
        let requests: Vec<BatchRequest<'_>> =
            rhs.iter().map(|b| BatchRequest { b, deadline }).collect();
        handle.solve_batch(&requests)
    }

    /// Leader loop: repeatedly drain the fingerprint's queue into blocked
    /// solves until it runs dry, then resign leadership.
    fn drain(&self, fp: Fingerprint, handle: &Arc<SolverHandle>) {
        let tracer = handle.spec().opts.trace.clone();
        loop {
            let batch: Vec<QueuedRequest> = {
                // The admission decision itself: everything queued now
                // (capped) becomes one blocked solve.
                let track = tracer.as_ref().map(|t| t.track(0));
                let _g = spcg_obs::span(track.as_ref(), Phase::BatchAdmit);
                let mut st = self.state.lock().unwrap();
                let q = st.queues.get_mut(&fp.0).expect("leader owns a live queue");
                let take = q.pending.len().min(self.cfg.max_batch);
                let batch: Vec<QueuedRequest> = q.pending.drain(..take).collect();
                if batch.is_empty() {
                    q.has_leader = false;
                    st.queues.remove(&fp.0);
                    return;
                }
                st.stats.batches += 1;
                st.stats.coalesced += batch.len() as u64 - 1;
                batch
            };
            let requests: Vec<BatchRequest<'_>> = batch
                .iter()
                .map(|r| BatchRequest {
                    b: &r.b,
                    deadline: r.deadline,
                })
                .collect();
            let results = handle.solve_batch(&requests);
            for (req, res) in batch.into_iter().zip(results) {
                *req.waiter.slot.lock().unwrap() = Some(res);
                req.waiter.cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::{Jacobi, Preconditioner};
    use spcg_solvers::Method;
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::poisson_2d;

    fn setup() -> (Arc<CsrMatrix>, SolveSpec, Vec<f64>) {
        let a = Arc::new(poisson_2d(12));
        let spec = SolveSpec::new(Method::Pcg, Jacobi::new(&a).spec().unwrap());
        let b = paper_rhs(&a);
        (a, spec, b)
    }

    #[test]
    fn second_submission_hits_the_cache() {
        let (a, spec, b) = setup();
        let svc = SolveService::default();
        let r1 = svc.submit(&a, &spec, &b, None);
        let r2 = svc.submit(&a, &spec, &b, None);
        assert!(r1.converged() && r2.converged());
        assert_eq!(r1.x, r2.x, "same request must reproduce bitwise");
        let stats = svc.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn different_options_are_different_cache_entries() {
        let (a, spec, b) = setup();
        let svc = SolveService::default();
        svc.submit(&a, &spec, &b, None);
        let mut tighter = spec.clone();
        tighter.opts.tol = 1e-12;
        svc.submit(&a, &tighter, &b, None);
        assert_eq!(svc.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_beyond_capacity() {
        let (a, spec, b) = setup();
        let svc = SolveService::new(ServiceConfig {
            max_batch: 16,
            cache_capacity: 2,
        });
        for tol in [1e-6, 1e-7, 1e-8] {
            let mut s = spec.clone();
            s.opts.tol = tol;
            svc.submit(&a, &s, &b, None);
        }
        let stats = svc.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 1);
        // Oldest (1e-6) was evicted; resubmitting misses again.
        let mut s = spec.clone();
        s.opts.tol = 1e-6;
        svc.submit(&a, &s, &b, None);
        assert_eq!(svc.stats().misses, 4);
    }

    #[test]
    fn concurrent_submissions_all_get_their_own_bitwise_result() {
        let (a, spec, _) = setup();
        let svc = Arc::new(SolveService::default());
        let rhs: Vec<Vec<f64>> = (0..8)
            .map(|j| {
                paper_rhs(&a)
                    .into_iter()
                    .map(|v| v * (1.0 + j as f64))
                    .collect()
            })
            .collect();
        let mut expected = Vec::new();
        for b in &rhs {
            expected.push(svc.submit(&a, &spec, b, None));
        }
        let got: Vec<SolveResult> = std::thread::scope(|scope| {
            let joins: Vec<_> = rhs
                .iter()
                .map(|b| {
                    let svc = Arc::clone(&svc);
                    let a = Arc::clone(&a);
                    let spec = spec.clone();
                    scope.spawn(move || svc.submit(&a, &spec, b, None))
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for (j, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g.x, e.x, "request {j} not bitwise reproducible");
            assert_eq!(g.counters, e.counters, "request {j} counters");
        }
        let stats = svc.stats();
        assert_eq!(stats.requests, 16);
        assert_eq!(stats.misses, 1, "one operator, one build");
    }

    #[test]
    fn submit_batch_returns_per_rhs_results_in_order() {
        let (a, spec, b) = setup();
        let svc = SolveService::default();
        let b2: Vec<f64> = b.iter().map(|v| v * 2.0).collect();
        let out = svc.submit_batch(&a, &spec, &[&b, &b2], None);
        assert_eq!(out.len(), 2);
        assert!(out[0].converged() && out[1].converged());
        let stats = svc.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.coalesced, 1);
    }
}
