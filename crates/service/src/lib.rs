//! Resident batched solve service.
//!
//! Production solvers rarely face one right-hand side against a fresh
//! matrix: the same operator is solved against many right-hand sides —
//! time steps, load cases, columns of a block system — often concurrently.
//! This crate turns the workspace's solvers into a *service* shaped for
//! that workload:
//!
//! * [`fingerprint()`] — content hashes over matrix structure + values +
//!   preconditioner recipe + method/options, keying everything below;
//! * [`SolverHandle`] — one operator's cached setup: preconditioner
//!   factorization, SELL conversion, warmed schedules, and the optional
//!   one-time Ritz pass that retunes Chebyshev/Newton bases;
//! * [`SolveService`] — the resident front door: an LRU of handles plus a
//!   batch admission queue coalescing concurrent same-fingerprint
//!   submissions into blocked multi-RHS solves
//!   ([`spcg_solvers::solve_batch`]).
//!
//! The performance story is amortization twice over: setup is paid once
//! per operator instead of once per solve, and a width-k batch streams the
//! matrix once per iteration instead of k times. The correctness story is
//! unchanged from the rest of the workspace: every column of every batch
//! is **bitwise identical** to the standalone solve of that right-hand
//! side, so putting the service in front of a solver changes throughput
//! and nothing else.
//!
//! ```
//! use spcg_precond::{Jacobi, Preconditioner};
//! use spcg_service::{SolveService, SolveSpec};
//! use spcg_solvers::Method;
//! use spcg_sparse::generators::{paper_rhs, poisson::poisson_2d};
//! use std::sync::Arc;
//!
//! let a = Arc::new(poisson_2d(16));
//! let spec = SolveSpec::new(Method::Pcg, Jacobi::new(&a).spec().unwrap());
//! let service = SolveService::default();
//!
//! let b = paper_rhs(&a);
//! let first = service.submit(&a, &spec, &b, None);   // builds the handle
//! let second = service.submit(&a, &spec, &b, None);  // cache hit
//! assert!(first.converged() && second.converged());
//! assert_eq!(first.x, second.x);
//! assert_eq!(service.stats().misses, 1);
//! assert_eq!(service.stats().hits, 1);
//! ```

pub mod fingerprint;
pub mod handle;
pub mod service;

pub use fingerprint::{fingerprint, Fingerprint};
pub use handle::{SetupCost, SolveSpec, SolverHandle};
pub use service::{ServiceConfig, ServiceStats, SolveService};
