//! Resident solver handles: every expensive setup artifact, built once.
//!
//! A [`SolverHandle`] is the cached value behind one [`Fingerprint`]: the
//! preconditioner factorization (IC(0)/block-Jacobi inversion/Chebyshev
//! interval), the SELL-C-σ conversion and warmed row schedule for the
//! configured format and thread count, and — when [`SolveSpec::tune_basis`]
//! is set — the one-time Ritz warm-up pass whose spectrum estimate retunes
//! the method's Chebyshev interval or Newton shifts. Once built, a handle
//! answers any number of solves against the same operator without paying
//! any of that again, and serves batches through the blocked multi-RHS
//! driver ([`spcg_solvers::solve_batch`]).

use crate::fingerprint::{fingerprint, Fingerprint};
use spcg_basis::leja::newton_shifts;
use spcg_basis::ritz::{estimate_spectrum, SpectrumEstimate};
use spcg_basis::BasisType;
use spcg_precond::{PrecondSpec, Preconditioner};
use spcg_solvers::setup::{DEFAULT_MARGIN, DEFAULT_WARMUP_ITERS};
use spcg_solvers::{solve_batch, BatchRequest, Engine, Method, SolveOptions, SolveResult};
use spcg_sparse::{CsrMatrix, SparseFormat};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything that determines a solve besides the right-hand side.
///
/// The preconditioner travels as its [`PrecondSpec`] recipe rather than a
/// built operator: the *service* owns the (cached) factorization, which is
/// the point — and a recipe is hashable and buildable bitwise
/// deterministically, so equal specs yield interchangeable handles.
#[derive(Debug, Clone)]
pub struct SolveSpec {
    /// Solver selection (with its s-step basis, where applicable).
    pub method: Method,
    /// Preconditioner recipe, rebuilt (once) against the operator.
    pub precond: PrecondSpec,
    /// Solve options; see [`crate::fingerprint()`] for which fields key the
    /// cache.
    pub opts: SolveOptions,
    /// Execution engine.
    pub engine: Engine,
    /// Run a one-time Ritz warm-up at handle build and retune the method's
    /// Chebyshev interval / Newton shifts from the estimated spectrum.
    /// Ignored by methods without a tunable basis (the estimate is still
    /// computed and cached on the handle).
    pub tune_basis: bool,
}

impl SolveSpec {
    /// A spec with default options, serial engine, no basis tuning.
    pub fn new(method: Method, precond: PrecondSpec) -> Self {
        SolveSpec {
            method,
            precond,
            opts: SolveOptions::default(),
            engine: Engine::Serial,
            tune_basis: false,
        }
    }

    /// Replaces the options.
    pub fn with_opts(mut self, opts: SolveOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Replaces the engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Enables the build-time Ritz warm-up and basis retuning.
    pub fn with_tuned_basis(mut self) -> Self {
        self.tune_basis = true;
        self
    }
}

/// Wall-clock cost of one handle build, broken down by artifact.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetupCost {
    /// Whole build.
    pub total: Duration,
    /// Preconditioner construction from its recipe.
    pub precond: Duration,
    /// Format warm-up (SELL conversion, row schedule).
    pub format: Duration,
    /// Ritz warm-up pass (zero unless [`SolveSpec::tune_basis`]).
    pub warmup: Duration,
}

/// One operator's resident solver state. See the module docs.
pub struct SolverHandle {
    fp: Fingerprint,
    a: Arc<CsrMatrix>,
    m: Box<dyn Preconditioner>,
    /// The spec's method, with its basis retuned when requested.
    method: Method,
    spec: SolveSpec,
    spectrum: Option<SpectrumEstimate>,
    cost: SetupCost,
}

impl SolverHandle {
    /// Builds every cached artifact for `a` under `spec`. This is the
    /// expensive, once-per-fingerprint path; everything it computes is
    /// deterministic, so two builds from equal inputs are interchangeable
    /// bitwise.
    pub fn build(a: Arc<CsrMatrix>, spec: SolveSpec) -> SolverHandle {
        let fp = fingerprint(&a, &spec);
        let t0 = Instant::now();

        // Format warm-up: the SELL conversion and the nnz-balanced row
        // schedule are cached on the matrix; forcing them here moves their
        // cost out of the first solve.
        let tf = Instant::now();
        if spec.opts.format == SparseFormat::Sell {
            let _ = a.sell();
        }
        let _ = a.row_schedule(spec.opts.threads.max(1));
        let format = tf.elapsed();

        let tp = Instant::now();
        let m = spec.precond.build(&a);
        let precond = tp.elapsed();

        let tw = Instant::now();
        let spectrum = spec.tune_basis.then(|| {
            let b = spcg_sparse::generators::paper_rhs(&a);
            estimate_spectrum(&a, m.as_ref(), &b, DEFAULT_WARMUP_ITERS)
        });
        let warmup = tw.elapsed();

        let method = match &spectrum {
            Some(est) => retune_method(&spec.method, est),
            None => spec.method.clone(),
        };

        SolverHandle {
            fp,
            a,
            m,
            method,
            spec,
            spectrum,
            cost: SetupCost {
                total: t0.elapsed(),
                precond,
                format,
                warmup,
            },
        }
    }

    /// The fingerprint this handle was built for.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    /// The operator.
    pub fn matrix(&self) -> &Arc<CsrMatrix> {
        &self.a
    }

    /// The built preconditioner.
    pub fn preconditioner(&self) -> &dyn Preconditioner {
        self.m.as_ref()
    }

    /// The method actually dispatched (basis retuned when the spec asked).
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The spec the handle was built from.
    pub fn spec(&self) -> &SolveSpec {
        &self.spec
    }

    /// The cached Ritz estimate (present iff [`SolveSpec::tune_basis`]).
    pub fn spectrum(&self) -> Option<&SpectrumEstimate> {
        self.spectrum.as_ref()
    }

    /// What the build cost, by artifact.
    pub fn setup_cost(&self) -> SetupCost {
        self.cost
    }

    /// Solves one batch of right-hand sides against the cached setup.
    /// Column `j` is bitwise identical to a standalone
    /// `solve(method, …, b_j)` with this handle's configuration (see
    /// [`spcg_solvers::batch`]).
    pub fn solve_batch(&self, requests: &[BatchRequest<'_>]) -> Vec<SolveResult> {
        solve_batch(
            &self.method,
            &self.a,
            self.m.as_ref(),
            requests,
            &self.spec.opts,
            self.spec.engine,
        )
    }

    /// Single-RHS convenience over [`SolverHandle::solve_batch`].
    pub fn solve_one(&self, b: &[f64]) -> SolveResult {
        self.solve_batch(&[BatchRequest::new(b)])
            .pop()
            .expect("solve_batch returns one result per request")
    }

    /// The options handed to every solve.
    pub fn opts(&self) -> &SolveOptions {
        &self.spec.opts
    }
}

/// Retunes a method's basis from a cached spectrum estimate: Chebyshev
/// intervals move to the (widened) Ritz interval, Newton shifts become
/// Leja-ordered Ritz values. Monomial bases and non-s-step methods pass
/// through unchanged.
fn retune_method(method: &Method, est: &SpectrumEstimate) -> Method {
    let retune = |basis: &BasisType, s: usize| match basis {
        BasisType::Monomial => BasisType::Monomial,
        BasisType::Newton { .. } => BasisType::Newton {
            shifts: newton_shifts(&est.ritz, s),
        },
        BasisType::Chebyshev { .. } => {
            let (lo, hi) = est.chebyshev_interval(DEFAULT_MARGIN);
            BasisType::Chebyshev {
                lambda_min: lo,
                lambda_max: hi,
            }
        }
    };
    match method {
        Method::SPcg { s, basis } => Method::SPcg {
            s: *s,
            basis: retune(basis, *s),
        },
        Method::CaPcg { s, basis } => Method::CaPcg {
            s: *s,
            basis: retune(basis, *s),
        },
        Method::CaPcg3 { s, basis } => Method::CaPcg3 {
            s: *s,
            basis: retune(basis, *s),
        },
        Method::AdaptiveCaPcg { s, basis } => Method::AdaptiveCaPcg {
            s: *s,
            basis: retune(basis, *s),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::Jacobi;
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::poisson_2d;

    #[test]
    fn handle_solve_matches_direct_solve_bitwise() {
        let a = Arc::new(poisson_2d(12));
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let spec = SolveSpec::new(Method::Pcg, m.spec().unwrap());
        let handle = SolverHandle::build(Arc::clone(&a), spec.clone());
        let res = handle.solve_one(&b);
        let direct = spcg_solvers::solve(
            &Method::Pcg,
            &spcg_solvers::Problem::new(&a, &m, &b),
            &spec.opts,
            Engine::Serial,
        );
        assert_eq!(res.x, direct.x);
        assert_eq!(res.counters, direct.counters);
    }

    #[test]
    fn tuned_basis_replaces_chebyshev_interval() {
        let a = Arc::new(poisson_2d(10));
        let m = Jacobi::new(&a);
        let spec = SolveSpec::new(
            Method::SPcg {
                s: 4,
                basis: BasisType::Chebyshev {
                    lambda_min: 0.5,
                    lambda_max: 0.6,
                },
            },
            m.spec().unwrap(),
        )
        .with_tuned_basis();
        let handle = SolverHandle::build(Arc::clone(&a), spec);
        assert!(handle.spectrum().is_some());
        match handle.method() {
            Method::SPcg {
                basis:
                    BasisType::Chebyshev {
                        lambda_min,
                        lambda_max,
                    },
                ..
            } => {
                assert!(*lambda_min > 0.0 && *lambda_max > *lambda_min);
                assert_ne!((*lambda_min, *lambda_max), (0.5, 0.6));
            }
            other => panic!("unexpected method {other:?}"),
        }
        // And the tuned method converges.
        let b = paper_rhs(&a);
        let res = handle.solve_one(&b);
        assert!(res.converged(), "{:?}", res.outcome);
    }

    #[test]
    fn setup_cost_is_recorded() {
        let a = Arc::new(poisson_2d(8));
        let spec = SolveSpec::new(Method::Pcg, PrecondSpec::Ic0);
        let handle = SolverHandle::build(a, spec);
        assert!(handle.setup_cost().total >= handle.setup_cost().precond);
    }
}
