//! Operator fingerprints: content hashes keying the setup cache.
//!
//! A [`Fingerprint`] identifies everything that determines a solve's
//! cached setup artifacts: the matrix (structure *and* values), the
//! preconditioner recipe, the method (including its s-step basis), the
//! engine, and every deterministic [`SolveOptions`] field. Two submissions
//! hash equal exactly when a [`crate::SolverHandle`] built for one is
//! valid — and bitwise-reproducing — for the other.
//!
//! The hash is a 64-bit FNV-1a folded over native words (one multiply per
//! `f64`/`usize`, not per byte), so fingerprinting costs a single streaming
//! pass over the matrix — the whole cache-hit setup path. Observational
//! options are deliberately **excluded**: tracing ([`SolveOptions::trace`])
//! never changes results, and a fault plan only matters to ranked solves
//! that arm it, where it perturbs timing rather than cached setup.
//!
//! [`SolveOptions`]: spcg_solvers::SolveOptions
//! [`SolveOptions::trace`]: spcg_solvers::SolveOptions

use crate::handle::SolveSpec;
use spcg_basis::BasisType;
use spcg_precond::PrecondSpec;
use spcg_solvers::{Engine, Method, StoppingCriterion};
use spcg_sparse::{CsrMatrix, SparseFormat};
use std::fmt;

/// A 64-bit content hash naming one operator + solve configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Word-folding FNV-1a. Not cryptographic — the cache tolerates the
/// astronomically unlikely collision the same way a hash map would not:
/// it doesn't; a collision would alias two configurations. At 64 bits
/// over a handful of resident operators that risk is acceptable for a
/// performance cache.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn word(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    fn usize(&mut self, v: usize) {
        self.word(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    fn usizes(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    fn bool(&mut self, v: bool) {
        self.word(v as u64);
    }
}

/// Hashes the matrix and the full solve spec into one cache key.
pub fn fingerprint(a: &CsrMatrix, spec: &SolveSpec) -> Fingerprint {
    let mut h = Fnv::new();
    hash_matrix(&mut h, a);
    hash_precond(&mut h, &spec.precond);
    hash_method(&mut h, &spec.method);
    match spec.engine {
        Engine::Serial => h.word(0),
        Engine::Ranked { ranks } => {
            h.word(1);
            h.usize(ranks);
        }
    }
    let o = &spec.opts;
    h.f64(o.tol);
    h.usize(o.max_iters);
    h.word(match o.criterion {
        StoppingCriterion::TrueResidual2Norm => 0,
        StoppingCriterion::RecursiveResidual2Norm => 1,
        StoppingCriterion::PrecondMNorm => 2,
    });
    h.f64(o.divergence_factor);
    h.usize(o.stall_checks);
    h.bool(o.keep_history);
    match o.residual_replacement {
        None => h.word(0),
        Some(f) => {
            h.word(1);
            h.f64(f);
        }
    }
    // Execution-shape options: they never change results (bitwise
    // determinism), but they do change which artifacts a handle warms
    // (SELL form, schedule width), so they key the cache too.
    h.usize(o.threads);
    h.bool(o.overlap);
    h.word(match o.format {
        SparseFormat::Csr => 0,
        SparseFormat::Sell => 1,
    });
    h.word(match o.backend {
        spcg_dist::Backend::Thread => 0,
        spcg_dist::Backend::Proc => 1,
    });
    match &o.resilience {
        None => h.word(0),
        Some(r) => {
            h.word(1);
            h.usize(r.max_restarts);
            h.bool(r.shrink_s);
        }
    }
    h.usize(o.adaptive.s_min);
    h.usize(o.adaptive.s_max);
    h.f64(o.adaptive.cond_grow);
    h.f64(o.adaptive.cond_shrink);
    h.f64(o.adaptive.cond_reject);
    h.f64(o.adaptive.gap_tol);
    h.f64(o.adaptive.drift_tol);
    h.usize(o.adaptive.grow_patience);
    h.usize(o.adaptive.min_ritz);
    h.usize(o.adaptive.max_ritz);
    h.f64(o.adaptive.margin);
    h.bool(spec.tune_basis);
    Fingerprint(h.0)
}

fn hash_matrix(h: &mut Fnv, a: &CsrMatrix) {
    h.usize(a.nrows());
    h.usize(a.ncols());
    h.usizes(a.row_ptr());
    h.usizes(a.col_idx());
    h.f64s(a.values());
}

fn hash_precond(h: &mut Fnv, spec: &PrecondSpec) {
    match spec {
        PrecondSpec::Identity { n } => {
            h.word(0);
            h.usize(*n);
        }
        PrecondSpec::Jacobi { inv_diag } => {
            h.word(1);
            h.f64s(inv_diag);
        }
        PrecondSpec::BlockJacobi { block } => {
            h.word(2);
            h.usize(*block);
        }
        PrecondSpec::Chebyshev { degree, lo, hi } => {
            h.word(3);
            h.usize(*degree);
            h.f64(*lo);
            h.f64(*hi);
        }
        PrecondSpec::Ssor { omega } => {
            h.word(4);
            h.f64(*omega);
        }
        PrecondSpec::Ic0 => h.word(5),
    }
}

fn hash_method(h: &mut Fnv, method: &Method) {
    match method {
        Method::Pcg => h.word(0),
        Method::Pcg3 => h.word(1),
        Method::SPcg { s, basis } => {
            h.word(2);
            h.usize(*s);
            hash_basis(h, basis);
        }
        Method::SPcgMon { s } => {
            h.word(3);
            h.usize(*s);
        }
        Method::CaPcg { s, basis } => {
            h.word(4);
            h.usize(*s);
            hash_basis(h, basis);
        }
        Method::CaPcg3 { s, basis } => {
            h.word(5);
            h.usize(*s);
            hash_basis(h, basis);
        }
        Method::AdaptiveCaPcg { s, basis } => {
            h.word(6);
            h.usize(*s);
            hash_basis(h, basis);
        }
        Method::CaPcgGs { s, basis } => {
            h.word(7);
            h.usize(*s);
            hash_basis(h, basis);
        }
        Method::EkCg { t } => {
            h.word(8);
            h.usize(*t);
        }
    }
}

fn hash_basis(h: &mut Fnv, basis: &BasisType) {
    match basis {
        BasisType::Monomial => h.word(0),
        BasisType::Newton { shifts } => {
            h.word(1);
            h.f64s(shifts);
        }
        BasisType::Chebyshev {
            lambda_min,
            lambda_max,
        } => {
            h.word(2);
            h.f64(*lambda_min);
            h.f64(*lambda_max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::Jacobi;
    use spcg_precond::Preconditioner;
    use spcg_sparse::generators::poisson::poisson_2d;
    use spcg_sparse::CooMatrix;

    fn spec_for(a: &CsrMatrix) -> SolveSpec {
        SolveSpec::new(Method::Pcg, Jacobi::new(a).spec().unwrap())
    }

    #[test]
    fn equal_inputs_hash_equal() {
        let a = poisson_2d(9);
        let b = poisson_2d(9);
        assert_eq!(
            fingerprint(&a, &spec_for(&a)),
            fingerprint(&b, &spec_for(&b))
        );
    }

    #[test]
    fn any_value_change_changes_the_hash() {
        let a = poisson_2d(9);
        let spec = spec_for(&a);
        let base = fingerprint(&a, &spec);
        // Perturb one matrix entry by one ulp.
        let n = a.nrows();
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let v = if i == 0 && c == 0 {
                    f64::from_bits(v.to_bits() + 1)
                } else {
                    v
                };
                coo.push(i, c, v);
            }
        }
        let perturbed = coo.to_csr();
        assert_ne!(base, fingerprint(&perturbed, &spec));
    }

    #[test]
    fn spec_changes_change_the_hash() {
        let a = poisson_2d(9);
        let spec = spec_for(&a);
        let base = fingerprint(&a, &spec);

        let mut s2 = spec.clone();
        s2.opts.tol = 1e-10;
        assert_ne!(base, fingerprint(&a, &s2));

        let mut s3 = spec.clone();
        s3.precond = PrecondSpec::Ic0;
        assert_ne!(base, fingerprint(&a, &s3));

        let mut s4 = spec.clone();
        s4.method = Method::SPcgMon { s: 4 };
        assert_ne!(base, fingerprint(&a, &s4));

        let mut s5 = spec.clone();
        s5.engine = Engine::Ranked { ranks: 2 };
        assert_ne!(base, fingerprint(&a, &s5));

        // Toggle away from whatever the (env-derived) default format is,
        // so the test holds under SPCG_FORMAT overrides too.
        let mut s6 = spec.clone();
        s6.opts.format = match spec.opts.format {
            SparseFormat::Sell => SparseFormat::Csr,
            _ => SparseFormat::Sell,
        };
        assert_ne!(base, fingerprint(&a, &s6));
    }

    #[test]
    fn trace_does_not_change_the_hash() {
        let a = poisson_2d(9);
        let spec = spec_for(&a);
        let base = fingerprint(&a, &spec);
        let mut traced = spec.clone();
        traced.opts.trace = Some(spcg_obs::Tracer::new());
        assert_eq!(base, fingerprint(&a, &traced));
    }
}
