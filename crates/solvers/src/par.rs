//! Rank-parallel PCG and sPCG over the shared-memory communicator.
//!
//! These run the *actual distributed algorithm*: every rank owns a
//! contiguous row block (matrix and vectors), SpMV operands are exchanged
//! through a [`VectorBoard`] (the shared-memory analogue of a halo
//! exchange), and scalars/Gram matrices are combined with real
//! [`ThreadComm::allreduce_sum`] collectives. The point being demonstrated
//! — and asserted by the integration tests — is the paper's communication
//! structure: standard PCG synchronizes **2 times per iteration**, sPCG
//! **once per s iterations**, while both produce the same iterates as their
//! serial counterparts.
//!
//! The preconditioner is Jacobi (the paper's Figure-1 choice): its
//! application is rank-local by construction. The "Scalar Work" of sPCG is
//! replicated on every rank from the allreduced Gram blocks, exactly as a
//! production MPI implementation would do.

use crate::options::Outcome;
use spcg_basis::cob::b_small;
use spcg_basis::BasisType;
use spcg_dist::{executor::run_ranks, ThreadComm, VectorBoard};
use spcg_sparse::partition::BlockRowPartition;
use spcg_sparse::smallsolve::{solve_spd_mat_with_fallback, solve_spd_with_fallback};
use spcg_sparse::{blas, CsrMatrix, DenseMat};

/// Result of a rank-parallel solve.
#[derive(Debug, Clone)]
pub struct ParSolveResult {
    /// Assembled solution.
    pub x: Vec<f64>,
    /// How the solve ended.
    pub outcome: Outcome,
    /// Fine-grained iterations.
    pub iterations: usize,
    /// Global collectives each rank participated in.
    pub collectives_per_rank: u64,
}

impl ParSolveResult {
    /// True if the solve converged.
    pub fn converged(&self) -> bool {
        matches!(self.outcome, Outcome::Converged)
    }
}

struct RankOut {
    x_local: Vec<f64>,
    outcome: Outcome,
    iterations: usize,
    collectives: u64,
}

fn assemble(parts: Vec<RankOut>) -> ParSolveResult {
    let mut x = Vec::new();
    for p in &parts {
        x.extend_from_slice(&p.x_local);
    }
    let first = &parts[0];
    ParSolveResult {
        outcome: first.outcome.clone(),
        iterations: first.iterations,
        collectives_per_rank: first.collectives,
        x,
    }
}

/// Rank-parallel Jacobi-PCG with the recursive-residual 2-norm criterion.
///
/// # Panics
/// Panics on dimension mismatches or `nranks == 0`.
pub fn par_pcg(
    a: &CsrMatrix,
    b: &[f64],
    nranks: usize,
    tol: f64,
    max_iters: usize,
) -> ParSolveResult {
    let n = a.nrows();
    assert_eq!(b.len(), n, "par_pcg: rhs length mismatch");
    let part = BlockRowPartition::balanced(n, nranks);
    let offsets: Vec<usize> = (0..=nranks).map(|p| if p == 0 { 0 } else { part.range(p - 1).1 }).collect();
    let board = VectorBoard::new(offsets);
    let inv_diag: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();

    let parts = run_ranks(nranks, |comm: ThreadComm| {
        let rank = comm.rank();
        let (lo, hi) = part.range(rank);
        let ln = hi - lo;
        let board = board.handle();
        let mut collectives = 0u64;

        let mut x = vec![0.0; ln];
        let mut r = b[lo..hi].to_vec();
        let mut u: Vec<f64> = r.iter().zip(&inv_diag[lo..hi]).map(|(v, d)| v * d).collect();
        let mut p = u.clone();
        let mut s = vec![0.0; ln];

        let mut rtu = blas::dot(&r, &u);
        let mut rtr = blas::dot(&r, &r);
        {
            let mut buf = [rtu, rtr];
            comm.allreduce_sum(&mut buf);
            collectives += 1;
            rtu = buf[0];
            rtr = buf[1];
        }
        let rtr0 = rtr;

        let mut iterations = 0usize;
        let outcome = loop {
            if rtr <= tol * tol * rtr0 {
                break Outcome::Converged;
            }
            if iterations >= max_iters {
                break Outcome::MaxIterations;
            }
            if !rtr.is_finite() {
                break Outcome::Diverged;
            }
            // Halo exchange of the search direction, then the local SpMV.
            board.publish(&comm, &p);
            board.with_view(|p_full| a.spmv_rows(lo, hi, p_full, &mut s));
            let mut pts = blas::dot(&p, &s);
            pts = comm.allreduce_scalar(pts);
            collectives += 1;
            if !(pts > 0.0) {
                break if rtr <= tol * tol * rtr0 {
                    Outcome::Converged
                } else {
                    Outcome::Breakdown(format!("pᵀAp = {pts}"))
                };
            }
            let alpha = rtu / pts;
            blas::axpy(alpha, &p, &mut x);
            blas::axpy(-alpha, &s, &mut r);
            for i in 0..ln {
                u[i] = r[i] * inv_diag[lo + i];
            }
            let mut buf = [blas::dot(&r, &u), blas::dot(&r, &r)];
            comm.allreduce_sum(&mut buf);
            collectives += 1;
            let (rtu_new, rtr_new) = (buf[0], buf[1]);
            let beta = rtu_new / rtu;
            rtu = rtu_new;
            rtr = rtr_new;
            blas::xpby(&u, beta, &mut p);
            iterations += 1;
        };
        RankOut { x_local: x, outcome, iterations, collectives }
    });
    assemble(parts)
}

/// Rank-parallel Jacobi-sPCG (Alg. 5) with the recursive-residual 2-norm
/// criterion: one allreduce per outer iteration, carrying the fused Gram
/// blocks plus the residual norm.
///
/// # Panics
/// Panics on dimension mismatches, `nranks == 0`, or `s < 1`.
pub fn par_spcg(
    a: &CsrMatrix,
    b: &[f64],
    s: usize,
    basis: &BasisType,
    nranks: usize,
    tol: f64,
    max_iters: usize,
) -> ParSolveResult {
    assert!(s >= 1, "par_spcg: s must be at least 1");
    let n = a.nrows();
    assert_eq!(b.len(), n, "par_spcg: rhs length mismatch");
    let part = BlockRowPartition::balanced(n, nranks);
    let offsets: Vec<usize> =
        (0..=nranks).map(|p| if p == 0 { 0 } else { part.range(p - 1).1 }).collect();
    let board = VectorBoard::new(offsets);
    let inv_diag: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
    let params = basis.params(s);
    let b_cob = b_small(&params, s + 1);

    let parts = run_ranks(nranks, |comm: ThreadComm| {
        let rank = comm.rank();
        let (lo, hi) = part.range(rank);
        let ln = hi - lo;
        let board = board.handle();
        let mut collectives = 0u64;

        let mut x = vec![0.0; ln];
        let mut r = b[lo..hi].to_vec();
        // Local blocks of S (s+1 cols), U, AU, P, AP (s cols each).
        let mut s_cols: Vec<Vec<f64>> = vec![vec![0.0; ln]; s + 1];
        let mut u_cols: Vec<Vec<f64>> = vec![vec![0.0; ln]; s];
        let mut p_cols: Vec<Vec<f64>> = vec![vec![0.0; ln]; s];
        let mut ap_cols: Vec<Vec<f64>> = vec![vec![0.0; ln]; s];
        let mut w_prev: Option<DenseMat> = None;
        let mut rtr0: Option<f64> = None;

        let mut iterations = 0usize;
        let outcome = loop {
            // --- local MPK: S = [r, (AM⁻¹)r, …], U = M⁻¹S[:, :s] ---
            s_cols[0].copy_from_slice(&r);
            for j in 0..s {
                for i in 0..ln {
                    u_cols[j][i] = s_cols[j][i] * inv_diag[lo + i];
                }
                // Halo exchange of u_j, then local SpMV into the next col.
                board.publish(&comm, &u_cols[j]);
                let (head, tail) = s_cols.split_at_mut(j + 1);
                board.with_view(|u_full| a.spmv_rows(lo, hi, u_full, &mut tail[0]));
                // All ranks must finish reading this round's board before
                // anyone publishes the next column (an MPI halo exchange
                // gets this ordering from receive completion).
                comm.barrier();
                // Three-term basis recurrence.
                let theta = params.theta[j];
                let inv_gamma = 1.0 / params.gamma[j];
                if theta != 0.0 {
                    for i in 0..ln {
                        tail[0][i] -= theta * head[j][i];
                    }
                }
                if j >= 1 && params.mu[j - 1] != 0.0 {
                    let mu = params.mu[j - 1];
                    for i in 0..ln {
                        tail[0][i] -= mu * head[j - 1][i];
                    }
                }
                if inv_gamma != 1.0 {
                    for v in tail[0].iter_mut() {
                        *v *= inv_gamma;
                    }
                }
            }

            // --- ONE fused allreduce: UᵀS, PᵀS, and rᵀr ---
            let blk = s * (s + 1);
            let mut buf = vec![0.0; 2 * blk + 1];
            for (ji, u) in u_cols.iter().enumerate() {
                for (jj, sc) in s_cols.iter().enumerate() {
                    buf[ji * (s + 1) + jj] = blas::dot(u, sc);
                }
            }
            if w_prev.is_some() {
                for (ji, p) in p_cols.iter().enumerate() {
                    for (jj, sc) in s_cols.iter().enumerate() {
                        buf[blk + ji * (s + 1) + jj] = blas::dot(p, sc);
                    }
                }
            }
            buf[2 * blk] = blas::dot(&r, &r);
            comm.allreduce_sum(&mut buf);
            collectives += 1;
            let g1 = DenseMat::from_row_major(s, s + 1, buf[..blk].to_vec());
            let g2 = DenseMat::from_row_major(s, s + 1, buf[blk..2 * blk].to_vec());
            let rtr = buf[2 * blk];
            let rtr0v = *rtr0.get_or_insert(rtr);

            if rtr <= tol * tol * rtr0v {
                break Outcome::Converged;
            }
            if iterations >= max_iters {
                break Outcome::MaxIterations;
            }
            if !rtr.is_finite() || rtr > 1e16 * rtr0v {
                break Outcome::Diverged;
            }

            // --- replicated scalar work (identical on every rank) ---
            let m_vec = g1.col(0);
            let uau = g1.matmul(&b_cob);
            let (b_k, mut w) = match &w_prev {
                Some(wp) => {
                    let d = g2.matmul(&b_cob);
                    let mut rhs = d.clone();
                    rhs.scale(-1.0);
                    match solve_spd_mat_with_fallback(wp, &rhs) {
                        Ok(b_k) => {
                            let mut w = uau;
                            w.axpy(1.0, &d.transpose().matmul(&b_k));
                            (Some(b_k), w)
                        }
                        Err(e) => break Outcome::Breakdown(format!("W solve failed: {e}")),
                    }
                }
                None => (None, uau),
            };
            w.symmetrize();
            let a_vec = match solve_spd_with_fallback(&w, &m_vec) {
                Ok(v) => v,
                Err(e) => break Outcome::Breakdown(format!("a solve failed: {e}")),
            };

            // --- local AU = S·B and blocked updates ---
            let mut au_cols: Vec<Vec<f64>> = vec![vec![0.0; ln]; s];
            for j in 0..s {
                let gamma = params.gamma[j];
                let theta = params.theta[j];
                for i in 0..ln {
                    au_cols[j][i] = gamma * s_cols[j + 1][i] + theta * s_cols[j][i];
                }
                if j >= 1 && params.mu[j - 1] != 0.0 {
                    let mu = params.mu[j - 1];
                    for i in 0..ln {
                        au_cols[j][i] += mu * s_cols[j - 1][i];
                    }
                }
            }
            match &b_k {
                Some(b_k) => {
                    let update = |old: &[Vec<f64>], add: &[Vec<f64>]| -> Vec<Vec<f64>> {
                        (0..s)
                            .map(|j| {
                                let mut col = add[j].clone();
                                for (l, o) in old.iter().enumerate() {
                                    blas::axpy(b_k[(l, j)], o, &mut col);
                                }
                                col
                            })
                            .collect()
                    };
                    p_cols = update(&p_cols, &u_cols);
                    ap_cols = update(&ap_cols, &au_cols);
                }
                None => {
                    p_cols.clone_from(&u_cols);
                    ap_cols.clone_from(&au_cols);
                }
            }
            for j in 0..s {
                blas::axpy(a_vec[j], &p_cols[j], &mut x);
                blas::axpy(-a_vec[j], &ap_cols[j], &mut r);
            }

            w_prev = Some(w);
            iterations += s;
        };
        RankOut { x_local: x, outcome, iterations, collectives }
    });
    assemble(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{Problem, SolveOptions, StoppingCriterion};
    use spcg_precond::Jacobi;
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn par_pcg_matches_serial_bitwise_iterations() {
        let a = poisson_2d(16);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default()
            .with_criterion(StoppingCriterion::RecursiveResidual2Norm)
            .with_tol(1e-8);
        let serial = crate::pcg::pcg(&problem, &opts);
        for nranks in [1usize, 3, 8] {
            let par = par_pcg(&a, &b, nranks, 1e-8, 12_000);
            assert!(par.converged(), "nranks={nranks}: {:?}", par.outcome);
            assert_eq!(par.iterations, serial.iterations, "nranks={nranks}");
            for (p, q) in par.x.iter().zip(&serial.x) {
                assert!((p - q).abs() < 1e-10, "nranks={nranks}");
            }
        }
    }

    #[test]
    fn par_pcg_collective_count_is_2_per_iteration() {
        let a = poisson_1d(60);
        let b = paper_rhs(&a);
        let par = par_pcg(&a, &b, 4, 1e-8, 1000);
        assert!(par.converged());
        // 1 setup + 2 per iteration.
        assert_eq!(par.collectives_per_rank, 1 + 2 * par.iterations as u64);
    }

    #[test]
    fn par_spcg_one_collective_per_s_steps() {
        let a = poisson_2d(14);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let s = 5;
        let par = par_spcg(&a, &b, s, &basis, 4, 1e-8, 12_000);
        assert!(par.converged(), "{:?}", par.outcome);
        let outer = (par.iterations / s) as u64;
        // One reduction per outer iteration plus the final check round.
        assert_eq!(par.collectives_per_rank, outer + 1);
    }

    #[test]
    fn par_spcg_matches_serial_spcg() {
        let a = poisson_2d(12);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let opts = SolveOptions::default()
            .with_criterion(StoppingCriterion::RecursiveResidual2Norm)
            .with_tol(1e-8);
        let serial = crate::spcg::spcg(&problem, 4, &basis, &opts);
        let par = par_spcg(&a, &b, 4, &basis, 3, 1e-8, 12_000);
        assert!(serial.converged() && par.converged());
        // Rank-ordered partial sums round differently from the serial
        // blocked dot, which can flip the stopping test by one outer block.
        assert!(par.iterations.abs_diff(serial.iterations) <= 4);
        // Both satisfied a 1e-8 residual reduction; the solutions agree to
        // the corresponding accuracy.
        for (p, q) in par.x.iter().zip(&serial.x) {
            assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
    }

    #[test]
    fn par_spcg_single_rank_is_bitwise_serial_structure() {
        // With one rank the board round-trips are identities; iterations
        // must match the serial solver exactly.
        let a = poisson_2d(12);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let opts = SolveOptions::default()
            .with_criterion(StoppingCriterion::RecursiveResidual2Norm)
            .with_tol(1e-8);
        let serial = crate::spcg::spcg(&problem, 4, &basis, &opts);
        let par = par_spcg(&a, &b, 4, &basis, 1, 1e-8, 12_000);
        assert!(serial.converged() && par.converged());
        assert_eq!(par.iterations, serial.iterations);
    }

    #[test]
    fn par_solvers_reduce_synchronization_by_2s() {
        let a = poisson_2d(16);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let s = 10;
        let pcg = par_pcg(&a, &b, 4, 1e-7, 12_000);
        let spcg = par_spcg(&a, &b, s, &basis, 4, 1e-7, 12_000);
        assert!(pcg.converged() && spcg.converged());
        let pcg_rate = pcg.collectives_per_rank as f64 / pcg.iterations as f64;
        let spcg_rate = spcg.collectives_per_rank as f64 / spcg.iterations as f64;
        // The paper's factor-2s reduction in synchronization frequency.
        assert!(
            spcg_rate < pcg_rate / (s as f64),
            "sync rates: pcg {pcg_rate}, spcg {spcg_rate}"
        );
    }
}
