//! Deprecated rank-parallel entry points.
//!
//! The original `par_pcg`/`par_spcg` free functions predate the unified
//! execution engine. Rank-parallel execution is now a first-class mode of
//! [`crate::solve`]: pass [`crate::Engine::Ranked`] and any of the six
//! methods runs over `spcg_dist::ThreadComm` with block-row partitions and
//! `VectorBoard` halo exchange. These shims reproduce the old behaviour
//! (Jacobi preconditioner, recursive-residual 2-norm criterion) on top of
//! the engine and will be removed in a future release.

use crate::engine::Engine;
use crate::method::{solve, Method};
use crate::options::{Outcome, Problem, SolveOptions, StoppingCriterion};
use spcg_basis::BasisType;
use spcg_precond::Jacobi;
use spcg_sparse::CsrMatrix;

/// Result of a rank-parallel solve.
#[derive(Debug, Clone)]
pub struct ParSolveResult {
    /// Assembled solution.
    pub x: Vec<f64>,
    /// How the solve ended.
    pub outcome: Outcome,
    /// Fine-grained iterations.
    pub iterations: usize,
    /// Global collectives each rank participated in.
    pub collectives_per_rank: u64,
}

impl ParSolveResult {
    /// True if the solve converged.
    pub fn converged(&self) -> bool {
        matches!(self.outcome, Outcome::Converged)
    }
}

fn par_shim(
    method: &Method,
    a: &CsrMatrix,
    b: &[f64],
    nranks: usize,
    tol: f64,
    max_iters: usize,
) -> ParSolveResult {
    let m = Jacobi::new(a);
    let problem = Problem::new(a, &m, b);
    let opts = SolveOptions::builder()
        .tol(tol)
        .max_iters(max_iters)
        .criterion(StoppingCriterion::RecursiveResidual2Norm)
        .build();
    let res = solve(method, &problem, &opts, Engine::Ranked { ranks: nranks });
    ParSolveResult {
        x: res.x,
        outcome: res.outcome,
        iterations: res.iterations,
        collectives_per_rank: res.collectives_per_rank.unwrap_or(0),
    }
}

/// Rank-parallel Jacobi-PCG with the recursive-residual 2-norm criterion.
///
/// # Panics
/// Panics on dimension mismatches or `nranks == 0`.
#[deprecated(
    since = "0.2.0",
    note = "use `solve(&Method::Pcg, &problem, &opts, Engine::Ranked { ranks })`"
)]
pub fn par_pcg(
    a: &CsrMatrix,
    b: &[f64],
    nranks: usize,
    tol: f64,
    max_iters: usize,
) -> ParSolveResult {
    par_shim(&Method::Pcg, a, b, nranks, tol, max_iters)
}

/// Rank-parallel Jacobi-sPCG (Alg. 5) with the recursive-residual 2-norm
/// criterion: one allreduce per outer iteration, carrying the fused Gram
/// blocks plus the residual norm.
///
/// # Panics
/// Panics on dimension mismatches, `nranks == 0`, or `s < 1`.
#[deprecated(
    since = "0.2.0",
    note = "use `solve(&Method::SPcg { s, basis }, &problem, &opts, Engine::Ranked { ranks })`"
)]
pub fn par_spcg(
    a: &CsrMatrix,
    b: &[f64],
    s: usize,
    basis: &BasisType,
    nranks: usize,
    tol: f64,
    max_iters: usize,
) -> ParSolveResult {
    assert!(s >= 1, "par_spcg: s must be at least 1");
    par_shim(
        &Method::SPcg {
            s,
            basis: basis.clone(),
        },
        a,
        b,
        nranks,
        tol,
        max_iters,
    )
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn par_pcg_matches_serial_bitwise_iterations() {
        let a = poisson_2d(16);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default()
            .with_criterion(StoppingCriterion::RecursiveResidual2Norm)
            .with_tol(1e-8);
        let serial = crate::pcg::pcg(&problem, &opts);
        for nranks in [1usize, 3, 8] {
            let par = par_pcg(&a, &b, nranks, 1e-8, 12_000);
            assert!(par.converged(), "nranks={nranks}: {:?}", par.outcome);
            assert_eq!(par.iterations, serial.iterations, "nranks={nranks}");
            for (p, q) in par.x.iter().zip(&serial.x) {
                assert!((p - q).abs() < 1e-10, "nranks={nranks}");
            }
        }
    }

    #[test]
    fn par_pcg_collective_count_is_2_per_iteration() {
        let a = poisson_1d(60);
        let b = paper_rhs(&a);
        let par = par_pcg(&a, &b, 4, 1e-8, 1000);
        assert!(par.converged());
        // 1 setup + 2 per iteration.
        assert_eq!(par.collectives_per_rank, 1 + 2 * par.iterations as u64);
    }

    #[test]
    fn par_spcg_one_collective_per_s_steps() {
        let a = poisson_2d(14);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let s = 5;
        let par = par_spcg(&a, &b, s, &basis, 4, 1e-8, 12_000);
        assert!(par.converged(), "{:?}", par.outcome);
        let outer = (par.iterations / s) as u64;
        // One reduction per outer iteration plus the final check round.
        assert_eq!(par.collectives_per_rank, outer + 1);
    }

    #[test]
    fn par_spcg_matches_serial_spcg() {
        let a = poisson_2d(12);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let opts = SolveOptions::default()
            .with_criterion(StoppingCriterion::RecursiveResidual2Norm)
            .with_tol(1e-8);
        let serial = crate::spcg::spcg(&problem, 4, &basis, &opts);
        let par = par_spcg(&a, &b, 4, &basis, 3, 1e-8, 12_000);
        assert!(serial.converged() && par.converged());
        // Rank-ordered partial sums round differently from the serial
        // blocked dot, which can flip the stopping test by one outer block.
        assert!(par.iterations.abs_diff(serial.iterations) <= 4);
        // Both satisfied a 1e-8 residual reduction; the solutions agree to
        // the corresponding accuracy.
        for (p, q) in par.x.iter().zip(&serial.x) {
            assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
    }

    #[test]
    fn par_spcg_single_rank_is_bitwise_serial_structure() {
        // With one rank the board round-trips are identities; iterations
        // must match the serial solver exactly.
        let a = poisson_2d(12);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let opts = SolveOptions::default()
            .with_criterion(StoppingCriterion::RecursiveResidual2Norm)
            .with_tol(1e-8);
        let serial = crate::spcg::spcg(&problem, 4, &basis, &opts);
        let par = par_spcg(&a, &b, 4, &basis, 1, 1e-8, 12_000);
        assert!(serial.converged() && par.converged());
        assert_eq!(par.iterations, serial.iterations);
    }

    #[test]
    fn par_solvers_reduce_synchronization_by_2s() {
        let a = poisson_2d(16);
        let b = paper_rhs(&a);
        let m = Jacobi::new(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let s = 10;
        let pcg = par_pcg(&a, &b, 4, 1e-7, 12_000);
        let spcg = par_spcg(&a, &b, s, &basis, 4, 1e-7, 12_000);
        assert!(pcg.converged() && spcg.converged());
        let pcg_rate = pcg.collectives_per_rank as f64 / pcg.iterations as f64;
        let spcg_rate = spcg.collectives_per_rank as f64 / spcg.iterations as f64;
        // The paper's factor-2s reduction in synchronization frequency.
        assert!(
            spcg_rate < pcg_rate / (s as f64),
            "sync rates: pcg {pcg_rate}, spcg {spcg_rate}"
        );
    }
}
