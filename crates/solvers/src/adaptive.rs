//! Adaptive-s sPCG — an extension beyond the paper (inspired by Carson's
//! adaptive s-step CG \[2\]).
//!
//! When the s-step basis breaks down (singular scalar-work system, lost
//! positive definiteness) the solver restarts from the current iterate with
//! a halved `s` instead of failing outright. Restarting is exact: the
//! remaining error satisfies `A·e = r`, so each stage solves the residual
//! system and accumulates corrections.
//!
//! This is now a thin staged view over the generalized resilient driver
//! ([`crate::resilience`]) — one code path owns the budget bookkeeping,
//! the tolerance handoff, and the s-shrink policy for *every* method and
//! both engines; this module keeps the original `(s, iterations)`-per-stage
//! reporting API on top of it. For the controller-driven method that also
//! *grows* `s` and retunes the basis mid-solve, see
//! [`crate::adapt_capcg::adaptive_capcg`].

use crate::engine::SerialExec;
use crate::method::Method;
use crate::options::{Problem, SolveOptions, SolveResult};
use crate::resilience::solve_resilient_staged;
use spcg_basis::BasisType;

/// Result of an adaptive solve, including the s-schedule actually used.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The underlying solve result (counters merged across stages).
    pub result: SolveResult,
    /// `(s, iterations)` for each stage in order.
    pub stages: Vec<(usize, usize)>,
}

/// Runs sPCG with automatic s reduction on breakdown.
///
/// Starts at `s_max`; every breakdown halves `s` (down to 1). Convergence is
/// judged against the *initial* residual so the tolerance means the same as
/// in [`crate::spcg::spcg`].
///
/// # Panics
/// Panics if `s_max < 1`.
pub fn adaptive_spcg(
    problem: &Problem<'_>,
    s_max: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> AdaptiveResult {
    assert!(s_max >= 1, "adaptive_spcg: s_max must be at least 1");
    let method = Method::SPcg {
        s: s_max,
        basis: basis.clone(),
    };
    let pol = opts
        .resilience
        .clone()
        .unwrap_or_default()
        .with_shrink_s(true);
    let mut exec = SerialExec::new(problem, opts);
    let (result, stages) = solve_resilient_staged(&method, &mut exec, opts, Some(&pol));
    AdaptiveResult { result, stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Outcome;
    use crate::pcg::pcg;
    use spcg_precond::Jacobi;
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::poisson_2d;
    use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};

    #[test]
    fn single_stage_when_no_breakdown() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let out = adaptive_spcg(&problem, 5, &basis, &SolveOptions::default());
        assert!(out.result.converged());
        assert_eq!(out.stages.len(), 1);
        assert_eq!(out.stages[0].0, 5);
    }

    #[test]
    fn recovers_from_monomial_breakdown_by_shrinking_s() {
        // Monomial s=10 on a hard problem breaks down; adaptive mode must
        // still converge by dropping to a small s.
        let a = spd_with_spectrum(400, &SpectrumShape::Uniform { kappa: 1e5 }, 1.0, 3, 77);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default()
            .with_max_iters(20_000)
            .with_history();
        assert!(pcg(&problem, &opts).converged());
        let out = adaptive_spcg(&problem, 10, &BasisType::Monomial, &opts);
        if out.result.converged() {
            assert!(!out.stages.is_empty());
            assert!(out.result.true_relative_residual(&a, &b) < 1e-6);
        } else {
            // At minimum the schedule must have tried smaller s.
            assert!(
                out.stages.len() > 1,
                "no adaptation happened: {:?}",
                out.result.outcome
            );
        }
    }

    #[test]
    fn accumulated_solution_is_consistent() {
        let a = poisson_2d(10);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let out = adaptive_spcg(&problem, 4, &basis, &SolveOptions::default());
        assert!(out.result.converged());
        assert!(out.result.true_relative_residual(&a, &b) < 1e-7);
    }

    #[test]
    fn stage_record_matches_schedule() {
        // The staged view and the generalized driver's s_schedule must
        // agree stage-for-stage on fixed-s bodies.
        let a = poisson_2d(10);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let out = adaptive_spcg(&problem, 4, &basis, &SolveOptions::default());
        assert_eq!(
            out.stages.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            out.result.s_schedule
        );
        assert!(!matches!(out.result.outcome, Outcome::Diverged));
    }
}
