//! Adaptive-s sPCG — an extension beyond the paper (inspired by Carson's
//! adaptive s-step CG \[2\]).
//!
//! When the s-step basis breaks down (singular scalar-work system, lost
//! positive definiteness) the solver restarts from the current iterate with
//! a halved `s` instead of failing outright, and retries the full `s` after
//! a stretch of healthy outer iterations. Restarting is exact: the
//! remaining error satisfies `A·e = r`, so each stage solves the residual
//! system and accumulates corrections.

use crate::options::{Outcome, Problem, SolveOptions, SolveResult};
use crate::spcg::spcg;
use spcg_basis::BasisType;
use spcg_dist::Counters;

/// Result of an adaptive solve, including the s-schedule actually used.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The underlying solve result (counters merged across stages).
    pub result: SolveResult,
    /// `(s, iterations)` for each stage in order.
    pub stages: Vec<(usize, usize)>,
}

/// Runs sPCG with automatic s reduction on breakdown.
///
/// Starts at `s_max`; every breakdown halves `s` (down to 1). Convergence is
/// judged against the *initial* residual so the tolerance means the same as
/// in [`spcg`].
///
/// # Panics
/// Panics if `s_max < 1`.
pub fn adaptive_spcg(
    problem: &Problem<'_>,
    s_max: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> AdaptiveResult {
    assert!(s_max >= 1, "adaptive_spcg: s_max must be at least 1");
    let n = problem.n();
    let mut x_acc = vec![0.0; n];
    let mut residual = problem.b.to_vec();
    let mut counters = Counters::new();
    let mut stages = Vec::new();
    let mut s = s_max;
    let mut iterations_left = opts.max_iters;
    let mut tol_left = opts.tol;
    let mut zero_streak = 0u32;

    let mut result = loop {
        let stage_opts = SolveOptions {
            tol: tol_left,
            max_iters: iterations_left,
            ..opts.clone()
        };
        let stage_problem = Problem::new(problem.a, problem.m, &residual);
        let res = spcg(&stage_problem, s, basis, &stage_opts);
        counters.merge(&res.counters);
        stages.push((s, res.iterations));
        iterations_left =
            crate::resilience::charge_budget(iterations_left, res.iterations, &mut zero_streak);
        // A diverged stage's iterate is garbage — discard it and retry with
        // smaller s from the previous accumulated solution; a breakdown
        // stage's partial progress is kept.
        let diverged = matches!(res.outcome, Outcome::Diverged);
        if !diverged {
            for (xi, di) in x_acc.iter_mut().zip(&res.x) {
                *xi += di;
            }
        }
        let finished = match &res.outcome {
            Outcome::Breakdown(_) | Outcome::Diverged if s > 1 && iterations_left > 0 => {
                if !diverged {
                    // Stage reduced ‖r‖ by some factor f; the remaining
                    // stages only need tol/f more.
                    let f = res
                        .history
                        .last()
                        .zip(res.history.first())
                        .map(|(l, fst)| (l.1 / fst.1).clamp(1e-16, 1.0))
                        .unwrap_or(1.0);
                    tol_left = (tol_left / f).min(1.0);
                }
                s /= 2;
                false
            }
            _ => true,
        };
        // Refresh the residual for the next stage (or the final result).
        let mut ax = vec![0.0; n];
        problem.a.spmv(&x_acc, &mut ax);
        for i in 0..n {
            residual[i] = problem.b[i] - ax[i];
        }
        if finished {
            break res;
        }
    };

    result.x = x_acc;
    result.iterations = stages.iter().map(|&(_, it)| it).sum();
    result.counters = counters;
    AdaptiveResult { result, stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::pcg;
    use spcg_precond::Jacobi;
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::poisson_2d;
    use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};

    #[test]
    fn single_stage_when_no_breakdown() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let out = adaptive_spcg(&problem, 5, &basis, &SolveOptions::default());
        assert!(out.result.converged());
        assert_eq!(out.stages.len(), 1);
        assert_eq!(out.stages[0].0, 5);
    }

    #[test]
    fn recovers_from_monomial_breakdown_by_shrinking_s() {
        // Monomial s=10 on a hard problem breaks down; adaptive mode must
        // still converge by dropping to a small s.
        let a = spd_with_spectrum(400, &SpectrumShape::Uniform { kappa: 1e5 }, 1.0, 3, 77);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default()
            .with_max_iters(20_000)
            .with_history();
        assert!(pcg(&problem, &opts).converged());
        let out = adaptive_spcg(&problem, 10, &BasisType::Monomial, &opts);
        if out.result.converged() {
            assert!(!out.stages.is_empty());
            assert!(out.result.true_relative_residual(&a, &b) < 1e-6);
        } else {
            // At minimum the schedule must have tried smaller s.
            assert!(
                out.stages.len() > 1,
                "no adaptation happened: {:?}",
                out.result.outcome
            );
        }
    }

    #[test]
    fn accumulated_solution_is_consistent() {
        let a = poisson_2d(10);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let out = adaptive_spcg(&problem, 4, &basis, &SolveOptions::default());
        assert!(out.result.converged());
        assert!(out.result.true_relative_residual(&a, &b) < 1e-7);
    }
}
