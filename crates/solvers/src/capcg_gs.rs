//! CA-PCG-GS — the s-step PCG body with the small Gram systems solved by a
//! seeded Gauss-Seidel iteration instead of Cholesky (D'Ambra et al.,
//! "Scalable s-step Preconditioned Conjugate Gradient with Chebyshev Basis
//! and Gauss-Seidel Gram Solve").
//!
//! The recurrence is exactly [`crate::spcg()`]'s Algorithm 5/6 — one MPK plus
//! one fused Gram reduction per s steps — but the replicated `O(s³)` scalar
//! work changes character: where Cholesky *fails* on a Gram matrix that
//! round-off has pushed out of positive definiteness (the breakdown class
//! the resilience layer survives only by shrinking s), Gauss-Seidel has no
//! pivot and simply iterates. For every SPD matrix it converges; for the
//! near-singular ones it returns the best fixed-point iterate its sweep cap
//! allows, which keeps the outer Krylov recurrence moving at full s instead
//! of aborting.
//!
//! Determinism contract: the Gram data entering the sweeps is replicated
//! post-allreduce state, the sweep order is fixed, and the early exit is a
//! pure function of that state — so every rank runs the *same* number of
//! sweeps. That invariant is verified at run time by piggybacking the two
//! sweep counts of block `k` on block `k+1`'s Gram allreduce
//! ([`spcg_adapt::consensus::pack_sweeps`]), costing zero extra collectives.
//! Sweeps are seeded with the previous block's solution (the coefficient
//! systems change slowly along the iteration), which typically cuts the
//! sweep count severalfold once the method settles.

use crate::engine::{allreduce_gram, Exec, SerialExec};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult};
use crate::stopping::{criterion_value, StopState, Verdict};
use spcg_adapt::consensus;
use spcg_basis::cob::{apply_b_to_columns_par, b_small};
use spcg_basis::BasisType;
use spcg_dist::Counters;
use spcg_obs::Phase;
use spcg_sparse::smallsolve::{gs_solve, gs_solve_mat, GS_MAX_SWEEPS, GS_TOL};
use spcg_sparse::{DenseMat, MultiVector};

/// Consecutive blocks without a new best criterion value before the stall
/// rescue fires (residual replacement + recurrence restart). Healthy
/// convergence sets a new best almost every block — even the oscillating
/// tail of a marginal run recovers within a block or two — so a run of
/// this many flat blocks reliably means the recurrence is grinding noise.
const GS_STALL_BLOCKS: usize = 4;

/// Solves `A x = b` with CA-PCG-GS: s-step blocking with Gauss-Seidel Gram
/// solves.
///
/// # Panics
/// Panics if `s < 1` or the Newton basis provides fewer than `s` shifts.
pub fn capcg_gs(
    problem: &Problem<'_>,
    s: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    capcg_gs_g(&mut SerialExec::new(problem, opts), s, basis, opts)
}

/// CA-PCG-GS over any execution substrate (see [`crate::engine`]).
pub(crate) fn capcg_gs_g<E: Exec>(
    exec: &mut E,
    s: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    assert!(s >= 1, "capcg_gs: s must be at least 1");
    let n = exec.nl();
    let nw = exec.n_global();
    let sw = s as u64;
    let pk = exec.kernels().clone();
    let tr = exec.track().cloned();
    let mut counters = Counters::new();
    let mut stop = StopState::new(opts);
    let mut scratch_vec = Vec::new();

    let params = basis.params(s);
    let b_cob = b_small(&params, s + 1); // (s+1) × s

    let mut x = vec![0.0; n];
    let mut r = exec.b_local().to_vec(); // x0 = 0

    let mut s_mat = MultiVector::zeros(n, s + 1);
    let mut u_mat = MultiVector::zeros(n, s);
    let mut au_mat = MultiVector::zeros(n, s);
    let mut p_mat = MultiVector::zeros(n, s);
    let mut ap_mat = MultiVector::zeros(n, s);
    let mut scratch = MultiVector::zeros(n, s);
    let mut w_prev: Option<DenseMat> = None;
    // Warm-start seeds: previous block's coefficient solutions.
    let mut b_seed: Option<DenseMat> = None;
    let mut a_seed: Option<Vec<f64>> = None;
    // Sweep counts of the previous block, awaiting consensus verification
    // on this block's allreduce.
    let mut prev_sweeps: Option<(usize, usize)> = None;
    // Residual-replacement state: ‖r‖² at the last replacement.
    let mut rr_anchor: Option<f64> = None;
    // Stall-rescue state: best criterion value seen and the run of blocks
    // without a new best.
    let mut best_val = f64::INFINITY;
    let mut stall_blocks = 0usize;
    let mut restarts = 0usize;

    let mut iterations = 0usize;
    let final_verdict;
    loop {
        // --- s-step basis (neighbour communication only) ---
        exec.mpk(&r, None, &params, &mut s_mat, &mut u_mat, &mut counters);

        // --- the single global reduction: [UᵀS ; PᵀS] (+ sweep consensus) ---
        let gram_span = spcg_obs::span(tr.as_ref(), Phase::Gram);
        let mut g1 = pk.gram(&u_mat, &s_mat); // s × (s+1)
        counters.record_dots(sw * (sw + 1), nw);
        let mut words = sw * (sw + 1);
        let mut g2 = if w_prev.is_some() {
            let g = pk.gram(&p_mat, &s_mat); // s × (s+1)
            counters.record_dots(sw * (sw + 1), nw);
            words += sw * (sw + 1);
            Some(g)
        } else {
            None
        };
        let mut extra_buf = [0.0; consensus::SWEEP_WORDS];
        let extra: &mut [f64] = match prev_sweeps {
            Some((sb, sa)) => {
                extra_buf = consensus::pack_sweeps(sb, sa);
                words += consensus::SWEEP_WORDS as u64;
                &mut extra_buf
            }
            None => &mut [],
        };
        counters.record_collective(words);
        match g2.as_mut() {
            Some(g2) => allreduce_gram(exec, &mut [&mut g1, g2], extra),
            None => allreduce_gram(exec, &mut [&mut g1], extra),
        }
        drop(gram_span);
        if let Some((sb, sa)) = prev_sweeps.take() {
            match consensus::check_sweeps(&extra_buf, sb, sa) {
                consensus::Verdict::Agree => {}
                // A poisoned reduction also poisons the Gram matrices; the
                // finiteness checks below own that path.
                consensus::Verdict::Poisoned => {}
                consensus::Verdict::Disagree => {
                    panic!(
                        "capcg_gs: Gauss-Seidel sweep counts diverged across ranks \
                         (local ({sb}, {sa}), reduced {extra_buf:?}) — \
                         the replicated-Gram determinism contract is broken"
                    );
                }
            }
        }
        let (g1, g2) = (g1, g2);

        // --- convergence check every s steps ---
        let rtu = g1[(0, 0)];
        let value = criterion_value(
            exec,
            opts.criterion,
            &x,
            &r,
            rtu,
            &mut scratch_vec,
            &mut counters,
        );
        let verdict = stop.check(iterations, value);
        if verdict != Verdict::Continue {
            final_verdict = StopState::outcome(verdict);
            break;
        }
        if iterations >= opts.max_iters {
            final_verdict = Outcome::MaxIterations;
            break;
        }

        // --- stall rescue: residual replacement + recurrence restart ---
        // At the method's accuracy floor the recursively updated residual
        // drifts from `b − A·x` and the blocks optimize a phantom; the
        // Cholesky path's pivoted-LU noise happens to wander below tight
        // tolerances, the bounded minimal-residual sweeps do not. When a
        // run of blocks produces no new best criterion value, replace the
        // residual with the true one and cold-restart the block recurrence
        // (one extra SpMV). Keyed off the replicated criterion value, so
        // every rank restarts at the same block.
        if value < best_val {
            best_val = value;
            stall_blocks = 0;
        } else {
            stall_blocks += 1;
            if stall_blocks >= GS_STALL_BLOCKS {
                stall_blocks = 0;
                scratch_vec.resize(n, 0.0);
                exec.spmv(&x, &mut scratch_vec, &mut counters);
                counters.record_spmv(exec.spmv_flops());
                pk.sub(exec.b_local(), &scratch_vec, &mut r);
                counters.blas1_flops += nw;
                w_prev = None;
                b_seed = None;
                a_seed = None;
                restarts += 1;
                // Regenerate the basis from the replaced residual; this
                // block's Gram work is discarded (its sweeps never ran, so
                // the consensus chain is unaffected).
                continue;
            }
        }

        // --- Scalar Work, replicated on each rank: GS instead of Cholesky ---
        let scalar_span = spcg_obs::span(tr.as_ref(), Phase::ScalarWork);
        let m_vec = g1.col(0); // Rᵀu
        let uau = g1.matmul(&b_cob); // UᵀAU = (UᵀS)·B, s × s
        let mut sweeps_b = 0usize;
        let (b_k, mut w) = match (&w_prev, &g2) {
            (Some(wp), Some(g2)) => {
                let d = g2.matmul(&b_cob); // P^(k-1)ᵀAU
                let mut rhs = d.clone();
                rhs.scale(-1.0);
                let solved = {
                    let _gs = spcg_obs::span(tr.as_ref(), Phase::GramSweep);
                    gs_solve_mat(wp, &rhs, b_seed.as_ref(), GS_MAX_SWEEPS, GS_TOL)
                };
                let (b_k, sb) = match solved {
                    Ok(v) => v,
                    Err(e) => {
                        final_verdict =
                            Outcome::Breakdown(format!("W^(k-1) Gauss-Seidel undefined: {e}"));
                        break;
                    }
                };
                sweeps_b = sb;
                if b_k.has_non_finite() {
                    final_verdict =
                        Outcome::Breakdown("non-finite W^(k-1) Gauss-Seidel iterate".into());
                    break;
                }
                // W = UᵀAU + Dᵀ·B^(k)  (Alg. 6 line 6).
                let mut w = uau;
                w.axpy(1.0, &d.transpose().matmul(&b_k));
                (Some(b_k), w)
            }
            _ => (None, uau),
        };
        w.symmetrize();
        if w.has_non_finite() {
            final_verdict = Outcome::Breakdown("non-finite Gram data".into());
            break;
        }
        let solved = {
            let _gs = spcg_obs::span(tr.as_ref(), Phase::GramSweep);
            gs_solve(&w, &m_vec, a_seed.as_deref(), GS_MAX_SWEEPS, GS_TOL)
        };
        let (a_vec, sweeps_a) = match solved {
            Ok(v) => v,
            Err(e) => {
                final_verdict = Outcome::Breakdown(format!("W^(k) Gauss-Seidel undefined: {e}"));
                break;
            }
        };
        if a_vec.iter().any(|v| !v.is_finite()) {
            final_verdict = Outcome::Breakdown("non-finite W^(k) Gauss-Seidel iterate".into());
            break;
        }
        // One GS sweep costs ~2s² FLOPs per right-hand-side column.
        counters.small_flops += 2 * sw * sw * (sweeps_b as u64 * sw + sweeps_a as u64);
        prev_sweeps = Some((sweeps_b, sweeps_a));
        drop(scalar_span);

        // --- AU = S·B (local, free for monomial) ---
        let update_span = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
        let local_flops = apply_b_to_columns_par(&pk, &s_mat, &params, &mut au_mat);
        counters.blas2_flops += local_flops / n as u64 * nw;

        // --- blocked updates ---
        match &b_k {
            Some(b_k) => {
                p_mat.blocked_update_par(&pk, &u_mat, b_k, &mut scratch);
                ap_mat.blocked_update_par(&pk, &au_mat, b_k, &mut scratch);
                counters.blas3_flops += 4 * sw * sw * nw;
            }
            None => {
                p_mat.copy_from(&u_mat);
                ap_mat.copy_from(&au_mat);
            }
        }
        pk.gemv_acc(&p_mat, 1.0, &a_vec, &mut x);
        pk.gemv_acc(&ap_mat, -1.0, &a_vec, &mut r);
        counters.blas2_flops += 4 * sw * nw;
        drop(update_span);

        // Residual replacement (Carson & Demmel), same policy as sPCG.
        if let Some(factor) = opts.residual_replacement {
            let mut red = [exec.dot(&r, &r)];
            exec.allreduce(&mut red);
            let rr = red[0];
            counters.record_dots(1, nw);
            let anchor = *rr_anchor.get_or_insert(rr);
            if rr <= factor * factor * anchor {
                scratch_vec.resize(n, 0.0);
                exec.spmv(&x, &mut scratch_vec, &mut counters);
                counters.record_spmv(exec.spmv_flops());
                pk.sub(exec.b_local(), &scratch_vec, &mut r);
                counters.blas1_flops += nw;
                let mut red = [exec.dot(&r, &r)];
                exec.allreduce(&mut red);
                rr_anchor = Some(red[0]);
            }
        }

        b_seed = b_k;
        a_seed = Some(a_vec);
        w_prev = Some(w);
        iterations += s;
        counters.iterations += sw;
        counters.outer_iterations += 1;
    }

    SolveResult {
        x,
        outcome: final_verdict,
        iterations,
        history: stop.history,
        counters,
        collectives_per_rank: None,
        restarts,
        s_schedule: Vec::new(),
        faults_absorbed: 0,
        adaptive: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::StoppingCriterion;
    use crate::spcg::spcg;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn small_s_monomial_solves_easy_poisson() {
        let a = poisson_1d(64);
        let m = Identity::new(64);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = capcg_gs(&problem, 2, &BasisType::Monomial, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.true_relative_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn matches_spcg_iterations_on_well_conditioned_problem() {
        // With a well-conditioned Gram system the GS inner solve hits its
        // 1e-14 early exit in a handful of sweeps, so the outer iteration
        // count should match the Cholesky path closely.
        let a = poisson_2d(16);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.1);
        let opts = SolveOptions::default().with_tol(1e-7);
        for s in [2usize, 4, 8] {
            let r_ch = spcg(&problem, s, &basis, &opts);
            let r_gs = capcg_gs(&problem, s, &basis, &opts);
            assert!(r_gs.converged(), "s={s}: {:?}", r_gs.outcome);
            assert!(
                r_gs.iterations <= r_ch.iterations + 2 * s,
                "s={s}: GS took {} vs Cholesky {}",
                r_gs.iterations,
                r_ch.iterations
            );
        }
    }

    #[test]
    fn one_collective_per_outer_iteration() {
        let a = poisson_2d(14);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.1);
        let opts = SolveOptions::default().with_criterion(StoppingCriterion::PrecondMNorm);
        let res = capcg_gs(&problem, 5, &basis, &opts);
        assert!(res.converged());
        let outer = res.counters.outer_iterations;
        // Sweep-consensus words ride on the existing reduction: still one
        // collective per outer iteration (+ the final check-only one).
        assert_eq!(res.counters.global_collectives, outer + 1);
        assert_eq!(res.counters.spmv_count, 5 * (outer + 1));
    }

    #[test]
    fn charges_gram_sweep_flops() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = capcg_gs(&problem, 4, &BasisType::Monomial, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.counters.small_flops > 0, "GS sweeps must be charged");
    }

    #[test]
    fn s_equal_one_still_works() {
        let a = poisson_1d(40);
        let m = Identity::new(40);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = capcg_gs(&problem, 1, &BasisType::Monomial, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.outcome);
    }

    #[test]
    fn respects_max_iters() {
        let a = poisson_2d(20);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-15).with_max_iters(20);
        let res = capcg_gs(&problem, 5, &BasisType::Monomial, &opts);
        assert!(matches!(
            res.outcome,
            Outcome::MaxIterations | Outcome::Stagnated
        ));
        assert!(res.iterations <= 20);
    }
}
