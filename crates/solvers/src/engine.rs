//! The unified execution engine: one `solve` entry over serial and
//! rank-parallel execution.
//!
//! Every solver body in this crate is written once, generically over an
//! `Exec` — the small set of operations whose *implementation* differs
//! between serial and distributed execution: SpMV, preconditioner
//! application, the Matrix Powers Kernel, local dot partials, and the
//! allreduce combining them. The bodies record all [`Counters`] charges
//! themselves, always with **global** operation sizes, so a ranked run
//! reports the same Table-1 instrumentation as the serial run it mirrors;
//! the `Exec` implementations only *perform* the work (and additionally
//! count halo traffic, which exists only under ranking).
//!
//! * `SerialExec` delegates straight to `CsrMatrix::spmv`,
//!   `Preconditioner::apply`, `Mpk::run`, and `blas::dot`, with a no-op
//!   allreduce — bitwise identical to the pre-engine serial solvers.
//! * `RankExec` owns a block of rows `[lo, hi)` on one rank of a
//!   pluggable [`Comm`]/[`Exchange`] transport ([`ThreadComm`] threads by
//!   default, `spcg-rankd` worker processes under
//!   [`Backend::Proc`]). SpMV gathers a depth-1 ghost zone through the
//!   transport's split-phase exchange; the MPK gathers a depth-s
//!   ghost zone **once per s-step block** and runs [`DistMpk`] — the PA1
//!   halo amortization the paper's §4.2 communication model assumes. With
//!   [`SolveOptions::overlap`] (the default) each product's interior rows
//!   run between the exchange's post and completion, hiding the exchange
//!   latency behind computation that needs no remote data; solutions and
//!   communication counters are bitwise/exactly identical either way. The
//!   preconditioner is dispatched on its [`DistForm`]: pointwise and
//!   rank-aligned block operators apply locally, polynomial operators
//!   apply through the distributed SpMV, and anything else falls back to
//!   a replicated apply.
//!
//! Reductions go through [`Comm::allreduce_sum`], which every backend
//! implements as a rank-order sum — deterministic, so every rank takes the
//! same branches and a ranked solve is reproducible run to run *and*
//! bitwise identical across backends.

use crate::method::Method;
use crate::options::{Problem, SolveOptions, SolveResult};
use crate::resilience::{solve_resilient, Resilience};
use spcg_basis::poly::BasisParams;
use spcg_basis::{DistMpk, Mpk};
use spcg_dist::executor::run_ranks;
use spcg_dist::{
    Backend, Comm, Counters, Exchange, FaultPlan, FaultSite, GatherPlan, ThreadBoard, ThreadComm,
    VectorBoard,
};
use spcg_obs::{Phase, Track};
use spcg_precond::{DistForm, Preconditioner};
use spcg_sparse::partition::BlockRowPartition;
use spcg_sparse::{
    CsrMatrix, DenseMat, GhostZone, MultiVector, ParKernels, SellMatrix, SparseFormat,
};
use std::sync::Arc;

/// Where a [`solve`](crate::solve) call executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Single-threaded reference execution — bitwise identical to the
    /// serial solvers this workspace has always had.
    Serial,
    /// `ranks` real OS-thread ranks over [`ThreadComm`]: block-row
    /// partitioned matrix and vectors, ghost-zone halo exchanges (one per
    /// s-step block for the s-step methods), and rank-ordered deterministic
    /// allreduces.
    Ranked {
        /// Number of ranks; must satisfy `1 ≤ ranks ≤ n`.
        ranks: usize,
    },
}

/// The execution substrate a solver body runs on.
///
/// Vectors handled through an `Exec` are rank-local slices of length
/// [`Exec::nl`]; under serial execution the "local" block is the whole
/// vector. `dot` returns the **local partial** — bodies combine partials
/// with [`Exec::allreduce`], which serially is the identity, so packing a
/// value through it never perturbs bits.
pub(crate) trait Exec {
    /// Local row count.
    fn nl(&self) -> usize;
    /// Global row count, as the `u64` the counter charges use.
    fn n_global(&self) -> u64;
    /// Global FLOPs of one full SpMV.
    fn spmv_flops(&self) -> u64;
    /// Global FLOPs of one full preconditioner application.
    fn m_flops(&self) -> u64;
    /// Local block of the right-hand side.
    fn b_local(&self) -> &[f64];
    /// `y ← A x` on the local rows (halo traffic is counted; the SpMV FLOP
    /// charge itself is the body's job).
    fn spmv(&mut self, x: &[f64], y: &mut [f64], counters: &mut Counters);
    /// `z ← M⁻¹ r` on the local rows.
    fn precond(&mut self, r: &[f64], z: &mut [f64], counters: &mut Counters);
    /// Matrix Powers Kernel: fills the local blocks of `V` and `M⁻¹V`
    /// seeded by `w`, recording the same SpMV/precond/BLAS1 charges as the
    /// serial [`Mpk::run`] plus (under ranking) one halo-exchange round.
    fn mpk(
        &mut self,
        w: &[f64],
        known_mw: Option<&[f64]>,
        params: &BasisParams,
        v: &mut MultiVector,
        mv: &mut MultiVector,
        counters: &mut Counters,
    );
    /// Local partial of `aᵀb`.
    fn dot(&self, a: &[f64], b: &[f64]) -> f64;
    /// Sums `buf` across ranks (in rank order); serially a no-op.
    fn allreduce(&mut self, buf: &mut [f64]);
    /// The intra-rank thread pool ([`SolveOptions::threads`] workers per
    /// rank). Solver bodies route their row-local BLAS1/BLAS3 work through
    /// it; every kernel is bitwise deterministic in the thread count.
    fn kernels(&self) -> &ParKernels;
    /// This rank's trace track ([`SolveOptions::trace`]); `None` when
    /// tracing is off. Solver bodies clone it once (`Track` is an `Rc`
    /// handle) and open [`Phase`] spans around their Gram/scalar/update
    /// work; the `Exec` implementations own the SpMV, preconditioner,
    /// MPK, and exchange spans.
    fn track(&self) -> Option<&Track>;
    /// First *global* row of this rank's local block (0 serially). The
    /// enlarged-Krylov splitting operator `T(·)` is defined on global row
    /// indices, so its t-way split must not depend on the rank count.
    fn row_offset(&self) -> usize {
        0
    }
    /// `Y ← A·X` column by column. The contract is per-column bitwise
    /// equality with [`Exec::spmv`]; serial execution overrides the default
    /// loop with the interleaved-operand SpMM kernel, whose columns are
    /// documented bitwise equal to the single-vector kernels, so the
    /// override is unobservable in results.
    fn spmm(&mut self, x: &MultiVector, y: &mut MultiVector, counters: &mut Counters) {
        let mut yc = vec![0.0; self.nl()];
        for j in 0..x.k() {
            self.spmv(x.col(j), &mut yc, counters);
            y.col_mut(j).copy_from_slice(&yc);
        }
    }
}

/// Packs Gram matrices (and loose scalars) into one buffer, allreduces it,
/// and unpacks — the one-collective-per-s-steps fusion of the s-step
/// methods. Serially this is a pack/unpack round trip: bitwise identity.
pub(crate) fn allreduce_gram<E: Exec>(exec: &mut E, mats: &mut [&mut DenseMat], extra: &mut [f64]) {
    let mut buf: Vec<f64> = Vec::new();
    for m in mats.iter() {
        for i in 0..m.nrows() {
            for j in 0..m.ncols() {
                buf.push(m[(i, j)]);
            }
        }
    }
    buf.extend_from_slice(extra);
    exec.allreduce(&mut buf);
    let mut it = buf.into_iter();
    for m in mats.iter_mut() {
        for i in 0..m.nrows() {
            for j in 0..m.ncols() {
                m[(i, j)] = it.next().unwrap();
            }
        }
    }
    for e in extra.iter_mut() {
        *e = it.next().unwrap();
    }
}

/// Serial execution: the whole problem is one "rank" (optionally with an
/// intra-process thread pool under it).
pub(crate) struct SerialExec<'a> {
    a: &'a CsrMatrix,
    m: &'a dyn Preconditioner,
    b: &'a [f64],
    mpk: Mpk<'a>,
    pk: ParKernels,
    /// The matrix's cached SELL-C-σ form under [`SparseFormat::Sell`];
    /// `None` keeps the single SpMVs on the CSR kernel.
    sell: Option<Arc<SellMatrix>>,
    track: Option<Track>,
}

impl<'a> SerialExec<'a> {
    pub(crate) fn new(problem: &Problem<'a>, opts: &SolveOptions) -> Self {
        let pk = ParKernels::new(opts.threads);
        let track = opts.trace.as_ref().map(|t| t.track(0));
        let sell = match opts.format {
            SparseFormat::Csr => None,
            SparseFormat::Sell => Some(problem.a.sell()),
        };
        SerialExec {
            a: problem.a,
            m: problem.m,
            b: problem.b,
            mpk: Mpk::new_par(problem.a, problem.m, pk.clone())
                .with_format(opts.format)
                .with_track(track.clone()),
            pk,
            sell,
            track,
        }
    }
}

impl Exec for SerialExec<'_> {
    fn nl(&self) -> usize {
        self.a.nrows()
    }
    fn n_global(&self) -> u64 {
        self.a.nrows() as u64
    }
    fn spmv_flops(&self) -> u64 {
        self.a.spmv_flops()
    }
    fn m_flops(&self) -> u64 {
        self.m.flops_per_apply()
    }
    fn b_local(&self) -> &[f64] {
        self.b
    }
    fn spmv(&mut self, x: &[f64], y: &mut [f64], _counters: &mut Counters) {
        let _s = spcg_obs::span(self.track.as_ref(), Phase::Spmv);
        match self.sell.as_deref() {
            Some(sell) => self.pk.spmv_sell(sell, x, y),
            None => self.pk.spmv(self.a, x, y),
        }
    }
    fn precond(&mut self, r: &[f64], z: &mut [f64], _counters: &mut Counters) {
        let _s = spcg_obs::span(self.track.as_ref(), Phase::Precond);
        self.m.apply_par(&self.pk, r, z);
    }
    fn mpk(
        &mut self,
        w: &[f64],
        known_mw: Option<&[f64]>,
        params: &BasisParams,
        v: &mut MultiVector,
        mv: &mut MultiVector,
        counters: &mut Counters,
    ) {
        self.mpk.run(w, known_mw, params, v, mv, counters);
    }
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        self.pk.dot(a, b)
    }
    fn allreduce(&mut self, _buf: &mut [f64]) {}
    fn kernels(&self) -> &ParKernels {
        &self.pk
    }
    fn track(&self) -> Option<&Track> {
        self.track.as_ref()
    }
    fn spmm(&mut self, x: &MultiVector, y: &mut MultiVector, _counters: &mut Counters) {
        let _s = spcg_obs::span(self.track.as_ref(), Phase::Spmm);
        match self.sell.as_deref() {
            Some(sell) => self.pk.spmm_sell(sell, x, y),
            None => self.pk.spmm(self.a, x, y),
        }
    }
}

/// The distributed SpMV `y ← A x` over a depth-1 ghost zone, through the
/// split-phase exchange. With `overlap` on, the interior rows (no ghost
/// operands) run between the post and the completion — inside the
/// exchange's latency window — and only the frontier rows wait; with it
/// off, the completion directly follows the post (the blocking schedule).
/// Both schedules run the same per-row arithmetic on the same data and
/// record the same halo traffic: one exchange of `plan.words()` ghost
/// words per call.
#[allow(clippy::too_many_arguments)] // internal kernel, three call sites
fn dist_spmv(
    board: &dyn Exchange,
    gz1: &GhostZone,
    plan: &GatherPlan,
    pk: &ParKernels,
    overlap: bool,
    format: SparseFormat,
    ext_buf: &mut Vec<f64>,
    x: &[f64],
    y: &mut [f64],
    counters: &mut Counters,
    track: Option<&Track>,
) {
    let nl = gz1.n_owned();
    ext_buf.resize(gz1.ext_len(), 0.0);
    board.post(x, track);
    ext_buf[..nl].copy_from_slice(x);
    if overlap {
        // Interior rows read only the owned prefix; the stale ghost tail
        // is never touched.
        {
            let _s = spcg_obs::span(track, Phase::Spmv);
            match format {
                SparseFormat::Csr => gz1.spmv_rows_list_par(pk, gz1.interior_rows(), ext_buf, y),
                SparseFormat::Sell => gz1.spmv_interior_sell(pk, ext_buf, y),
            }
        }
        board.complete_into(plan, &mut ext_buf[nl..], track);
        counters.record_halo_exchange(plan.words() as u64);
        let _f = spcg_obs::span(track, Phase::Frontier);
        match format {
            SparseFormat::Csr => gz1.spmv_rows_list_par(pk, gz1.frontier_rows(nl), ext_buf, y),
            SparseFormat::Sell => gz1.spmv_frontier_sell(pk, nl, ext_buf, y),
        }
    } else {
        board.complete_into(plan, &mut ext_buf[nl..], track);
        counters.record_halo_exchange(plan.words() as u64);
        let _s = spcg_obs::span(track, Phase::Spmv);
        match format {
            SparseFormat::Csr => gz1.spmv_prefix_par(pk, nl, ext_buf, y),
            SparseFormat::Sell => gz1.spmv_prefix_sell(pk, nl, ext_buf, y),
        }
    }
}

/// One rank of a block-row-partitioned solve.
pub(crate) struct RankExec<'a> {
    a: &'a CsrMatrix,
    m: &'a dyn Preconditioner,
    /// This rank's slice of the right-hand side.
    b: &'a [f64],
    /// Collective transport — [`ThreadComm`] under the in-process backend,
    /// a socket hub client under the proc backend.
    comm: Box<dyn Comm>,
    lo: usize,
    hi: usize,
    board: Box<dyn Exchange>,
    board2: Box<dyn Exchange>,
    /// Depth-1 ghost zone for single SpMVs.
    gz1: GhostZone,
    /// Reusable gather plan for `gz1`'s ghosts (contiguous-run compressed,
    /// built once — no per-iteration index arithmetic or allocation).
    plan1: GatherPlan,
    /// Depth-s MPK plan — present when the method is s-step and the
    /// preconditioner is pointwise (the paper's Jacobi configuration).
    dist_mpk: Option<DistMpk>,
    /// Gather plan for the MPK's depth-s ghosts; both boards share the
    /// partition offsets, so one plan serves the seed and `M⁻¹`-seed.
    plan_s: Option<GatherPlan>,
    /// Overlap halo exchange with interior compute
    /// ([`SolveOptions::overlap`]).
    overlap: bool,
    /// Sparse format for the ghost-zone SpMV kernels
    /// ([`SolveOptions::format`]).
    format: SparseFormat,
    /// Partition boundaries align with the block-operator boundaries, so a
    /// `DistForm::RankLocal` preconditioner can apply locally.
    rank_local_ok: bool,
    /// Per-rank thread pool: `SolveOptions::threads` workers under each of
    /// the `ranks` comm ranks (T·R workers in total).
    pk: ParKernels,
    ext_buf: Vec<f64>,
    ext_buf2: Vec<f64>,
    full_buf: Vec<f64>,
    /// This rank's trace track, created on the rank's own thread (the
    /// handle is deliberately not `Send`) — `None` when tracing is off.
    track: Option<Track>,
    /// Active fault plan of a faulted run (`None` otherwise): the
    /// `PoisonReduce` site corrupts this rank's allreduce contribution.
    faults: Option<FaultPlan>,
    /// Deterministic allreduce-call sequence number for `PoisonReduce`
    /// decisions — identical across ranks (SPMD control flow) and across
    /// schedule-equivalent runs.
    reduce_calls: u64,
}

impl<'a> RankExec<'a> {
    #[allow(clippy::too_many_arguments)] // internal constructor, one call site
    pub(crate) fn new(
        problem: &Problem<'a>,
        comm: Box<dyn Comm>,
        lo: usize,
        hi: usize,
        board: Box<dyn Exchange>,
        board2: Box<dyn Exchange>,
        mpk_depth: Option<usize>,
        threads: usize,
        overlap: bool,
        format: SparseFormat,
        track: Option<Track>,
        faults: Option<FaultPlan>,
    ) -> Self {
        let pk = ParKernels::new(threads);
        let gz1 = GhostZone::new(problem.a, lo, hi, 1);
        let plan1 = board.plan(gz1.ghost_indices());
        let dist_mpk = match (mpk_depth, problem.m.dist_form()) {
            (Some(depth), DistForm::Pointwise(w)) => Some(
                DistMpk::new_par(
                    problem.a,
                    lo,
                    hi,
                    depth,
                    w,
                    problem.m.flops_per_apply(),
                    pk.clone(),
                )
                .with_format(format)
                .with_track(track.clone()),
            ),
            _ => None,
        };
        let rank_local_ok = match problem.m.dist_form() {
            DistForm::RankLocal { offsets, .. } => {
                offsets.binary_search(&lo).is_ok() && offsets.binary_search(&hi).is_ok()
            }
            _ => false,
        };
        let plan_s = dist_mpk
            .as_ref()
            .map(|dk| board.plan(dk.ghost().ghost_indices()));
        RankExec {
            a: problem.a,
            m: problem.m,
            b: &problem.b[lo..hi],
            comm,
            lo,
            hi,
            board,
            board2,
            gz1,
            plan1,
            dist_mpk,
            plan_s,
            overlap,
            format,
            rank_local_ok,
            pk,
            ext_buf: Vec::new(),
            ext_buf2: Vec::new(),
            full_buf: Vec::new(),
            track,
            faults,
            reduce_calls: 0,
        }
    }

    /// Replicated preconditioner application: post the local residual,
    /// apply the (coupled) operator on the assembled global vector, keep the
    /// owned rows. One exchange of the full remote vector; a coupled
    /// operator leaves nothing exchange-independent to overlap with, so the
    /// completion directly follows the post regardless of the overlap mode
    /// (counters therefore cannot differ between modes here either).
    fn precond_replicated(&mut self, r: &[f64], z: &mut [f64], counters: &mut Counters) {
        self.board.post(r, self.track.as_ref());
        let r_full = self.board.complete_snapshot(self.track.as_ref());
        counters.record_halo_exchange((r_full.len() - (self.hi - self.lo)) as u64);
        self.full_buf.resize(r_full.len(), 0.0);
        self.m.apply_par(&self.pk, &r_full, &mut self.full_buf);
        z.copy_from_slice(&self.full_buf[self.lo..self.hi]);
    }
}

impl Exec for RankExec<'_> {
    fn nl(&self) -> usize {
        self.hi - self.lo
    }
    fn row_offset(&self) -> usize {
        self.lo
    }
    fn n_global(&self) -> u64 {
        self.a.nrows() as u64
    }
    fn spmv_flops(&self) -> u64 {
        self.a.spmv_flops()
    }
    fn m_flops(&self) -> u64 {
        self.m.flops_per_apply()
    }
    fn b_local(&self) -> &[f64] {
        self.b
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64], counters: &mut Counters) {
        let RankExec {
            board,
            gz1,
            plan1,
            overlap,
            format,
            pk,
            ext_buf,
            track,
            ..
        } = self;
        dist_spmv(
            &**board,
            gz1,
            plan1,
            pk,
            *overlap,
            *format,
            ext_buf,
            x,
            y,
            counters,
            track.as_ref(),
        );
    }

    fn precond(&mut self, r: &[f64], z: &mut [f64], counters: &mut Counters) {
        let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
        // Detach the preconditioner borrow from `self` so the dispatch can
        // still use the mutable exchange state.
        let m: &dyn Preconditioner = self.m;
        match m.dist_form() {
            DistForm::Pointwise(w) => {
                // `w[i]·r[i]` vs the historical `r[i]·w[i]`: IEEE
                // multiplication commutes bitwise.
                self.pk.pointwise_mul(&w[self.lo..self.hi], r, z);
            }
            DistForm::RankLocal { op, .. } if self.rank_local_ok => {
                op.apply_rows(self.lo, self.hi, r, z);
            }
            DistForm::SpmvPolynomial(op) => {
                let RankExec {
                    board,
                    gz1,
                    plan1,
                    overlap,
                    format,
                    pk,
                    ext_buf,
                    track,
                    ..
                } = self;
                op.apply_with_spmv(r, z, &mut |xv, yv| {
                    dist_spmv(
                        &**board,
                        gz1,
                        plan1,
                        pk,
                        *overlap,
                        *format,
                        ext_buf,
                        xv,
                        yv,
                        counters,
                        track.as_ref(),
                    );
                });
            }
            // Coupled operators — and block operators whose boundaries cut
            // across the partition — need the assembled vector.
            DistForm::RankLocal { .. } | DistForm::Coupled => {
                self.precond_replicated(r, z, counters);
            }
        }
    }

    fn mpk(
        &mut self,
        w: &[f64],
        known_mw: Option<&[f64]>,
        params: &BasisParams,
        v: &mut MultiVector,
        mv: &mut MultiVector,
        counters: &mut Counters,
    ) {
        if self.dist_mpk.is_some() {
            // PA1: one depth-s ghost exchange covers the whole s-step block.
            let RankExec {
                board,
                board2,
                dist_mpk,
                plan_s,
                overlap,
                ext_buf,
                ext_buf2,
                track,
                ..
            } = self;
            let track = track.as_ref();
            let dk = dist_mpk.as_mut().unwrap();
            let plan = plan_s.as_ref().unwrap();
            let vectors = if known_mw.is_some() { 2 } else { 1 };
            counters.record_halo_exchange(plan.words() as u64 * vectors);
            if *overlap {
                // Post the seed(s), run the interior rows of the first
                // basis product inside the exchange window, complete the
                // exchange from the kernel's callback, finish frontier.
                board.post(w, track);
                if let Some(mw) = known_mw {
                    board2.post(mw, track);
                }
                dk.run_overlapped(w, known_mw, params, v, mv, counters, &mut |wg, mwg| {
                    board.complete_into(plan, wg, track);
                    if let Some(mwg) = mwg {
                        board2.complete_into(plan, mwg, track);
                    }
                });
            } else {
                // Blocking schedule: gather the extended seed(s) up front.
                let nl = dk.ghost().n_owned();
                ext_buf.resize(dk.ghost().ext_len(), 0.0);
                board.post(w, track);
                ext_buf[..nl].copy_from_slice(w);
                board.complete_into(plan, &mut ext_buf[nl..], track);
                if let Some(mw) = known_mw {
                    ext_buf2.resize(dk.ghost().ext_len(), 0.0);
                    board2.post(mw, track);
                    ext_buf2[..nl].copy_from_slice(mw);
                    board2.complete_into(plan, &mut ext_buf2[nl..], track);
                }
                dk.run(
                    ext_buf,
                    known_mw.map(|_| ext_buf2.as_slice()),
                    params,
                    v,
                    mv,
                    counters,
                );
            }
        } else {
            // Non-pointwise preconditioner: the basis recurrence couples all
            // rows through M⁻¹, so replicate the kernel on the assembled
            // seed(s) and keep the owned rows. Costs a full-vector exchange
            // (still one round per s-step block); nothing is computable
            // before the seed assembles, so there is no overlap window and
            // both overlap modes take this identical path.
            let n = self.a.nrows();
            let nl = self.hi - self.lo;
            self.board.post(w, self.track.as_ref());
            let w_full = self.board.complete_snapshot(self.track.as_ref());
            let mut words = (n - nl) as u64;
            let mw_full = known_mw.map(|mw| {
                self.board2.post(mw, self.track.as_ref());
                let full = self.board2.complete_snapshot(self.track.as_ref());
                words += (n - nl) as u64;
                full
            });
            counters.record_halo_exchange(words);
            let mut v_full = MultiVector::zeros(n, v.k());
            let mut mv_full = MultiVector::zeros(n, mv.k());
            Mpk::new_par(self.a, self.m, self.pk.clone())
                .with_format(self.format)
                .with_track(self.track.clone())
                .run(
                    &w_full,
                    mw_full.as_deref(),
                    params,
                    &mut v_full,
                    &mut mv_full,
                    counters,
                );
            for j in 0..v.k() {
                v.col_mut(j)
                    .copy_from_slice(&v_full.col(j)[self.lo..self.hi]);
            }
            for j in 0..mv.k() {
                mv.col_mut(j)
                    .copy_from_slice(&mv_full.col(j)[self.lo..self.hi]);
            }
        }
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        self.pk.dot(a, b)
    }

    fn allreduce(&mut self, buf: &mut [f64]) {
        if let Some(plan) = &self.faults {
            let seq = self.reduce_calls;
            self.reduce_calls += 1;
            // Salt 2: the two exchange boards use 0 and 1.
            if !buf.is_empty() && plan.fire(FaultSite::PoisonReduce, 2, self.comm.rank(), seq) {
                // Corrupt this rank's contribution; the deterministic
                // rank-order sum hands every rank the same NaN, driving
                // consensus breakdown detection rather than rank drift.
                buf[0] = f64::NAN;
            }
        }
        self.comm.allreduce_sum(buf);
    }

    fn kernels(&self) -> &ParKernels {
        &self.pk
    }

    fn track(&self) -> Option<&Track> {
        self.track.as_ref()
    }
}

/// Runs `method` over `ranks` real ranks and assembles the result.
///
/// Every branch a solver takes depends only on allreduced (deterministic,
/// rank-order-summed) scalars, so all ranks run the same control flow;
/// rank 0's outcome/iterations/counters describe the collective run, and
/// the solution is the concatenation of the rank-local blocks.
pub(crate) fn run_ranked(
    method: &Method,
    problem: &Problem<'_>,
    opts: &SolveOptions,
    ranks: usize,
) -> SolveResult {
    let n = problem.n();
    assert!(ranks >= 1, "Engine::Ranked: need at least one rank");
    assert!(ranks <= n, "Engine::Ranked: {ranks} ranks exceed {n} rows");
    // Process-level transport: each rank is a `spcg-rankd` worker process
    // over Unix-domain sockets. Single-rank runs have no communication to
    // move out of process, so they stay on the (identical) thread path.
    if opts.backend == Backend::Proc && ranks > 1 {
        #[cfg(unix)]
        match crate::procexec::run_proc(method, problem, opts, ranks) {
            Ok(out) => return out,
            Err(e) => eprintln!("spcg: proc backend unavailable ({e}); using thread backend"),
        }
        #[cfg(not(unix))]
        eprintln!("spcg: proc backend requires a Unix platform; using thread backend");
    }
    let part = BlockRowPartition::balanced(n, ranks);
    let offsets: Vec<usize> = (0..=ranks)
        .map(|p| if p == 0 { 0 } else { part.range(p - 1).1 })
        .collect();
    // Single-rank runs have no exchange or reduction traffic worth
    // faulting; keeping them clean preserves ranks=1 ↔ serial parity.
    let plan = opts.faults.clone().filter(|p| p.active() && ranks > 1);
    let board = VectorBoard::new(offsets.clone()).with_faults(plan.clone(), 0);
    let board2 = VectorBoard::new(offsets).with_faults(plan.clone(), 1);
    let mpk_depth = method.mpk_depth(opts);
    // A faulted run needs self-healing to absorb poisoned payloads, so an
    // active plan arms the default policy unless the caller chose one.
    let resilience = opts
        .resilience
        .clone()
        .or_else(|| plan.as_ref().map(|_| Resilience::default()));
    let before = plan.as_ref().map(|p| p.counts());

    let results = run_ranks(ranks, |comm: ThreadComm| {
        // The track must be created (and dropped) on the rank's own
        // thread: it is a thread-local buffer that drains into the shared
        // tracer when the rank exits.
        let track = opts.trace.as_ref().map(|t| t.track(comm.rank()));
        let (lo, hi) = part.range(comm.rank());
        let mut exec = RankExec::new(
            problem,
            Box::new(comm.clone()),
            lo,
            hi,
            Box::new(ThreadBoard::new(board.handle(), comm.clone())),
            Box::new(ThreadBoard::new(board2.handle(), comm)),
            mpk_depth,
            opts.threads,
            opts.overlap,
            opts.format,
            track,
            plan.clone(),
        );
        solve_resilient(method, &mut exec, opts, resilience.as_ref())
    });

    let mut x = Vec::with_capacity(n);
    for r in &results {
        x.extend_from_slice(&r.x);
    }
    let mut out = results.into_iter().next().unwrap();
    out.collectives_per_rank = Some(out.counters.global_collectives);
    out.x = x;
    if let (Some(plan), Some(before)) = (&plan, &before) {
        out.faults_absorbed = plan.counts().since(before).total();
    }
    out
}

/// Dispatches a method onto an execution substrate.
pub(crate) fn dispatch<E: Exec>(method: &Method, exec: &mut E, opts: &SolveOptions) -> SolveResult {
    match method {
        Method::Pcg => crate::pcg::pcg_g(exec, opts),
        Method::Pcg3 => crate::pcg3::pcg3_g(exec, opts),
        Method::SPcg { s, basis } => crate::spcg::spcg_g(exec, *s, basis, opts),
        Method::SPcgMon { s } => crate::spcg_mon::spcg_mon_g(exec, *s, opts),
        Method::CaPcg { s, basis } => crate::capcg::capcg_g(exec, *s, basis, opts),
        Method::CaPcg3 { s, basis } => crate::capcg3::capcg3_g(exec, *s, basis, opts),
        Method::AdaptiveCaPcg { s, basis } => {
            crate::adapt_capcg::adaptive_capcg_g(exec, *s, basis, opts)
        }
        Method::CaPcgGs { s, basis } => crate::capcg_gs::capcg_gs_g(exec, *s, basis, opts),
        Method::EkCg { t } => crate::ekcg::ekcg_g(exec, *t, opts),
    }
}
