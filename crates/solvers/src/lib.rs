//! (s-step) preconditioned conjugate gradient solvers.
//!
//! This crate implements the paper's full solver zoo:
//!
//! | Solver | Paper | Module | Notes |
//! |---|---|---|---|
//! | PCG | Alg. 1 | [`mod@pcg`] | two-term baseline, 2 reductions/iter |
//! | PCG3 | Rutishauser \[17\] | [`mod@pcg3`] | three-term baseline behind CA-PCG3 |
//! | sPCG_mon | Alg. 2, Chronopoulos/Gear \[7\] | [`mod@spcg_mon`] | monomial-only s-step method |
//! | **sPCG** | **Alg. 5 + Alg. 6 (the contribution)** | [`mod@spcg`] | s-step method with arbitrary bases |
//! | CA-PCG | Alg. 3, Toledo \[21\] | [`mod@capcg`] | coordinate-space inner loop, 2s−1 MV/precond |
//! | CA-PCG3 | Alg. 4, Hoemmen \[14\] | [`mod@capcg3`] | three-term s-step method, BLAS1 updates |
//!
//! All s-step solvers perform **one global reduction per s steps**; every
//! solver charges `spcg_dist::Counters` with the operation classes of the
//! paper's Table 1, which the `spcg-perf` crate converts into modeled
//! cluster time. Numerical behaviour (Table 2: monomial collapse at s = 10,
//! Chebyshev recovery) is real `f64` arithmetic, not simulation.

pub mod adapt_capcg;
pub mod adaptive;
pub mod batch;
pub mod blockops;
pub mod capcg;
pub mod capcg3;
pub mod capcg_gs;
pub mod ekcg;
pub mod engine;
pub mod method;
pub mod options;
pub mod pcg;
pub mod pcg3;
#[cfg(unix)]
pub mod procexec;
pub mod resilience;
pub mod setup;
pub mod spcg;
pub mod spcg_mon;
pub mod stopping;

pub use adapt_capcg::adaptive_capcg;
pub use batch::{solve_batch, BatchRequest};
pub use capcg::capcg;
pub use capcg3::capcg3;
pub use capcg_gs::capcg_gs;
pub use ekcg::ekcg;
pub use engine::Engine;
pub use method::{solve, Method};
pub use options::env;
pub use options::{
    Outcome, Problem, ProblemError, SolveOptions, SolveOptionsBuilder, SolveResult,
    StoppingCriterion,
};
pub use pcg::pcg;
pub use pcg3::pcg3;
pub use resilience::Resilience;
pub use setup::{chebyshev_basis, newton_basis};
pub use spcg::spcg;
pub use spcg_adapt::{AdaptivePolicy, AdaptiveReport, ShiftUpdate};
pub use spcg_mon::spcg_mon;
