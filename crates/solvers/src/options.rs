//! Problem definition, solver options, and results.

use crate::resilience::Resilience;
use spcg_adapt::{AdaptivePolicy, AdaptiveReport};
use spcg_dist::{Backend, Counters, FaultPlan};
use spcg_obs::Tracer;
use spcg_precond::Preconditioner;
use spcg_sparse::{CsrMatrix, SparseFormat};

/// The linear system `A x = b` with preconditioner `M⁻¹`.
pub struct Problem<'a> {
    /// Sparse SPD system matrix.
    pub a: &'a CsrMatrix,
    /// Preconditioner (a fixed SPD linear operator).
    pub m: &'a dyn Preconditioner,
    /// Right-hand side.
    pub b: &'a [f64],
}

/// Why a [`Problem`] could not be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// The system matrix is not square.
    NotSquare {
        /// Matrix row count.
        nrows: usize,
        /// Matrix column count.
        ncols: usize,
    },
    /// The preconditioner's dimension does not match the matrix.
    PrecondDim {
        /// Matrix dimension.
        matrix: usize,
        /// Preconditioner dimension.
        preconditioner: usize,
    },
    /// The right-hand side's length does not match the matrix.
    RhsLen {
        /// Matrix dimension.
        matrix: usize,
        /// Right-hand-side length.
        rhs: usize,
    },
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::NotSquare { nrows, ncols } => {
                write!(f, "matrix must be square (got {nrows}×{ncols})")
            }
            ProblemError::PrecondDim { matrix, preconditioner } => write!(
                f,
                "preconditioner dimension mismatch (matrix {matrix}, preconditioner {preconditioner})"
            ),
            ProblemError::RhsLen { matrix, rhs } => {
                write!(f, "rhs length mismatch (matrix {matrix}, rhs {rhs})")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

impl<'a> Problem<'a> {
    /// Bundles a system, validating dimensions.
    ///
    /// # Panics
    /// Panics on any dimension mismatch; use [`Problem::try_new`] to handle
    /// invalid input without unwinding.
    pub fn new(a: &'a CsrMatrix, m: &'a dyn Preconditioner, b: &'a [f64]) -> Self {
        Self::try_new(a, m, b).unwrap_or_else(|e| panic!("Problem: {e}"))
    }

    /// Bundles a system, returning the specific mismatch on invalid input.
    pub fn try_new(
        a: &'a CsrMatrix,
        m: &'a dyn Preconditioner,
        b: &'a [f64],
    ) -> Result<Self, ProblemError> {
        if a.nrows() != a.ncols() {
            return Err(ProblemError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        if a.nrows() != m.dim() {
            return Err(ProblemError::PrecondDim {
                matrix: a.nrows(),
                preconditioner: m.dim(),
            });
        }
        if a.nrows() != b.len() {
            return Err(ProblemError::RhsLen {
                matrix: a.nrows(),
                rhs: b.len(),
            });
        }
        Ok(Problem { a, m, b })
    }

    /// System dimension.
    pub fn n(&self) -> usize {
        self.a.nrows()
    }
}

/// How convergence is measured.
///
/// The paper uses all three: Table 2 stops on the *true* relative residual,
/// Table 3 columns 2–5 on the recursively computed residual's 2-norm, and
/// Table 3 columns 6–9 / Figure 1 on the `M`-norm `√(rᵀM⁻¹r)` of the
/// recursive residual (which every solver computes anyway, making the check
/// free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoppingCriterion {
    /// `‖b − A·x^(i)‖₂ / ‖b − A·x^(0)‖₂ < tol` — costs one extra SpMV per
    /// check.
    TrueResidual2Norm,
    /// `‖r^(i)‖₂ / ‖r^(0)‖₂ < tol` on the recursively updated residual —
    /// one extra dot product per check, piggybacked on an existing
    /// reduction.
    RecursiveResidual2Norm,
    /// `√(r^(i)ᵀ M⁻¹ r^(i))` reduced by `tol` — free, the solvers already
    /// reduce `rᵀu`.
    PrecondMNorm,
}

/// Solver options shared by all methods.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Relative reduction required by the stopping criterion (e.g. `1e-9`).
    pub tol: f64,
    /// Cap on fine-grained (PCG-equivalent) iterations.
    pub max_iters: usize,
    /// Stopping criterion.
    pub criterion: StoppingCriterion,
    /// Relative growth of the criterion value that is declared divergence.
    pub divergence_factor: f64,
    /// Convergence checks without improvement of the best value before the
    /// solve is declared stagnated.
    pub stall_checks: usize,
    /// Record the criterion value at every check into the result's history.
    pub keep_history: bool,
    /// Residual replacement (Carson & Demmel \[3\]) for the s-step solvers:
    /// when the recursive residual has shrunk by this factor since the last
    /// replacement, recompute `r = b − A·x` explicitly (one extra SpMV).
    /// `None` disables replacement (the paper's configuration).
    pub residual_replacement: Option<f64>,
    /// Intra-rank worker threads for the parallel kernel layer
    /// (`spcg_sparse::ParKernels`). Under [`crate::Engine::Ranked`] each
    /// rank gets its own pool of this width (`T·R` workers total). Results
    /// are bitwise identical for any thread count; `1` (the default) runs
    /// every kernel inline. The default honours the `SPCG_THREADS`
    /// environment variable so test suites can sweep thread counts without
    /// code changes.
    pub threads: usize,
    /// Overlap halo exchange with interior computation under
    /// [`crate::Engine::Ranked`]: each rank posts its chunk, computes the
    /// SpMV rows that reference no ghost entries while the exchange is in
    /// flight, then completes the exchange and finishes the frontier rows.
    /// Results are **bitwise identical** with overlap on or off (the same
    /// rows run the same per-row arithmetic; only the execution order of
    /// two disjoint row sets changes), and communication counters are
    /// unchanged (the same one exchange per round happens either way).
    /// Defaults to `true` — set the `SPCG_OVERLAP` environment variable to
    /// `0` to default it off. Ignored by [`crate::Engine::Serial`], which
    /// has no exchanges to hide.
    pub overlap: bool,
    /// Sparse format driving the SpMV and matrix-powers kernels:
    /// [`SparseFormat::Csr`] (the default) streams rows from the assembled
    /// CSR arrays, [`SparseFormat::Sell`] converts once to the SELL-C-σ
    /// sliced layout (cached on the matrix) whose padded column-major
    /// slices multiply at unit stride with eight-way independent
    /// accumulators, and enables the cache-fused multi-level matrix powers
    /// sweep where applicable. Solutions, iteration counts, and
    /// [`Counters`] are **bitwise identical** across formats for every
    /// engine, rank count, thread count, and overlap setting — the sliced
    /// kernels accumulate each row's entries in the same CSR order. The
    /// default honours the `SPCG_FORMAT` environment variable
    /// (`csr` | `sell`), so `SPCG_FORMAT=sell cargo test` moves a whole
    /// suite onto the sliced layout.
    pub format: SparseFormat,
    /// Communication backend under [`crate::Engine::Ranked`]:
    /// [`Backend::Thread`] (the default) runs ranks as OS threads over
    /// shared memory, [`Backend::Proc`] runs each rank as a `spcg-rankd`
    /// worker process exchanging halos and reductions over Unix-domain
    /// sockets. Solutions and [`Counters`] are **bitwise identical**
    /// across backends; the proc transport additionally survives a rank
    /// process dying mid-solve (the driver respawns the world and
    /// re-solves, charging a restart). The default honours the
    /// `SPCG_BACKEND` environment variable (`thread` | `proc`), so
    /// `SPCG_BACKEND=proc cargo test` moves a whole suite onto the
    /// process transport. Ranked solves fall back to the thread backend
    /// — with a diagnostic on stderr — when the proc transport cannot
    /// run (missing `spcg-rankd` binary, single rank, or a
    /// preconditioner without a [`spcg_precond::PrecondSpec`] recipe).
    /// Ignored by [`crate::Engine::Serial`].
    pub backend: Backend,
    /// Span tracer recording a per-rank phase timeline of the solve (see
    /// `spcg_obs`). `None` (the default) disables tracing entirely: every
    /// instrumentation site branches on the `Option` and takes no
    /// timestamp, and results and [`Counters`] are bitwise identical with
    /// tracing on, off, or absent — spans only observe. The default
    /// honours the `SPCG_TRACE` environment variable (any value but `0`
    /// enables a fresh tracer; `SPCG_TRACE_CAP` bounds per-rank events),
    /// so `SPCG_TRACE=1 cargo test` traces a whole suite without code
    /// changes. Read the timeline back from this handle after the solve
    /// (`tracer.export_json(...)`).
    pub trace: Option<Tracer>,
    /// Deterministic fault-injection plan for the distributed substrate
    /// (see `spcg_dist::fault`): seeded rank stalls at exchange
    /// boundaries, duplicated epoch publishes, and NaN payload poisoning.
    /// `None` (the default) injects nothing and leaves every code path
    /// bitwise identical to an unfaulted build. The default honours the
    /// `SPCG_FAULTS=<seed>:<rate>` environment variable, so
    /// `SPCG_FAULTS=101:0.05 cargo test` fault-sweeps a whole suite.
    /// Single-rank and serial runs never inject regardless of the plan.
    pub faults: Option<FaultPlan>,
    /// Self-healing policy (see [`Resilience`]): breakdown detection with
    /// residual-replacement restart, generalized from `adaptive_spcg` to
    /// all six methods. `None` (the default) disables the resilient
    /// driver **explicitly configured here** — ranked solves with an
    /// active fault plan arm [`Resilience::default`] on their own, since
    /// injected poison must be survivable. Serial solves only restart
    /// when this is `Some`.
    pub resilience: Option<Resilience>,
    /// Policy for the adaptive controller of [`crate::Method::AdaptiveCaPcg`]
    /// (see `spcg_adapt::AdaptivePolicy`): the `s` range, the Gram
    /// conditioning thresholds of the grow/shrink rule, and the Ritz-drift
    /// tolerance for mid-solve basis rebuilds. Ignored by the fixed-s
    /// methods. The default honours the `SPCG_ADAPTIVE_SMIN`,
    /// `SPCG_ADAPTIVE_SMAX`, `SPCG_ADAPTIVE_COND`, and
    /// `SPCG_ADAPTIVE_PATIENCE` environment variables.
    pub adaptive: AdaptivePolicy,
}

/// Default adaptive policy: `spcg_adapt::AdaptivePolicy::default()` with
/// the `SPCG_ADAPTIVE_*` environment overrides applied (see [`env`]).
fn default_adaptive() -> AdaptivePolicy {
    let mut p = AdaptivePolicy::default();
    let s_min = env::parsed::<usize>("SPCG_ADAPTIVE_SMIN").unwrap_or(p.s_min);
    let s_max = env::parsed::<usize>("SPCG_ADAPTIVE_SMAX").unwrap_or(p.s_max);
    p = p.with_s_range(s_min, s_max);
    if let Some(c) = env::parsed::<f64>("SPCG_ADAPTIVE_COND").filter(|c| *c > 1.0) {
        let (grow, reject) = (p.cond_grow.min(c), p.cond_reject.max(c));
        p = p.with_cond_thresholds(grow, c, reject);
    }
    if let Some(n) = env::parsed::<usize>("SPCG_ADAPTIVE_PATIENCE") {
        p = p.with_grow_patience(n);
    }
    p
}

/// Default thread count: `SPCG_THREADS` if set to a positive integer, else 1.
fn default_threads() -> usize {
    env::parsed::<usize>("SPCG_THREADS")
        .filter(|&t| t > 0)
        .unwrap_or(1)
}

/// Default overlap mode: on, unless `SPCG_OVERLAP=0` turns it off (the
/// escape hatch for comparing the blocking schedule without code changes).
fn default_overlap() -> bool {
    env::flag("SPCG_OVERLAP", true)
}

/// Centralized `SPCG_*` environment-variable handling — the one table of
/// every knob the workspace reads from the environment.
///
/// All variables are read at **configuration time** (`SolveOptions::
/// default()`, tool startup), never mid-solve, and every one of them is
/// optional: unset — or set to something unparseable — always falls back
/// to the documented default. None of them can change *results* except
/// `SPCG_FAULTS` (which injects recoverable faults by design); the rest
/// select execution shape or observation, all covered by the workspace's
/// bitwise-determinism guarantee.
///
/// | Variable | Values | Default | Read by | Effect |
/// |---|---|---|---|---|
/// | `SPCG_THREADS` | integer ≥ 1 | `1` | [`SolveOptions::threads`] default | Intra-rank worker threads per rank. |
/// | `SPCG_OVERLAP` | `0` \| `1` | `1` | [`SolveOptions::overlap`] default | Halo-exchange/compute overlap under ranked execution. |
/// | `SPCG_FORMAT` | `csr` \| `sell` | `csr` | `spcg_sparse::SparseFormat::from_env` → [`SolveOptions::format`] default | Sparse kernel layout (CSR vs SELL-C-σ). |
/// | `SPCG_BACKEND` | `thread` \| `proc` | `thread` | `spcg_dist::Backend::from_env` → [`SolveOptions::backend`] default | Ranked transport: OS threads vs worker processes. |
/// | `SPCG_TRACE` | `0` \| anything else | off | `spcg_obs::Tracer::from_env` → [`SolveOptions::trace`] default | Span tracing (observational only). |
/// | `SPCG_TRACE_CAP` | integer | tracer default | `spcg_obs::Tracer::from_env`, `spcg-bench` | Per-rank traced-event cap. |
/// | `SPCG_FAULTS` | `<seed>:<rate>` | none | `spcg_dist::FaultPlan::from_env` → [`SolveOptions::faults`] default | Deterministic fault injection under ranked execution. |
/// | `SPCG_RANKS` | integer ≥ 1 | suite-specific | integration test suites | Extra rank count added to the test sweeps. |
/// | `SPCG_RANKD` | path | auto-discovered | `spcg_solvers::procexec` | Explicit location of the `spcg-rankd` worker binary. |
/// | `SPCG_PROC_KILL` | `<rank>:<nth>` | none | `spcg_solvers::procexec` | Fault drill: the rank exits before its nth allreduce. |
/// | `SPCG_QUICK` | `0` \| `1` | `0` | `spcg-bench` | Shrink benchmark sweeps for smoke runs. |
/// | `SPCG_GRID` | integer ≥ 1 | bin-specific | `spcg-bench` bins | Poisson grid edge override. |
/// | `SPCG_ADAPTIVE_SMIN` | integer ≥ 2 | `2` | [`SolveOptions::adaptive`] default | Smallest `s` the adaptive controller shrinks to. |
/// | `SPCG_ADAPTIVE_SMAX` | integer ≥ smin | `16` | [`SolveOptions::adaptive`] default | Largest `s` the adaptive controller grows to (also the ghost-zone depth of adaptive ranked solves). |
/// | `SPCG_ADAPTIVE_COND` | float > 1 | `1e7` | [`SolveOptions::adaptive`] default | Gram conditioning estimate above which a block shrinks `s`. |
/// | `SPCG_ADAPTIVE_PATIENCE` | integer ≥ 1 | `3` | [`SolveOptions::adaptive`] default | Consecutive healthy blocks before `s` doubles. |
///
/// Crates below this one in the dependency graph (`spcg_sparse`,
/// `spcg_dist`, `spcg_obs`) parse their variables locally — they cannot
/// call up into this module — but every variable is documented here, and
/// all parsing in this crate and the tools layer goes through
/// [`parsed`](env::parsed) / [`flag`](env::flag) / [`raw`](env::raw).
pub mod env {
    use std::str::FromStr;

    /// `Some(value)` when `name` is set and its trimmed value parses as
    /// `T`. Unset, empty, or unparseable all yield `None`: a malformed
    /// setting behaves like an absent one, so the documented default is
    /// always reachable.
    pub fn parsed<T: FromStr>(name: &str) -> Option<T> {
        raw(name)?.trim().parse().ok()
    }

    /// Boolean knob: unset or empty yields `default`; `0` and `false`
    /// (case-insensitive) are off; anything else is on.
    pub fn flag(name: &str, default: bool) -> bool {
        match raw(name) {
            None => default,
            Some(v) => {
                let v = v.trim();
                if v.is_empty() {
                    default
                } else {
                    v != "0" && !v.eq_ignore_ascii_case("false")
                }
            }
        }
    }

    /// The raw string, `None` when unset — for values with their own
    /// grammar (`SPCG_FAULTS=<seed>:<rate>`, paths).
    pub fn raw(name: &str) -> Option<String> {
        std::env::var(name).ok()
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-9,
            max_iters: 12_000,
            criterion: StoppingCriterion::TrueResidual2Norm,
            divergence_factor: 1e8,
            stall_checks: 4000,
            keep_history: false,
            residual_replacement: None,
            threads: default_threads(),
            overlap: default_overlap(),
            format: SparseFormat::from_env().unwrap_or_default(),
            backend: Backend::from_env().unwrap_or_default(),
            trace: Tracer::from_env(),
            faults: FaultPlan::from_env(),
            resilience: None,
            adaptive: default_adaptive(),
        }
    }
}

impl SolveOptions {
    /// The paper's Table-2 configuration: true residual, `tol = 1e-9`,
    /// failure declared beyond 12 000 iterations.
    pub fn table2() -> Self {
        Self::default()
    }

    /// Starts a [`SolveOptionsBuilder`] seeded with the defaults.
    pub fn builder() -> SolveOptionsBuilder {
        SolveOptionsBuilder {
            opts: Self::default(),
        }
    }

    /// Builder-style tolerance override.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Builder-style iteration cap override.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Builder-style criterion override.
    pub fn with_criterion(mut self, criterion: StoppingCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Builder-style history recording.
    pub fn with_history(mut self) -> Self {
        self.keep_history = true;
        self
    }

    /// Builder-style residual replacement (see the field docs).
    pub fn with_residual_replacement(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor < 1.0,
            "replacement factor must be in (0, 1)"
        );
        self.residual_replacement = Some(factor);
        self
    }

    /// Builder-style intra-rank thread count (see the field docs).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        self.threads = threads;
        self
    }

    /// Builder-style halo-exchange overlap (see [`SolveOptions::overlap`]).
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Builder-style sparse format (see [`SolveOptions::format`]).
    pub fn with_format(mut self, format: SparseFormat) -> Self {
        self.format = format;
        self
    }

    /// Builder-style communication backend (see [`SolveOptions::backend`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style span tracer (see [`SolveOptions::trace`]).
    pub fn with_trace(mut self, trace: Option<Tracer>) -> Self {
        self.trace = trace;
        self
    }

    /// Builder-style fault plan (see [`SolveOptions::faults`]). Pass
    /// `None` to force faults off even when `SPCG_FAULTS` is set.
    pub fn with_faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style resilience policy (see [`SolveOptions::resilience`]).
    pub fn with_resilience(mut self, resilience: Resilience) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Builder-style adaptive policy (see [`SolveOptions::adaptive`]).
    pub fn with_adaptive(mut self, adaptive: AdaptivePolicy) -> Self {
        self.adaptive = adaptive;
        self
    }
}

/// Fluent constructor for [`SolveOptions`] (see [`SolveOptions::builder`]).
///
/// ```
/// use spcg_solvers::{SolveOptions, StoppingCriterion};
/// let opts = SolveOptions::builder()
///     .tol(1e-9)
///     .max_iters(500)
///     .criterion(StoppingCriterion::RecursiveResidual2Norm)
///     .build();
/// assert_eq!(opts.max_iters, 500);
/// ```
#[derive(Debug, Clone)]
pub struct SolveOptionsBuilder {
    opts: SolveOptions,
}

impl SolveOptionsBuilder {
    /// Relative reduction required by the stopping criterion.
    pub fn tol(mut self, tol: f64) -> Self {
        self.opts.tol = tol;
        self
    }

    /// Cap on fine-grained (PCG-equivalent) iterations.
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.opts.max_iters = max_iters;
        self
    }

    /// Stopping criterion.
    pub fn criterion(mut self, criterion: StoppingCriterion) -> Self {
        self.opts.criterion = criterion;
        self
    }

    /// Relative growth of the criterion value that is declared divergence.
    pub fn divergence_factor(mut self, factor: f64) -> Self {
        self.opts.divergence_factor = factor;
        self
    }

    /// Convergence checks without improvement before declaring stagnation.
    pub fn stall_checks(mut self, checks: usize) -> Self {
        self.opts.stall_checks = checks;
        self
    }

    /// Record the criterion value at every check into the result's history.
    pub fn keep_history(mut self, keep: bool) -> Self {
        self.opts.keep_history = keep;
        self
    }

    /// Residual replacement factor (see [`SolveOptions::residual_replacement`]).
    pub fn residual_replacement(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor < 1.0,
            "replacement factor must be in (0, 1)"
        );
        self.opts.residual_replacement = Some(factor);
        self
    }

    /// Intra-rank thread count (see [`SolveOptions::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        self.opts.threads = threads;
        self
    }

    /// Halo-exchange overlap under ranked execution (see
    /// [`SolveOptions::overlap`]).
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.opts.overlap = overlap;
        self
    }

    /// Sparse format for the SpMV and matrix-powers kernels (see
    /// [`SolveOptions::format`]).
    pub fn format(mut self, format: SparseFormat) -> Self {
        self.opts.format = format;
        self
    }

    /// Communication backend under ranked execution (see
    /// [`SolveOptions::backend`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.opts.backend = backend;
        self
    }

    /// Span tracer for a per-rank phase timeline (see
    /// [`SolveOptions::trace`]). Pass `None` to force tracing off even
    /// when `SPCG_TRACE` is set.
    pub fn trace(mut self, trace: Option<Tracer>) -> Self {
        self.opts.trace = trace;
        self
    }

    /// Fault-injection plan (see [`SolveOptions::faults`]). Pass `None`
    /// to force faults off even when `SPCG_FAULTS` is set.
    pub fn faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.opts.faults = faults;
        self
    }

    /// Resilience policy (see [`SolveOptions::resilience`]).
    pub fn resilience(mut self, resilience: Resilience) -> Self {
        self.opts.resilience = Some(resilience);
        self
    }

    /// Adaptive-controller policy (see [`SolveOptions::adaptive`]).
    pub fn adaptive(mut self, adaptive: AdaptivePolicy) -> Self {
        self.opts.adaptive = adaptive;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> SolveOptions {
        self.opts
    }
}

/// Why a solve ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Criterion satisfied.
    Converged,
    /// Iteration cap reached without convergence.
    MaxIterations,
    /// Criterion value blew up or became non-finite.
    Diverged,
    /// No improvement for `stall_checks` consecutive checks.
    Stagnated,
    /// An internal computation failed (e.g. a singular scalar-work system or
    /// a non-positive curvature/denominator) — the classic s-step basis
    /// breakdown.
    Breakdown(String),
    /// The request's wall-clock deadline passed before the criterion was
    /// met. Only produced by the batched solve path
    /// ([`crate::solve_batch`]) for requests carrying a deadline; the
    /// iterate is the best one available when the deadline was noticed
    /// (deadlines are checked at iteration boundaries). Unlike every
    /// other outcome this one is timing-dependent, so it is excluded
    /// from the bitwise-determinism guarantee.
    DeadlineExpired,
}

impl Outcome {
    /// True only for [`Outcome::Converged`].
    pub fn converged(&self) -> bool {
        matches!(self, Outcome::Converged)
    }
}

/// Result of a solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Final approximate solution.
    pub x: Vec<f64>,
    /// How the solve ended.
    pub outcome: Outcome,
    /// Fine-grained (PCG-equivalent) iterations performed. s-step solvers
    /// advance this by s per outer iteration, so Table-2-style comparisons
    /// are in the same unit across methods.
    pub iterations: usize,
    /// `(iteration, criterion value)` at each check, if requested.
    pub history: Vec<(usize, f64)>,
    /// Instrumented operation counts.
    pub counters: Counters,
    /// Global collectives observed by each rank under ranked execution
    /// ([`crate::Engine::Ranked`]); `None` for serial solves. Every rank
    /// participates in every collective, so this is also the per-rank
    /// synchronization count the paper's Table 1 models.
    pub collectives_per_rank: Option<u64>,
    /// Residual-replacement restarts the resilience driver took. Zero for
    /// undisturbed solves and whenever [`SolveOptions::resilience`] was
    /// off (also mirrored into `counters.restarts`).
    pub restarts: usize,
    /// The `s` parameter of each stage the resilience driver ran, in
    /// order — `[8, 4]` records one restart that halved s. A single entry
    /// (or empty, when the driver was off) means no breakdown forced a
    /// reduction. Standard PCG records its stages with `s = 1`.
    pub s_schedule: Vec<usize>,
    /// Faults the active [`SolveOptions::faults`] plan injected during
    /// this solve (all sites, all ranks) — every one of them absorbed,
    /// since the solve returned. Zero without a plan.
    pub faults_absorbed: u64,
    /// Adaptive-control telemetry (`spcg_adapt::AdaptiveReport`): every
    /// mid-solve basis rebuild with the Ritz interval it used, plus the
    /// final running Ritz values. `Some` exactly when the method was
    /// [`crate::Method::AdaptiveCaPcg`]; the block-size trajectory itself
    /// is in [`SolveResult::s_schedule`].
    pub adaptive: Option<AdaptiveReport>,
}

impl SolveResult {
    /// True if the solve converged.
    pub fn converged(&self) -> bool {
        self.outcome.converged()
    }

    /// True relative residual `‖b − A·x‖ / ‖b‖` of the returned solution —
    /// an *uninstrumented* diagnostic for tests and reports.
    pub fn true_relative_residual(&self, a: &CsrMatrix, b: &[f64]) -> f64 {
        let mut ax = vec![0.0; b.len()];
        a.spmv(&self.x, &mut ax);
        let num: f64 = ax
            .iter()
            .zip(b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::Identity;
    use spcg_sparse::generators::poisson::poisson_1d;

    #[test]
    fn problem_validates_dimensions() {
        let a = poisson_1d(4);
        let m = Identity::new(4);
        let b = vec![1.0; 4];
        let p = Problem::new(&a, &m, &b);
        assert_eq!(p.n(), 4);
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn problem_rejects_bad_rhs() {
        let a = poisson_1d(4);
        let m = Identity::new(4);
        let b = vec![1.0; 3];
        Problem::new(&a, &m, &b);
    }

    #[test]
    fn options_builders() {
        let o = SolveOptions::default()
            .with_tol(1e-6)
            .with_max_iters(100)
            .with_criterion(StoppingCriterion::PrecondMNorm)
            .with_history();
        assert_eq!(o.tol, 1e-6);
        assert_eq!(o.max_iters, 100);
        assert_eq!(o.criterion, StoppingCriterion::PrecondMNorm);
        assert!(o.keep_history);
    }

    #[test]
    fn try_new_reports_the_specific_mismatch() {
        let a = poisson_1d(4);
        let m = Identity::new(4);
        let b3 = vec![1.0; 3];
        match Problem::try_new(&a, &m, &b3) {
            Err(ProblemError::RhsLen { matrix, rhs }) => {
                assert_eq!((matrix, rhs), (4, 3));
            }
            other => panic!("expected RhsLen, got {:?}", other.err()),
        }
        let m5 = Identity::new(5);
        let b4 = vec![1.0; 4];
        assert!(matches!(
            Problem::try_new(&a, &m5, &b4),
            Err(ProblemError::PrecondDim {
                matrix: 4,
                preconditioner: 5
            })
        ));
        assert!(Problem::try_new(&a, &m, &b4).is_ok());
    }

    #[test]
    fn builder_matches_with_style() {
        let o = SolveOptions::builder()
            .tol(1e-6)
            .max_iters(100)
            .criterion(StoppingCriterion::PrecondMNorm)
            .keep_history(true)
            .stall_checks(7)
            .divergence_factor(1e6)
            .residual_replacement(0.25)
            .build();
        assert_eq!(o.tol, 1e-6);
        assert_eq!(o.max_iters, 100);
        assert_eq!(o.criterion, StoppingCriterion::PrecondMNorm);
        assert!(o.keep_history);
        assert_eq!(o.stall_checks, 7);
        assert_eq!(o.divergence_factor, 1e6);
        assert_eq!(o.residual_replacement, Some(0.25));
    }

    #[test]
    fn threads_option_defaults_and_builds() {
        // Default is 1 unless SPCG_THREADS overrides it (not set in tests
        // unless the CI thread-sweep job exports it).
        let dflt = SolveOptions::default().threads;
        assert!(dflt >= 1);
        assert_eq!(SolveOptions::builder().threads(4).build().threads, 4);
        assert_eq!(SolveOptions::default().with_threads(2).threads, 2);
    }

    #[test]
    fn overlap_option_defaults_on_and_builds() {
        // Default is on unless SPCG_OVERLAP=0 (not set in the default test
        // environment; the CI blocking-schedule job may export it).
        if std::env::var("SPCG_OVERLAP").is_err() {
            assert!(SolveOptions::default().overlap);
        }
        assert!(!SolveOptions::builder().overlap(false).build().overlap);
        assert!(SolveOptions::builder().overlap(true).build().overlap);
        assert!(!SolveOptions::default().with_overlap(false).overlap);
    }

    #[test]
    fn backend_option_defaults_and_builds() {
        // Default is Thread unless SPCG_BACKEND overrides it (the CI proc
        // job exports it; tests that need a specific backend set it
        // explicitly rather than trusting the environment).
        if std::env::var("SPCG_BACKEND").is_err() {
            assert_eq!(SolveOptions::default().backend, Backend::Thread);
        }
        assert_eq!(
            SolveOptions::builder()
                .backend(Backend::Proc)
                .build()
                .backend,
            Backend::Proc
        );
        assert_eq!(
            SolveOptions::default().with_backend(Backend::Proc).backend,
            Backend::Proc
        );
    }

    #[test]
    fn format_option_defaults_and_builds() {
        // Default is Csr unless SPCG_FORMAT overrides it (the CI sell job
        // exports it; tests needing a specific format set it explicitly).
        if std::env::var("SPCG_FORMAT").is_err() {
            assert_eq!(SolveOptions::default().format, SparseFormat::Csr);
        }
        assert_eq!(
            SolveOptions::builder()
                .format(SparseFormat::Sell)
                .build()
                .format,
            SparseFormat::Sell
        );
        assert_eq!(
            SolveOptions::default()
                .with_format(SparseFormat::Sell)
                .format,
            SparseFormat::Sell
        );
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_rejected() {
        let _ = SolveOptions::builder().threads(0);
    }

    #[test]
    fn outcome_converged_flag() {
        assert!(Outcome::Converged.converged());
        assert!(!Outcome::Diverged.converged());
        assert!(!Outcome::Breakdown("x".into()).converged());
    }
}
