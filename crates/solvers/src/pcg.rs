//! Standard preconditioned conjugate gradients (paper Algorithm 1).
//!
//! The baseline every s-step method is compared against. Per iteration:
//! one SpMV, one preconditioner application, two dot products — and two
//! global reductions, which is what stops PCG from scaling beyond ~32 nodes
//! in the paper's Figure 1.

use crate::engine::{Exec, SerialExec};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult};
use crate::stopping::{criterion_value, StopState, Verdict};
use spcg_dist::Counters;
use spcg_obs::Phase;

/// Solves `A x = b` with standard PCG (zero initial guess).
pub fn pcg(problem: &Problem<'_>, opts: &SolveOptions) -> SolveResult {
    pcg_g(&mut SerialExec::new(problem, opts), opts)
}

/// PCG over any execution substrate (see [`crate::engine`]).
pub(crate) fn pcg_g<E: Exec>(exec: &mut E, opts: &SolveOptions) -> SolveResult {
    let n = exec.nl();
    let nw = exec.n_global();
    let pk = exec.kernels().clone();
    let tr = exec.track().cloned();
    let mut counters = Counters::new();
    let mut stop = StopState::new(opts);
    let mut scratch = Vec::new();

    // r0 = b − A x0 = b for x0 = 0.
    let mut x = vec![0.0; n];
    let mut r = exec.b_local().to_vec();
    let mut u = vec![0.0; n];
    exec.precond(&r, &mut u, &mut counters);
    counters.record_precond(exec.m_flops());
    let mut p = u.clone();
    let mut s = vec![0.0; n];

    // rtu = rᵀu (reduced globally together with the first pᵀs next
    // iteration in real MPI; charged as part of the 2 collectives/iter).
    let mut red = [exec.dot(&r, &u)];
    {
        let _g = spcg_obs::span(tr.as_ref(), Phase::Gram);
        exec.allreduce(&mut red);
    }
    let mut rtu = red[0];
    counters.record_dots(1, nw);
    counters.record_collective(1);

    let v0 = criterion_value(
        exec,
        opts.criterion,
        &x,
        &r,
        rtu,
        &mut scratch,
        &mut counters,
    );
    let mut verdict = stop.check(0, v0);

    let mut iterations = 0usize;
    while verdict == Verdict::Continue && iterations < opts.max_iters {
        // s = A p.
        exec.spmv(&p, &mut s, &mut counters);
        counters.record_spmv(exec.spmv_flops());
        let mut red = [exec.dot(&p, &s)];
        {
            let _g = spcg_obs::span(tr.as_ref(), Phase::Gram);
            exec.allreduce(&mut red);
        }
        let pts = red[0];
        counters.record_dots(1, nw);
        counters.record_collective(1);
        if !(pts > 0.0) || !pts.is_finite() {
            // Zero curvature at machine-precision residuals means we are
            // done, not broken; judge by the criterion before failing.
            let v = criterion_value(
                exec,
                opts.criterion,
                &x,
                &r,
                rtu,
                &mut scratch,
                &mut counters,
            );
            let outcome = stop.resolve_breakdown(
                iterations,
                v,
                format!("non-positive curvature pᵀAp = {pts}"),
            );
            return finish(x, outcome, iterations, stop, counters);
        }
        let alpha = rtu / pts;
        {
            let _v = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
            pk.axpy(alpha, &p, &mut x);
            pk.axpy(-alpha, &s, &mut r);
        }
        counters.blas1_flops += 4 * nw;
        exec.precond(&r, &mut u, &mut counters);
        counters.record_precond(exec.m_flops());
        let mut red = [exec.dot(&r, &u)];
        {
            let _g = spcg_obs::span(tr.as_ref(), Phase::Gram);
            exec.allreduce(&mut red);
        }
        let rtu_new = red[0];
        counters.record_dots(1, nw);
        counters.record_collective(1);
        if !rtu_new.is_finite() {
            return finish(x, Outcome::Diverged, iterations, stop, counters);
        }
        let beta = rtu_new / rtu;
        rtu = rtu_new;
        {
            let _v = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
            pk.xpby(&u, beta, &mut p);
        }
        counters.blas1_flops += 2 * nw;

        iterations += 1;
        counters.iterations += 1;
        counters.outer_iterations += 1;
        let v = criterion_value(
            exec,
            opts.criterion,
            &x,
            &r,
            rtu,
            &mut scratch,
            &mut counters,
        );
        verdict = stop.check(iterations, v);
    }

    finish(x, StopState::outcome(verdict), iterations, stop, counters)
}

fn finish(
    x: Vec<f64>,
    outcome: Outcome,
    iterations: usize,
    stop: StopState,
    counters: Counters,
) -> SolveResult {
    SolveResult {
        x,
        outcome,
        iterations,
        history: stop.history,
        counters,
        collectives_per_rank: None,
        restarts: 0,
        s_schedule: Vec::new(),
        faults_absorbed: 0,
        adaptive: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::StoppingCriterion;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn solves_small_poisson_exactly() {
        let a = poisson_1d(32);
        let m = Identity::new(32);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = pcg(&problem, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.true_relative_residual(&a, &b) < 1e-8);
        // Solution entries are 1/√n.
        let want = 1.0 / 32f64.sqrt();
        for v in &res.x {
            assert!((v - want).abs() < 1e-7);
        }
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations() {
        let a = poisson_1d(24);
        let m = Identity::new(24);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = pcg(&problem, &SolveOptions::default().with_tol(1e-12));
        assert!(res.converged());
        assert!(
            res.iterations <= 24,
            "CG finite termination violated: {}",
            res.iterations
        );
    }

    #[test]
    fn jacobi_preconditioning_reduces_iterations_on_scaled_problem() {
        // Badly scaled diagonal blocks: Jacobi fixes the scaling.
        let mut a = poisson_2d(16);
        // Scale rows/cols: D A D with D = diag(1..): do it via COO rebuild.
        let n = a.nrows();
        let mut coo = spcg_sparse::CooMatrix::new(n, n);
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let di = 1.0 + (i % 7) as f64;
            for (&c, &v) in cols.iter().zip(vals) {
                let dc = 1.0 + (c % 7) as f64;
                coo.push(i, c, v * di * dc);
            }
        }
        a = coo.to_csr();
        let b = paper_rhs(&a);
        let ident = Identity::new(n);
        let jac = Jacobi::new(&a);
        let p1 = Problem::new(&a, &ident, &b);
        let p2 = Problem::new(&a, &jac, &b);
        let r1 = pcg(&p1, &SolveOptions::default().with_tol(1e-8));
        let r2 = pcg(&p2, &SolveOptions::default().with_tol(1e-8));
        assert!(r1.converged() && r2.converged());
        assert!(
            r2.iterations < r1.iterations,
            "jacobi ({}) not better than identity ({})",
            r2.iterations,
            r1.iterations
        );
    }

    #[test]
    fn counters_match_table1_per_iteration() {
        let a = poisson_1d(50);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        // M-norm criterion: no extra instrumented work per check.
        let opts = SolveOptions::default()
            .with_criterion(StoppingCriterion::PrecondMNorm)
            .with_tol(1e-10);
        let res = pcg(&problem, &opts);
        assert!(res.converged());
        let it = res.iterations as u64;
        let n = 50u64;
        // Per iteration: 1 SpMV, 1 precond, 2 dots, 2 collectives, 6n
        // update FLOPs (Table 1 row "PCG").
        assert_eq!(res.counters.spmv_count, it);
        assert_eq!(res.counters.precond_count, it + 1); // +1 setup
        assert_eq!(res.counters.dot_count, 2 * it + 1); // +1 setup rtu
        assert_eq!(res.counters.global_collectives, 2 * it + 1);
        assert_eq!(res.counters.blas1_flops, 6 * n * it);
        assert_eq!(res.counters.iterations, it);
    }

    #[test]
    fn all_criteria_converge() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        for crit in [
            StoppingCriterion::TrueResidual2Norm,
            StoppingCriterion::RecursiveResidual2Norm,
            StoppingCriterion::PrecondMNorm,
        ] {
            let res = pcg(&problem, &SolveOptions::default().with_criterion(crit));
            assert!(res.converged(), "{crit:?} failed: {:?}", res.outcome);
            assert!(res.true_relative_residual(&a, &b) < 1e-6, "{crit:?}");
        }
    }

    #[test]
    fn max_iterations_is_respected() {
        let a = poisson_2d(24);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = pcg(
            &problem,
            &SolveOptions::default().with_tol(1e-14).with_max_iters(3),
        );
        assert_eq!(res.outcome, Outcome::MaxIterations);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn history_is_monotone_for_easy_problem() {
        let a = poisson_1d(16);
        let m = Identity::new(16);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = pcg(&problem, &SolveOptions::default().with_history());
        assert!(res.history.len() >= 2);
        // True residual of CG on SPD decreases monotonically in A-norm; the
        // 2-norm may wiggle, so only check overall reduction.
        let first = res.history.first().unwrap().1;
        let last = res.history.last().unwrap().1;
        assert!(last < first * 1e-8);
    }
}
