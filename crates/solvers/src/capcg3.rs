//! CA-PCG3 — communication-avoiding three-term PCG (Hoemmen \[14\], paper
//! Algorithm 4).
//!
//! Built on PCG3's three-term recurrence. Per outer iteration it extends
//! the basis `W^(k)` spanning `K_{s+1}(AM⁻¹, r^(sk))` (s SpMVs + s
//! preconditioner applications), reduces one `(2s+1)²` Gram matrix against
//! the *previous* outer iteration's residual block `[R^(k-1), W^(k)]`, and
//! then forms every `A·u^(sk+j)` and `M⁻¹A·u^(sk+j)` of the inner loop as
//! GEMVs with coordinate vectors `d` (eq. 10) — no further SpMV or
//! preconditioner work.
//!
//! The coordinate operator `D` maps `g` (coordinates of `r^(sk+j)`) to `d`
//! (coordinates of `A·u^(sk+j)`): on the `W` block it is the change-of-basis
//! matrix `B_{s+1}` (eq. 9); on the `R^(k-1)` block it inverts the previous
//! block's three-term recurrence,
//! `A·u_i = (1/γ_i)·r_i + ((1−ρ_i)/(ρ_i γ_i))·r_{i-1} − (1/(ρ_i γ_i))·r_{i+1}`,
//! using the γ/ρ scalars saved from that block. A support argument
//! (asserted in debug builds) shows the two out-of-basis columns — old
//! residual `r^(s(k-1)-1)` and basis vector `P_{s+1}` — are never touched
//! with nonzero weight during the s inner steps.
//!
//! The x/r/u updates are unblockable BLAS1 three-term combinations — the
//! performance drawback the paper holds against CA-PCG3 (§4.1).

use crate::blockops::{gemv_concat, gram_concat};
use crate::engine::{allreduce_gram, Exec, SerialExec};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult};
use crate::stopping::{criterion_value, StopState, Verdict};
use spcg_basis::cob::b_small;
use spcg_basis::BasisType;
use spcg_dist::Counters;
use spcg_obs::Phase;
use spcg_sparse::{blas, DenseMat, MultiVector};

/// Solves `A x = b` with CA-PCG3 (Alg. 4).
///
/// # Panics
/// Panics if `s < 2`.
pub fn capcg3(
    problem: &Problem<'_>,
    s: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    capcg3_g(&mut SerialExec::new(problem, opts), s, basis, opts)
}

/// CA-PCG3 over any execution substrate (see [`crate::engine`]).
pub(crate) fn capcg3_g<E: Exec>(
    exec: &mut E,
    s: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    assert!(s >= 2, "capcg3: s must be at least 2");
    let n = exec.nl();
    let nw = exec.n_global();
    let sw = s as u64;
    let dim = 2 * s + 1;
    let pk = exec.kernels().clone();
    let tr = exec.track().cloned();
    let mut counters = Counters::new();
    let mut stop = StopState::new(opts);
    let mut scratch_vec = Vec::new();

    let params = basis.params(s);
    let b_w = b_small(&params, s + 1); // (s+1) × s, the W-block operator

    // Full-length three-term state.
    let mut x_prev = vec![0.0; n];
    let mut x = vec![0.0; n];
    let mut r_prev = vec![0.0; n];
    let mut r = exec.b_local().to_vec();
    let mut u_prev = vec![0.0; n];
    let mut u = vec![0.0; n];
    exec.precond(&r, &mut u, &mut counters);
    counters.record_precond(exec.m_flops());

    // Previous residual block R^(k-1) / U^(k-1) and its recurrence scalars.
    let mut r_old = MultiVector::zeros(n, s);
    let mut u_old = MultiVector::zeros(n, s);
    let mut gamma_hist: Vec<f64> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();

    // Cross-iteration scalars of the three-term recurrence.
    let mut mu_prev = 0.0f64;
    let mut gamma_prev = 0.0f64;
    let mut rho_prev = 1.0f64;

    let mut w_mat = MultiVector::zeros(n, s + 1);
    let mut v_mat = MultiVector::zeros(n, s + 1);
    let mut w_vec = vec![0.0; n];
    let mut v_vec = vec![0.0; n];
    let mut next = vec![0.0; n];

    let mut iterations = 0usize;
    let final_verdict;
    'outer: loop {
        // --- basis W^(k) = K_{s+1}(AM⁻¹, r^(sk)), V = M⁻¹W ---
        // u is refreshed from the recursive residual instead of reusing the
        // recursively updated preconditioned residual: the three-term u
        // recursion compounds drift across blocks and, at s ≳ 10, costs
        // several digits of attainable accuracy. One extra preconditioner
        // application per s steps.
        exec.mpk(&r, None, &params, &mut w_mat, &mut v_mat, &mut counters);
        u.copy_from_slice(v_mat.col(0));

        // --- single global reduction: G = [U_old|V]ᵀ[R_old|W] ---
        let gram_span = spcg_obs::span(tr.as_ref(), Phase::Gram);
        let mut g_mat = gram_concat(&pk, &u_old, &v_mat, &r_old, &w_mat);
        counters.record_dots((dim * dim) as u64, nw);
        counters.record_collective((dim * dim) as u64);
        allreduce_gram(exec, &mut [&mut g_mat], &mut []);
        drop(gram_span);
        let g_mat = g_mat;

        // --- convergence check every s steps ---
        let rtu = g_mat[(s, s)]; // uᵀr (V col 0 · W col 0)
        let value = criterion_value(
            exec,
            opts.criterion,
            &x,
            &r,
            rtu,
            &mut scratch_vec,
            &mut counters,
        );
        let verdict = stop.check(iterations, value);
        if verdict != Verdict::Continue {
            final_verdict = StopState::outcome(verdict);
            break;
        }
        if iterations >= opts.max_iters {
            final_verdict = Outcome::MaxIterations;
            break;
        }

        // --- coordinate operator D for this outer iteration ---
        let d_op = {
            let _sw = spcg_obs::span(tr.as_ref(), Phase::ScalarWork);
            build_d_operator(s, &gamma_hist, &rho_hist, &b_w)
        };

        // Coordinates of r^(sk) and r^(sk-1) in [R_old | W].
        let mut g_c = vec![0.0; dim];
        g_c[s] = 1.0;
        let mut g_c_prev = vec![0.0; dim];
        if iterations > 0 {
            g_c_prev[s - 1] = 1.0; // r^(sk-1) = last column of R_old
        }

        // New residual block collected during the inner loop.
        let mut r_new = MultiVector::zeros(n, s);
        let mut u_new = MultiVector::zeros(n, s);
        let mut gamma_new = Vec::with_capacity(s);
        let mut rho_new = Vec::with_capacity(s);

        for j in 0..s {
            r_new.col_mut(j).copy_from_slice(&r);
            u_new.col_mut(j).copy_from_slice(&u);

            // Out-of-basis columns must carry zero weight (support lemma).
            debug_assert_eq!(g_c[0], 0.0, "support leaked onto r^(s(k-1)-1)");
            debug_assert_eq!(g_c[dim - 1], 0.0, "support leaked onto P_(s+1)");
            let scalar_span = spcg_obs::span(tr.as_ref(), Phase::ScalarWork);
            let d_c = d_op.matvec(&g_c);
            let mu = quad_form(&g_mat, &g_c, &g_c);
            let nu = quad_form(&g_mat, &g_c, &d_c);
            if !(nu > 0.0) || !(mu > 0.0) || !nu.is_finite() || !mu.is_finite() {
                // x, r, u are live full vectors; judge before failing.
                let v = criterion_value(
                    exec,
                    opts.criterion,
                    &x,
                    &r,
                    mu,
                    &mut scratch_vec,
                    &mut counters,
                );
                final_verdict = stop.resolve_breakdown(
                    iterations + j,
                    v,
                    format!("coordinate moments uᵀAu = {nu}, rᵀu = {mu}"),
                );
                break 'outer;
            }
            let gamma = mu / nu;
            let rho = if iterations + j == 0 {
                1.0
            } else {
                let denom = 1.0 - (gamma / gamma_prev) * (mu / mu_prev) * (1.0 / rho_prev);
                if denom == 0.0 || !denom.is_finite() {
                    final_verdict = Outcome::Breakdown(format!("rho denominator {denom}"));
                    break 'outer;
                }
                1.0 / denom
            };

            drop(scalar_span);
            let update_span = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
            // w = A·u, v = M⁻¹A·u via GEMV with the stored blocks (eq. 10).
            gemv_concat(&pk, &r_old, &w_mat, &d_c, &mut w_vec);
            gemv_concat(&pk, &u_old, &v_mat, &d_c, &mut v_vec);
            counters.blas2_flops += 2 * 2 * dim as u64 * nw;

            // Three-term BLAS1 updates (lines 17–19); `+(−γ)` is bitwise
            // `−γ·` in the r and u combinations.
            pk.three_term(rho, gamma, &x, &u, &x_prev, &mut next);
            std::mem::swap(&mut x_prev, &mut x);
            std::mem::swap(&mut x, &mut next);
            pk.three_term(rho, -gamma, &r, &w_vec, &r_prev, &mut next);
            std::mem::swap(&mut r_prev, &mut r);
            std::mem::swap(&mut r, &mut next);
            pk.three_term(rho, -gamma, &u, &v_vec, &u_prev, &mut next);
            std::mem::swap(&mut u_prev, &mut u);
            std::mem::swap(&mut u, &mut next);
            counters.blas1_flops += 15 * nw;
            drop(update_span);

            // Coordinate recurrence for the next g.
            let mut g_next = vec![0.0; dim];
            for i in 0..dim {
                g_next[i] = rho * (g_c[i] - gamma * d_c[i]) + (1.0 - rho) * g_c_prev[i];
            }
            g_c_prev = std::mem::replace(&mut g_c, g_next);

            mu_prev = mu;
            gamma_prev = gamma;
            rho_prev = rho;
            gamma_new.push(gamma);
            rho_new.push(rho);
        }
        counters.small_flops += 10 * (dim * dim) as u64 * sw;

        r_old = r_new;
        u_old = u_new;
        gamma_hist = gamma_new;
        rho_hist = rho_new;

        iterations += s;
        counters.iterations += sw;
        counters.outer_iterations += 1;
    }

    SolveResult {
        x,
        outcome: final_verdict,
        iterations,
        history: stop.history,
        counters,
        collectives_per_rank: None,
        restarts: 0,
        s_schedule: Vec::new(),
        faults_absorbed: 0,
        adaptive: None,
    }
}

/// Builds the `(2s+1)²` operator mapping residual coordinates `g` to the
/// coordinates `d` of `A·u` in `[R^(k-1), W^(k)]`.
fn build_d_operator(s: usize, gamma_hist: &[f64], rho_hist: &[f64], b_w: &DenseMat) -> DenseMat {
    let dim = 2 * s + 1;
    let mut d = DenseMat::zeros(dim, dim);
    // Old block, columns 1..s (column 0 would need the out-of-basis residual
    // r^(s(k-1)-1) and is provably never applied to nonzero weight).
    if !gamma_hist.is_empty() {
        debug_assert_eq!(gamma_hist.len(), s);
        debug_assert_eq!(rho_hist.len(), s);
        for i in 1..s {
            let (gi, ri) = (gamma_hist[i], rho_hist[i]);
            d[(i, i)] = 1.0 / gi;
            d[(i - 1, i)] = (1.0 - ri) / (ri * gi);
            // r_{i+1}: old column i+1, or W column 0 (= r^(sk)) for i = s−1.
            let up = if i + 1 < s { i + 1 } else { s };
            d[(up, i)] = -1.0 / (ri * gi);
        }
    }
    // W block: columns s..2s-1 via B_{s+1} (column 2s never applied).
    for l in 0..s {
        for m in 0..=s {
            let v = b_w[(m, l)];
            if v != 0.0 {
                d[(s + m, s + l)] = v;
            }
        }
    }
    d
}

/// `aᵀ G b` for small vectors.
fn quad_form(g: &DenseMat, a: &[f64], b: &[f64]) -> f64 {
    let gb = g.matvec(b);
    blas::dot(a, &gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::StoppingCriterion;
    use crate::pcg::pcg;
    use crate::pcg3::pcg3;
    use spcg_basis::ritz::estimate_spectrum;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    fn chebyshev_basis(problem: &Problem<'_>) -> BasisType {
        let est = estimate_spectrum(problem.a, problem.m, problem.b, 20);
        let (lo, hi) = est.chebyshev_interval(0.1);
        BasisType::Chebyshev {
            lambda_min: lo,
            lambda_max: hi,
        }
    }

    #[test]
    fn monomial_small_s_solves_poisson() {
        let a = poisson_1d(64);
        let m = Identity::new(64);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = capcg3(&problem, 3, &BasisType::Monomial, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.true_relative_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn matches_pcg3_iterations_with_chebyshev_basis() {
        let a = poisson_2d(14);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = chebyshev_basis(&problem);
        let r3 = pcg3(&problem, &SolveOptions::default());
        for s in [2usize, 5] {
            let res = capcg3(&problem, s, &basis, &SolveOptions::default());
            assert!(res.converged(), "s={s}: {:?}", res.outcome);
            let cap = ((r3.iterations + s) / s) * s + 2 * s;
            assert!(
                res.iterations <= cap,
                "s={s}: {} vs PCG3 {}",
                res.iterations,
                r3.iterations
            );
        }
    }

    #[test]
    fn first_outer_block_matches_pcg3_exactly() {
        // With a monomial basis and exact arithmetic the first s steps are
        // identical to PCG3; in f64 they agree to ~1e-12 on an easy
        // problem.
        let a = poisson_1d(20);
        let m = Identity::new(20);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let o = SolveOptions::default().with_max_iters(4).with_tol(1e-30);
        let r3 = pcg3(&problem, &o);
        let rc = capcg3(&problem, 4, &BasisType::Monomial, &o);
        for (p, q) in r3.x.iter().zip(&rc.x) {
            assert!((p - q).abs() < 1e-10, "{p} vs {q}");
        }
    }

    #[test]
    fn s_mv_and_precond_per_outer() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let s = 4;
        let basis = chebyshev_basis(&problem);
        let opts = SolveOptions::default().with_criterion(StoppingCriterion::PrecondMNorm);
        let res = capcg3(&problem, s, &basis, &opts);
        assert!(res.converged(), "{:?}", res.outcome);
        let outer = res.counters.outer_iterations;
        assert_eq!(res.counters.spmv_count, s as u64 * (outer + 1));
        // s+1 preconds per outer round: the per-block refresh of u = M⁻¹r
        // (see the solver body) costs one beyond the paper's s.
        assert_eq!(res.counters.precond_count, (s as u64 + 1) * (outer + 1) + 1);
        assert_eq!(res.counters.global_collectives, outer + 1);
        let dimw = (2 * s + 1) as u64;
        assert_eq!(res.counters.allreduce_words, dimw * dimw * (outer + 1));
    }

    #[test]
    fn monomial_s10_fails_where_pcg_converges() {
        use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
        let a = spd_with_spectrum(500, &SpectrumShape::Uniform { kappa: 1e5 }, 1.0, 3, 31);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_max_iters(3000);
        assert!(pcg(&problem, &opts).converged());
        let res = capcg3(&problem, 10, &BasisType::Monomial, &opts);
        assert!(
            !res.converged(),
            "monomial s=10 should fail, got {:?}",
            res.outcome
        );
    }

    #[test]
    fn respects_max_iters() {
        let a = poisson_2d(20);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-15).with_max_iters(8);
        let res = capcg3(&problem, 4, &BasisType::Monomial, &opts);
        assert!(matches!(
            res.outcome,
            Outcome::MaxIterations | Outcome::Stagnated
        ));
    }
}
