//! sPCG — the paper's contribution (Algorithms 5 and 6): the
//! Chronopoulos/Gear s-step PCG generalized to arbitrary polynomial bases.
//!
//! Per outer iteration (= s PCG-equivalent steps):
//!
//! 1. **MPK** builds `S^(k)` (`n × (s+1)`, basis of `K_{s+1}(AM⁻¹, r)`) and
//!    `U^(k) = M⁻¹S^(k)[:, :s]` — s SpMVs + s preconditioner applications,
//!    no global communication.
//! 2. `AU^(k) = S^(k)·B` via the tridiagonal change-of-basis matrix
//!    (eq. 9) — a local column combination, free for the monomial basis.
//! 3. **Scalar Work** (Alg. 6): one Gram computation
//!    `[Uᵀ S ; P^(k-1)ᵀ S]` = **one global reduction of 2s(s+1) words**,
//!    from which `m = Rᵀu`, `UᵀAU = (UᵀS)·B` and
//!    `D = P^(k-1)ᵀAU = (P^(k-1)ᵀS)·B` follow locally. Then
//!    `W^(k-1)·B^(k) = −D` (A-orthogonality of consecutive blocks) and
//!    `W^(k)·a^(k) = m` are s×s solves replicated on every rank.
//! 4. **Blocked updates** (BLAS3/BLAS2): `P ← U + P·B^(k)`,
//!    `AP ← AU + AP·B^(k)`, `x += P·a`, `r −= AP·a`.
//!
//! With the monomial basis this is *mathematically* the same as sPCG_mon
//! but computes the Gram blocks directly instead of via the moment vector —
//! the small numerical edge §3.2 notes.

use crate::engine::{allreduce_gram, Exec, SerialExec};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult};
use crate::stopping::{criterion_value, StopState, Verdict};
use spcg_basis::cob::{apply_b_to_columns_par, b_small};
use spcg_basis::BasisType;
use spcg_dist::Counters;
use spcg_obs::Phase;
use spcg_sparse::smallsolve::{solve_spd_mat_with_fallback, solve_spd_with_fallback};
use spcg_sparse::{DenseMat, MultiVector};

/// Solves `A x = b` with sPCG (Alg. 5), blocking `s` steps per global
/// reduction and building the s-step bases with `basis`.
///
/// # Panics
/// Panics if `s < 1` or the Newton basis provides fewer than `s` shifts.
pub fn spcg(
    problem: &Problem<'_>,
    s: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    spcg_g(&mut SerialExec::new(problem, opts), s, basis, opts)
}

/// sPCG over any execution substrate (see [`crate::engine`]).
pub(crate) fn spcg_g<E: Exec>(
    exec: &mut E,
    s: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    assert!(s >= 1, "spcg: s must be at least 1");
    let n = exec.nl();
    let nw = exec.n_global();
    let sw = s as u64;
    let pk = exec.kernels().clone();
    let tr = exec.track().cloned();
    let mut counters = Counters::new();
    let mut stop = StopState::new(opts);
    let mut scratch_vec = Vec::new();

    let params = basis.params(s);
    let b_cob = b_small(&params, s + 1); // (s+1) × s

    let mut x = vec![0.0; n];
    let mut r = exec.b_local().to_vec(); // x0 = 0

    let mut s_mat = MultiVector::zeros(n, s + 1);
    let mut u_mat = MultiVector::zeros(n, s);
    let mut au_mat = MultiVector::zeros(n, s);
    let mut p_mat = MultiVector::zeros(n, s);
    let mut ap_mat = MultiVector::zeros(n, s);
    let mut scratch = MultiVector::zeros(n, s);
    let mut w_prev: Option<DenseMat> = None;
    // Residual-replacement state: ‖r‖² at the last replacement.
    let mut rr_anchor: Option<f64> = None;

    let mut iterations = 0usize;
    let final_verdict;
    loop {
        // --- s-step basis (neighbour communication only) ---
        exec.mpk(&r, None, &params, &mut s_mat, &mut u_mat, &mut counters);

        // --- the single global reduction: [UᵀS ; PᵀS] ---
        let gram_span = spcg_obs::span(tr.as_ref(), Phase::Gram);
        let mut g1 = pk.gram(&u_mat, &s_mat); // s × (s+1)
        counters.record_dots(sw * (sw + 1), nw);
        let mut words = sw * (sw + 1);
        let mut g2 = if w_prev.is_some() {
            let g = pk.gram(&p_mat, &s_mat); // s × (s+1)
            counters.record_dots(sw * (sw + 1), nw);
            words += sw * (sw + 1);
            Some(g)
        } else {
            None
        };
        counters.record_collective(words);
        match g2.as_mut() {
            Some(g2) => allreduce_gram(exec, &mut [&mut g1, g2], &mut []),
            None => allreduce_gram(exec, &mut [&mut g1], &mut []),
        }
        drop(gram_span);
        let (g1, g2) = (g1, g2);

        // --- convergence check every s steps ---
        // rᵀu is the (0,0) Gram entry (m-vector head) — free for the M-norm.
        let rtu = g1[(0, 0)];
        let value = criterion_value(
            exec,
            opts.criterion,
            &x,
            &r,
            rtu,
            &mut scratch_vec,
            &mut counters,
        );
        let verdict = stop.check(iterations, value);
        if verdict != Verdict::Continue {
            final_verdict = StopState::outcome(verdict);
            break;
        }
        if iterations >= opts.max_iters {
            final_verdict = Outcome::MaxIterations;
            break;
        }

        // --- Scalar Work (Alg. 6), replicated O(s³) on each rank ---
        let scalar_span = spcg_obs::span(tr.as_ref(), Phase::ScalarWork);
        let m_vec = g1.col(0); // Rᵀu
        let uau = g1.matmul(&b_cob); // UᵀAU = (UᵀS)·B, s × s
        let (b_k, mut w) = match (&w_prev, &g2) {
            (Some(wp), Some(g2)) => {
                let d = g2.matmul(&b_cob); // P^(k-1)ᵀAU
                let mut rhs = d.clone();
                rhs.scale(-1.0);
                let solved = {
                    let _ss = spcg_obs::span(tr.as_ref(), Phase::SmallSolve);
                    solve_spd_mat_with_fallback(wp, &rhs)
                };
                let b_k = match solved {
                    Ok(b) => b,
                    Err(e) => {
                        final_verdict = Outcome::Breakdown(format!("W^(k-1) solve failed: {e}"));
                        break;
                    }
                };
                // W = UᵀAU + Dᵀ·B^(k)  (Alg. 6 line 6).
                let mut w = uau;
                w.axpy(1.0, &d.transpose().matmul(&b_k));
                (Some(b_k), w)
            }
            _ => (None, uau),
        };
        w.symmetrize();
        counters.small_flops += 4 * sw * sw * sw;
        if w.has_non_finite() {
            final_verdict = Outcome::Breakdown("non-finite Gram data".into());
            break;
        }
        let solved = {
            let _ss = spcg_obs::span(tr.as_ref(), Phase::SmallSolve);
            solve_spd_with_fallback(&w, &m_vec)
        };
        let a_vec = match solved {
            Ok(a) => a,
            Err(e) => {
                final_verdict = Outcome::Breakdown(format!("W^(k) solve failed: {e}"));
                break;
            }
        };
        drop(scalar_span);

        // --- AU = S·B (local, ≤ (5s−2)n FLOPs, free for monomial) ---
        // The kernel reports FLOPs for its (local) row count; every term is
        // an exact multiple of it, so rescale to the global charge.
        let update_span = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
        let local_flops = apply_b_to_columns_par(&pk, &s_mat, &params, &mut au_mat);
        counters.blas2_flops += local_flops / n as u64 * nw;

        // --- blocked updates ---
        match b_k {
            Some(b_k) => {
                p_mat.blocked_update_par(&pk, &u_mat, &b_k, &mut scratch);
                ap_mat.blocked_update_par(&pk, &au_mat, &b_k, &mut scratch);
                counters.blas3_flops += 4 * sw * sw * nw;
            }
            None => {
                p_mat.copy_from(&u_mat);
                ap_mat.copy_from(&au_mat);
            }
        }
        pk.gemv_acc(&p_mat, 1.0, &a_vec, &mut x);
        pk.gemv_acc(&ap_mat, -1.0, &a_vec, &mut r);
        counters.blas2_flops += 4 * sw * nw;
        drop(update_span);

        // Residual replacement (Carson & Demmel): once the recursive
        // residual has shrunk far enough, re-anchor it to b − A·x so the
        // recursion's accumulated drift cannot cap the attainable accuracy.
        if let Some(factor) = opts.residual_replacement {
            // The ‖r‖² partials piggyback on existing traffic (only the dot
            // is charged), matching the serial instrumentation.
            let mut red = [exec.dot(&r, &r)];
            exec.allreduce(&mut red);
            let rr = red[0];
            counters.record_dots(1, nw);
            let anchor = *rr_anchor.get_or_insert(rr);
            if rr <= factor * factor * anchor {
                scratch_vec.resize(n, 0.0);
                exec.spmv(&x, &mut scratch_vec, &mut counters);
                counters.record_spmv(exec.spmv_flops());
                pk.sub(exec.b_local(), &scratch_vec, &mut r);
                counters.blas1_flops += nw;
                let mut red = [exec.dot(&r, &r)];
                exec.allreduce(&mut red);
                rr_anchor = Some(red[0]);
            }
        }

        w_prev = Some(w);
        iterations += s;
        counters.iterations += sw;
        counters.outer_iterations += 1;
    }

    SolveResult {
        x,
        outcome: final_verdict,
        iterations,
        history: stop.history,
        counters,
        collectives_per_rank: None,
        restarts: 0,
        s_schedule: Vec::new(),
        faults_absorbed: 0,
        adaptive: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::StoppingCriterion;
    use crate::pcg::pcg;
    use spcg_basis::ritz::estimate_spectrum;
    use spcg_precond::{Identity, Jacobi, Preconditioner};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    fn chebyshev_basis(problem: &Problem<'_>) -> BasisType {
        let est = estimate_spectrum(problem.a, problem.m, problem.b, 20);
        let (lo, hi) = est.chebyshev_interval(0.1);
        BasisType::Chebyshev {
            lambda_min: lo,
            lambda_max: hi,
        }
    }

    #[test]
    fn small_s_monomial_solves_easy_poisson() {
        let a = poisson_1d(64);
        let m = Identity::new(64);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = spcg(&problem, 2, &BasisType::Monomial, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.true_relative_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn chebyshev_basis_matches_pcg_iterations() {
        let a = poisson_2d(16);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = chebyshev_basis(&problem);
        // tol 1e-7 keeps the comparison above the s-step attainable-accuracy
        // floor, which at s = 8 sits near 1e-9 relative on this problem.
        let opts = SolveOptions::default().with_tol(1e-7);
        let r_pcg = pcg(&problem, &opts);
        for s in [2usize, 4, 8] {
            let r_s = spcg(&problem, s, &basis, &opts);
            assert!(r_s.converged(), "s={s}: {:?}", r_s.outcome);
            // s-step methods check every s steps: allow the s-rounding plus
            // a small slack (the paper's "not significant" margin).
            let cap = ((r_pcg.iterations + s) / s) * s + 2 * s;
            assert!(
                r_s.iterations <= cap,
                "s={s}: sPCG took {} vs PCG {}",
                r_s.iterations,
                r_pcg.iterations
            );
        }
    }

    #[test]
    fn newton_basis_converges() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let est = estimate_spectrum(&a, problem.m, &b, 24);
        let shifts = spcg_basis::leja::newton_shifts(&est.ritz, 6);
        let opts = SolveOptions::default().with_tol(1e-7);
        let res = spcg(&problem, 6, &BasisType::Newton { shifts }, &opts);
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.true_relative_residual(&a, &b) < 1e-6);
    }

    #[test]
    fn one_collective_per_outer_iteration() {
        let a = poisson_2d(14);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = chebyshev_basis(&problem);
        let opts = SolveOptions::default().with_criterion(StoppingCriterion::PrecondMNorm);
        let res = spcg(&problem, 5, &basis, &opts);
        assert!(res.converged());
        // One reduction per outer iteration, including the final check-only
        // iteration.
        let outer = res.counters.outer_iterations;
        assert_eq!(res.counters.global_collectives, outer + 1);
        // s SpMVs and s preconds per outer iteration (+ the final check).
        assert_eq!(res.counters.spmv_count, 5 * (outer + 1));
        assert_eq!(res.counters.precond_count, 5 * (outer + 1));
    }

    #[test]
    fn counters_match_table1_row() {
        // Table 1, sPCG row: per s steps, local reductions 2s(s+1) dots,
        // monomial-basis vector ops 4s² + 4s FLOPs/n (BLAS2+BLAS3).
        let a = poisson_2d(14);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let s = 4usize;
        let basis = chebyshev_basis(&problem);
        let opts = SolveOptions::default().with_criterion(StoppingCriterion::PrecondMNorm);
        let res = spcg(&problem, s, &basis, &opts);
        assert!(res.converged());
        let outer = res.counters.outer_iterations;
        assert!(outer >= 2);
        let n = problem.n() as u64;
        let sw = s as u64;
        // Dots: first outer has s(s+1), later ones 2s(s+1); plus the final
        // check-only Gram of s(s+1)... conservatively bound both sides.
        let dots = res.counters.dot_count;
        assert!(dots >= 2 * sw * (sw + 1) * (outer - 1));
        assert!(dots <= 2 * sw * (sw + 1) * (outer + 1));
        // BLAS3: 4s²n per outer iteration after the first.
        assert_eq!(res.counters.blas3_flops, 4 * sw * sw * n * (outer - 1));
        // BLAS2: 4sn per outer + the S·B application (bounded by (5s−2)n).
        assert!(res.counters.blas2_flops >= 4 * sw * n * outer);
        assert!(res.counters.blas2_flops <= (4 * sw + 5 * sw) * n * (outer + 1));
    }

    #[test]
    fn monomial_high_s_fails_on_hard_problem() {
        // The headline instability: monomial basis with s = 10 on an
        // ill-conditioned problem must NOT converge like PCG does.
        use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
        let a = spd_with_spectrum(600, &SpectrumShape::Uniform { kappa: 1e6 }, 1.0, 3, 5);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_max_iters(4000);
        let r_pcg = pcg(&problem, &opts);
        assert!(
            r_pcg.converged(),
            "baseline PCG should converge: {:?}",
            r_pcg.outcome
        );
        let r_mono = spcg(&problem, 10, &BasisType::Monomial, &opts);
        assert!(
            !r_mono.converged() || r_mono.iterations > 2 * r_pcg.iterations,
            "monomial s=10 unexpectedly healthy: {:?} in {}",
            r_mono.outcome,
            r_mono.iterations
        );
        // And the Chebyshev basis repairs it.
        let basis = chebyshev_basis(&problem);
        let r_cheb = spcg(&problem, 10, &basis, &opts);
        assert!(
            r_cheb.converged(),
            "chebyshev basis should fix it: {:?}",
            r_cheb.outcome
        );
    }

    #[test]
    fn s_equal_one_still_works() {
        let a = poisson_1d(40);
        let m = Identity::new(40);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = spcg(&problem, 1, &BasisType::Monomial, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.outcome);
    }

    #[test]
    fn respects_max_iters() {
        let a = poisson_2d(20);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-15).with_max_iters(20);
        let res = spcg(&problem, 5, &BasisType::Monomial, &opts);
        assert!(matches!(
            res.outcome,
            Outcome::MaxIterations | Outcome::Stagnated
        ));
        assert!(res.iterations <= 20);
    }

    #[test]
    fn identity_preconditioner_and_jacobi_agree_on_unit_diagonal() {
        // For a matrix with unit diagonal, Jacobi == identity; solver paths
        // must give bit-identical iterates.
        let mut a = poisson_1d(30);
        a.scale(0.5); // diagonal becomes 1.0
        let b = paper_rhs(&a);
        let ident = Identity::new(30);
        let jac = Jacobi::new(&a);
        assert_eq!(jac.apply_alloc(&b), ident.apply_alloc(&b));
        let p1 = Problem::new(&a, &ident, &b);
        let p2 = Problem::new(&a, &jac, &b);
        let r1 = spcg(&p1, 3, &BasisType::Monomial, &SolveOptions::default());
        let r2 = spcg(&p2, 3, &BasisType::Monomial, &SolveOptions::default());
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.x, r2.x);
    }
}

#[cfg(test)]
mod residual_replacement_tests {
    use super::*;
    use crate::options::{Problem, SolveOptions, StoppingCriterion};
    use spcg_precond::Jacobi;
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::poisson_3d;

    #[test]
    fn replacement_converges_and_charges_extra_spmvs() {
        let a = poisson_3d(10);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let base = SolveOptions::default()
            .with_criterion(StoppingCriterion::PrecondMNorm)
            .with_tol(1e-8);
        let plain = spcg(&problem, 5, &basis, &base);
        let rr = spcg(
            &problem,
            5,
            &basis,
            &base.clone().with_residual_replacement(1e-3),
        );
        assert!(plain.converged() && rr.converged());
        // Replacement costs at least one extra SpMV per replacement event.
        assert!(rr.counters.spmv_count > plain.counters.spmv_count);
        // And the final true residual is at least as good.
        assert!(rr.true_relative_residual(&a, &b) < 1e-6);
    }

    #[test]
    fn replacement_improves_or_matches_attainable_accuracy() {
        // Deep-tolerance run where the recursive residual drifts: the
        // replaced variant must reach at least the same true accuracy.
        let a = poisson_3d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let opts = SolveOptions::default()
            .with_criterion(StoppingCriterion::PrecondMNorm)
            .with_tol(1e-10)
            .with_max_iters(2000);
        let plain = spcg(&problem, 8, &basis, &opts);
        let rr = spcg(
            &problem,
            8,
            &basis,
            &opts.clone().with_residual_replacement(1e-2),
        );
        let tp = plain.true_relative_residual(&a, &b);
        let tr = rr.true_relative_residual(&a, &b);
        assert!(
            tr <= tp * 10.0,
            "replacement degraded accuracy: {tr:.2e} vs {tp:.2e}"
        );
    }
}
