//! Unified method dispatch for the experiment harnesses.

use crate::engine::Engine;
use crate::options::{Problem, SolveOptions, SolveResult};
use spcg_basis::BasisType;

/// A solver selection, carrying its s-step configuration where applicable.
#[derive(Debug, Clone, PartialEq)]
pub enum Method {
    /// Standard PCG (Alg. 1).
    Pcg,
    /// Three-term PCG (Rutishauser).
    Pcg3,
    /// sPCG with an arbitrary basis (Alg. 5 — the paper's contribution).
    SPcg { s: usize, basis: BasisType },
    /// The original monomial-only s-step PCG (Alg. 2).
    SPcgMon { s: usize },
    /// CA-PCG (Alg. 3).
    CaPcg { s: usize, basis: BasisType },
    /// CA-PCG3 (Alg. 4).
    CaPcg3 { s: usize, basis: BasisType },
    /// Adaptive CA-PCG: the CA-PCG body under the `spcg_adapt` controller —
    /// `s` here is the *starting* block size (the runtime range comes from
    /// [`crate::SolveOptions::adaptive`]), and `basis` the starting basis,
    /// which the controller may rebuild mid-solve from running Ritz values.
    AdaptiveCaPcg { s: usize, basis: BasisType },
    /// CA-PCG-GS: the s-step body with the small Gram systems solved by a
    /// seeded Gauss-Seidel iteration instead of Cholesky — no pivot-failure
    /// breakdown mode, so ill-conditioned large-s blocks survive at full s
    /// (D'Ambra et al., see `crate::capcg_gs`).
    CaPcgGs { s: usize, basis: BasisType },
    /// Enlarged-Krylov CG: the residual split into `t` contiguous-block
    /// directions per iteration (Grigori & Moufawad's MSDO-CG family, see
    /// `crate::ekcg`). `t = 1` is bitwise plain PCG.
    EkCg { t: usize },
}

impl Method {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Method::Pcg => "PCG".into(),
            Method::Pcg3 => "PCG3".into(),
            Method::SPcg { s, basis } => format!("sPCG(s={s},{})", basis.name()),
            Method::SPcgMon { s } => format!("sPCG_mon(s={s})"),
            Method::CaPcg { s, basis } => format!("CA-PCG(s={s},{})", basis.name()),
            Method::CaPcg3 { s, basis } => format!("CA-PCG3(s={s},{})", basis.name()),
            Method::AdaptiveCaPcg { s, basis } => {
                format!("AdaptiveCA-PCG(s0={s},{})", basis.name())
            }
            Method::CaPcgGs { s, basis } => format!("CA-PCG-GS(s={s},{})", basis.name()),
            Method::EkCg { t } => format!("EkCG(t={t})"),
        }
    }

    /// The s-step block size (1 for the non-blocked baselines).
    pub fn s(&self) -> usize {
        match self {
            Method::Pcg | Method::Pcg3 | Method::EkCg { .. } => 1,
            Method::SPcg { s, .. }
            | Method::SPcgMon { s }
            | Method::CaPcg { s, .. }
            | Method::CaPcg3 { s, .. }
            | Method::AdaptiveCaPcg { s, .. }
            | Method::CaPcgGs { s, .. } => *s,
        }
    }

    /// The same method with its block size replaced, clamped to the
    /// method's minimum (2 for CA-PCG and CA-PCG3, whose coordinate-space
    /// recurrences need it; 1 for the other s-step methods). The
    /// non-blocked baselines have no block size and return themselves —
    /// the resilience driver's s-reduction policy is a no-op for them.
    pub fn with_s(&self, s: usize) -> Method {
        match self {
            Method::Pcg => Method::Pcg,
            Method::Pcg3 => Method::Pcg3,
            Method::SPcg { basis, .. } => Method::SPcg {
                s: s.max(1),
                basis: basis.clone(),
            },
            Method::SPcgMon { .. } => Method::SPcgMon { s: s.max(1) },
            Method::CaPcg { basis, .. } => Method::CaPcg {
                s: s.max(2),
                basis: basis.clone(),
            },
            Method::CaPcg3 { basis, .. } => Method::CaPcg3 {
                s: s.max(2),
                basis: basis.clone(),
            },
            Method::AdaptiveCaPcg { basis, .. } => Method::AdaptiveCaPcg {
                s: s.max(2),
                basis: basis.clone(),
            },
            Method::CaPcgGs { basis, .. } => Method::CaPcgGs {
                s: s.max(1),
                basis: basis.clone(),
            },
            Method::EkCg { .. } => self.clone(),
        }
    }

    /// The Gauss-Seidel analogue of this method at the *same* block size —
    /// the resilience driver's recovery stage between a breakdown and the
    /// shrink-s retreat: the s-step methods whose breakdowns come from the
    /// small Cholesky Gram solve map onto [`Method::CaPcgGs`] (same `s`,
    /// same basis where they carry one); methods without a Cholesky Gram
    /// solve (and CA-PCG-GS itself) have no analogue.
    pub fn gs_analogue(&self) -> Option<Method> {
        match self {
            Method::SPcg { s, basis }
            | Method::CaPcg { s, basis }
            | Method::CaPcg3 { s, basis }
            | Method::AdaptiveCaPcg { s, basis } => Some(Method::CaPcgGs {
                s: *s,
                basis: basis.clone(),
            }),
            Method::SPcgMon { s } => Some(Method::CaPcgGs {
                s: *s,
                basis: BasisType::Monomial,
            }),
            Method::Pcg | Method::Pcg3 | Method::CaPcgGs { .. } | Method::EkCg { .. } => None,
        }
    }

    /// Ghost-zone depth ranked execution must build for this method: `None`
    /// for the non-blocked baselines (depth-1 SpMV only), `s` for the
    /// fixed-s block methods, and the adaptive policy's `s_max` for
    /// [`Method::AdaptiveCaPcg`] — the controller may grow past its
    /// starting `s`, and the exchange depth is fixed at construction.
    pub(crate) fn mpk_depth(&self, opts: &SolveOptions) -> Option<usize> {
        match self {
            Method::Pcg | Method::Pcg3 | Method::EkCg { .. } => None,
            Method::AdaptiveCaPcg { s, .. } => Some((*s).max(opts.adaptive.s_max)),
            _ => Some(self.s()),
        }
    }
}

/// Runs the selected method on the chosen execution [`Engine`].
///
/// `Engine::Serial` runs the reference single-address-space solver;
/// `Engine::Ranked { ranks }` partitions the rows over `ranks` communicating
/// ranks (`spcg_dist::ThreadComm`) and solves the same system with the same
/// arithmetic, one rank per OS thread. Iterates agree with serial execution
/// up to reduction rounding (bitwise for one rank).
pub fn solve(
    method: &Method,
    problem: &Problem<'_>,
    opts: &SolveOptions,
    engine: Engine,
) -> SolveResult {
    match engine {
        Engine::Serial => {
            // Serial execution has no distributed substrate to fault, so
            // the resilience driver runs only when explicitly configured;
            // with the default `resilience: None` this is exactly the
            // direct `pcg(problem, opts)`-style call it always was.
            let mut exec = crate::engine::SerialExec::new(problem, opts);
            crate::resilience::solve_resilient(method, &mut exec, opts, opts.resilience.as_ref())
        }
        Engine::Ranked { ranks } => crate::engine::run_ranked(method, problem, opts, ranks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::Jacobi;
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::poisson_2d;

    #[test]
    fn all_methods_solve_an_easy_problem() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let methods = [
            Method::Pcg,
            Method::Pcg3,
            Method::SPcg {
                s: 4,
                basis: basis.clone(),
            },
            Method::SPcgMon { s: 4 },
            Method::CaPcg {
                s: 4,
                basis: basis.clone(),
            },
            Method::CaPcg3 {
                s: 4,
                basis: basis.clone(),
            },
            Method::AdaptiveCaPcg {
                s: 4,
                basis: basis.clone(),
            },
            Method::CaPcgGs { s: 4, basis },
            Method::EkCg { t: 4 },
        ];
        for method in &methods {
            let res = solve(method, &problem, &SolveOptions::default(), Engine::Serial);
            assert!(
                res.converged(),
                "{} failed: {:?}",
                method.name(),
                res.outcome
            );
            assert!(
                res.true_relative_residual(&a, &b) < 1e-7,
                "{}: residual too large",
                method.name()
            );
        }
    }

    #[test]
    fn names_and_s() {
        assert_eq!(Method::Pcg.name(), "PCG");
        assert_eq!(Method::Pcg.s(), 1);
        let m = Method::SPcg {
            s: 10,
            basis: BasisType::Monomial,
        };
        assert_eq!(m.name(), "sPCG(s=10,monomial)");
        assert_eq!(m.s(), 10);
        let g = Method::CaPcgGs {
            s: 8,
            basis: BasisType::Monomial,
        };
        assert_eq!(g.name(), "CA-PCG-GS(s=8,monomial)");
        assert_eq!(g.s(), 8);
        let e = Method::EkCg { t: 4 };
        assert_eq!(e.name(), "EkCG(t=4)");
        assert_eq!(e.s(), 1);
        assert_eq!(e.with_s(7), e);
    }

    #[test]
    fn gs_analogue_mapping() {
        let basis = BasisType::Monomial;
        assert_eq!(
            Method::CaPcg {
                s: 10,
                basis: basis.clone()
            }
            .gs_analogue(),
            Some(Method::CaPcgGs {
                s: 10,
                basis: basis.clone()
            })
        );
        assert_eq!(
            Method::SPcgMon { s: 6 }.gs_analogue(),
            Some(Method::CaPcgGs { s: 6, basis })
        );
        assert_eq!(Method::Pcg.gs_analogue(), None);
        assert_eq!(Method::EkCg { t: 2 }.gs_analogue(), None);
        assert_eq!(
            Method::CaPcgGs {
                s: 4,
                basis: BasisType::Monomial
            }
            .gs_analogue(),
            None
        );
    }
}
