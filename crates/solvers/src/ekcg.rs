//! EkCG — enlarged-Krylov conjugate gradients (Grigori & Moufawad's
//! MSDO-CG family, PAPERS.md).
//!
//! The residual is split by a t-way contiguous block partition of the
//! *global* rows into a [`MultiVector`] of t search directions per
//! iteration: `Z = T(M⁻¹r)` where the splitting operator `T(·)` keeps
//! component `i` in column `j` iff row `i` falls in block `j`. Each
//! iteration A-orthogonalizes the new block against **every** previous
//! direction block and minimizes over all t directions at once:
//!
//! 1. `Z = T(M⁻¹r)`, `AZ = A·Z` (one SpMM — t SpMVs of one matrix stream).
//! 2. Reduction #1: `Wⱼ = APⱼᵀZ` for every stored block `j` (k blocks of
//!    t×t), plus `rᵀu` for the stopping test — one allreduce, one payload.
//! 3. `Φⱼ = Gⱼ⁻¹Wⱼ` via each block's rank-revealing factorization;
//!    `P = Z − Σⱼ Pⱼ·Φⱼ`, `AP = AZ − Σⱼ APⱼ·Φⱼ` (blocked updates).
//! 4. Reduction #2: `G = PᵀAP` (t×t) plus `c = Pᵀr`.
//! 5. `γ = G⁻¹c`, `x += P·γ`, `r −= AP·γ`; push `(P, AP, G)` onto the
//!    history.
//!
//! The full-history orthogonalization is load-bearing, not pedantry:
//! unlike classical CG, the split residual `T(r_k)` does *not* live in the
//! enlarged Krylov subspace built so far (coordinate restriction doesn't
//! preserve Krylov structure), so the CG-style previous-block-only short
//! recurrence silently loses global A-orthogonality and converges *slower*
//! than plain PCG. MSDO-CG is a long-recurrence method by construction;
//! its payoff is that the enlarged space cuts the iteration count enough
//! that the O(k·t) memory and the growing reduction payload stay small.
//!
//! Per iteration that is t SpMVs and exactly **two** global reductions —
//! the same collective count as PCG but t Krylov directions of progress,
//! which is the enlarged-Krylov trade: more local flops and bandwidth per
//! synchronization point (reduction #1's payload grows by t² words per
//! iteration, but stays a single latency-bound collective).
//!
//! Near convergence the t directions collapse onto each other and the t×t
//! Gram `G` goes numerically rank-deficient; the
//! [`spcg_sparse::smallsolve::PivotedCholesky`] pseudo-solve keeps only the
//! directions above the pivot threshold and returns exact zeros for the
//! rest, so deficiency degrades gracefully toward plain PCG instead of
//! breaking down.
//!
//! `t = 1` is mathematically plain PCG but would compute different
//! floating-point expressions; the body delegates to [`crate::pcg()`]'s
//! generic path outright, making the degenerate case bitwise identical by
//! construction.

use crate::engine::{allreduce_gram, Exec, SerialExec};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult};
use crate::stopping::{criterion_value, StopState, Verdict};
use spcg_dist::Counters;
use spcg_obs::Phase;
use spcg_sparse::smallsolve::PivotedCholesky;
use spcg_sparse::MultiVector;

/// Relative pivot threshold for the rank-revealing t×t Gram factorization.
const GRAM_EPS: f64 = 1e-12;

/// Solves `A x = b` with enlarged-Krylov CG over `t` contiguous row blocks.
///
/// # Panics
/// Panics if `t < 1` or `t` exceeds the global row count.
pub fn ekcg(problem: &Problem<'_>, t: usize, opts: &SolveOptions) -> SolveResult {
    ekcg_g(&mut SerialExec::new(problem, opts), t, opts)
}

/// EkCG over any execution substrate (see [`crate::engine`]).
pub(crate) fn ekcg_g<E: Exec>(exec: &mut E, t: usize, opts: &SolveOptions) -> SolveResult {
    assert!(t >= 1, "ekcg: t must be at least 1");
    if t == 1 {
        // One block is plain PCG; delegate so the degenerate case is
        // bitwise identical to Method::Pcg rather than merely equivalent.
        return crate::pcg::pcg_g(exec, opts);
    }
    let n = exec.nl();
    let nw = exec.n_global();
    let ng = nw as usize;
    assert!(t <= ng, "ekcg: t = {t} exceeds global rows {ng}");
    let lo = exec.row_offset();
    let tw = t as u64;
    let pk = exec.kernels().clone();
    let tr = exec.track().cloned();
    let mut counters = Counters::new();
    let mut stop = StopState::new(opts);
    let mut scratch_vec = Vec::new();

    // Global block boundaries of the splitting operator: block j owns rows
    // [j·n/t, (j+1)·n/t) — a pure function of (n, t), independent of the
    // rank partition, so serial and any-rank executions split identically.
    let cut = |j: usize| j * ng / t;

    let mut x = vec![0.0; n];
    let mut r = exec.b_local().to_vec(); // x0 = 0
    let mut u = vec![0.0; n];
    exec.precond(&r, &mut u, &mut counters);
    counters.record_precond(exec.m_flops());

    let mut z_mat = MultiVector::zeros(n, t);
    let mut az_mat = MultiVector::zeros(n, t);
    let mut p_mat = MultiVector::zeros(n, t);
    let mut ap_mat = MultiVector::zeros(n, t);
    // Direction-block history: (Pⱼ, APⱼ, factorization of PⱼᵀAPⱼ). MSDO-CG
    // orthogonalizes every new split block against all of it (see module
    // docs) — memory grows by 2·n·t per iteration.
    let mut hist: Vec<(MultiVector, MultiVector, PivotedCholesky)> = Vec::new();

    let mut iterations = 0usize;
    let final_verdict;
    loop {
        // --- Z = T(u): split the preconditioned residual ---
        {
            let _v = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
            z_mat.fill_zero();
            for j in 0..t {
                let (gs, ge) = (cut(j), cut(j + 1));
                // Intersection with this rank's rows [lo, lo+n).
                let s = gs.saturating_sub(lo).min(n);
                let e = ge.saturating_sub(lo).min(n);
                if s < e {
                    z_mat.col_mut(j)[s..e].copy_from_slice(&u[s..e]);
                }
            }
        }

        // --- AZ = A·Z: one matrix stream, t columns ---
        exec.spmm(&z_mat, &mut az_mat, &mut counters);
        for _ in 0..t {
            counters.record_spmv(exec.spmv_flops());
        }

        // --- reduction #1: Wⱼ = APⱼᵀZ for every stored block, + rᵀu ---
        let gram_span = spcg_obs::span(tr.as_ref(), Phase::Gram);
        let mut extra = [exec.dot(&r, &u)];
        let mut ws: Vec<_> = hist
            .iter()
            .map(|(_, apj, _)| pk.gram(apj, &z_mat))
            .collect();
        let kh = hist.len() as u64;
        counters.record_dots(kh * tw * tw + 1, nw);
        counters.record_collective(kh * tw * tw + 1);
        {
            let mut refs: Vec<&mut spcg_sparse::DenseMat> = ws.iter_mut().collect();
            allreduce_gram(exec, &mut refs, &mut extra);
        }
        drop(gram_span);
        let rtu = extra[0];

        // --- convergence check ---
        let value = criterion_value(
            exec,
            opts.criterion,
            &x,
            &r,
            rtu,
            &mut scratch_vec,
            &mut counters,
        );
        let verdict = stop.check(iterations, value);
        if verdict != Verdict::Continue {
            final_verdict = StopState::outcome(verdict);
            break;
        }
        if iterations >= opts.max_iters {
            final_verdict = Outcome::MaxIterations;
            break;
        }
        if !rtu.is_finite() {
            final_verdict = Outcome::Diverged;
            break;
        }

        // --- P = Z − Σⱼ Pⱼ·Φⱼ, AP = AZ − Σⱼ APⱼ·Φⱼ ---
        let update_span = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
        p_mat.copy_from(&z_mat);
        ap_mat.copy_from(&az_mat);
        for ((pj, apj, factj), wj) in hist.iter().zip(&ws) {
            let mut phi = {
                let _ss = spcg_obs::span(tr.as_ref(), Phase::SmallSolve);
                factj.pseudo_solve_mat(wj)
            };
            phi.scale(-1.0);
            pk.gemm_small_acc(pj, &phi, &mut p_mat);
            pk.gemm_small_acc(apj, &phi, &mut ap_mat);
            counters.blas3_flops += 4 * tw * tw * nw;
            counters.small_flops += 2 * tw * tw * tw;
        }
        drop(update_span);

        // --- reduction #2: G = PᵀAP (t×t) + c = Pᵀr ---
        let gram_span = spcg_obs::span(tr.as_ref(), Phase::Gram);
        let mut g = pk.gram(&p_mat, &ap_mat);
        let mut c = vec![0.0; t];
        for (j, cj) in c.iter_mut().enumerate() {
            *cj = exec.dot(p_mat.col(j), &r);
        }
        counters.record_dots(tw * tw + tw, nw);
        counters.record_collective(tw * tw + tw);
        allreduce_gram(exec, &mut [&mut g], &mut c);
        drop(gram_span);

        g.symmetrize();
        if g.has_non_finite() {
            final_verdict = Outcome::Breakdown("non-finite enlarged Gram data".into());
            break;
        }
        let scalar_span = spcg_obs::span(tr.as_ref(), Phase::ScalarWork);
        let fact = {
            let _ss = spcg_obs::span(tr.as_ref(), Phase::SmallSolve);
            PivotedCholesky::factor(&g, GRAM_EPS)
        };
        counters.small_flops += 2 * tw * tw * tw;
        if fact.rank() == 0 {
            // Every direction fell below the pivot threshold: the block has
            // no usable curvature left. Judge by the criterion first, the
            // same way PCG treats vanished pᵀAp.
            let v = criterion_value(
                exec,
                opts.criterion,
                &x,
                &r,
                rtu,
                &mut scratch_vec,
                &mut counters,
            );
            final_verdict = stop.resolve_breakdown(
                iterations,
                v,
                "enlarged direction Gram has numerical rank 0".into(),
            );
            break;
        }
        let gamma = fact.pseudo_solve(&c);
        drop(scalar_span);

        // --- x += P·γ, r −= AP·γ ---
        {
            let _v = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
            pk.gemv_acc(&p_mat, 1.0, &gamma, &mut x);
            pk.gemv_acc(&ap_mat, -1.0, &gamma, &mut r);
        }
        counters.blas2_flops += 4 * tw * nw;

        exec.precond(&r, &mut u, &mut counters);
        counters.record_precond(exec.m_flops());

        hist.push((p_mat.clone(), ap_mat.clone(), fact));
        iterations += 1;
        counters.iterations += 1;
        counters.outer_iterations += 1;
    }

    SolveResult {
        x,
        outcome: final_verdict,
        iterations,
        history: stop.history,
        counters,
        collectives_per_rank: None,
        restarts: 0,
        s_schedule: Vec::new(),
        faults_absorbed: 0,
        adaptive: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::StoppingCriterion;
    use crate::pcg::pcg;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    /// A deterministic all-nonzero rhs. `paper_rhs` is a near-impulse
    /// (almost every entry zero), which collapses the split `T(u)` onto a
    /// couple of columns and defeats the enlarged-space premise the
    /// convergence tests probe.
    fn dense_rhs(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 1.0 + 0.5 * ((i as f64) * 0.7).sin())
            .collect()
    }

    #[test]
    fn solves_small_poisson() {
        let a = poisson_1d(48);
        let m = Identity::new(48);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        for t in [2usize, 3, 4, 8] {
            let res = ekcg(&problem, t, &SolveOptions::default());
            assert!(res.converged(), "t={t}: {:?}", res.outcome);
            assert!(res.true_relative_residual(&a, &b) < 1e-8, "t={t}");
        }
    }

    #[test]
    fn t_equal_one_is_bitwise_pcg() {
        let a = poisson_2d(14);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_history();
        let r_pcg = pcg(&problem, &opts);
        let r_ek = ekcg(&problem, 1, &opts);
        assert_eq!(r_ek.x, r_pcg.x);
        assert_eq!(r_ek.iterations, r_pcg.iterations);
        assert_eq!(r_ek.history, r_pcg.history);
        assert_eq!(r_ek.counters, r_pcg.counters);
    }

    #[test]
    fn more_blocks_fewer_iterations() {
        // The enlarged-subspace payoff: t directions per iteration should
        // cut the outer iteration count well below PCG's.
        let a = poisson_2d(20);
        let m = Jacobi::new(&a);
        let b = dense_rhs(a.nrows());
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-8);
        let r_pcg = pcg(&problem, &opts);
        let mut prev = r_pcg.iterations;
        for t in [2usize, 4, 8] {
            let res = ekcg(&problem, t, &opts);
            assert!(res.converged(), "t={t}: {:?}", res.outcome);
            assert!(
                res.iterations < prev,
                "t={t}: {} not below {}",
                res.iterations,
                prev
            );
            prev = res.iterations;
        }
    }

    #[test]
    fn two_collectives_per_iteration() {
        let a = poisson_2d(14);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_criterion(StoppingCriterion::PrecondMNorm);
        let res = ekcg(&problem, 4, &opts);
        assert!(res.converged(), "{:?}", res.outcome);
        let it = res.counters.outer_iterations;
        // Two reductions per completed iteration, one for the final
        // check-only entry (its W-Gram rides reduction #1).
        assert_eq!(res.counters.global_collectives, 2 * it + 1);
        // t SpMVs per entered iteration.
        assert_eq!(res.counters.spmv_count, 4 * (it + 1));
    }

    #[test]
    fn split_reconstructs_preconditioned_residual() {
        // Σ_j Z[:,j] must equal u exactly — the split is a partition.
        // Indirect check: with an all-nonzero rhs, Identity M, and t = n
        // blocks, T(u) spans ℝⁿ, so one Galerkin step solves the system.
        let a = poisson_1d(30);
        let b = dense_rhs(30);
        let ident = Identity::new(30);
        let p2 = Problem::new(&a, &ident, &b);
        let res = ekcg(&p2, 30, &SolveOptions::default().with_tol(1e-10));
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(
            res.iterations <= 2,
            "t = n must converge in ≤ 2 iterations, took {}",
            res.iterations
        );
    }

    #[test]
    fn deep_tolerance_survives_rank_deficiency() {
        // Near machine precision the t directions collapse; the pivoted
        // pseudo-solve must keep the iteration alive (no breakdown, no NaN).
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = ekcg(
            &problem,
            8,
            &SolveOptions::default().with_tol(1e-13).with_max_iters(500),
        );
        assert!(
            matches!(res.outcome, Outcome::Converged | Outcome::Stagnated),
            "{:?}",
            res.outcome
        );
        assert!(res.x.iter().all(|v| v.is_finite()));
        assert!(res.true_relative_residual(&a, &b) < 1e-10);
    }

    #[test]
    fn respects_max_iters() {
        let a = poisson_2d(20);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-15).with_max_iters(5);
        let res = ekcg(&problem, 4, &opts);
        assert!(matches!(
            res.outcome,
            Outcome::MaxIterations | Outcome::Stagnated
        ));
        assert!(res.iterations <= 5);
    }
}
