//! Process-level communication backend ([`Backend::Proc`]
//! (spcg_dist::Backend)): each rank is a `spcg-rankd` worker **process**
//! talking to a parent-side hub over Unix-domain sockets.
//!
//! The thread backend shares one address space, so a "rank failure" there
//! can only be simulated. This backend makes rank death *real*: a worker
//! process can be killed (or kill itself, see `SPCG_PROC_KILL`) mid-solve,
//! the parent detects the broken connection, respawns the world, and
//! re-solves — charging the incarnation as a restart. Everything else is
//! bitwise identical to the thread backend by construction:
//!
//! * **Same arithmetic** — workers rebuild the matrix, right-hand side,
//!   and preconditioner (via [`PrecondSpec`])
//!   from the Setup frame and run the *same* `RankExec` + resilient
//!   driver as a thread rank.
//! * **Same reduction order** — the hub sums allreduce contributions in
//!   rank order from a zeroed accumulator, exactly like
//!   `ThreadComm::allreduce_sum`.
//! * **Same exchange protocol** — the hub keeps the two vector boards'
//!   `published`/`consumed` epochs and applies a rank's post for round
//!   `p` only once every rank has consumed round `p − 1`; a completion
//!   for round `w` is answered (with the full board) only once every
//!   rank has published `w`. These are the `VectorBoard` invariants,
//!   moved across a socket.
//! * **Same fault semantics** — workers rebuild the deterministic
//!   [`FaultPlan`] from `(seed, rate, sites)` and fire it at the same
//!   `(site, salt, rank, round)` decision points, reporting per-site
//!   counts back so the parent's plan sees every remote injection.
//!
//! Frames are `[tag][len][payload]` (see `spcg_dist::wire`). Workers are
//! strictly request/reply — after sending a `Want`/`Barrier`/`Reduce`
//! they block on exactly one typed reply — so the hub may write replies
//! synchronously without deadlock.

use crate::method::Method;
use crate::options::{Outcome, Problem, SolveOptions, SolveResult, StoppingCriterion};
use crate::resilience::{solve_resilient, Resilience};
use spcg_adapt::{AdaptivePolicy, AdaptiveReport, ShiftUpdate};
use spcg_basis::BasisType;
use spcg_dist::wire::{read_frame, write_frame, WireReader, WireWriter};
use spcg_dist::{Backend, Comm, Counters, Exchange, FaultPlan, GatherPlan, FAULT_SITES};
use spcg_obs::{Phase, RawTrack, Tracer, Track};
use spcg_precond::PrecondSpec;
use spcg_sparse::partition::BlockRowPartition;
use spcg_sparse::{CsrMatrix, SparseFormat};

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Protocol version — bumped on any frame-layout change so a stale
/// `spcg-rankd` binary fails loudly instead of misparsing.
const PROTO: u64 = 4;

// Frame tags. Worker → hub: HELLO, POST, WANT, BARRIER, REDUCE, RESULT.
// Hub → worker: SETUP, BOARD, BARRIER_OK, REDUCE_SUM.
const TAG_SETUP: u8 = 1;
const TAG_HELLO: u8 = 2;
const TAG_POST: u8 = 3;
const TAG_WANT: u8 = 4;
const TAG_BARRIER: u8 = 5;
const TAG_REDUCE: u8 = 6;
const TAG_RESULT: u8 = 7;
const TAG_BOARD: u8 = 8;
const TAG_BARRIER_OK: u8 = 9;
const TAG_REDUCE_SUM: u8 = 10;

/// How long the hub waits for *any* worker message before declaring the
/// world wedged. Generous: the in-process exchange's own wait budget is
/// 30 s.
const HUB_TIMEOUT: Duration = Duration::from_secs(120);

/// How long the parent waits for all workers to connect and say hello.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(20);

/// World respawns allowed after rank deaths before the solve is abandoned.
const MAX_INCARNATIONS: usize = 3;

// ---------------------------------------------------------------------------
// Setup / result payloads
// ---------------------------------------------------------------------------

/// Everything a worker needs to run its rank, self-contained — workers
/// never consult the environment, so `SPCG_*` variables in the parent's
/// environment cannot skew a remote solve.
struct Setup {
    rank: usize,
    nranks: usize,
    offsets: Vec<usize>,
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    b: Vec<f64>,
    spec: PrecondSpec,
    method: Method,
    tol: f64,
    max_iters: usize,
    criterion: StoppingCriterion,
    divergence_factor: f64,
    stall_checks: usize,
    keep_history: bool,
    residual_replacement: Option<f64>,
    threads: usize,
    overlap: bool,
    format: SparseFormat,
    trace_cap: Option<usize>,
    faults: Option<(u64, f64, u8)>,
    resilience: Option<Resilience>,
    /// Adaptive-s controller policy — shipped whole so a worker's
    /// `SPCG_ADAPTIVE_*` environment cannot skew a remote solve.
    adaptive: AdaptivePolicy,
    /// Fault-drill directive: die just before allreduce number `n`
    /// (0-based). Shipped only to the targeted rank of incarnation 0.
    kill_at_reduce: Option<u64>,
}

fn encode_spec(w: &mut WireWriter, spec: &PrecondSpec) {
    match spec {
        PrecondSpec::Identity { n } => {
            w.u8(0);
            w.usize(*n);
        }
        PrecondSpec::Jacobi { inv_diag } => {
            w.u8(1);
            w.f64s(inv_diag);
        }
        PrecondSpec::BlockJacobi { block } => {
            w.u8(2);
            w.usize(*block);
        }
        PrecondSpec::Chebyshev { degree, lo, hi } => {
            w.u8(3);
            w.usize(*degree);
            w.f64(*lo);
            w.f64(*hi);
        }
        PrecondSpec::Ssor { omega } => {
            w.u8(4);
            w.f64(*omega);
        }
        PrecondSpec::Ic0 => w.u8(5),
    }
}

fn decode_spec(r: &mut WireReader<'_>) -> PrecondSpec {
    match r.u8() {
        0 => PrecondSpec::Identity { n: r.usize() },
        1 => PrecondSpec::Jacobi { inv_diag: r.f64s() },
        2 => PrecondSpec::BlockJacobi { block: r.usize() },
        3 => PrecondSpec::Chebyshev {
            degree: r.usize(),
            lo: r.f64(),
            hi: r.f64(),
        },
        4 => PrecondSpec::Ssor { omega: r.f64() },
        5 => PrecondSpec::Ic0,
        k => panic!("setup: unknown preconditioner spec kind {k}"),
    }
}

fn encode_basis(w: &mut WireWriter, basis: &BasisType) {
    match basis {
        BasisType::Monomial => w.u8(0),
        BasisType::Newton { shifts } => {
            w.u8(1);
            w.f64s(shifts);
        }
        BasisType::Chebyshev {
            lambda_min,
            lambda_max,
        } => {
            w.u8(2);
            w.f64(*lambda_min);
            w.f64(*lambda_max);
        }
    }
}

fn decode_basis(r: &mut WireReader<'_>) -> BasisType {
    match r.u8() {
        0 => BasisType::Monomial,
        1 => BasisType::Newton { shifts: r.f64s() },
        2 => BasisType::Chebyshev {
            lambda_min: r.f64(),
            lambda_max: r.f64(),
        },
        k => panic!("setup: unknown basis kind {k}"),
    }
}

fn encode_method(w: &mut WireWriter, method: &Method) {
    match method {
        Method::Pcg => w.u8(0),
        Method::Pcg3 => w.u8(1),
        Method::SPcg { s, basis } => {
            w.u8(2);
            w.usize(*s);
            encode_basis(w, basis);
        }
        Method::SPcgMon { s } => {
            w.u8(3);
            w.usize(*s);
        }
        Method::CaPcg { s, basis } => {
            w.u8(4);
            w.usize(*s);
            encode_basis(w, basis);
        }
        Method::CaPcg3 { s, basis } => {
            w.u8(5);
            w.usize(*s);
            encode_basis(w, basis);
        }
        Method::AdaptiveCaPcg { s, basis } => {
            w.u8(6);
            w.usize(*s);
            encode_basis(w, basis);
        }
        Method::CaPcgGs { s, basis } => {
            w.u8(7);
            w.usize(*s);
            encode_basis(w, basis);
        }
        Method::EkCg { t } => {
            w.u8(8);
            w.usize(*t);
        }
    }
}

fn decode_method(r: &mut WireReader<'_>) -> Method {
    match r.u8() {
        0 => Method::Pcg,
        1 => Method::Pcg3,
        2 => Method::SPcg {
            s: r.usize(),
            basis: decode_basis(r),
        },
        3 => Method::SPcgMon { s: r.usize() },
        4 => Method::CaPcg {
            s: r.usize(),
            basis: decode_basis(r),
        },
        5 => Method::CaPcg3 {
            s: r.usize(),
            basis: decode_basis(r),
        },
        6 => Method::AdaptiveCaPcg {
            s: r.usize(),
            basis: decode_basis(r),
        },
        7 => Method::CaPcgGs {
            s: r.usize(),
            basis: decode_basis(r),
        },
        8 => Method::EkCg { t: r.usize() },
        k => panic!("setup: unknown method kind {k}"),
    }
}

impl Setup {
    fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(PROTO);
        w.usize(self.rank);
        w.usize(self.nranks);
        w.usizes(&self.offsets);
        w.usize(self.nrows);
        w.usize(self.ncols);
        w.usizes(&self.row_ptr);
        w.usizes(&self.col_idx);
        w.f64s(&self.values);
        w.f64s(&self.b);
        encode_spec(&mut w, &self.spec);
        encode_method(&mut w, &self.method);
        w.f64(self.tol);
        w.usize(self.max_iters);
        w.u8(match self.criterion {
            StoppingCriterion::TrueResidual2Norm => 0,
            StoppingCriterion::RecursiveResidual2Norm => 1,
            StoppingCriterion::PrecondMNorm => 2,
        });
        w.f64(self.divergence_factor);
        w.usize(self.stall_checks);
        w.u8(self.keep_history as u8);
        match self.residual_replacement {
            Some(f) => {
                w.u8(1);
                w.f64(f);
            }
            None => w.u8(0),
        }
        w.usize(self.threads);
        w.u8(self.overlap as u8);
        w.u8(match self.format {
            SparseFormat::Csr => 0,
            SparseFormat::Sell => 1,
        });
        match self.trace_cap {
            Some(cap) => {
                w.u8(1);
                w.usize(cap);
            }
            None => w.u8(0),
        }
        match self.faults {
            Some((seed, rate, mask)) => {
                w.u8(1);
                w.u64(seed);
                w.f64(rate);
                w.u8(mask);
            }
            None => w.u8(0),
        }
        match &self.resilience {
            Some(res) => {
                w.u8(1);
                w.usize(res.max_restarts);
                w.u8(res.shrink_s as u8);
                w.u8(res.gs_recovery as u8);
            }
            None => w.u8(0),
        }
        w.usize(self.adaptive.s_min);
        w.usize(self.adaptive.s_max);
        w.f64(self.adaptive.cond_grow);
        w.f64(self.adaptive.cond_shrink);
        w.f64(self.adaptive.cond_reject);
        w.f64(self.adaptive.gap_tol);
        w.f64(self.adaptive.drift_tol);
        w.usize(self.adaptive.grow_patience);
        w.usize(self.adaptive.min_ritz);
        w.usize(self.adaptive.max_ritz);
        w.f64(self.adaptive.margin);
        match self.kill_at_reduce {
            Some(n) => {
                w.u8(1);
                w.u64(n);
            }
            None => w.u8(0),
        }
        w.into_bytes()
    }

    fn decode(buf: &[u8]) -> Setup {
        let mut r = WireReader::new(buf);
        let proto = r.u64();
        assert_eq!(proto, PROTO, "setup: protocol mismatch (stale spcg-rankd?)");
        let s = Setup {
            rank: r.usize(),
            nranks: r.usize(),
            offsets: r.usizes(),
            nrows: r.usize(),
            ncols: r.usize(),
            row_ptr: r.usizes(),
            col_idx: r.usizes(),
            values: r.f64s(),
            b: r.f64s(),
            spec: decode_spec(&mut r),
            method: decode_method(&mut r),
            tol: r.f64(),
            max_iters: r.usize(),
            criterion: match r.u8() {
                0 => StoppingCriterion::TrueResidual2Norm,
                1 => StoppingCriterion::RecursiveResidual2Norm,
                2 => StoppingCriterion::PrecondMNorm,
                k => panic!("setup: unknown criterion {k}"),
            },
            divergence_factor: r.f64(),
            stall_checks: r.usize(),
            keep_history: r.u8() != 0,
            residual_replacement: (r.u8() != 0).then(|| r.f64()),
            threads: r.usize(),
            overlap: r.u8() != 0,
            format: match r.u8() {
                0 => SparseFormat::Csr,
                1 => SparseFormat::Sell,
                k => panic!("setup: unknown sparse format {k}"),
            },
            trace_cap: (r.u8() != 0).then(|| r.usize()),
            faults: (r.u8() != 0).then(|| (r.u64(), r.f64(), r.u8())),
            resilience: (r.u8() != 0).then(|| Resilience {
                max_restarts: r.usize(),
                shrink_s: r.u8() != 0,
                gs_recovery: r.u8() != 0,
            }),
            adaptive: AdaptivePolicy {
                s_min: r.usize(),
                s_max: r.usize(),
                cond_grow: r.f64(),
                cond_shrink: r.f64(),
                cond_reject: r.f64(),
                gap_tol: r.f64(),
                drift_tol: r.f64(),
                grow_patience: r.usize(),
                min_ritz: r.usize(),
                max_ritz: r.usize(),
                margin: r.f64(),
            },
            kill_at_reduce: (r.u8() != 0).then(|| r.u64()),
        };
        assert!(r.is_done(), "setup: trailing bytes");
        s
    }
}

/// A worker's solve outcome, shipped back as the `RESULT` frame.
struct WorkerResult {
    x_local: Vec<f64>,
    outcome: Outcome,
    iterations: usize,
    history: Vec<(usize, f64)>,
    counters: Counters,
    restarts: usize,
    s_schedule: Vec<usize>,
    /// Adaptive controller report (`Some` exactly for `AdaptiveCaPcg`).
    adaptive: Option<AdaptiveReport>,
    /// Faults this worker's plan injected, per site in `FAULT_SITES`
    /// order — credited into the parent plan via `record_remote`.
    site_deltas: [u64; 5],
    tracks: Vec<RawTrack>,
}

fn encode_counters(w: &mut WireWriter, c: &Counters) {
    w.u64s(&[
        c.spmv_count,
        c.spmv_flops,
        c.precond_count,
        c.precond_flops,
        c.global_collectives,
        c.allreduce_words,
        c.dot_count,
        c.local_reduction_flops,
        c.blas1_flops,
        c.blas2_flops,
        c.blas3_flops,
        c.small_flops,
        c.iterations,
        c.outer_iterations,
        c.halo_exchanges,
        c.halo_words,
        c.restarts,
    ]);
}

fn decode_counters(r: &mut WireReader<'_>) -> Counters {
    let v = r.u64s();
    assert_eq!(v.len(), 17, "result: counter field count");
    Counters {
        spmv_count: v[0],
        spmv_flops: v[1],
        precond_count: v[2],
        precond_flops: v[3],
        global_collectives: v[4],
        allreduce_words: v[5],
        dot_count: v[6],
        local_reduction_flops: v[7],
        blas1_flops: v[8],
        blas2_flops: v[9],
        blas3_flops: v[10],
        small_flops: v[11],
        iterations: v[12],
        outer_iterations: v[13],
        halo_exchanges: v[14],
        halo_words: v[15],
        restarts: v[16],
    }
}

impl WorkerResult {
    fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.f64s(&self.x_local);
        match &self.outcome {
            Outcome::Converged => w.u8(0),
            Outcome::MaxIterations => w.u8(1),
            Outcome::Diverged => w.u8(2),
            Outcome::Stagnated => w.u8(3),
            Outcome::Breakdown(msg) => {
                w.u8(4);
                w.str(msg);
            }
            // Ranked workers run plain solves, which never report a
            // deadline; encoded anyway so the codec stays total.
            Outcome::DeadlineExpired => w.u8(5),
        }
        w.usize(self.iterations);
        w.usizes(&self.history.iter().map(|&(i, _)| i).collect::<Vec<_>>());
        w.f64s(&self.history.iter().map(|&(_, v)| v).collect::<Vec<_>>());
        encode_counters(&mut w, &self.counters);
        w.usize(self.restarts);
        w.usizes(&self.s_schedule);
        match &self.adaptive {
            Some(rep) => {
                w.u8(1);
                w.usize(rep.shift_history.len());
                for u in &rep.shift_history {
                    w.usize(u.iteration);
                    w.str(&u.basis);
                    w.f64(u.lambda_min);
                    w.f64(u.lambda_max);
                    w.usize(u.ritz_count);
                }
                w.f64s(&rep.ritz);
            }
            None => w.u8(0),
        }
        w.u64s(&self.site_deltas);
        w.usize(self.tracks.len());
        for t in &self.tracks {
            w.usize(t.rank);
            w.usize(t.thread);
            w.u64(t.dropped);
            w.usize(t.events.len());
            for &(phase, begin, t_ns) in &t.events {
                w.usize(phase);
                w.u8(begin as u8);
                w.u64(t_ns);
            }
        }
        w.into_bytes()
    }

    fn decode(buf: &[u8]) -> WorkerResult {
        let mut r = WireReader::new(buf);
        let x_local = r.f64s();
        let outcome = match r.u8() {
            0 => Outcome::Converged,
            1 => Outcome::MaxIterations,
            2 => Outcome::Diverged,
            3 => Outcome::Stagnated,
            4 => Outcome::Breakdown(r.str()),
            5 => Outcome::DeadlineExpired,
            k => panic!("result: unknown outcome {k}"),
        };
        let iterations = r.usize();
        let hist_iters = r.usizes();
        let hist_vals = r.f64s();
        assert_eq!(hist_iters.len(), hist_vals.len(), "result: history length");
        let history = hist_iters.into_iter().zip(hist_vals).collect();
        let counters = decode_counters(&mut r);
        let restarts = r.usize();
        let s_schedule = r.usizes();
        let adaptive = (r.u8() != 0).then(|| {
            let nshifts = r.usize();
            let mut shift_history = Vec::with_capacity(nshifts);
            for _ in 0..nshifts {
                shift_history.push(ShiftUpdate {
                    iteration: r.usize(),
                    basis: r.str(),
                    lambda_min: r.f64(),
                    lambda_max: r.f64(),
                    ritz_count: r.usize(),
                });
            }
            AdaptiveReport {
                shift_history,
                ritz: r.f64s(),
            }
        });
        let deltas = r.u64s();
        assert_eq!(deltas.len(), 5, "result: fault site count");
        let mut site_deltas = [0u64; 5];
        site_deltas.copy_from_slice(&deltas);
        let ntracks = r.usize();
        let mut tracks = Vec::with_capacity(ntracks);
        for _ in 0..ntracks {
            let rank = r.usize();
            let thread = r.usize();
            let dropped = r.u64();
            let nevents = r.usize();
            let mut events = Vec::with_capacity(nevents);
            for _ in 0..nevents {
                events.push((r.usize(), r.u8() != 0, r.u64()));
            }
            tracks.push(RawTrack {
                rank,
                thread,
                events,
                dropped,
            });
        }
        assert!(r.is_done(), "result: trailing bytes");
        WorkerResult {
            x_local,
            outcome,
            iterations,
            history,
            counters,
            restarts,
            s_schedule,
            adaptive,
            site_deltas,
            tracks,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// The worker's connection to the hub: buffered reads, unbuffered writes
/// (every frame is flushed), shared by the comm and both boards through
/// an `Rc` — the solve is single-threaded per rank, so `RefCell` suffices.
struct Link {
    reader: RefCell<BufReader<UnixStream>>,
    writer: RefCell<UnixStream>,
    rank: usize,
    nranks: usize,
}

impl Link {
    fn send(&self, tag: u8, payload: &[u8]) {
        write_frame(&mut *self.writer.borrow_mut(), tag, payload)
            .unwrap_or_else(|e| panic!("rankd[{}]: hub write failed: {e}", self.rank));
    }

    /// Reads the next frame, asserting it carries the awaited tag — the
    /// protocol is strict request/reply, so anything else is a bug.
    fn expect(&self, tag: u8) -> Vec<u8> {
        let (got, payload) = read_frame(&mut *self.reader.borrow_mut())
            .unwrap_or_else(|e| panic!("rankd[{}]: hub read failed: {e}", self.rank));
        assert_eq!(
            got, tag,
            "rankd[{}]: expected frame tag {tag}, got {got}",
            self.rank
        );
        payload
    }
}

/// [`Comm`] over the hub: barriers and rank-order-summed allreduces as
/// single request/reply round trips.
struct ProcComm {
    link: Rc<Link>,
    /// Fault drill: die (without a word) just before performing allreduce
    /// number `n` — a *real* rank failure for the parent to detect.
    kill_at_reduce: Option<u64>,
    reduces: Cell<u64>,
}

impl Comm for ProcComm {
    fn rank(&self) -> usize {
        self.link.rank
    }

    fn nranks(&self) -> usize {
        self.link.nranks
    }

    fn barrier(&self) {
        self.link.send(TAG_BARRIER, &[]);
        let reply = self.link.expect(TAG_BARRIER_OK);
        assert!(reply.is_empty(), "barrier: unexpected payload");
    }

    fn allreduce_sum(&self, buf: &mut [f64]) {
        let seq = self.reduces.get();
        self.reduces.set(seq + 1);
        if self.kill_at_reduce == Some(seq) {
            // Simulated hardware loss: no farewell frame, just a dead
            // socket for the hub's reader to trip over.
            std::process::exit(3);
        }
        let mut w = WireWriter::new();
        w.f64s(buf);
        self.link.send(TAG_REDUCE, &w.into_bytes());
        let reply = self.link.expect(TAG_REDUCE_SUM);
        let mut r = WireReader::new(&reply);
        let sum = r.f64s();
        assert_eq!(sum.len(), buf.len(), "allreduce: length mismatch");
        buf.copy_from_slice(&sum);
    }
}

/// [`Exchange`] over the hub, mirroring `VectorBoard`'s observable
/// behaviour: the same epoch asserts, the same `(site, salt, rank,
/// round)` fault decision points in the same order, the same
/// `ExchangePost`/`ExchangeWait` spans. A completion fetches the full
/// board and gathers locally through the shared [`GatherPlan`] kernel.
struct ProcBoard {
    link: Rc<Link>,
    /// Which of the two hub boards this is (exchange seed vs `M⁻¹`-seed).
    board_id: u8,
    offsets: Arc<Vec<usize>>,
    /// Round this rank has posted (local view of the hub epoch).
    published: Cell<u64>,
    /// Round this rank has finished reading.
    consumed: Cell<u64>,
    faults: Option<FaultPlan>,
    /// Fault-decision salt: 0 and 1, matching the thread backend's boards.
    salt: u64,
}

impl ProcBoard {
    fn new(
        link: Rc<Link>,
        board_id: u8,
        offsets: Arc<Vec<usize>>,
        faults: Option<FaultPlan>,
    ) -> Self {
        ProcBoard {
            link,
            board_id,
            offsets,
            published: Cell::new(0),
            consumed: Cell::new(0),
            faults,
            salt: board_id as u64,
        }
    }

    /// Completes the current round: request the full board, gather from
    /// the reply. The hub holds the reply until every rank has published
    /// the round, which is exactly `VectorBoard`'s completion wait.
    fn fetch_full(&self, track: Option<&Track>) -> Vec<f64> {
        let _span = spcg_obs::span(track, Phase::ExchangeWait);
        let me = self.link.rank;
        let round = self.published.get();
        assert_eq!(
            self.consumed.get() + 1,
            round,
            "complete: rank {me} has not posted this round"
        );
        if self
            .faults
            .as_ref()
            .map(|p| p.fire(spcg_dist::FaultSite::CompleteStall, self.salt, me, round))
            .unwrap_or(false)
        {
            std::thread::sleep(spcg_dist::fault::STALL);
        }
        let mut w = WireWriter::new();
        w.u8(self.board_id);
        w.u64(round);
        self.link.send(TAG_WANT, &w.into_bytes());
        let reply = self.link.expect(TAG_BOARD);
        let mut r = WireReader::new(&reply);
        let full = r.f64s();
        assert_eq!(
            full.len(),
            *self.offsets.last().unwrap(),
            "complete: board length mismatch"
        );
        self.consumed.set(round);
        full
    }
}

impl Exchange for ProcBoard {
    fn post(&self, chunk: &[f64], track: Option<&Track>) {
        let _span = spcg_obs::span(track, Phase::ExchangePost);
        let me = self.link.rank;
        let (lo, hi) = self.range(me);
        assert_eq!(chunk.len(), hi - lo, "post: chunk length mismatch");
        assert_eq!(
            self.consumed.get(),
            self.published.get(),
            "post: previous round not completed on rank {me}"
        );
        let round = self.published.get() + 1;
        // Same decision sequence as `VectorBoard::post`: poison the sent
        // copy's last entry, stall before the publish, then optionally
        // re-publish the identical payload. The hub's pending-post queue
        // absorbs the duplicate idempotently.
        let mut owned = chunk.to_vec();
        let faults = self.faults.as_ref();
        let poisoned = faults
            .map(|p| p.fire(spcg_dist::FaultSite::PoisonHalo, self.salt, me, round))
            .unwrap_or(false);
        if poisoned && hi > lo {
            *owned.last_mut().unwrap() = f64::NAN;
        }
        if faults
            .map(|p| p.fire(spcg_dist::FaultSite::PostStall, self.salt, me, round))
            .unwrap_or(false)
        {
            std::thread::sleep(spcg_dist::fault::STALL);
        }
        let mut w = WireWriter::new();
        w.u8(self.board_id);
        w.u64(round);
        w.f64s(&owned);
        let payload = w.into_bytes();
        self.link.send(TAG_POST, &payload);
        self.published.set(round);
        if faults
            .map(|p| p.fire(spcg_dist::FaultSite::PublishDuplicate, self.salt, me, round))
            .unwrap_or(false)
        {
            self.link.send(TAG_POST, &payload);
        }
    }

    fn complete_into(&self, plan: &GatherPlan, out: &mut [f64], track: Option<&Track>) {
        let full = self.fetch_full(track);
        plan.gather(&full, out);
    }

    fn complete_snapshot(&self, track: Option<&Track>) -> Vec<f64> {
        self.fetch_full(track)
    }

    fn plan(&self, indices: &[usize]) -> GatherPlan {
        GatherPlan::build(&self.offsets, indices)
    }

    fn range(&self, rank: usize) -> (usize, usize) {
        (self.offsets[rank], self.offsets[rank + 1])
    }
}

/// Entry point of the `spcg-rankd` worker binary: connect, say hello,
/// receive the Setup, run the rank, ship the result. Never returns.
///
/// # Panics
/// Panics (exiting the process, which the hub reads as rank death) on any
/// protocol or setup violation.
pub fn worker_main() -> ! {
    let mut args = std::env::args().skip(1);
    let sock = args.next().expect("usage: spcg-rankd <socket> <rank>");
    let rank: usize = args
        .next()
        .and_then(|r| r.parse().ok())
        .expect("usage: spcg-rankd <socket> <rank>");
    let stream =
        UnixStream::connect(&sock).unwrap_or_else(|e| panic!("rankd[{rank}]: connect {sock}: {e}"));
    let mut reader = BufReader::new(stream.try_clone().expect("rankd: clone stream"));
    let mut hello = WireWriter::new();
    hello.u64(PROTO);
    hello.usize(rank);
    write_frame(&mut &stream, TAG_HELLO, &hello.into_bytes()).expect("rankd: hello");
    let (tag, payload) = read_frame(&mut reader).expect("rankd: setup read");
    assert_eq!(
        tag, TAG_SETUP,
        "rankd[{rank}]: expected setup, got tag {tag}"
    );
    let setup = Setup::decode(&payload);
    assert_eq!(setup.rank, rank, "rankd[{rank}]: setup for wrong rank");
    let link = Rc::new(Link {
        reader: RefCell::new(reader),
        writer: RefCell::new(stream),
        rank,
        nranks: setup.nranks,
    });
    let result = run_worker(&setup, Rc::clone(&link));
    link.send(TAG_RESULT, &result.encode());
    std::process::exit(0);
}

/// Runs one rank's solve against the hub — the process-backend twin of
/// `run_ranked`'s per-rank closure.
fn run_worker(setup: &Setup, link: Rc<Link>) -> WorkerResult {
    let a = Arc::new(CsrMatrix::from_raw(
        setup.nrows,
        setup.ncols,
        setup.row_ptr.clone(),
        setup.col_idx.clone(),
        setup.values.clone(),
    ));
    let m = setup.spec.build(&a);
    let problem = Problem::new(&a, &*m, &setup.b);
    let offsets = Arc::new(setup.offsets.clone());
    let (lo, hi) = (offsets[setup.rank], offsets[setup.rank + 1]);
    let plan = setup
        .faults
        .map(|(seed, rate, mask)| FaultPlan::new(seed, rate).with_sites_mask(mask));
    let tracer = setup.trace_cap.map(Tracer::with_capacity);
    let track = tracer.as_ref().map(|t| t.track(setup.rank));
    // Built field by field from the Setup — never from `Default`, which
    // would let the worker's environment bleed into the solve.
    let opts = SolveOptions {
        tol: setup.tol,
        max_iters: setup.max_iters,
        criterion: setup.criterion,
        divergence_factor: setup.divergence_factor,
        stall_checks: setup.stall_checks,
        keep_history: setup.keep_history,
        residual_replacement: setup.residual_replacement,
        threads: setup.threads,
        overlap: setup.overlap,
        format: setup.format,
        backend: Backend::Thread,
        trace: tracer.clone(),
        faults: plan.clone(),
        resilience: setup.resilience.clone(),
        adaptive: setup.adaptive.clone(),
    };
    let mpk_depth = setup.method.mpk_depth(&opts);
    let comm = ProcComm {
        link: Rc::clone(&link),
        kill_at_reduce: setup.kill_at_reduce,
        reduces: Cell::new(0),
    };
    let board = ProcBoard::new(Rc::clone(&link), 0, Arc::clone(&offsets), plan.clone());
    let board2 = ProcBoard::new(Rc::clone(&link), 1, Arc::clone(&offsets), plan.clone());
    let mut exec = crate::engine::RankExec::new(
        &problem,
        Box::new(comm),
        lo,
        hi,
        Box::new(board),
        Box::new(board2),
        mpk_depth,
        setup.threads,
        setup.overlap,
        setup.format,
        track,
        plan.clone(),
    );
    let res = solve_resilient(&setup.method, &mut exec, &opts, setup.resilience.as_ref());
    drop(exec); // drains this rank's trace track into the tracer
    let mut site_deltas = [0u64; 5];
    if let Some(p) = &plan {
        let counts = p.counts();
        for (i, site) in FAULT_SITES.iter().enumerate() {
            site_deltas[i] = counts.site(*site);
        }
    }
    WorkerResult {
        x_local: res.x,
        outcome: res.outcome,
        iterations: res.iterations,
        history: res.history,
        counters: res.counters,
        restarts: res.restarts,
        s_schedule: res.s_schedule,
        adaptive: res.adaptive,
        site_deltas,
        tracks: tracer.map(|t| t.raw_tracks()).unwrap_or_default(),
    }
}

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

/// Locates the `spcg-rankd` worker binary: `SPCG_RANKD` when set,
/// otherwise next to (or one directory above) the current executable —
/// which finds `target/<profile>/spcg-rankd` from both `cargo test`
/// binaries (in `deps/`) and installed tools. `None` when neither exists;
/// ranked solves then fall back to the thread backend.
pub fn rankd_path() -> Option<PathBuf> {
    if let Some(p) = crate::options::env::raw("SPCG_RANKD") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for d in [Some(dir), dir.parent()].into_iter().flatten() {
        let cand = d.join("spcg-rankd");
        if cand.is_file() {
            return Some(cand);
        }
    }
    None
}

/// Per-board exchange state the hub keeps on behalf of the world — the
/// `VectorBoard` flags table, one socket hop away.
struct HubBoard {
    data: Vec<f64>,
    published: Vec<u64>,
    consumed: Vec<u64>,
    /// Posts that arrived before every rank consumed the previous round.
    pending_post: Vec<VecDeque<(u64, Vec<f64>)>>,
    /// Completion requests awaiting the round's last publisher.
    pending_want: Vec<Option<u64>>,
}

impl HubBoard {
    fn new(n: usize, nranks: usize) -> Self {
        HubBoard {
            data: vec![0.0; n],
            published: vec![0; nranks],
            consumed: vec![0; nranks],
            pending_post: vec![VecDeque::new(); nranks],
            pending_want: vec![None; nranks],
        }
    }
}

enum HubMsg {
    Frame(usize, u8, Vec<u8>),
    /// The rank's socket hit EOF or an error. Normal after its RESULT
    /// frame; rank death before it.
    Gone(usize),
}

enum WorldError {
    /// A rank died mid-solve — respawn the world.
    RankDied(usize),
    Fatal(String),
}

/// Kills and reaps the worker processes on every exit path.
struct ChildReaper(Vec<Child>);

impl Drop for ChildReaper {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Removes the rendezvous socket file on every exit path.
struct SockCleanup(PathBuf);

impl Drop for SockCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A unique-per-call rendezvous socket path under the system temp dir.
fn sock_path() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("spcg-rankd-{}-{seq}.sock", std::process::id()))
}

/// Parses `SPCG_PROC_KILL=<rank>:<nth>` — the fault drill that makes the
/// targeted rank of incarnation 0 exit just before its nth allreduce.
fn kill_directive() -> Option<(usize, u64)> {
    let v = crate::options::env::raw("SPCG_PROC_KILL")?;
    let (rank, nth) = v.split_once(':')?;
    Some((rank.trim().parse().ok()?, nth.trim().parse().ok()?))
}

/// Applies every hub-side state transition that has become legal, to a
/// fixpoint: posts whose previous round is fully consumed, completions
/// whose round is fully published. Replies are written synchronously —
/// the requesting worker is blocked reading them.
fn drain_board(
    board: &mut HubBoard,
    board_id: u8,
    offsets: &[usize],
    writers: &mut [UnixStream],
) -> Result<(), WorldError> {
    let nranks = writers.len();
    loop {
        let mut progressed = false;
        for r in 0..nranks {
            if let Some(&(round, _)) = board.pending_post[r].front() {
                let apply = if round == board.published[r] {
                    // PublishDuplicate's second copy of an already-applied
                    // round: identical payload, re-apply idempotently.
                    true
                } else {
                    assert_eq!(
                        round,
                        board.published[r] + 1,
                        "hub: rank {r} posted round {round} out of order"
                    );
                    board.consumed.iter().all(|&c| c + 1 >= round)
                };
                if apply {
                    let (round, chunk) = board.pending_post[r].pop_front().unwrap();
                    board.data[offsets[r]..offsets[r + 1]].copy_from_slice(&chunk);
                    board.published[r] = board.published[r].max(round);
                    progressed = true;
                }
            }
        }
        for r in 0..nranks {
            if let Some(round) = board.pending_want[r] {
                if board.published.iter().all(|&p| p >= round) {
                    let mut w = WireWriter::new();
                    w.f64s(&board.data);
                    write_frame(&mut writers[r], TAG_BOARD, &w.into_bytes())
                        .map_err(|_| WorldError::RankDied(r))?;
                    // The full-board reply *is* the consumption: the rank
                    // has everything it could gather from this round.
                    board.consumed[r] = round;
                    board.pending_want[r] = None;
                    progressed = true;
                }
            }
        }
        let _ = board_id;
        if !progressed {
            return Ok(());
        }
    }
}

/// Runs one world incarnation: spawn `spcg-rankd` per rank, feed Setups,
/// relay exchanges/reductions until every rank ships its result.
fn run_world(
    rankd: &PathBuf,
    setups: &[Setup],
    offsets: &[usize],
) -> Result<Vec<WorkerResult>, WorldError> {
    let nranks = setups.len();
    let n = *offsets.last().unwrap();
    let path = sock_path();
    let _cleanup = SockCleanup(path.clone());
    let listener = UnixListener::bind(&path)
        .map_err(|e| WorldError::Fatal(format!("bind {}: {e}", path.display())))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| WorldError::Fatal(format!("listener: {e}")))?;

    let mut reaper = ChildReaper(Vec::with_capacity(nranks));
    for rank in 0..nranks {
        let child = Command::new(rankd)
            .arg(&path)
            .arg(rank.to_string())
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| WorldError::Fatal(format!("spawn {}: {e}", rankd.display())))?;
        reaper.0.push(child);
    }

    // Accept all workers; the Hello frame tells us who is who (accept
    // order is scheduler-dependent).
    let mut streams: Vec<Option<UnixStream>> = (0..nranks).map(|_| None).collect();
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    let mut connected = 0;
    while connected < nranks {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| WorldError::Fatal(format!("accept: {e}")))?;
                let mut rdr = BufReader::new(
                    stream
                        .try_clone()
                        .map_err(|e| WorldError::Fatal(format!("clone: {e}")))?,
                );
                let (tag, payload) =
                    read_frame(&mut rdr).map_err(|e| WorldError::Fatal(format!("hello: {e}")))?;
                if tag != TAG_HELLO {
                    return Err(WorldError::Fatal(format!("expected hello, got tag {tag}")));
                }
                let mut r = WireReader::new(&payload);
                let proto = r.u64();
                if proto != PROTO {
                    return Err(WorldError::Fatal(format!(
                        "spcg-rankd speaks protocol {proto}, parent speaks {PROTO} — rebuild"
                    )));
                }
                let rank = r.usize();
                if rank >= nranks || streams[rank].is_some() {
                    return Err(WorldError::Fatal(format!("bogus hello from rank {rank}")));
                }
                streams[rank] = Some(stream);
                connected += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(WorldError::Fatal(format!(
                        "only {connected}/{nranks} workers connected within {CONNECT_TIMEOUT:?}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(WorldError::Fatal(format!("accept: {e}"))),
        }
    }
    let mut writers: Vec<UnixStream> = streams.into_iter().map(|s| s.unwrap()).collect();

    for (rank, setup) in setups.iter().enumerate() {
        write_frame(&mut writers[rank], TAG_SETUP, &setup.encode())
            .map_err(|_| WorldError::RankDied(rank))?;
    }

    let (tx, rx) = mpsc::channel::<HubMsg>();
    let mut reader_handles = Vec::with_capacity(nranks);
    for (rank, stream) in writers.iter().enumerate() {
        let tx = tx.clone();
        let mut rdr = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| WorldError::Fatal(format!("clone: {e}")))?,
        );
        reader_handles.push(std::thread::spawn(move || loop {
            match read_frame(&mut rdr) {
                Ok((tag, payload)) => {
                    if tx.send(HubMsg::Frame(rank, tag, payload)).is_err() {
                        return;
                    }
                }
                Err(_) => {
                    let _ = tx.send(HubMsg::Gone(rank));
                    return;
                }
            }
        }));
    }
    drop(tx);

    let hub = hub_loop(&rx, &mut writers, offsets, n, nranks);
    // Readers exit on their own once the sockets close (reaper kills any
    // stragglers when it drops); detach rather than block on a wedge.
    drop(rx);
    drop(reaper);
    for h in reader_handles {
        let _ = h.join();
    }
    hub
}

/// The hub's message loop: applies board/barrier/reduce transitions until
/// every rank's RESULT has arrived.
fn hub_loop(
    rx: &mpsc::Receiver<HubMsg>,
    writers: &mut [UnixStream],
    offsets: &[usize],
    n: usize,
    nranks: usize,
) -> Result<Vec<WorkerResult>, WorldError> {
    let mut boards = [HubBoard::new(n, nranks), HubBoard::new(n, nranks)];
    let mut barrier_in: Vec<bool> = vec![false; nranks];
    let mut reduce_slots: Vec<Option<Vec<f64>>> = vec![None; nranks];
    let mut results: Vec<Option<WorkerResult>> = (0..nranks).map(|_| None).collect();
    let mut done = 0;
    while done < nranks {
        let msg = rx
            .recv_timeout(HUB_TIMEOUT)
            .map_err(|_| WorldError::Fatal(format!("hub: no worker message in {HUB_TIMEOUT:?}")))?;
        match msg {
            HubMsg::Gone(rank) => {
                if results[rank].is_none() {
                    return Err(WorldError::RankDied(rank));
                }
            }
            HubMsg::Frame(rank, TAG_POST, payload) => {
                let mut r = WireReader::new(&payload);
                let board_id = r.u8() as usize;
                let round = r.u64();
                let chunk = r.f64s();
                assert!(board_id < 2, "hub: bogus board id");
                assert_eq!(
                    chunk.len(),
                    offsets[rank + 1] - offsets[rank],
                    "hub: post chunk length"
                );
                boards[board_id].pending_post[rank].push_back((round, chunk));
                drain_board(&mut boards[board_id], board_id as u8, offsets, writers)?;
            }
            HubMsg::Frame(rank, TAG_WANT, payload) => {
                let mut r = WireReader::new(&payload);
                let board_id = r.u8() as usize;
                let round = r.u64();
                assert!(board_id < 2, "hub: bogus board id");
                assert!(
                    boards[board_id].pending_want[rank].is_none(),
                    "hub: rank {rank} double-completed"
                );
                boards[board_id].pending_want[rank] = Some(round);
                drain_board(&mut boards[board_id], board_id as u8, offsets, writers)?;
            }
            HubMsg::Frame(rank, TAG_BARRIER, _) => {
                assert!(!barrier_in[rank], "hub: rank {rank} double-barriered");
                barrier_in[rank] = true;
                if barrier_in.iter().all(|&b| b) {
                    for (r, w) in writers.iter_mut().enumerate() {
                        write_frame(w, TAG_BARRIER_OK, &[]).map_err(|_| WorldError::RankDied(r))?;
                    }
                    barrier_in.iter_mut().for_each(|b| *b = false);
                }
            }
            HubMsg::Frame(rank, TAG_REDUCE, payload) => {
                let mut r = WireReader::new(&payload);
                let slot = r.f64s();
                assert!(
                    reduce_slots[rank].is_none(),
                    "hub: rank {rank} double-reduced"
                );
                reduce_slots[rank] = Some(slot);
                if reduce_slots.iter().all(|s| s.is_some()) {
                    let len = reduce_slots[0].as_ref().unwrap().len();
                    // Zero + rank-order accumulation: bitwise identical to
                    // ThreadComm::allreduce_sum for every arrival order.
                    let mut sum = vec![0.0; len];
                    for slot in reduce_slots.iter() {
                        let slot = slot.as_ref().unwrap();
                        assert_eq!(slot.len(), len, "hub: allreduce length mismatch");
                        for (acc, v) in sum.iter_mut().zip(slot) {
                            *acc += v;
                        }
                    }
                    let mut w = WireWriter::new();
                    w.f64s(&sum);
                    let frame = w.into_bytes();
                    for (r, wtr) in writers.iter_mut().enumerate() {
                        write_frame(wtr, TAG_REDUCE_SUM, &frame)
                            .map_err(|_| WorldError::RankDied(r))?;
                    }
                    reduce_slots.iter_mut().for_each(|s| *s = None);
                }
            }
            HubMsg::Frame(rank, TAG_RESULT, payload) => {
                assert!(results[rank].is_none(), "hub: rank {rank} double result");
                results[rank] = Some(WorkerResult::decode(&payload));
                done += 1;
            }
            HubMsg::Frame(rank, tag, _) => {
                return Err(WorldError::Fatal(format!(
                    "hub: unexpected frame tag {tag} from rank {rank}"
                )));
            }
        }
    }
    Ok(results.into_iter().map(|r| r.unwrap()).collect())
}

/// Runs `method` over `ranks` worker processes — the proc-backend twin of
/// `run_ranked`, assembling the identical `SolveResult`. `Err` means the
/// transport could not run at all (the caller falls back to threads);
/// rank deaths are healed internally by respawning the world.
pub(crate) fn run_proc(
    method: &Method,
    problem: &Problem<'_>,
    opts: &SolveOptions,
    ranks: usize,
) -> Result<SolveResult, String> {
    let spec = problem.m.spec().ok_or_else(|| {
        format!(
            "preconditioner {} has no serializable spec",
            problem.m.name()
        )
    })?;
    let rankd = rankd_path().ok_or("spcg-rankd binary not found (set SPCG_RANKD or build it)")?;
    let n = problem.n();
    let part = BlockRowPartition::balanced(n, ranks);
    let offsets: Vec<usize> = (0..=ranks)
        .map(|p| if p == 0 { 0 } else { part.range(p - 1).1 })
        .collect();
    let plan = opts.faults.clone().filter(|p| p.active() && ranks > 1);
    let resilience = opts
        .resilience
        .clone()
        .or_else(|| plan.as_ref().map(|_| Resilience::default()));
    let before = plan.as_ref().map(|p| p.counts());
    let kill = kill_directive();

    let mut incarnation = 0usize;
    let results = loop {
        let setups: Vec<Setup> = (0..ranks)
            .map(|rank| Setup {
                rank,
                nranks: ranks,
                offsets: offsets.clone(),
                nrows: problem.a.nrows(),
                ncols: problem.a.ncols(),
                row_ptr: problem.a.row_ptr().to_vec(),
                col_idx: problem.a.col_idx().to_vec(),
                values: problem.a.values().to_vec(),
                b: problem.b.to_vec(),
                spec: spec.clone(),
                method: method.clone(),
                tol: opts.tol,
                max_iters: opts.max_iters,
                criterion: opts.criterion,
                divergence_factor: opts.divergence_factor,
                stall_checks: opts.stall_checks,
                keep_history: opts.keep_history,
                residual_replacement: opts.residual_replacement,
                threads: opts.threads,
                overlap: opts.overlap,
                format: opts.format,
                trace_cap: opts.trace.as_ref().map(|t| t.capacity()),
                faults: plan.as_ref().map(|p| (p.seed(), p.rate(), p.sites_mask())),
                resilience: resilience.clone(),
                adaptive: opts.adaptive.clone(),
                kill_at_reduce: kill
                    .filter(|&(target, _)| incarnation == 0 && target == rank)
                    .map(|(_, nth)| nth),
            })
            .collect();
        match run_world(&rankd, &setups, &offsets) {
            Ok(results) => break results,
            Err(WorldError::RankDied(rank)) => {
                incarnation += 1;
                if incarnation >= MAX_INCARNATIONS {
                    return Err(format!(
                        "rank {rank} died and the world was respawned {} times already",
                        incarnation - 1
                    ));
                }
                eprintln!(
                    "spcg: proc rank {rank} died; respawning the world (incarnation {incarnation})"
                );
            }
            Err(WorldError::Fatal(msg)) => return Err(msg),
        }
    };

    // Assemble exactly like `run_ranked`: x is the concatenation of the
    // rank blocks, everything else comes from rank 0 (SPMD control flow
    // makes every rank's view of the collective run identical).
    let mut x = Vec::with_capacity(n);
    for r in &results {
        x.extend_from_slice(&r.x_local);
    }
    if let Some(tracer) = &opts.trace {
        for r in &results {
            for t in r.tracks.clone() {
                tracer.import_raw(t);
            }
        }
    }
    if let Some(plan) = &plan {
        for r in &results {
            for (i, site) in FAULT_SITES.iter().enumerate() {
                plan.record_remote(*site, r.site_deltas[i]);
            }
        }
    }
    let r0 = &results[0];
    let mut out = SolveResult {
        x,
        outcome: r0.outcome.clone(),
        iterations: r0.iterations,
        history: r0.history.clone(),
        counters: r0.counters.clone(),
        collectives_per_rank: Some(r0.counters.global_collectives),
        restarts: r0.restarts,
        s_schedule: r0.s_schedule.clone(),
        faults_absorbed: 0,
        adaptive: r0.adaptive.clone(),
    };
    if let (Some(plan), Some(before)) = (&plan, &before) {
        out.faults_absorbed = plan.counts().since(before).total();
    }
    // World respawns are restarts the driver took on the caller's behalf;
    // charge them like the resilience layer charges its own.
    out.restarts += incarnation;
    out.counters.restarts += incarnation as u64;
    Ok(out)
}
