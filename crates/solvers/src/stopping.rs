//! Convergence / divergence / stagnation tracking shared by all solvers.

use crate::engine::Exec;
use crate::options::{Outcome, SolveOptions, StoppingCriterion};
use spcg_dist::Counters;

/// Verdict of one convergence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Keep iterating.
    Continue,
    /// Criterion satisfied.
    Converged,
    /// Value non-finite or grew beyond the divergence factor.
    Diverged,
    /// Too many checks without improvement.
    Stagnated,
}

/// Tracks the criterion value across checks.
#[derive(Debug)]
pub struct StopState {
    tol: f64,
    divergence_factor: f64,
    stall_checks: usize,
    keep_history: bool,
    initial: Option<f64>,
    best: f64,
    checks_since_best: usize,
    /// `(iteration, value)` history when requested.
    pub history: Vec<(usize, f64)>,
}

impl StopState {
    /// Initializes from options.
    pub fn new(opts: &SolveOptions) -> Self {
        StopState {
            tol: opts.tol,
            divergence_factor: opts.divergence_factor,
            stall_checks: opts.stall_checks,
            keep_history: opts.keep_history,
            initial: None,
            best: f64::INFINITY,
            checks_since_best: 0,
            history: Vec::new(),
        }
    }

    /// Feeds the criterion value at `iteration`; the first call establishes
    /// the reference value the tolerance is relative to.
    pub fn check(&mut self, iteration: usize, value: f64) -> Verdict {
        if self.keep_history {
            self.history.push((iteration, value));
        }
        if !value.is_finite() {
            return Verdict::Diverged;
        }
        let initial = *self.initial.get_or_insert(value);
        if initial == 0.0 {
            // Zero initial residual: already solved.
            return Verdict::Converged;
        }
        let rel = value / initial;
        if rel < self.tol {
            return Verdict::Converged;
        }
        if rel > self.divergence_factor {
            return Verdict::Diverged;
        }
        if value < self.best {
            self.best = value;
            self.checks_since_best = 0;
        } else {
            self.checks_since_best += 1;
            if self.checks_since_best > self.stall_checks {
                return Verdict::Stagnated;
            }
        }
        Verdict::Continue
    }

    /// Resolves a breakdown: if the current iterate already satisfies the
    /// criterion, the solve *converged* — breakdowns at machine-precision
    /// residuals (zero curvature, singular scalar work) are the normal way
    /// an s-step block ends when the solution is reached mid-block.
    pub fn resolve_breakdown(&mut self, iteration: usize, value: f64, msg: String) -> Outcome {
        match self.check(iteration, value) {
            Verdict::Converged => Outcome::Converged,
            _ => Outcome::Breakdown(msg),
        }
    }

    /// Maps a final verdict to an [`Outcome`].
    pub fn outcome(verdict: Verdict) -> Outcome {
        match verdict {
            Verdict::Converged => Outcome::Converged,
            Verdict::Diverged => Outcome::Diverged,
            Verdict::Stagnated => Outcome::Stagnated,
            Verdict::Continue => Outcome::MaxIterations,
        }
    }
}

/// Evaluates the stopping-criterion value for the current state, charging
/// the instrumentation for whatever the chosen criterion costs:
///
/// * true residual — one extra SpMV, one dot, one piggybacked word;
/// * recursive 2-norm — one dot, one piggybacked word;
/// * M-norm — free (`rtu = rᵀM⁻¹r` is already reduced by every solver).
///
/// `x` and `r` are the local blocks of the execution substrate; the dots
/// combine local partials through the substrate's allreduce (serially the
/// identity, so serial values are unchanged bitwise).
pub(crate) fn criterion_value<E: Exec>(
    exec: &mut E,
    criterion: StoppingCriterion,
    x: &[f64],
    r: &[f64],
    rtu: f64,
    scratch: &mut Vec<f64>,
    counters: &mut Counters,
) -> f64 {
    let nl = exec.nl();
    let nw = exec.n_global();
    match criterion {
        StoppingCriterion::TrueResidual2Norm => {
            scratch.resize(nl, 0.0);
            exec.spmv(x, scratch, counters);
            counters.record_spmv(exec.spmv_flops());
            let mut acc = 0.0;
            let b = exec.b_local();
            for i in 0..nl {
                let d = b[i] - scratch[i];
                acc += d * d;
            }
            counters.record_dots(1, nw);
            counters.blas1_flops += nw;
            counters.piggyback_words(1);
            let mut red = [acc];
            exec.allreduce(&mut red);
            red[0].sqrt()
        }
        StoppingCriterion::RecursiveResidual2Norm => {
            counters.record_dots(1, nw);
            counters.piggyback_words(1);
            let mut red = [exec.dot(r, r)];
            exec.allreduce(&mut red);
            red[0].sqrt()
        }
        StoppingCriterion::PrecondMNorm => {
            // rtu can dip (tiny) negative in finite precision near
            // convergence; clamp so the sqrt stays defined.
            rtu.max(0.0).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> SolveOptions {
        SolveOptions {
            tol: 1e-3,
            divergence_factor: 1e4,
            stall_checks: 3,
            ..Default::default()
        }
    }

    #[test]
    fn converges_relative_to_initial() {
        let mut s = StopState::new(&opts());
        assert_eq!(s.check(0, 10.0), Verdict::Continue);
        assert_eq!(s.check(1, 1.0), Verdict::Continue);
        assert_eq!(s.check(2, 0.02), Verdict::Continue);
        assert_eq!(s.check(3, 0.0099), Verdict::Converged); // < 1e-3 * 10
    }

    #[test]
    fn diverges_on_blowup_or_nan() {
        let mut s = StopState::new(&opts());
        assert_eq!(s.check(0, 1.0), Verdict::Continue);
        assert_eq!(s.check(1, 2e4), Verdict::Diverged);
        let mut s2 = StopState::new(&opts());
        assert_eq!(s2.check(0, f64::NAN), Verdict::Diverged);
    }

    #[test]
    fn stagnates_after_stall_checks() {
        let mut s = StopState::new(&opts());
        assert_eq!(s.check(0, 1.0), Verdict::Continue);
        assert_eq!(s.check(1, 1.0), Verdict::Continue);
        assert_eq!(s.check(2, 1.0), Verdict::Continue);
        assert_eq!(s.check(3, 1.0), Verdict::Continue);
        assert_eq!(s.check(4, 1.0), Verdict::Stagnated);
    }

    #[test]
    fn improvement_resets_stall() {
        let mut s = StopState::new(&opts());
        s.check(0, 1.0);
        s.check(1, 1.0);
        s.check(2, 0.5); // improvement
        s.check(3, 0.5);
        s.check(4, 0.5);
        assert_eq!(s.check(5, 0.5), Verdict::Continue); // 3 stalls, not > 3 yet
        assert_eq!(s.check(6, 0.5), Verdict::Stagnated);
    }

    #[test]
    fn zero_initial_residual_converges_immediately() {
        let mut s = StopState::new(&opts());
        assert_eq!(s.check(0, 0.0), Verdict::Converged);
    }

    #[test]
    fn history_recorded_when_requested() {
        let mut o = opts();
        o.keep_history = true;
        let mut s = StopState::new(&o);
        s.check(0, 2.0);
        s.check(5, 1.0);
        assert_eq!(s.history, vec![(0, 2.0), (5, 1.0)]);
    }
}
