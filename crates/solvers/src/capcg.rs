//! CA-PCG — communication-avoiding PCG (Toledo \[21\], paper Algorithm 3).
//!
//! Transforms the PCG vectors into a `(2s+1)`-dimensional coordinate space
//! spanned by `Y^(k) = [Q^(k), R̂^(k)]` and runs s inner PCG steps entirely
//! on coordinate vectors, with matrix products replaced by the
//! change-of-basis matrix `B` (§2.3). One Gram reduction of `(2s+1)²` words
//! per outer iteration.
//!
//! The cost signature the paper highlights: building the *two* Krylov bases
//! (from `q^(sk)` and `r^(sk)`) takes `2s−1` SpMVs and `2s−1` preconditioner
//! applications per s steps — nearly double everyone else — which is why
//! CA-PCG never achieves speedup over PCG in the paper's Table 3 and
//! Figure 1 despite its excellent stability in Table 2.

use crate::blockops::{gemv_concat, gemv_concat_acc, gram_concat};
use crate::engine::{allreduce_gram, Exec, SerialExec};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult};
use crate::stopping::{criterion_value, StopState, Verdict};
use spcg_basis::cob::b_capcg;
use spcg_basis::BasisType;
use spcg_dist::Counters;
use spcg_obs::Phase;
use spcg_sparse::{blas, MultiVector};

/// Solves `A x = b` with CA-PCG (Alg. 3).
///
/// # Panics
/// Panics if `s < 2` (the coordinate-space layout needs at least two inner
/// steps; use plain PCG for `s = 1`).
pub fn capcg(
    problem: &Problem<'_>,
    s: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    capcg_g(&mut SerialExec::new(problem, opts), s, basis, opts)
}

/// CA-PCG over any execution substrate (see [`crate::engine`]).
pub(crate) fn capcg_g<E: Exec>(
    exec: &mut E,
    s: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    assert!(s >= 2, "capcg: s must be at least 2");
    let n = exec.nl();
    let nw = exec.n_global();
    let sw = s as u64;
    let dim = 2 * s + 1;
    let pk = exec.kernels().clone();
    let tr = exec.track().cloned();
    let mut counters = Counters::new();
    let mut stop = StopState::new(opts);
    let mut scratch_vec = Vec::new();

    let params = basis.params(s);
    let b_mat = b_capcg(&params, s);

    let mut x = vec![0.0; n];
    let mut r = exec.b_local().to_vec();
    let mut u = vec![0.0; n];
    exec.precond(&r, &mut u, &mut counters);
    counters.record_precond(exec.m_flops());
    let mut q = r.clone();
    let mut p = u.clone();

    // Y = [Q | R̂], Z = [P | U] kept as separate blocks.
    let mut q_mat = MultiVector::zeros(n, s + 1);
    let mut p_mat = MultiVector::zeros(n, s + 1);
    let mut r_mat = MultiVector::zeros(n, s);
    let mut u_mat = MultiVector::zeros(n, s);

    let mut iterations = 0usize;
    let final_verdict;
    'outer: loop {
        // --- the two s-step bases (2s−1 SpMVs, 2s−1 precond total) ---
        exec.mpk(&q, Some(&p), &params, &mut q_mat, &mut p_mat, &mut counters);
        exec.mpk(&r, Some(&u), &params, &mut r_mat, &mut u_mat, &mut counters);

        // --- single global reduction: G = ZᵀY, (2s+1)² words ---
        let gram_span = spcg_obs::span(tr.as_ref(), Phase::Gram);
        let mut g = gram_concat(&pk, &p_mat, &u_mat, &q_mat, &r_mat);
        counters.record_dots((dim * dim) as u64, nw);
        counters.record_collective((dim * dim) as u64);
        allreduce_gram(exec, &mut [&mut g], &mut []);
        drop(gram_span);
        let g = g;

        // --- convergence check every s steps ---
        let rtu = g[(s + 1, s + 1)]; // uᵀr
        let value = criterion_value(
            exec,
            opts.criterion,
            &x,
            &r,
            rtu,
            &mut scratch_vec,
            &mut counters,
        );
        let verdict = stop.check(iterations, value);
        if verdict != Verdict::Continue {
            final_verdict = StopState::outcome(verdict);
            break;
        }
        if iterations >= opts.max_iters {
            final_verdict = Outcome::MaxIterations;
            break;
        }

        // --- coordinate-space inner loop (no communication) ---
        let scalar_span = spcg_obs::span(tr.as_ref(), Phase::ScalarWork);
        let mut p_c = vec![0.0; dim];
        p_c[0] = 1.0;
        let mut r_c = vec![0.0; dim];
        r_c[s + 1] = 1.0;
        let mut x_c = vec![0.0; dim];
        let mut rho = quad_form(&g, &r_c, &r_c); // r'ᵀGr' = rᵀu
        for _ in 0..s {
            let bp = b_mat.matvec(&p_c);
            let gbp = g.matvec(&bp);
            let denom = blas::dot(&p_c, &gbp);
            if !(denom > 0.0) || !denom.is_finite() || !(rho > 0.0) || !rho.is_finite() {
                // Recover the mid-block iterate, then judge: breakdown at a
                // converged residual is convergence.
                gemv_concat_acc(&pk, &p_mat, &u_mat, 1.0, &x_c, &mut x);
                gemv_concat(&pk, &q_mat, &r_mat, &r_c, &mut r);
                let v = criterion_value(
                    exec,
                    opts.criterion,
                    &x,
                    &r,
                    rho,
                    &mut scratch_vec,
                    &mut counters,
                );
                final_verdict = stop.resolve_breakdown(
                    iterations,
                    v,
                    format!("coordinate-space curvature pᵀGBp = {denom}, rᵀGr = {rho}"),
                );
                break 'outer;
            }
            let alpha = rho / denom;
            for i in 0..dim {
                x_c[i] += alpha * p_c[i];
                r_c[i] -= alpha * bp[i];
            }
            let rho_new = quad_form(&g, &r_c, &r_c);
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..dim {
                p_c[i] = r_c[i] + beta * p_c[i];
            }
        }
        counters.small_flops += 8 * (dim * dim) as u64 * sw;
        drop(scalar_span);

        // --- recover the full vectors (BLAS2, lines 14–16) ---
        let update_span = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
        gemv_concat(&pk, &q_mat, &r_mat, &p_c, &mut q);
        gemv_concat(&pk, &q_mat, &r_mat, &r_c, &mut r);
        gemv_concat(&pk, &p_mat, &u_mat, &p_c, &mut p);
        gemv_concat(&pk, &p_mat, &u_mat, &r_c, &mut u);
        gemv_concat_acc(&pk, &p_mat, &u_mat, 1.0, &x_c, &mut x);
        counters.blas2_flops += 5 * 2 * dim as u64 * nw;
        drop(update_span);

        iterations += s;
        counters.iterations += sw;
        counters.outer_iterations += 1;
    }

    SolveResult {
        x,
        outcome: final_verdict,
        iterations,
        history: stop.history,
        counters,
        collectives_per_rank: None,
        restarts: 0,
        s_schedule: Vec::new(),
        faults_absorbed: 0,
        adaptive: None,
    }
}

/// `aᵀ G b` for small vectors.
fn quad_form(g: &spcg_sparse::DenseMat, a: &[f64], b: &[f64]) -> f64 {
    let gb = g.matvec(b);
    blas::dot(a, &gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::StoppingCriterion;
    use crate::pcg::pcg;
    use spcg_basis::ritz::estimate_spectrum;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    fn chebyshev_basis(problem: &Problem<'_>) -> BasisType {
        let est = estimate_spectrum(problem.a, problem.m, problem.b, 20);
        let (lo, hi) = est.chebyshev_interval(0.1);
        BasisType::Chebyshev {
            lambda_min: lo,
            lambda_max: hi,
        }
    }

    #[test]
    fn monomial_small_s_solves_poisson() {
        let a = poisson_1d(64);
        let m = Identity::new(64);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = capcg(&problem, 3, &BasisType::Monomial, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.true_relative_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn chebyshev_matches_pcg_iterations() {
        let a = poisson_2d(16);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = chebyshev_basis(&problem);
        let r_pcg = pcg(&problem, &SolveOptions::default());
        for s in [2usize, 5, 10] {
            let res = capcg(&problem, s, &basis, &SolveOptions::default());
            assert!(res.converged(), "s={s}: {:?}", res.outcome);
            let cap = ((r_pcg.iterations + s) / s) * s + 2 * s;
            assert!(
                res.iterations <= cap,
                "s={s}: {} vs {}",
                res.iterations,
                r_pcg.iterations
            );
        }
    }

    #[test]
    fn costs_2s_minus_1_mv_and_precond_per_outer() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let s = 4;
        let basis = chebyshev_basis(&problem);
        let opts = SolveOptions::default().with_criterion(StoppingCriterion::PrecondMNorm);
        let res = capcg(&problem, s, &basis, &opts);
        assert!(res.converged());
        let outer = res.counters.outer_iterations;
        // Setup costs 1 precond; each outer (incl. final check) 2s−1 each.
        let per = (2 * s - 1) as u64;
        assert_eq!(res.counters.spmv_count, per * (outer + 1));
        assert_eq!(res.counters.precond_count, per * (outer + 1) + 1);
        assert_eq!(res.counters.global_collectives, outer + 1);
        let dim = (2 * s + 1) as u64;
        assert_eq!(res.counters.allreduce_words, dim * dim * (outer + 1));
    }

    #[test]
    fn monomial_s10_degrades_on_hard_problem() {
        use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
        let kappa = 1e5;
        let a = spd_with_spectrum(500, &SpectrumShape::Uniform { kappa }, 1.0, 3, 21);
        let m = Identity::new(a.nrows());
        // A rhs with uniform eigencomponent weights (unlike `paper_rhs`,
        // whose `b = A·x*` damps the small-eigenvalue components) so the
        // full κ difficulty is exposed to the basis conditioning.
        let n = a.nrows();
        let b = vec![1.0 / (n as f64).sqrt(); n];
        let problem = Problem::new(&a, &m, &b);
        // tol 1e-7: above the s-step attainable-accuracy floor at this κ
        // (at 1e-9 even the Chebyshev basis stalls — the behaviour the
        // paper's Table 2 hyphens record for its hardest matrices).
        let opts = SolveOptions::default().with_max_iters(8000).with_tol(1e-7);
        let r_pcg = pcg(&problem, &opts);
        assert!(r_pcg.converged());
        // The generator pins the spectrum to [1/κ, 1] exactly, so the
        // Chebyshev basis interval needs no Ritz estimation here.
        let basis = BasisType::Chebyshev {
            lambda_min: 1.0 / kappa,
            lambda_max: 1.0,
        };
        let r_mono = capcg(&problem, 10, &BasisType::Monomial, &opts);
        let r_cheb = capcg(&problem, 10, &basis, &opts);
        assert!(
            r_cheb.converged(),
            "chebyshev should converge: {:?}",
            r_cheb.outcome
        );
        // Monomial either fails or is significantly delayed (Table 2's
        // CA-PCG column shows delays up to 3×).
        if r_mono.converged() {
            assert!(
                r_mono.iterations > r_cheb.iterations + 20,
                "monomial {} vs chebyshev {}",
                r_mono.iterations,
                r_cheb.iterations
            );
        }
    }

    #[test]
    fn respects_max_iters() {
        let a = poisson_2d(20);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-15).with_max_iters(10);
        let res = capcg(&problem, 5, &BasisType::Monomial, &opts);
        assert!(matches!(
            res.outcome,
            Outcome::MaxIterations | Outcome::Stagnated
        ));
    }
}
