//! Self-healing solves: breakdown detection with residual-replacement
//! restart, generalized from [`crate::adaptive`] to all six methods and
//! both execution engines.
//!
//! The driver runs a method in *stages*. Each stage solves the residual
//! system `A·d = b − A·x_acc` from a zero guess; restarting is exact
//! because the remaining error `e = x* − x_acc` satisfies `A·e = r`, so
//! correcting `x_acc += d` loses nothing — the same argument behind
//! Carson & Demmel residual replacement, applied at stage granularity.
//! A stage ends in one of three ways:
//!
//! * **accepted** — converged (or out of budget/stalled) with a finite
//!   iterate: the driver returns;
//! * **breakdown** — singular scalar work, lost positive definiteness, or
//!   a non-positive curvature: partial progress is kept, `s` is halved
//!   (down to the method's minimum) per the policy, and the residual is
//!   recomputed for the next stage;
//! * **poisoned/diverged** — a non-finite iterate or criterion (e.g. an
//!   injected NaN payload, see `spcg_dist::fault`): the stage's iterate
//!   is discarded and the stage reruns from the last good `x_acc`.
//!
//! Whether an iterate is finite is decided by **consensus**: every rank
//! contributes a bad-flag through the deterministic allreduce, and the
//! reduced flag is tested NaN-safely (`!(sum == 0.0)`), so even a poisoned
//! reduction sends all ranks down the same restart branch — SPMD control
//! flow never diverges.
//!
//! With the policy `None` the driver is a transparent passthrough, and
//! even with a policy armed, a solve whose first stage converges returns
//! that stage's result object unchanged — the zero-fault path is bitwise
//! identical (solution, outcome, counters) to an undriven solve.

use crate::engine::{dispatch, Exec};
use crate::method::Method;
use crate::options::{Outcome, SolveOptions, SolveResult};
use spcg_adapt::AdaptiveReport;
use spcg_basis::poly::BasisParams;
use spcg_dist::Counters;
use spcg_obs::{Phase, Track};
use spcg_sparse::{MultiVector, ParKernels};

/// Self-healing policy (see [`SolveOptions::resilience`]
/// (crate::SolveOptions::resilience) and the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resilience {
    /// Restarts allowed before the driver returns whatever it has. Each
    /// injected-fault recovery or breakdown consumes one.
    pub max_restarts: usize,
    /// Halve `s` (down to the method's minimum) when a stage ends in a
    /// basis breakdown or divergence — the adaptive-s policy of
    /// [`crate::adaptive::adaptive_spcg`]. Faulted-but-numerically-healthy
    /// stages (poisoned payloads) rerun at full `s` either way.
    pub shrink_s: bool,
    /// Before retreating in `s` after a breakdown, retry once with the
    /// method's Gauss-Seidel Gram-solve analogue
    /// ([`Method::gs_analogue`]) at the *same* block size — Cholesky
    /// pivot failures on ill-conditioned Gram systems are exactly the
    /// breakdown class the GS inner solve survives, so this keeps the
    /// solve at full s instead of halving. Methods without an analogue
    /// (and the GS method itself) fall through to the shrink-s policy.
    pub gs_recovery: bool,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            // A restart costs one SpMV, and the iteration budget (every
            // stage charges at least an escalating minimum) is what really
            // bounds the stage loop — the cap only guards pathological
            // configurations. It errs high because injected faults scale
            // with ranks × sites: a multi-site plan on many ranks can
            // poison most of its injection window's rounds, each needing
            // its own recovery stage.
            max_restarts: 256,
            shrink_s: true,
            gs_recovery: true,
        }
    }
}

impl Resilience {
    /// Builder-style restart cap.
    pub fn with_max_restarts(mut self, max_restarts: usize) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Builder-style s-reduction toggle.
    pub fn with_shrink_s(mut self, shrink_s: bool) -> Self {
        self.shrink_s = shrink_s;
        self
    }

    /// Builder-style Gauss-Seidel recovery toggle.
    pub fn with_gs_recovery(mut self, gs_recovery: bool) -> Self {
        self.gs_recovery = gs_recovery;
        self
    }
}

/// Charges one stage's iterations against the remaining budget.
///
/// Productive stages charge exactly what they ran — a solve that
/// legitimately needs all of `max_iters` across stages keeps every
/// iteration it is owed. Zero-progress stages (immediate breakdown)
/// charge an escalating minimum (1, 2, 4, …) so a stage that can never
/// advance exhausts the budget in logarithmically many attempts instead
/// of looping forever.
pub(crate) fn charge_budget(left: usize, ran: usize, zero_streak: &mut u32) -> usize {
    if ran > 0 {
        *zero_streak = 0;
        left.saturating_sub(ran)
    } else {
        let charge = 1usize << (*zero_streak).min(16);
        *zero_streak += 1;
        left.saturating_sub(charge)
    }
}

/// Consensus finiteness test: allreduces a per-rank bad-flag and tests it
/// NaN-safely, so a poisoned reduction also reads as bad — on every rank.
fn nonfinite_consensus<E: Exec>(exec: &mut E, x: &[f64]) -> bool {
    let local_bad = if x.iter().any(|v| !v.is_finite()) {
        1.0
    } else {
        0.0
    };
    let mut buf = [local_bad];
    exec.allreduce(&mut buf);
    !(buf[0] == 0.0)
}

/// An [`Exec`] view with the right-hand side overridden — the residual
/// system of one restart stage. Everything else delegates to the wrapped
/// substrate, so arithmetic, exchanges, and counter charges are those of
/// a plain solve of `A·d = rhs`.
struct RhsOverride<'e, E: Exec> {
    inner: &'e mut E,
    rhs: &'e [f64],
}

impl<E: Exec> Exec for RhsOverride<'_, E> {
    fn nl(&self) -> usize {
        self.inner.nl()
    }
    fn n_global(&self) -> u64 {
        self.inner.n_global()
    }
    fn spmv_flops(&self) -> u64 {
        self.inner.spmv_flops()
    }
    fn m_flops(&self) -> u64 {
        self.inner.m_flops()
    }
    fn b_local(&self) -> &[f64] {
        self.rhs
    }
    fn spmv(&mut self, x: &[f64], y: &mut [f64], counters: &mut Counters) {
        self.inner.spmv(x, y, counters);
    }
    fn precond(&mut self, r: &[f64], z: &mut [f64], counters: &mut Counters) {
        self.inner.precond(r, z, counters);
    }
    fn mpk(
        &mut self,
        w: &[f64],
        known_mw: Option<&[f64]>,
        params: &BasisParams,
        v: &mut MultiVector,
        mv: &mut MultiVector,
        counters: &mut Counters,
    ) {
        self.inner.mpk(w, known_mw, params, v, mv, counters);
    }
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        self.inner.dot(a, b)
    }
    fn allreduce(&mut self, buf: &mut [f64]) {
        self.inner.allreduce(buf);
    }
    fn kernels(&self) -> &ParKernels {
        self.inner.kernels()
    }
    fn track(&self) -> Option<&Track> {
        self.inner.track()
    }
    fn row_offset(&self) -> usize {
        self.inner.row_offset()
    }
    fn spmm(&mut self, x: &MultiVector, y: &mut MultiVector, counters: &mut Counters) {
        self.inner.spmm(x, y, counters);
    }
}

/// Runs `method` on `exec` under the given resilience policy; with `None`
/// this is exactly [`dispatch`]. See the module docs for the stage
/// protocol and the bitwise passthrough guarantee.
pub(crate) fn solve_resilient<E: Exec>(
    method: &Method,
    exec: &mut E,
    opts: &SolveOptions,
    resilience: Option<&Resilience>,
) -> SolveResult {
    solve_resilient_staged(method, exec, opts, resilience).0
}

/// [`solve_resilient`] plus the per-stage `(s, iterations)` record —
/// the staged view [`crate::adaptive::adaptive_spcg`] exposes.
pub(crate) fn solve_resilient_staged<E: Exec>(
    method: &Method,
    exec: &mut E,
    opts: &SolveOptions,
    resilience: Option<&Resilience>,
) -> (SolveResult, Vec<(usize, usize)>) {
    let Some(pol) = resilience else {
        let res = dispatch(method, exec, opts);
        let stages = vec![(method.s(), res.iterations)];
        return (res, stages);
    };
    // Static per-run property, identical on every rank — safe to branch on.
    let fault_tolerant = opts.faults.as_ref().is_some_and(|p| p.active());
    let nl = exec.nl();
    let nw = exec.n_global();
    let b_orig = exec.b_local().to_vec();
    let mut stage_rhs = b_orig.clone();
    let mut x_acc = vec![0.0; nl];
    let mut total = Counters::new();
    let mut history: Vec<(usize, f64)> = Vec::new();
    let mut s_schedule: Vec<usize> = Vec::new();
    let mut stages: Vec<(usize, usize)> = Vec::new();
    let mut adaptive_acc: Option<AdaptiveReport> = None;
    let mut method_now = method.clone();
    let mut tol_left = opts.tol;
    let mut iters_left = opts.max_iters;
    let mut iterations_total = 0usize;
    let mut restarts = 0usize;
    let mut zero_streak = 0u32;

    loop {
        // History is forced on: the tolerance handoff between stages needs
        // the stage's reduction factor. It never changes arithmetic or
        // counters — only the recorded (iteration, value) pairs.
        let stage_opts = SolveOptions {
            tol: tol_left,
            max_iters: iters_left,
            keep_history: true,
            ..opts.clone()
        };
        let res = {
            let mut staged = RhsOverride {
                inner: exec,
                rhs: &stage_rhs,
            };
            dispatch(&method_now, &mut staged, &stage_opts)
        };
        // Adaptive bodies report the s-values they actually ran; fixed-s
        // bodies leave the schedule empty and contribute their stage s.
        if res.s_schedule.is_empty() {
            s_schedule.push(method_now.s());
        } else {
            s_schedule.extend_from_slice(&res.s_schedule);
        }
        stages.push((method_now.s(), res.iterations));
        let bad = nonfinite_consensus(exec, &res.x);
        total.merge(&res.counters);
        let stage_base = iterations_total;
        iterations_total += res.iterations;
        if let Some(rep) = &res.adaptive {
            // Merge the controller's report across stages, re-basing each
            // stage's shift iterations onto the accumulated count.
            let acc = adaptive_acc.get_or_insert_with(AdaptiveReport::default);
            acc.shift_history.extend(rep.shift_history.iter().map(|u| {
                let mut u = u.clone();
                u.iteration += stage_base;
                u
            }));
            acc.ritz = rep.ritz.clone();
        }
        iters_left = if fault_tolerant {
            // Under an armed fault plan zero-progress stages are expected
            // — a poisoned first exchange breaks a stage before any
            // iteration completes — and their number is bounded by the
            // plan's injection window, so charge the flat minimum. The
            // escalating charge is for genuine numerical breakdown loops.
            iters_left.saturating_sub(res.iterations.max(1))
        } else {
            charge_budget(iters_left, res.iterations, &mut zero_streak)
        };

        let accepted = !bad
            && matches!(
                res.outcome,
                Outcome::Converged | Outcome::Stagnated | Outcome::MaxIterations
            );
        if accepted && restarts == 0 {
            // First stage succeeded: return its result object unchanged —
            // the bitwise zero-fault passthrough (x_acc accumulation could
            // flip -0.0 signs; handing the stage's own iterate back cannot).
            let mut out = res;
            if !opts.keep_history {
                out.history = Vec::new();
            }
            out.s_schedule = s_schedule;
            return (out, stages);
        }

        // A diverged or non-finite stage iterate is garbage — discard it;
        // breakdown stages keep their partial progress (adaptive.rs
        // semantics).
        let discard = bad || matches!(res.outcome, Outcome::Diverged);
        if !discard {
            for (xi, di) in x_acc.iter_mut().zip(&res.x) {
                *xi += di;
            }
            // Stage reduced the criterion by some factor f; later stages
            // only owe tol/f more (guarded against non-finite history
            // under payload poisoning).
            if let (Some(first), Some(last)) = (res.history.first(), res.history.last()) {
                if first.1.is_finite() && last.1.is_finite() && first.1 > 0.0 {
                    let f = (last.1 / first.1).clamp(1e-16, 1.0);
                    tol_left = (tol_left / f).min(1.0);
                }
            }
        }
        history.extend(res.history.iter().map(|&(it, v)| (stage_base + it, v)));

        if accepted || restarts >= pol.max_restarts || iters_left == 0 {
            let outcome = if bad && res.outcome.converged() {
                // "Converged" onto a non-finite iterate is a lie told by a
                // poisoned criterion; out of restarts, call it divergence.
                Outcome::Diverged
            } else {
                res.outcome
            };
            total.restarts = restarts as u64;
            let out = SolveResult {
                x: x_acc,
                outcome,
                iterations: iterations_total,
                history: if opts.keep_history {
                    history
                } else {
                    Vec::new()
                },
                counters: total,
                collectives_per_rank: None,
                restarts,
                s_schedule,
                faults_absorbed: 0,
                adaptive: adaptive_acc,
            };
            return (out, stages);
        }

        // Restart: on a genuine numerical breakdown, first try the
        // Gauss-Seidel Gram-solve analogue at the same block size (the
        // analogue maps to itself as `None`, so this fires at most once);
        // otherwise retreat in s per the shrink policy. Then re-anchor
        // the next stage to the true residual of x_acc.
        restarts += 1;
        match &res.outcome {
            Outcome::Breakdown(_) => {
                let gs = if pol.gs_recovery {
                    method_now.gs_analogue()
                } else {
                    None
                };
                match gs {
                    Some(gs) => method_now = gs,
                    None if pol.shrink_s => {
                        method_now = method_now.with_s(method_now.s() / 2);
                    }
                    None => {}
                }
            }
            Outcome::Diverged if pol.shrink_s => {
                method_now = method_now.with_s(method_now.s() / 2);
            }
            _ => {}
        }
        let tr = exec.track().cloned();
        let _sp = spcg_obs::span(tr.as_ref(), Phase::Restart);
        let mut ax = vec![0.0; nl];
        exec.spmv(&x_acc, &mut ax, &mut total);
        total.record_spmv(exec.spmv_flops());
        for i in 0..nl {
            stage_rhs[i] = b_orig[i] - ax[i];
        }
        total.blas1_flops += nw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_charges_actual_iterations_when_productive() {
        let mut streak = 0;
        assert_eq!(charge_budget(100, 37, &mut streak), 63);
        assert_eq!(streak, 0);
        assert_eq!(charge_budget(63, 63, &mut streak), 0);
    }

    #[test]
    fn budget_escalates_on_zero_progress() {
        let mut streak = 0;
        let mut left = 100;
        left = charge_budget(left, 0, &mut streak); // −1
        assert_eq!(left, 99);
        left = charge_budget(left, 0, &mut streak); // −2
        assert_eq!(left, 97);
        left = charge_budget(left, 0, &mut streak); // −4
        assert_eq!(left, 93);
        // Progress resets the escalation.
        left = charge_budget(left, 10, &mut streak);
        assert_eq!(left, 83);
        assert_eq!(charge_budget(left, 0, &mut streak), 82);
    }

    #[test]
    fn budget_saturates_at_zero() {
        let mut streak = 20; // escalation is capped, no overflow
        assert_eq!(charge_budget(3, 0, &mut streak), 0);
    }

    #[test]
    fn policy_builders() {
        let p = Resilience::default()
            .with_max_restarts(3)
            .with_shrink_s(false)
            .with_gs_recovery(false);
        assert_eq!(p.max_restarts, 3);
        assert!(!p.shrink_s);
        assert!(!p.gs_recovery);
        assert!(Resilience::default().shrink_s);
        assert!(Resilience::default().gs_recovery);
        assert!(Resilience::default().max_restarts >= 1);
    }
}
