//! Adaptive CA-PCG — the CA-PCG body of [`crate::capcg::capcg`] under the
//! `spcg_adapt` control layer (Carson's adaptive s-step CG with dynamic
//! basis updating).
//!
//! CA-PCG is the natural host for adaptivity: its only cross-block state
//! is the five concrete vectors `x, r, u, q, p`, so both the block size
//! `s` and the basis polynomial can change freely at block boundaries
//! without touching the recurrence. Per block the solver feeds the
//! controller three observables, all derived from already-allreduced
//! scalars so every rank decides identically (SPMD control flow):
//!
//! * the **Gram conditioning** estimate — the symmetrized `G = YᵀM⁻¹Y` is
//!   Cholesky-factored (the existing small-solve kernel) and
//!   `cond(L)² ≈ cond(G)` classifies the block;
//! * the **residual gap** `|‖b − Ax‖ − ‖r‖| / max(‖b − Ax‖, ‖r‖)` between
//!   the true and the recurrence residual (observable under the
//!   true-residual criterion, where `‖b − Ax‖` is already paid for);
//! * the **running Ritz values** of `M⁻¹A`, harvested from the inner
//!   loop's CG coefficients — when the estimated spectral interval drifts
//!   past the basis' coverage, the basis (Chebyshev interval or
//!   Newton–Leja shifts) and the MPK coefficients are rebuilt mid-solve
//!   under a [`Phase::BasisRebuild`] span.
//!
//! Consensus words piggyback on each block's Gram allreduce
//! (`spcg_adapt::consensus`), verifying at run time that all ranks entered
//! the block with the same `(s, rebuild)` decision — no extra collective.
//! Mid-block breakdowns recover the iterate, shrink `s`, restart the
//! direction vectors, and charge the same escalating budget
//! (`charge_budget` in `crate::resilience`) the resilience driver uses, so
//! adaptive shrink and stage-level shrink compose without double-charging.

use crate::blockops::{gemv_concat, gemv_concat_acc, gram_concat};
use crate::engine::{allreduce_gram, Exec, SerialExec};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult, StoppingCriterion};
use crate::resilience::charge_budget;
use crate::stopping::{criterion_value, StopState, Verdict};
use spcg_adapt::{
    consensus, AdaptiveReport, BlockHealth, SController, ShiftUpdate, SpectralMonitor,
};
use spcg_basis::cob::b_capcg;
use spcg_basis::BasisType;
use spcg_dist::Counters;
use spcg_obs::Phase;
use spcg_sparse::smallsolve::Cholesky;
use spcg_sparse::{blas, DenseMat, MultiVector};

/// Solves `A x = b` with adaptive CA-PCG, starting at block size `s` and
/// basis `basis` (see the module docs and [`crate::Method::AdaptiveCaPcg`]).
///
/// # Panics
/// Panics if `s < 2` (the coordinate-space layout needs at least two inner
/// steps; use plain PCG for `s = 1`).
pub fn adaptive_capcg(
    problem: &Problem<'_>,
    s: usize,
    basis: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    adaptive_capcg_g(&mut SerialExec::new(problem, opts), s, basis, opts)
}

/// Adaptive CA-PCG over any execution substrate (see [`crate::engine`]).
pub(crate) fn adaptive_capcg_g<E: Exec>(
    exec: &mut E,
    s0: usize,
    basis0: &BasisType,
    opts: &SolveOptions,
) -> SolveResult {
    assert!(s0 >= 2, "adaptive_capcg: s must be at least 2");
    let n = exec.nl();
    let nw = exec.n_global();
    let pk = exec.kernels().clone();
    let tr = exec.track().cloned();
    let mut counters = Counters::new();
    let mut stop = StopState::new(opts);
    let mut scratch_vec = Vec::new();

    let mut ctrl = SController::new(opts.adaptive.clone(), s0);
    let mut monitor = SpectralMonitor::new(opts.adaptive.max_ritz);
    let mut basis = basis0.clone();
    let mut s = ctrl.s();
    let mut params = basis.params(s);
    let mut b_mat = b_capcg(&params, s);

    let mut x = vec![0.0; n];
    let mut r = exec.b_local().to_vec();
    let mut u = vec![0.0; n];
    exec.precond(&r, &mut u, &mut counters);
    counters.record_precond(exec.m_flops());
    let mut q = r.clone();
    let mut p = u.clone();

    // Y = [Q | R̂], Z = [P | U], re-allocated whenever s changes.
    let mut q_mat = MultiVector::zeros(n, s + 1);
    let mut p_mat = MultiVector::zeros(n, s + 1);
    let mut r_mat = MultiVector::zeros(n, s);
    let mut u_mat = MultiVector::zeros(n, s);

    let mut iterations = 0usize;
    let mut iters_left = opts.max_iters;
    let mut zero_streak = 0u32;
    let mut restarts = 0usize;
    let mut s_schedule = vec![s];
    let mut shift_history: Vec<ShiftUpdate> = Vec::new();
    // The (s, rebuild) decision that shaped the *current* block, verified
    // rank-identical on the block's own Gram allreduce.
    let mut last_rebuild = false;

    let final_verdict;
    'outer: loop {
        let dim = 2 * s + 1;
        let sw = s as u64;

        // --- the two s-step bases (2s−1 SpMVs, 2s−1 precond total) ---
        exec.mpk(&q, Some(&p), &params, &mut q_mat, &mut p_mat, &mut counters);
        exec.mpk(&r, Some(&u), &params, &mut r_mat, &mut u_mat, &mut counters);

        // --- single global reduction: G = ZᵀY plus the piggybacked
        //     consensus words and the recurrence-residual dot ---
        let gram_span = spcg_obs::span(tr.as_ref(), Phase::Gram);
        let mut g = gram_concat(&pk, &p_mat, &u_mat, &q_mat, &r_mat);
        let cons = consensus::pack(s, last_rebuild);
        let mut extra = [cons[0], cons[1], cons[2], exec.dot(&r, &r)];
        counters.record_dots((dim * dim) as u64 + 1, nw);
        counters.record_collective((dim * dim + extra.len()) as u64);
        allreduce_gram(exec, &mut [&mut g], &mut extra);
        drop(gram_span);
        let g = g;
        match consensus::check(&extra[..consensus::WORDS], s, last_rebuild) {
            consensus::Verdict::Agree | consensus::Verdict::Poisoned => {}
            consensus::Verdict::Disagree => {
                panic!("adaptive_capcg: rank decisions diverged (s = {s})")
            }
        }
        let rr_global = extra[consensus::WORDS];

        // --- spectral monitor: conditioning of the direction-basis Gram
        //     G_qq = QᵀM⁻¹Q, the leading (s+1)×(s+1) block of G. (The full
        //     concatenated Gram is structurally singular — q and r share
        //     Krylov components, exactly so on the first block — while
        //     G_qq is SPD until the polynomial basis itself degenerates,
        //     which is precisely the event the controller watches for.) ---
        let spect_span = spcg_obs::span(tr.as_ref(), Phase::SpectralEst);
        let bdim = s + 1;
        let mut g_qq = DenseMat::zeros(bdim, bdim);
        for i in 0..bdim {
            for j in 0..bdim {
                g_qq[(i, j)] = 0.5 * (g[(i, j)] + g[(j, i)]);
            }
        }
        let cond = match Cholesky::factor(&g_qq) {
            Ok(chol) => chol.cond_estimate(),
            Err(_) => f64::INFINITY,
        };
        counters.small_flops += ((bdim * bdim * bdim) / 3) as u64;
        drop(spect_span);

        // --- convergence check every s steps ---
        let rtu = g[(s + 1, s + 1)]; // uᵀr
        let value = criterion_value(
            exec,
            opts.criterion,
            &x,
            &r,
            rtu,
            &mut scratch_vec,
            &mut counters,
        );
        let verdict = stop.check(iterations, value);
        if verdict != Verdict::Continue {
            final_verdict = StopState::outcome(verdict);
            break;
        }
        if iterations >= opts.max_iters || iters_left == 0 {
            final_verdict = Outcome::MaxIterations;
            break;
        }

        // Residual gap: recurrence ‖r‖ vs true ‖b − Ax‖, both reduced.
        let gap = if opts.criterion == StoppingCriterion::TrueResidual2Norm {
            let rr_norm = rr_global.max(0.0).sqrt();
            Some((value - rr_norm).abs() / value.max(rr_norm).max(f64::MIN_POSITIVE))
        } else {
            None
        };
        let health = ctrl.classify(cond, gap);

        if health == BlockHealth::Reject {
            // The coordinate arithmetic of this block would be numerically
            // meaningless; skip the inner loop, shrink (the escalating
            // charge bounds how often this can repeat), rebuild the basis
            // if the monitor already has an interval, and retry.
            iters_left = charge_budget(iters_left, 0, &mut zero_streak);
            let s_next = ctrl.after_breakdown();
            let est = monitor.ritz();
            let rebuild = ctrl.needs_rebuild(&basis, est.as_ref());
            if s_next == s && !rebuild {
                final_verdict = Outcome::Breakdown(format!(
                    "adaptive basis conditioning rejected at s_min: cond ≈ {cond:.3e}"
                ));
                break;
            }
            if rebuild {
                let rb_span = spcg_obs::span(tr.as_ref(), Phase::BasisRebuild);
                let est = est.expect("needs_rebuild implies an estimate");
                basis = ctrl.rebuild(&basis, &est, s_next);
                shift_history.push(ShiftUpdate {
                    iteration: iterations,
                    basis: basis.name().to_string(),
                    lambda_min: est.lambda_min,
                    lambda_max: est.lambda_max,
                    ritz_count: est.ritz.len(),
                });
                drop(rb_span);
            }
            last_rebuild = rebuild;
            if s_next != s {
                s = s_next;
                s_schedule.push(s);
                q_mat = MultiVector::zeros(n, s + 1);
                p_mat = MultiVector::zeros(n, s + 1);
                r_mat = MultiVector::zeros(n, s);
                u_mat = MultiVector::zeros(n, s);
            }
            params = basis.params(s);
            b_mat = b_capcg(&params, s);
            continue 'outer;
        }

        // --- coordinate-space inner loop (no communication) ---
        let scalar_span = spcg_obs::span(tr.as_ref(), Phase::ScalarWork);
        let mut p_c = vec![0.0; dim];
        p_c[0] = 1.0;
        let mut r_c = vec![0.0; dim];
        r_c[s + 1] = 1.0;
        let mut x_c = vec![0.0; dim];
        let mut rho = quad_form(&g, &r_c, &r_c); // r'ᵀGr' = rᵀu
        let mut broke_at: Option<usize> = None;
        for step in 0..s {
            let bp = b_mat.matvec(&p_c);
            let gbp = g.matvec(&bp);
            let denom = blas::dot(&p_c, &gbp);
            if !(denom > 0.0) || !denom.is_finite() || !(rho > 0.0) || !rho.is_finite() {
                broke_at = Some(step);
                break;
            }
            let alpha = rho / denom;
            for i in 0..dim {
                x_c[i] += alpha * p_c[i];
                r_c[i] -= alpha * bp[i];
            }
            let rho_new = quad_form(&g, &r_c, &r_c);
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..dim {
                p_c[i] = r_c[i] + beta * p_c[i];
            }
            monitor.observe(alpha, beta);
        }
        counters.small_flops += 8 * (dim * dim) as u64 * sw;
        drop(scalar_span);

        if let Some(step) = broke_at {
            // Recover the mid-block iterate, then judge: breakdown at a
            // converged residual is convergence; otherwise shrink, restart
            // the direction vectors from the recovered residual, and keep
            // going under the escalating budget.
            gemv_concat_acc(&pk, &p_mat, &u_mat, 1.0, &x_c, &mut x);
            gemv_concat(&pk, &q_mat, &r_mat, &r_c, &mut r);
            counters.blas2_flops += 2 * 2 * dim as u64 * nw;
            let v = criterion_value(
                exec,
                opts.criterion,
                &x,
                &r,
                rho,
                &mut scratch_vec,
                &mut counters,
            );
            let outcome = stop.resolve_breakdown(
                iterations + step,
                v,
                format!("coordinate-space curvature breakdown at inner step {step}"),
            );
            if outcome.converged() {
                final_verdict = outcome;
                break;
            }
            iterations += step;
            counters.iterations += step as u64;
            iters_left = charge_budget(iters_left, step, &mut zero_streak);
            restarts += 1;
            let restart_span = spcg_obs::span(tr.as_ref(), Phase::Restart);
            exec.precond(&r, &mut u, &mut counters);
            counters.record_precond(exec.m_flops());
            q.copy_from_slice(&r);
            p.copy_from_slice(&u);
            monitor.reset();
            drop(restart_span);
            let s_next = ctrl.after_breakdown();
            if iters_left == 0 {
                final_verdict = Outcome::MaxIterations;
                break;
            }
            last_rebuild = false;
            if s_next != s {
                s = s_next;
                s_schedule.push(s);
                q_mat = MultiVector::zeros(n, s + 1);
                p_mat = MultiVector::zeros(n, s + 1);
                r_mat = MultiVector::zeros(n, s);
                u_mat = MultiVector::zeros(n, s);
                params = basis.params(s);
                b_mat = b_capcg(&params, s);
            }
            continue 'outer;
        }

        // --- recover the full vectors (BLAS2) ---
        let update_span = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
        gemv_concat(&pk, &q_mat, &r_mat, &p_c, &mut q);
        gemv_concat(&pk, &q_mat, &r_mat, &r_c, &mut r);
        gemv_concat(&pk, &p_mat, &u_mat, &p_c, &mut p);
        gemv_concat(&pk, &p_mat, &u_mat, &r_c, &mut u);
        gemv_concat_acc(&pk, &p_mat, &u_mat, 1.0, &x_c, &mut x);
        counters.blas2_flops += 5 * 2 * dim as u64 * nw;
        drop(update_span);

        iterations += s;
        counters.iterations += sw;
        counters.outer_iterations += 1;
        iters_left = charge_budget(iters_left, s, &mut zero_streak);

        // --- controller decision for the next block ---
        let s_next = ctrl.after_block(health);
        let est = monitor.ritz();
        let rebuild = ctrl.needs_rebuild(&basis, est.as_ref());
        if rebuild {
            let rb_span = spcg_obs::span(tr.as_ref(), Phase::BasisRebuild);
            let est = est.expect("needs_rebuild implies an estimate");
            basis = ctrl.rebuild(&basis, &est, s_next);
            shift_history.push(ShiftUpdate {
                iteration: iterations,
                basis: basis.name().to_string(),
                lambda_min: est.lambda_min,
                lambda_max: est.lambda_max,
                ritz_count: est.ritz.len(),
            });
            drop(rb_span);
        }
        last_rebuild = rebuild;
        let s_changed = s_next != s;
        if s_changed {
            s = s_next;
            s_schedule.push(s);
            q_mat = MultiVector::zeros(n, s + 1);
            p_mat = MultiVector::zeros(n, s + 1);
            r_mat = MultiVector::zeros(n, s);
            u_mat = MultiVector::zeros(n, s);
        }
        if rebuild || s_changed {
            // Coefficients depend on both the basis and the degree.
            params = basis.params(s);
            b_mat = b_capcg(&params, s);
        }
    }

    counters.restarts = restarts as u64;
    let report = AdaptiveReport {
        shift_history,
        ritz: monitor.ritz().map(|e| e.ritz).unwrap_or_default(),
    };
    SolveResult {
        x,
        outcome: final_verdict,
        iterations,
        history: stop.history,
        counters,
        collectives_per_rank: None,
        restarts,
        s_schedule,
        faults_absorbed: 0,
        adaptive: Some(report),
    }
}

/// `aᵀ G b` for small vectors.
fn quad_form(g: &DenseMat, a: &[f64], b: &[f64]) -> f64 {
    let gb = g.matvec(b);
    blas::dot(a, &gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capcg::capcg;
    use crate::pcg::pcg;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::poisson_2d;
    use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};

    #[test]
    fn solves_easy_problem_like_capcg() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let opts = SolveOptions::default();
        let res = adaptive_capcg(&problem, 4, &basis, &opts);
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.true_relative_residual(&a, &b) < 1e-7);
        let fixed = capcg(&problem, 4, &basis, &opts);
        assert!(
            res.iterations <= fixed.iterations + 2 * 16,
            "adaptive {} vs fixed {}",
            res.iterations,
            fixed.iterations
        );
        let report = res.adaptive.as_ref().expect("adaptive report");
        assert_eq!(res.s_schedule.first(), Some(&4));
        // A healthy Chebyshev run never needs a shift update.
        assert!(report.shift_history.is_empty());
    }

    #[test]
    fn report_carries_sorted_ritz_values() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let res = adaptive_capcg(&problem, 4, &basis, &SolveOptions::default());
        let ritz = &res.adaptive.as_ref().unwrap().ritz;
        assert!(ritz.len() >= 2, "expected a spectrum estimate");
        assert!(ritz.windows(2).all(|w| w[0] <= w[1]));
        assert!(ritz.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn monomial_start_recovers_where_fixed_monomial_degrades() {
        // The acceptance problem: uniform spectrum at κ = 1e5 with a flat
        // rhs breaks the fixed monomial basis at s = 10 (Table 2's
        // collapse); the adaptive solver must detect the conditioning,
        // shrink, retune onto the Ritz interval, and still converge.
        let kappa = 1e5;
        let a = spd_with_spectrum(500, &SpectrumShape::Uniform { kappa }, 1.0, 3, 21);
        let m = Identity::new(a.nrows());
        let n = a.nrows();
        let b = vec![1.0 / (n as f64).sqrt(); n];
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_max_iters(8000).with_tol(1e-7);
        assert!(pcg(&problem, &opts).converged());
        let r_mono = capcg(&problem, 10, &BasisType::Monomial, &opts);
        let res = adaptive_capcg(&problem, 10, &BasisType::Monomial, &opts);
        assert!(
            res.converged(),
            "adaptive from monomial must converge: {:?}",
            res.outcome
        );
        assert!(res.true_relative_residual(&a, &b) < 1e-6);
        let report = res.adaptive.as_ref().unwrap();
        assert!(
            !report.shift_history.is_empty(),
            "expected at least one dynamic basis update"
        );
        assert!(
            res.s_schedule.len() > 1,
            "expected the controller to change s: {:?}",
            res.s_schedule
        );
        if r_mono.converged() {
            assert!(
                res.iterations < r_mono.iterations,
                "adaptive {} vs fixed monomial {}",
                res.iterations,
                r_mono.iterations
            );
        }
    }

    #[test]
    fn within_margin_of_fixed_chebyshev_on_hard_problem() {
        let kappa = 1e5;
        let a = spd_with_spectrum(500, &SpectrumShape::Uniform { kappa }, 1.0, 3, 21);
        let m = Identity::new(a.nrows());
        let n = a.nrows();
        let b = vec![1.0 / (n as f64).sqrt(); n];
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_max_iters(8000).with_tol(1e-7);
        let basis = BasisType::Chebyshev {
            lambda_min: 1.0 / kappa,
            lambda_max: 1.0,
        };
        let r_cheb = capcg(&problem, 10, &basis, &opts);
        assert!(r_cheb.converged());
        let res = adaptive_capcg(&problem, 10, &BasisType::Monomial, &opts);
        assert!(res.converged(), "{:?}", res.outcome);
        // The issue's acceptance margin: adaptive-from-monomial within
        // 1.1× of the oracle fixed-Chebyshev iteration count.
        let cap = (r_cheb.iterations as f64 * 1.1).ceil() as usize;
        assert!(
            res.iterations <= cap,
            "adaptive {} vs 1.1×chebyshev {}",
            res.iterations,
            cap
        );
    }

    #[test]
    fn grows_s_on_a_healthy_run() {
        let a = poisson_2d(20);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let basis = crate::setup::chebyshev_basis(&problem, 20, 0.05);
        let mut opts = SolveOptions::default().with_tol(1e-12);
        opts.adaptive = opts.adaptive.with_s_range(2, 8).with_grow_patience(2);
        let res = adaptive_capcg(&problem, 2, &basis, &opts);
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(
            res.s_schedule.iter().any(|&s| s > 2),
            "well-conditioned blocks should earn growth: {:?}",
            res.s_schedule
        );
    }

    #[test]
    fn respects_max_iters() {
        let a = poisson_2d(20);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_tol(1e-15).with_max_iters(10);
        let res = adaptive_capcg(&problem, 4, &BasisType::Monomial, &opts);
        assert!(matches!(
            res.outcome,
            Outcome::MaxIterations | Outcome::Stagnated
        ));
        assert!(res.iterations <= 10 + 4);
    }

    #[test]
    #[should_panic(expected = "s must be at least 2")]
    fn panics_on_tiny_s() {
        let a = poisson_2d(4);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let _ = adaptive_capcg(&problem, 1, &BasisType::Monomial, &SolveOptions::default());
    }
}
