//! Batched multi-RHS solves: one matrix stream serving many right-hand
//! sides.
//!
//! [`solve_batch`] accepts `k` right-hand sides against one operator and
//! preconditioner. For standard PCG under [`Engine::Serial`] (with the
//! resilient driver off) it runs a genuinely *blocked* iteration: the `k`
//! conjugate-gradient recurrences advance in lockstep, and every `A·p`
//! becomes a single sparse matrix–multivector product
//! ([`ParKernels::spmm`] / [`ParKernels::spmm_sell`]) that streams the
//! matrix once per iteration instead of once per right-hand side. On a
//! memory-bound SpMV that amortization is where the batch throughput
//! comes from.
//!
//! **Bitwise guarantee.** The blocked iteration keeps every column's
//! arithmetic exactly the scalar PCG arithmetic: the multivector product
//! accumulates each column in CSR row order (bitwise equal to the
//! column's own SpMV — see the kernel tests in `spcg_sparse`), and all
//! dots, AXPYs, preconditioner applications, and stopping checks run
//! per column on that column's own data. Column `j` of a batch therefore
//! produces the **bitwise identical** `x`, history, and [`Counters`] that
//! `solve(Method::Pcg, …)` produces for that right-hand side alone — for
//! any batch width, either sparse format, and any thread count. The
//! per-column parity tests below pin this down.
//!
//! **Frozen columns.** Right-hand sides converge (or break down) at
//! different iterations. A finished column is *frozen*: its result is
//! emitted immediately and the remaining active columns are compacted
//! into narrower multivectors, so late iterations never spend bandwidth
//! on converged columns. Freezing other columns cannot perturb a
//! survivor — columns never mix arithmetically.
//!
//! **Deadlines.** A [`BatchRequest`] may carry a wall-clock deadline.
//! Deadlines are checked once per blocked iteration (and before starting
//! each sequential fallback solve); an expired request freezes with
//! [`Outcome::DeadlineExpired`] and the best iterate so far. Deadline
//! expiry is the one timing-dependent outcome in this crate — everything
//! else about the batch, including every other column of the same batch,
//! remains deterministic.
//!
//! Every other method/engine combination (the s-step methods, ranked
//! execution, resilient solves) falls back to per-request [`solve`]
//! calls — trivially identical to the unbatched path, so the service
//! layer can offer one entry point for the whole method zoo while the
//! blocked kernel covers the latency-critical PCG case.

use crate::engine::Engine;
use crate::method::{solve, Method};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult, StoppingCriterion};
use crate::stopping::{StopState, Verdict};
use spcg_dist::Counters;
use spcg_obs::{Phase, Track};
use spcg_precond::{DistForm, Preconditioner};
use spcg_sparse::{CsrMatrix, MultiVector, ParKernels, SellMatrix, SparseFormat};
use std::sync::Arc;
use std::time::Instant;

/// One right-hand side of a batched solve.
#[derive(Debug, Clone, Copy)]
pub struct BatchRequest<'a> {
    /// Right-hand side; length must equal the operator dimension.
    pub b: &'a [f64],
    /// Optional wall-clock deadline. `None` never expires.
    pub deadline: Option<Instant>,
}

impl<'a> BatchRequest<'a> {
    /// A request with no deadline.
    pub fn new(b: &'a [f64]) -> Self {
        BatchRequest { b, deadline: None }
    }

    /// A request that gives up (with [`Outcome::DeadlineExpired`]) once
    /// `deadline` passes.
    pub fn with_deadline(b: &'a [f64], deadline: Instant) -> Self {
        BatchRequest {
            b,
            deadline: Some(deadline),
        }
    }
}

/// Solves `A x_j = b_j` for every request, returning one [`SolveResult`]
/// per request in order.
///
/// `Method::Pcg` + [`Engine::Serial`] + `opts.resilience == None` takes
/// the blocked multi-RHS path (module docs); everything else runs the
/// requests sequentially through [`solve`]. Both paths give each request
/// the bitwise identical result of its own standalone `solve` call.
pub fn solve_batch(
    method: &Method,
    a: &CsrMatrix,
    m: &dyn Preconditioner,
    requests: &[BatchRequest<'_>],
    opts: &SolveOptions,
    engine: Engine,
) -> Vec<SolveResult> {
    if requests.is_empty() {
        return Vec::new();
    }
    let blocked = engine == Engine::Serial && *method == Method::Pcg && opts.resilience.is_none();
    if !blocked {
        return requests
            .iter()
            .map(|req| {
                if req.deadline.is_some_and(|d| Instant::now() >= d) {
                    expired_result(a.nrows())
                } else {
                    solve(method, &Problem::new(a, m, req.b), opts, engine)
                }
            })
            .collect();
    }
    pcg_block(a, m, requests, opts)
}

/// Result for a request whose deadline passed before its solve started.
fn expired_result(n: usize) -> SolveResult {
    SolveResult {
        x: vec![0.0; n],
        outcome: Outcome::DeadlineExpired,
        iterations: 0,
        history: Vec::new(),
        counters: Counters::new(),
        collectives_per_rank: None,
        restarts: 0,
        s_schedule: Vec::new(),
        faults_absorbed: 0,
        adaptive: None,
    }
}

/// Per-column solver state carried alongside the multivector blocks.
struct ColState {
    /// Index into the original request slice (columns compact; requests
    /// don't).
    req: usize,
    stop: StopState,
    counters: Counters,
    /// Current `rᵀu` of this column's recurrence.
    rtu: f64,
}

/// Shared immutable context of one blocked solve.
struct Blk<'a> {
    a: &'a CsrMatrix,
    sell: Option<Arc<SellMatrix>>,
    pk: ParKernels,
    tr: Option<Track>,
    spmv_flops: u64,
    nw: u64,
}

impl Blk<'_> {
    /// Single-column `y ← A x` (breakdown-path criterion only).
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        let _s = spcg_obs::span(self.tr.as_ref(), Phase::Spmv);
        match self.sell.as_deref() {
            Some(sell) => self.pk.spmv_sell(sell, x, y),
            None => self.pk.spmv(self.a, x, y),
        }
    }

    /// `S ← A P` plus per-column `pᵀ·(A·p)`. On the serial CSR path the
    /// Gram fold runs block-fused inside the product
    /// ([`CsrMatrix::spmm_dot`], replicating `blas::dot`'s reduction
    /// shape); otherwise the product is followed by per-column
    /// [`ParKernels::dot`] calls. Identical bits either way.
    fn spmm_dot(&self, x: &MultiVector, y: &mut MultiVector) -> Vec<f64> {
        {
            let _s = spcg_obs::span(self.tr.as_ref(), Phase::Spmm);
            if self.sell.is_none() && self.pk.threads() == 1 {
                return self.a.spmm_dot(x, y);
            }
            match self.sell.as_deref() {
                Some(sell) => self.pk.spmm_sell(sell, x, y),
                None => self.pk.spmm(self.a, x, y),
            }
        }
        let _g = spcg_obs::span(self.tr.as_ref(), Phase::Gram);
        (0..x.k())
            .map(|j| self.pk.dot(x.col(j), y.col(j)))
            .collect()
    }

    /// Per-column `Σ (b − (AX))²`. On the serial CSR path the diff runs
    /// block-fused inside the product with no stored `A·X` at all
    /// ([`CsrMatrix::spmm_residual_sq`]); otherwise the product lands in
    /// the `y` scratch and the diff is a separate pass. Identical
    /// accumulation chain — and so identical bits — either way.
    fn residual_sq(&self, x: &MultiVector, bs: &[&[f64]], y: &mut MultiVector) -> Vec<f64> {
        let _s = spcg_obs::span(self.tr.as_ref(), Phase::Spmm);
        if self.sell.is_none() && self.pk.threads() == 1 {
            return self.a.spmm_residual_sq(x, bs);
        }
        match self.sell.as_deref() {
            Some(sell) => self.pk.spmm_sell(sell, x, y),
            None => self.pk.spmm(self.a, x, y),
        }
        let ld = self.a.nrows();
        bs.iter()
            .enumerate()
            .map(|(j, b)| {
                let ax = y.col(j);
                let mut acc = 0.0;
                for i in 0..ld {
                    let d = b[i] - ax[i];
                    acc += d * d;
                }
                acc
            })
            .collect()
    }
}

/// Criterion values for every active column, charging each column's
/// counters exactly as the scalar `criterion_value` does. The true
/// residual's `A·x` is batched through the multivector kernel — per
/// column bitwise equal to the scalar SpMV — and lands in `scr`, which
/// the caller aliases to the (dead at this point) `A·p` block so the
/// batch keeps one fewer `n×k` buffer resident.
fn crit_all(
    blk: &Blk<'_>,
    criterion: StoppingCriterion,
    requests: &[BatchRequest<'_>],
    cols: &mut [ColState],
    xm: &MultiVector,
    rm: &MultiVector,
    scr: &mut MultiVector,
) -> Vec<f64> {
    match criterion {
        StoppingCriterion::TrueResidual2Norm => {
            let bs: Vec<&[f64]> = cols.iter().map(|col| requests[col.req].b).collect();
            let accs = blk.residual_sq(xm, &bs, scr);
            cols.iter_mut()
                .zip(accs)
                .map(|(col, acc)| {
                    col.counters.record_spmv(blk.spmv_flops);
                    col.counters.record_dots(1, blk.nw);
                    col.counters.blas1_flops += blk.nw;
                    col.counters.piggyback_words(1);
                    acc.sqrt()
                })
                .collect()
        }
        StoppingCriterion::RecursiveResidual2Norm => cols
            .iter_mut()
            .enumerate()
            .map(|(c, col)| {
                col.counters.record_dots(1, blk.nw);
                col.counters.piggyback_words(1);
                let _g = spcg_obs::span(blk.tr.as_ref(), Phase::Gram);
                blk.pk.dot(rm.col(c), rm.col(c)).sqrt()
            })
            .collect(),
        StoppingCriterion::PrecondMNorm => cols.iter().map(|col| col.rtu.max(0.0).sqrt()).collect(),
    }
}

/// Criterion value for one column, used on the breakdown path where a
/// single column needs a value mid-iteration.
#[allow(clippy::too_many_arguments)]
fn crit_one(
    blk: &Blk<'_>,
    criterion: StoppingCriterion,
    b: &[f64],
    x: &[f64],
    r: &[f64],
    rtu: f64,
    scratch: &mut Vec<f64>,
    counters: &mut Counters,
) -> f64 {
    match criterion {
        StoppingCriterion::TrueResidual2Norm => {
            scratch.resize(b.len(), 0.0);
            blk.spmv(x, scratch);
            counters.record_spmv(blk.spmv_flops);
            let mut acc = 0.0;
            for i in 0..b.len() {
                let d = b[i] - scratch[i];
                acc += d * d;
            }
            counters.record_dots(1, blk.nw);
            counters.blas1_flops += blk.nw;
            counters.piggyback_words(1);
            acc.sqrt()
        }
        StoppingCriterion::RecursiveResidual2Norm => {
            counters.record_dots(1, blk.nw);
            counters.piggyback_words(1);
            let _g = spcg_obs::span(blk.tr.as_ref(), Phase::Gram);
            blk.pk.dot(r, r).sqrt()
        }
        StoppingCriterion::PrecondMNorm => rtu.max(0.0).sqrt(),
    }
}

/// Emits results for every column with a `Some` outcome in `freeze` and
/// compacts the carried multivectors down to the survivors. `s` is
/// recomputed every iteration, so it is simply reallocated at the new
/// width.
#[allow(clippy::too_many_arguments)]
fn compact(
    cols: &mut Vec<ColState>,
    freeze: Vec<Option<Outcome>>,
    iterations: usize,
    out: &mut [Option<SolveResult>],
    n: usize,
    xm: &mut MultiVector,
    rm: &mut MultiVector,
    pm: &mut MultiVector,
    sm: &mut MultiVector,
) {
    if freeze.iter().all(|f| f.is_none()) {
        return;
    }
    let keep: Vec<usize> = (0..cols.len()).filter(|&c| freeze[c].is_none()).collect();
    let old = std::mem::take(cols);
    for (c, (col, frozen)) in old.into_iter().zip(freeze).enumerate() {
        match frozen {
            Some(outcome) => {
                out[col.req] = Some(SolveResult {
                    x: xm.col(c).to_vec(),
                    outcome,
                    iterations,
                    history: col.stop.history,
                    counters: col.counters,
                    collectives_per_rank: None,
                    restarts: 0,
                    s_schedule: Vec::new(),
                    faults_absorbed: 0,
                    adaptive: None,
                });
            }
            None => cols.push(col),
        }
    }
    for mv in [xm, rm, pm] {
        *mv = retain_columns(mv, &keep);
    }
    *sm = MultiVector::zeros(n, keep.len());
}

/// A new multivector holding the listed columns of `mv`, in order.
fn retain_columns(mv: &MultiVector, keep: &[usize]) -> MultiVector {
    let cols: Vec<Vec<f64>> = keep.iter().map(|&c| mv.col(c).to_vec()).collect();
    if cols.is_empty() {
        MultiVector::zeros(mv.n(), 0)
    } else {
        MultiVector::from_columns(&cols)
    }
}

/// The blocked multi-RHS PCG. Per column this is `pcg_g` verbatim —
/// same arithmetic, same counter charges, same stopping sequence — with
/// the `k` SpMVs of each iteration fused into one multivector product.
fn pcg_block(
    a: &CsrMatrix,
    m: &dyn Preconditioner,
    requests: &[BatchRequest<'_>],
    opts: &SolveOptions,
) -> Vec<SolveResult> {
    let n = a.nrows();
    let k0 = requests.len();
    for req in requests {
        // Same dimension validation (and panic message) as a plain solve.
        let _ = Problem::new(a, m, req.b);
    }
    let blk = Blk {
        a,
        sell: match opts.format {
            SparseFormat::Csr => None,
            SparseFormat::Sell => Some(a.sell()),
        },
        pk: ParKernels::new(opts.threads),
        tr: opts.trace.as_ref().map(|t| t.track(0)),
        spmv_flops: a.spmv_flops(),
        nw: n as u64,
    };
    let m_flops = m.flops_per_apply();
    // Pointwise preconditioners (Jacobi, identity) expose their weight
    // vector, unlocking the fused column step: both AXPYs, the apply, and
    // the r·u dot in one cache-hot sweep. The fused kernel reproduces the
    // unfused expressions and reduction shape exactly, so taking this
    // path never changes a bit — only the number of DRAM round trips.
    let pointwise = match m.dist_form() {
        DistForm::Pointwise(w) => Some(w),
        _ => None,
    };
    let any_deadline = requests.iter().any(|r| r.deadline.is_some());

    let mut out: Vec<Option<SolveResult>> = (0..k0).map(|_| None).collect();
    let mut cols: Vec<ColState> = Vec::with_capacity(k0);

    // x0 = 0, r0 = b, u0 = M⁻¹ r0, p0 = u0.
    //
    // `u = M⁻¹r` never carries across iterations — each column's u is
    // consumed by its dot and xpby in the same step — so one shared
    // column buffer replaces an `n×k` block. Together with `sm` doubling
    // as the criterion's `A·X` scratch below, the batch keeps four `n×k`
    // multivectors resident instead of six — the margin that keeps a wide
    // batch inside the last-level cache.
    let mut xm = MultiVector::zeros(n, k0);
    let b_cols: Vec<Vec<f64>> = requests.iter().map(|r| r.b.to_vec()).collect();
    let mut rm = MultiVector::from_columns(&b_cols);
    let mut u = vec![0.0; n];
    let mut pm = MultiVector::zeros(n, k0);
    let mut sm = MultiVector::zeros(n, k0);
    for c in 0..k0 {
        let mut counters = Counters::new();
        {
            let _s = spcg_obs::span(blk.tr.as_ref(), Phase::Precond);
            m.apply_par(&blk.pk, rm.col(c), &mut u);
        }
        counters.record_precond(m_flops);
        pm.col_mut(c).copy_from_slice(&u);
        let rtu = {
            let _g = spcg_obs::span(blk.tr.as_ref(), Phase::Gram);
            blk.pk.dot(rm.col(c), &u)
        };
        counters.record_dots(1, blk.nw);
        counters.record_collective(1);
        cols.push(ColState {
            req: c,
            stop: StopState::new(opts),
            counters,
            rtu,
        });
    }

    let mut scratch = Vec::new();
    let mut it = 0usize;

    // Initial convergence check (a zero right-hand side converges here).
    let v0 = crit_all(&blk, opts.criterion, requests, &mut cols, &xm, &rm, &mut sm);
    let freeze: Vec<Option<Outcome>> = cols
        .iter_mut()
        .zip(&v0)
        .map(|(col, &v)| match col.stop.check(0, v) {
            Verdict::Continue => None,
            verdict => Some(StopState::outcome(verdict)),
        })
        .collect();
    compact(
        &mut cols, freeze, 0, &mut out, n, &mut xm, &mut rm, &mut pm, &mut sm,
    );

    while !cols.is_empty() && it < opts.max_iters {
        // Deadlines are noticed at iteration boundaries only: the one
        // timing-dependent freeze, and it can only end a column early —
        // never change surviving columns' arithmetic.
        if any_deadline {
            let now = Instant::now();
            let freeze: Vec<Option<Outcome>> = cols
                .iter()
                .map(|col| {
                    requests[col.req]
                        .deadline
                        .is_some_and(|d| now >= d)
                        .then_some(Outcome::DeadlineExpired)
                })
                .collect();
            compact(
                &mut cols, freeze, it, &mut out, n, &mut xm, &mut rm, &mut pm, &mut sm,
            );
            if cols.is_empty() {
                break;
            }
        }

        // S = A P: the batch's one matrix stream this iteration, with the
        // pᵀAp Gram fold fused into it (each column's dot comes out in
        // `blas::dot`'s exact reduction shape, so fusing changes traffic,
        // not bits).
        let pts_all = blk.spmm_dot(&pm, &mut sm);
        for col in &mut cols {
            col.counters.record_spmv(blk.spmv_flops);
        }

        // Scalar and vector work, column by column (pcg_g verbatim).
        let mut freeze: Vec<Option<Outcome>> = (0..cols.len()).map(|_| None).collect();
        for (c, col) in cols.iter_mut().enumerate() {
            let pts = pts_all[c];
            col.counters.record_dots(1, blk.nw);
            col.counters.record_collective(1);
            if !(pts > 0.0) || !pts.is_finite() {
                let v = crit_one(
                    &blk,
                    opts.criterion,
                    requests[col.req].b,
                    xm.col(c),
                    rm.col(c),
                    col.rtu,
                    &mut scratch,
                    &mut col.counters,
                );
                let outcome = col.stop.resolve_breakdown(
                    it,
                    v,
                    format!("non-positive curvature pᵀAp = {pts}"),
                );
                freeze[c] = Some(outcome);
                continue;
            }
            let alpha = col.rtu / pts;
            let rtu_new = if let Some(w) = pointwise {
                let _v = spcg_obs::span(blk.tr.as_ref(), Phase::VecUpdate);
                blk.pk.pcg_step_fused(
                    alpha,
                    pm.col(c),
                    sm.col(c),
                    w,
                    xm.col_mut(c),
                    rm.col_mut(c),
                    &mut u,
                )
            } else {
                {
                    let _v = spcg_obs::span(blk.tr.as_ref(), Phase::VecUpdate);
                    blk.pk.axpy(alpha, pm.col(c), xm.col_mut(c));
                    blk.pk.axpy(-alpha, sm.col(c), rm.col_mut(c));
                }
                let _s = spcg_obs::span(blk.tr.as_ref(), Phase::Precond);
                m.apply_par(&blk.pk, rm.col(c), &mut u);
                drop(_s);
                let _g = spcg_obs::span(blk.tr.as_ref(), Phase::Gram);
                blk.pk.dot(rm.col(c), &u)
            };
            col.counters.blas1_flops += 4 * blk.nw;
            col.counters.record_precond(m_flops);
            col.counters.record_dots(1, blk.nw);
            col.counters.record_collective(1);
            if !rtu_new.is_finite() {
                freeze[c] = Some(Outcome::Diverged);
                continue;
            }
            let beta = rtu_new / col.rtu;
            col.rtu = rtu_new;
            {
                let _v = spcg_obs::span(blk.tr.as_ref(), Phase::VecUpdate);
                blk.pk.xpby(&u, beta, pm.col_mut(c));
            }
            col.counters.blas1_flops += 2 * blk.nw;
            col.counters.iterations += 1;
            col.counters.outer_iterations += 1;
        }
        // Mid-iteration freezes report the pre-increment iteration count,
        // exactly like the scalar solver's early returns.
        compact(
            &mut cols, freeze, it, &mut out, n, &mut xm, &mut rm, &mut pm, &mut sm,
        );
        it += 1;
        if cols.is_empty() {
            break;
        }

        let vs = crit_all(&blk, opts.criterion, requests, &mut cols, &xm, &rm, &mut sm);
        let freeze: Vec<Option<Outcome>> = cols
            .iter_mut()
            .zip(&vs)
            .map(|(col, &v)| match col.stop.check(it, v) {
                Verdict::Continue => None,
                verdict => Some(StopState::outcome(verdict)),
            })
            .collect();
        compact(
            &mut cols, freeze, it, &mut out, n, &mut xm, &mut rm, &mut pm, &mut sm,
        );
    }

    // Anything still live hit the iteration cap.
    let freeze: Vec<Option<Outcome>> = cols.iter().map(|_| Some(Outcome::MaxIterations)).collect();
    compact(
        &mut cols, freeze, it, &mut out, n, &mut xm, &mut rm, &mut pm, &mut sm,
    );

    out.into_iter()
        .map(|r| r.expect("solve_batch: every request resolves"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::StoppingCriterion;
    use spcg_basis::BasisType;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    fn rhs_family(a: &CsrMatrix, k: usize) -> Vec<Vec<f64>> {
        let base = paper_rhs(a);
        (0..k)
            .map(|j| {
                base.iter()
                    .enumerate()
                    .map(|(i, &v)| v * (1.0 + j as f64) + ((i + j) % 5) as f64 * 0.01)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn k1_blocked_path_is_bitwise_identical_to_solve() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        for criterion in [
            StoppingCriterion::TrueResidual2Norm,
            StoppingCriterion::RecursiveResidual2Norm,
            StoppingCriterion::PrecondMNorm,
        ] {
            for format in [SparseFormat::Csr, SparseFormat::Sell] {
                let opts = SolveOptions::default()
                    .with_criterion(criterion)
                    .with_format(format)
                    .with_history();
                let plain = solve(
                    &Method::Pcg,
                    &Problem::new(&a, &m, &b),
                    &opts,
                    Engine::Serial,
                );
                let batch = solve_batch(
                    &Method::Pcg,
                    &a,
                    &m,
                    &[BatchRequest::new(&b)],
                    &opts,
                    Engine::Serial,
                );
                assert_eq!(batch.len(), 1);
                let res = &batch[0];
                assert_eq!(res.x, plain.x, "{criterion:?}/{format:?} x");
                assert_eq!(res.outcome, plain.outcome, "{criterion:?}/{format:?}");
                assert_eq!(res.iterations, plain.iterations, "{criterion:?}/{format:?}");
                assert_eq!(
                    res.history, plain.history,
                    "{criterion:?}/{format:?} history"
                );
                assert_eq!(
                    res.counters, plain.counters,
                    "{criterion:?}/{format:?} counters"
                );
            }
        }
    }

    #[test]
    fn every_column_of_a_batch_matches_its_standalone_solve_bitwise() {
        // Columns converge at different iterations, so this exercises the
        // frozen-column compaction: survivors must be unperturbed.
        let a = poisson_2d(10);
        let m = Jacobi::new(&a);
        let bs = rhs_family(&a, 4);
        for format in [SparseFormat::Csr, SparseFormat::Sell] {
            let opts = SolveOptions::default().with_format(format).with_history();
            let reqs: Vec<BatchRequest<'_>> = bs.iter().map(|b| BatchRequest::new(b)).collect();
            let batch = solve_batch(&Method::Pcg, &a, &m, &reqs, &opts, Engine::Serial);
            for (j, b) in bs.iter().enumerate() {
                let plain = solve(
                    &Method::Pcg,
                    &Problem::new(&a, &m, b),
                    &opts,
                    Engine::Serial,
                );
                assert_eq!(batch[j].x, plain.x, "col {j} x ({format:?})");
                assert_eq!(batch[j].outcome, plain.outcome, "col {j} ({format:?})");
                assert_eq!(
                    batch[j].iterations, plain.iterations,
                    "col {j} ({format:?})"
                );
                assert_eq!(batch[j].history, plain.history, "col {j} ({format:?})");
                assert_eq!(batch[j].counters, plain.counters, "col {j} ({format:?})");
            }
        }
    }

    #[test]
    fn fallback_methods_match_solve_bitwise() {
        let a = poisson_1d(40);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let opts = SolveOptions::default().with_history();
        for method in [
            Method::Pcg3,
            Method::SPcg {
                s: 4,
                basis: BasisType::Monomial,
            },
            Method::SPcgMon { s: 3 },
        ] {
            let plain = solve(&method, &Problem::new(&a, &m, &b), &opts, Engine::Serial);
            let batch = solve_batch(
                &method,
                &a,
                &m,
                &[BatchRequest::new(&b)],
                &opts,
                Engine::Serial,
            );
            assert_eq!(batch[0].x, plain.x, "{method:?}");
            assert_eq!(batch[0].counters, plain.counters, "{method:?}");
        }
    }

    #[test]
    fn expired_deadline_freezes_with_deadline_expired() {
        let a = poisson_2d(16);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let past = Instant::now();
        // Blocked path: deadline noticed at the first iteration boundary.
        let batch = solve_batch(
            &Method::Pcg,
            &a,
            &m,
            &[BatchRequest::with_deadline(&b, past)],
            &SolveOptions::default(),
            Engine::Serial,
        );
        assert_eq!(batch[0].outcome, Outcome::DeadlineExpired);
        assert_eq!(batch[0].iterations, 0);
        // Fallback path: checked before the solve starts.
        let batch = solve_batch(
            &Method::SPcgMon { s: 2 },
            &a,
            &m,
            &[BatchRequest::with_deadline(&b, past)],
            &SolveOptions::default(),
            Engine::Serial,
        );
        assert_eq!(batch[0].outcome, Outcome::DeadlineExpired);
        // A deadline-free column in the same batch still solves.
        let batch = solve_batch(
            &Method::Pcg,
            &a,
            &m,
            &[BatchRequest::with_deadline(&b, past), BatchRequest::new(&b)],
            &SolveOptions::default(),
            Engine::Serial,
        );
        assert_eq!(batch[0].outcome, Outcome::DeadlineExpired);
        assert!(batch[1].converged(), "{:?}", batch[1].outcome);
    }

    #[test]
    fn wide_batches_converge_to_tolerance() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let bs = rhs_family(&a, 8);
        let opts = SolveOptions::default().with_tol(1e-9);
        let reqs: Vec<BatchRequest<'_>> = bs.iter().map(|b| BatchRequest::new(b)).collect();
        let batch = solve_batch(&Method::Pcg, &a, &m, &reqs, &opts, Engine::Serial);
        for (j, (res, b)) in batch.iter().zip(&bs).enumerate() {
            assert!(res.converged(), "col {j}: {:?}", res.outcome);
            assert!(
                res.true_relative_residual(&a, b) < 1e-7,
                "col {j}: {}",
                res.true_relative_residual(&a, b)
            );
        }
    }

    #[test]
    fn empty_batch_returns_empty() {
        let a = poisson_1d(8);
        let m = Identity::new(8);
        let out = solve_batch(
            &Method::Pcg,
            &a,
            &m,
            &[],
            &SolveOptions::default(),
            Engine::Serial,
        );
        assert!(out.is_empty());
    }
}
