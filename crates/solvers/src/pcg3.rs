//! Three-term recurrence PCG (Rutishauser \[17\]), the method underlying
//! CA-PCG3.
//!
//! PCG3 eliminates the search directions of standard PCG and updates the
//! residuals (and solutions) directly through a three-term recurrence:
//!
//! ```text
//! γ_i = (r_iᵀu_i) / (u_iᵀA u_i),    ρ_0 = 1,
//! ρ_i = (1 − (γ_i/γ_{i-1})·(μ_i/μ_{i-1})·(1/ρ_{i-1}))⁻¹
//! x_{i+1} = ρ_i·(x_i + γ_i·u_i) + (1−ρ_i)·x_{i-1}
//! r_{i+1} = ρ_i·(r_i − γ_i·A u_i) + (1−ρ_i)·r_{i-1}
//! ```
//!
//! Mathematically equivalent to PCG, but its rounding behaviour is worse
//! (Gutknecht & Strakoš \[13\]) — the reason the paper flags CA-PCG3's
//! three-term foundation as a stability liability. Both dot products of an
//! iteration reduce in a single collective.

use crate::engine::{Exec, SerialExec};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult};
use crate::stopping::{criterion_value, StopState, Verdict};
use spcg_dist::Counters;
use spcg_obs::Phase;

/// Solves `A x = b` with three-term-recurrence PCG (zero initial guess).
pub fn pcg3(problem: &Problem<'_>, opts: &SolveOptions) -> SolveResult {
    pcg3_g(&mut SerialExec::new(problem, opts), opts)
}

/// PCG3 over any execution substrate (see [`crate::engine`]).
pub(crate) fn pcg3_g<E: Exec>(exec: &mut E, opts: &SolveOptions) -> SolveResult {
    let n = exec.nl();
    let nw = exec.n_global();
    let pk = exec.kernels().clone();
    let tr = exec.track().cloned();
    let mut counters = Counters::new();
    let mut stop = StopState::new(opts);
    let mut scratch = Vec::new();

    let mut x_prev = vec![0.0; n];
    let mut x = vec![0.0; n];
    let mut r_prev = vec![0.0; n];
    let mut r = exec.b_local().to_vec();
    let mut u = vec![0.0; n];
    exec.precond(&r, &mut u, &mut counters);
    counters.record_precond(exec.m_flops());
    let mut au = vec![0.0; n];
    let mut next = vec![0.0; n];

    let mut mu_prev = 0.0f64;
    let mut gamma_prev = 0.0f64;
    let mut rho_prev = 1.0f64;

    let mut red = [exec.dot(&r, &u)];
    {
        let _g = spcg_obs::span(tr.as_ref(), Phase::Gram);
        exec.allreduce(&mut red);
    }
    let mu0 = red[0];
    counters.record_dots(1, nw);
    counters.record_collective(1);
    let v0 = criterion_value(
        exec,
        opts.criterion,
        &x,
        &r,
        mu0,
        &mut scratch,
        &mut counters,
    );
    let mut verdict = stop.check(0, v0);

    let mut iterations = 0usize;
    while verdict == Verdict::Continue && iterations < opts.max_iters {
        exec.spmv(&u, &mut au, &mut counters);
        counters.record_spmv(exec.spmv_flops());
        let mut red = [exec.dot(&r, &u), exec.dot(&u, &au)];
        {
            let _g = spcg_obs::span(tr.as_ref(), Phase::Gram);
            exec.allreduce(&mut red);
        }
        let (mu, nu) = (red[0], red[1]);
        counters.record_dots(2, nw);
        counters.record_collective(2); // both dots fused in one reduction
        if !(nu > 0.0) || !mu.is_finite() || !nu.is_finite() {
            return finish(
                x,
                Outcome::Breakdown(format!("uᵀAu = {nu}, rᵀu = {mu}")),
                iterations,
                stop,
                counters,
            );
        }
        let gamma = mu / nu;
        let rho = if iterations == 0 {
            1.0
        } else {
            let denom = 1.0 - (gamma / gamma_prev) * (mu / mu_prev) * (1.0 / rho_prev);
            if denom == 0.0 || !denom.is_finite() {
                return finish(
                    x,
                    Outcome::Breakdown(format!("rho denominator {denom}")),
                    iterations,
                    stop,
                    counters,
                );
            }
            1.0 / denom
        };

        {
            let _v = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
            // x_{i+1} = ρ(x + γu) + (1−ρ)x_prev
            pk.three_term(rho, gamma, &x, &u, &x_prev, &mut next);
            std::mem::swap(&mut x_prev, &mut x);
            std::mem::swap(&mut x, &mut next);
            // r_{i+1} = ρ(r − γ·Au) + (1−ρ)r_prev; `+(−γ)` is bitwise `−γ·`.
            pk.three_term(rho, -gamma, &r, &au, &r_prev, &mut next);
            std::mem::swap(&mut r_prev, &mut r);
            std::mem::swap(&mut r, &mut next);
        }
        counters.blas1_flops += 10 * nw;

        exec.precond(&r, &mut u, &mut counters);
        counters.record_precond(exec.m_flops());

        mu_prev = mu;
        gamma_prev = gamma;
        rho_prev = rho;
        iterations += 1;
        counters.iterations += 1;
        counters.outer_iterations += 1;

        let mut red = [exec.dot(&r, &u)]; // for the M-norm criterion
        {
            let _g = spcg_obs::span(tr.as_ref(), Phase::Gram);
            exec.allreduce(&mut red);
        }
        let rtu = red[0];
        counters.record_dots(1, nw);
        counters.piggyback_words(1);
        let v = criterion_value(
            exec,
            opts.criterion,
            &x,
            &r,
            rtu,
            &mut scratch,
            &mut counters,
        );
        verdict = stop.check(iterations, v);
    }

    finish(x, StopState::outcome(verdict), iterations, stop, counters)
}

fn finish(
    x: Vec<f64>,
    outcome: Outcome,
    iterations: usize,
    stop: StopState,
    counters: Counters,
) -> SolveResult {
    SolveResult {
        x,
        outcome,
        iterations,
        history: stop.history,
        counters,
        collectives_per_rank: None,
        restarts: 0,
        s_schedule: Vec::new(),
        faults_absorbed: 0,
        adaptive: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::pcg;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn solves_poisson() {
        let a = poisson_2d(10);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let res = pcg3(&problem, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.outcome);
        assert!(res.true_relative_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn matches_pcg_iteration_count_closely() {
        // Mathematical equivalence: iteration counts agree up to round-off
        // effects (±2 on a well-conditioned problem).
        let a = poisson_2d(14);
        let m = Identity::new(a.nrows());
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let r2 = pcg(&problem, &SolveOptions::default().with_tol(1e-8));
        let r3 = pcg3(&problem, &SolveOptions::default().with_tol(1e-8));
        assert!(r2.converged() && r3.converged());
        let d = r2.iterations.abs_diff(r3.iterations);
        assert!(d <= 2, "PCG {} vs PCG3 {}", r2.iterations, r3.iterations);
    }

    #[test]
    fn first_iteration_matches_pcg_exactly() {
        // With ρ_0 = 1 the first PCG3 step is the first PCG step.
        let a = poisson_1d(12);
        let m = Identity::new(12);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let o = SolveOptions::default().with_max_iters(1).with_tol(1e-30);
        let r2 = pcg(&problem, &o);
        let r3 = pcg3(&problem, &o);
        for (p, q) in r2.x.iter().zip(&r3.x) {
            assert!((p - q).abs() < 1e-14);
        }
    }

    #[test]
    fn one_collective_per_iteration() {
        let a = poisson_1d(30);
        let m = Identity::new(30);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts =
            SolveOptions::default().with_criterion(crate::options::StoppingCriterion::PrecondMNorm);
        let res = pcg3(&problem, &opts);
        assert!(res.converged());
        let it = res.counters.iterations;
        assert_eq!(res.counters.global_collectives, it + 1); // +1 setup
        assert_eq!(res.counters.spmv_count, it);
    }
}
