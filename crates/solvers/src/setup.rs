//! Basis setup helpers — the paper's §5.1 warm-up procedure.
//!
//! "Estimates for the largest and smallest eigenvalues necessary for the
//! Chebyshev basis type and the Chebyshev preconditioner were computed with
//! a few iterations of standard PCG (not included in the runtimes)." These
//! helpers run that warm-up and return a ready [`BasisType`].

use crate::options::Problem;
use spcg_basis::leja::newton_shifts;
use spcg_basis::ritz::{estimate_spectrum, SpectrumEstimate};
use spcg_basis::BasisType;

/// Default warm-up length: the paper suggests `s` or `2s` iterations; 20
/// covers the `s ≤ 15` range used in the evaluation.
pub const DEFAULT_WARMUP_ITERS: usize = 20;

/// Default widening of the Ritz interval (Ritz values underestimate the
/// spectrum's extent).
pub const DEFAULT_MARGIN: f64 = 0.05;

/// Runs the warm-up PCG and returns the raw spectrum estimate.
pub fn warmup(problem: &Problem<'_>, iters: usize) -> SpectrumEstimate {
    estimate_spectrum(problem.a, problem.m, problem.b, iters)
}

/// Chebyshev basis on the (slightly widened) Ritz interval of `M⁻¹A`.
pub fn chebyshev_basis(problem: &Problem<'_>, warmup_iters: usize, margin: f64) -> BasisType {
    let est = warmup(problem, warmup_iters);
    let (lo, hi) = est.chebyshev_interval(margin);
    BasisType::Chebyshev {
        lambda_min: lo,
        lambda_max: hi,
    }
}

/// Newton basis with `s` Leja-ordered Ritz shifts.
pub fn newton_basis(problem: &Problem<'_>, warmup_iters: usize, s: usize) -> BasisType {
    let est = warmup(problem, warmup_iters);
    BasisType::Newton {
        shifts: newton_shifts(&est.ritz, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::Jacobi;
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::poisson_2d;

    #[test]
    fn chebyshev_basis_has_valid_interval() {
        let a = poisson_2d(10);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let p = Problem::new(&a, &m, &b);
        match chebyshev_basis(&p, DEFAULT_WARMUP_ITERS, DEFAULT_MARGIN) {
            BasisType::Chebyshev {
                lambda_min,
                lambda_max,
            } => {
                assert!(lambda_min > 0.0);
                assert!(lambda_max > lambda_min);
                // Jacobi-preconditioned Poisson spectrum sits in (0, 2).
                assert!(lambda_max < 2.5);
            }
            other => panic!("unexpected basis {other:?}"),
        }
    }

    #[test]
    fn newton_basis_has_s_shifts() {
        let a = poisson_2d(10);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let p = Problem::new(&a, &m, &b);
        match newton_basis(&p, 15, 8) {
            BasisType::Newton { shifts } => assert_eq!(shifts.len(), 8),
            other => panic!("unexpected basis {other:?}"),
        }
    }
}
