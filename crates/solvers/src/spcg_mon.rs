//! sPCG_mon — the original monomial-only s-step PCG of Chronopoulos & Gear
//! (paper Algorithm 2).
//!
//! Structurally identical to [`mod@crate::spcg`] with the monomial basis, but
//! its "Scalar Work" builds the small matrices from the **moment vector**
//! (eq. 13): the 2s scalars `μ_l = rᵀ(M⁻¹A)^l u` are the only local
//! reductions, and `UᵀAU` is assembled as the Hankel matrix
//! `UᵀAU[i][j] = μ_{i+j+1}`. Hankel moment matrices are notoriously
//! ill-conditioned — this, on top of the monomial basis itself, is why
//! sPCG_mon converges for almost none of the paper's Table-2 matrices.
//!
//! Implementation note (see DESIGN.md): the original algorithm computes the
//! cross term `C^(k) = −P^(k-1)ᵀAU^(k)` through a scalar recurrence in the
//! moments and `a^(k-1)`. We compute the numerically equivalent Gram product
//! directly but *charge the instrumentation with the original algorithm's
//! cost* (2s local reduction units, one 2s-word collective per s steps —
//! Table 1 row sPCG_mon), so performance modeling reflects the published
//! method.

use crate::engine::{allreduce_gram, Exec, SerialExec};
use crate::options::{Outcome, Problem, SolveOptions, SolveResult};
use crate::stopping::{criterion_value, StopState, Verdict};
use spcg_basis::poly::BasisParams;
use spcg_dist::Counters;
use spcg_obs::Phase;
use spcg_sparse::smallsolve::{solve_spd_mat_with_fallback, solve_spd_with_fallback};
use spcg_sparse::{DenseMat, MultiVector};

/// Solves `A x = b` with the monomial-basis s-step PCG of \[7\] (Alg. 2).
///
/// # Panics
/// Panics if `s < 1`.
pub fn spcg_mon(problem: &Problem<'_>, s: usize, opts: &SolveOptions) -> SolveResult {
    spcg_mon_g(&mut SerialExec::new(problem, opts), s, opts)
}

/// sPCG_mon over any execution substrate (see [`crate::engine`]).
pub(crate) fn spcg_mon_g<E: Exec>(exec: &mut E, s: usize, opts: &SolveOptions) -> SolveResult {
    assert!(s >= 1, "spcg_mon: s must be at least 1");
    let n = exec.nl();
    let nw = exec.n_global();
    let sw = s as u64;
    let pk = exec.kernels().clone();
    let tr = exec.track().cloned();
    let mut counters = Counters::new();
    let mut stop = StopState::new(opts);
    let mut scratch_vec = Vec::new();

    let params = BasisParams::monomial(s);

    let mut x = vec![0.0; n];
    let mut r = exec.b_local().to_vec();

    let mut s_mat = MultiVector::zeros(n, s + 1);
    let mut u_mat = MultiVector::zeros(n, s);
    let mut p_mat = MultiVector::zeros(n, s);
    let mut ap_mat = MultiVector::zeros(n, s);
    let mut scratch = MultiVector::zeros(n, s);
    let mut w_prev: Option<DenseMat> = None;

    let mut iterations = 0usize;
    let final_verdict;
    loop {
        // --- monomial s-step basis: S = [r, (AM⁻¹)r, …, (AM⁻¹)^s r] ---
        exec.mpk(&r, None, &params, &mut s_mat, &mut u_mat, &mut counters);

        // --- moments μ_l = rᵀ(M⁻¹A)^l u, l = 0 … 2s−1 (eq. 13) ---
        let gram_span = spcg_obs::span(tr.as_ref(), Phase::Gram);
        // μ_l = (S col i)ᵀ(U col l−i) for any split; take i = min(l, s).
        let mut moments = vec![0.0; 2 * s];
        for (l, slot) in moments.iter_mut().enumerate() {
            let i = l.min(s);
            let j = l - i;
            *slot = exec.dot(s_mat.col(i), u_mat.col(j));
        }
        // The cross-term Gram (original: moment recurrence — see module
        // docs; charged as the moment vector only).
        let mut g2 = w_prev.as_ref().map(|_| pk.gram(&p_mat, &s_mat));
        counters.record_dots(2 * sw, nw);
        counters.record_collective(2 * sw);
        match g2.as_mut() {
            Some(g2) => allreduce_gram(exec, &mut [g2], &mut moments),
            None => exec.allreduce(&mut moments),
        }
        drop(gram_span);

        // --- convergence check every s steps ---
        let rtu = moments[0];
        let value = criterion_value(
            exec,
            opts.criterion,
            &x,
            &r,
            rtu,
            &mut scratch_vec,
            &mut counters,
        );
        let verdict = stop.check(iterations, value);
        if verdict != Verdict::Continue {
            final_verdict = StopState::outcome(verdict);
            break;
        }
        if iterations >= opts.max_iters {
            final_verdict = Outcome::MaxIterations;
            break;
        }

        // --- Scalar Work from moments (monomial Hankel structure) ---
        let scalar_span = spcg_obs::span(tr.as_ref(), Phase::ScalarWork);
        let m_vec: Vec<f64> = moments[..s].to_vec(); // Rᵀu
        let uau = DenseMat::from_fn(s, s, |i, j| moments[i + j + 1]); // Hankel
        let (b_k, mut w) = match (&w_prev, &g2) {
            (Some(wp), Some(g2)) => {
                // Monomial B is the down-shift: (G2·B)[i][j] = G2[i][j+1].
                let d = DenseMat::from_fn(s, s, |i, j| g2[(i, j + 1)]);
                let mut rhs = d.clone();
                rhs.scale(-1.0);
                let solved = {
                    let _ss = spcg_obs::span(tr.as_ref(), Phase::SmallSolve);
                    solve_spd_mat_with_fallback(wp, &rhs)
                };
                let b_k = match solved {
                    Ok(b) => b,
                    Err(e) => {
                        final_verdict = Outcome::Breakdown(format!("W^(k-1) solve failed: {e}"));
                        break;
                    }
                };
                let mut w = uau;
                w.axpy(1.0, &d.transpose().matmul(&b_k));
                (Some(b_k), w)
            }
            _ => (None, uau),
        };
        w.symmetrize();
        counters.small_flops += 4 * sw * sw * sw;
        if w.has_non_finite() {
            final_verdict = Outcome::Breakdown("non-finite moment data".into());
            break;
        }
        let solved = {
            let _ss = spcg_obs::span(tr.as_ref(), Phase::SmallSolve);
            solve_spd_with_fallback(&w, &m_vec)
        };
        let a_vec = match solved {
            Ok(a) => a,
            Err(e) => {
                final_verdict = Outcome::Breakdown(format!("W^(k) solve failed: {e}"));
                break;
            }
        };
        drop(scalar_span);

        let update_span = spcg_obs::span(tr.as_ref(), Phase::VecUpdate);
        // --- AU = last s columns of S (monomial: a pure copy) ---
        let au_view = s_mat.head_columns(s + 1); // clone of S
        let mut au_mat = MultiVector::zeros(n, s);
        for j in 0..s {
            au_mat.col_mut(j).copy_from_slice(au_view.col(j + 1));
        }

        // --- blocked updates (BLAS3 + BLAS2, same as sPCG) ---
        match b_k {
            Some(b_k) => {
                p_mat.blocked_update_par(&pk, &u_mat, &b_k, &mut scratch);
                ap_mat.blocked_update_par(&pk, &au_mat, &b_k, &mut scratch);
                counters.blas3_flops += 4 * sw * sw * nw;
            }
            None => {
                p_mat.copy_from(&u_mat);
                ap_mat.copy_from(&au_mat);
            }
        }
        pk.gemv_acc(&p_mat, 1.0, &a_vec, &mut x);
        pk.gemv_acc(&ap_mat, -1.0, &a_vec, &mut r);
        counters.blas2_flops += 4 * sw * nw;
        drop(update_span);

        w_prev = Some(w);
        iterations += s;
        counters.iterations += sw;
        counters.outer_iterations += 1;
    }

    SolveResult {
        x,
        outcome: final_verdict,
        iterations,
        history: stop.history,
        counters,
        collectives_per_rank: None,
        restarts: 0,
        s_schedule: Vec::new(),
        faults_absorbed: 0,
        adaptive: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::StoppingCriterion;
    use crate::pcg::pcg;
    use crate::spcg::spcg;
    use spcg_basis::BasisType;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::paper_rhs;
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn converges_for_small_s_on_easy_problem() {
        let a = poisson_2d(12);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let r_pcg = pcg(&problem, &SolveOptions::default());
        for s in [2usize, 3] {
            let res = spcg_mon(&problem, s, &SolveOptions::default());
            assert!(res.converged(), "s={s}: {:?}", res.outcome);
            let cap = ((r_pcg.iterations + s) / s) * s + 2 * s;
            assert!(
                res.iterations <= cap,
                "s={s}: {} vs PCG {}",
                res.iterations,
                r_pcg.iterations
            );
        }
    }

    #[test]
    fn agrees_with_spcg_monomial_in_easy_regime() {
        // Mathematically identical methods: on a well-conditioned problem
        // the iterates coincide to high precision.
        let a = poisson_1d(48);
        let m = Identity::new(48);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default();
        let r1 = spcg_mon(&problem, 3, &opts);
        let r2 = spcg(&problem, 3, &BasisType::Monomial, &opts);
        assert!(r1.converged() && r2.converged());
        assert_eq!(r1.iterations, r2.iterations);
        for (p, q) in r1.x.iter().zip(&r2.x) {
            assert!((p - q).abs() < 1e-7, "{p} vs {q}");
        }
    }

    #[test]
    fn moment_collective_is_2s_words() {
        let a = poisson_2d(10);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let s = 4;
        let opts = SolveOptions::default().with_criterion(StoppingCriterion::PrecondMNorm);
        let res = spcg_mon(&problem, s, &opts);
        assert!(res.converged());
        let outer = res.counters.outer_iterations;
        assert_eq!(res.counters.global_collectives, outer + 1);
        assert_eq!(res.counters.allreduce_words, 2 * s as u64 * (outer + 1));
        assert_eq!(res.counters.dot_count, 2 * s as u64 * (outer + 1));
    }

    #[test]
    fn large_s_collapses_where_pcg_succeeds() {
        use spcg_sparse::generators::random_spd::{spd_with_spectrum, SpectrumShape};
        let a = spd_with_spectrum(500, &SpectrumShape::Uniform { kappa: 1e5 }, 1.0, 3, 11);
        let m = Jacobi::new(&a);
        let b = paper_rhs(&a);
        let problem = Problem::new(&a, &m, &b);
        let opts = SolveOptions::default().with_max_iters(3000);
        assert!(pcg(&problem, &opts).converged());
        let res = spcg_mon(&problem, 10, &opts);
        assert!(
            !res.converged(),
            "monomial s=10 should fail here, got {:?}",
            res.outcome
        );
    }
}
