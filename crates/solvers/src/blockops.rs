//! Operations over a pair of multivectors viewed as one concatenated block
//! `[L | R]` — how CA-PCG handles `Y = [Q, R̂]` / `Z = [P, U]` and CA-PCG3
//! handles `[R^(k-1), W^(k)]` without materializing the concatenation.

use spcg_sparse::{DenseMat, MultiVector};

/// Gram product `[zl|zr]ᵀ·[yl|yr]` of shape
/// `(zl.k+zr.k) × (yl.k+yr.k)`.
pub fn gram_concat(
    zl: &MultiVector,
    zr: &MultiVector,
    yl: &MultiVector,
    yr: &MultiVector,
) -> DenseMat {
    let (kz1, kz2) = (zl.k(), zr.k());
    let (ky1, ky2) = (yl.k(), yr.k());
    let mut g = DenseMat::zeros(kz1 + kz2, ky1 + ky2);
    let blocks = [
        (0, 0, zl.gram(yl)),
        (0, ky1, zl.gram(yr)),
        (kz1, 0, zr.gram(yl)),
        (kz1, ky1, zr.gram(yr)),
    ];
    for (ro, co, blk) in blocks {
        for i in 0..blk.nrows() {
            for j in 0..blk.ncols() {
                g[(ro + i, co + j)] = blk[(i, j)];
            }
        }
    }
    g
}

/// `out ← [l|r]·coef` (BLAS2 over the concatenation).
///
/// # Panics
/// Panics if `coef.len() != l.k() + r.k()`.
pub fn gemv_concat(l: &MultiVector, r: &MultiVector, coef: &[f64], out: &mut [f64]) {
    assert_eq!(
        coef.len(),
        l.k() + r.k(),
        "gemv_concat: coefficient length mismatch"
    );
    l.gemv(&coef[..l.k()], out);
    r.gemv_acc(1.0, &coef[l.k()..], out);
}

/// `out ← out + a·[l|r]·coef`.
pub fn gemv_concat_acc(l: &MultiVector, r: &MultiVector, a: f64, coef: &[f64], out: &mut [f64]) {
    assert_eq!(
        coef.len(),
        l.k() + r.k(),
        "gemv_concat_acc: coefficient length mismatch"
    );
    l.gemv_acc(a, &coef[..l.k()], out);
    r.gemv_acc(a, &coef[l.k()..], out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(cols: &[&[f64]]) -> MultiVector {
        MultiVector::from_columns(&cols.iter().map(|c| c.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn gram_concat_matches_materialized() {
        let l = mv(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let r = mv(&[&[3.0, -1.0]]);
        let full = mv(&[&[1.0, 2.0], &[0.0, 1.0], &[3.0, -1.0]]);
        let g = gram_concat(&l, &r, &l, &r);
        let want = full.gram(&full);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g[(i, j)], want[(i, j)]);
            }
        }
    }

    #[test]
    fn gemv_concat_matches_materialized() {
        let l = mv(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let r = mv(&[&[1.0, 1.0]]);
        let coef = [2.0, 3.0, 4.0];
        let mut out = vec![0.0; 2];
        gemv_concat(&l, &r, &coef, &mut out);
        assert_eq!(out, vec![6.0, 7.0]);
        gemv_concat_acc(&l, &r, -1.0, &coef, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }
}
