//! Operations over a pair of multivectors viewed as one concatenated block
//! `[L | R]` — how CA-PCG handles `Y = [Q, R̂]` / `Z = [P, U]` and CA-PCG3
//! handles `[R^(k-1), W^(k)]` without materializing the concatenation.
//!
//! The Gram product is computed by the **fused** tall-skinny kernel
//! [`ParKernels::gram_cols`]: one pass over the rows fills all
//! `(kz1+kz2) × (ky1+ky2)` entries with register-blocked column tiles,
//! instead of four separate column-pair sweeps. The per-pair reduction
//! shape (blocked pairwise summation) is independent of how the columns
//! are grouped, so the fused product is bitwise identical to the four
//! sub-block Gram matrices it replaces.

use spcg_sparse::{DenseMat, MultiVector, ParKernels};

/// Gram product `[zl|zr]ᵀ·[yl|yr]` of shape
/// `(kz1+kz2) × (ky1+ky2)`, computed in one fused pass.
pub fn gram_concat(
    pk: &ParKernels,
    zl: &MultiVector,
    zr: &MultiVector,
    yl: &MultiVector,
    yr: &MultiVector,
) -> DenseMat {
    let n = zl.n();
    let zcols: Vec<&[f64]> = (0..zl.k())
        .map(|i| zl.col(i))
        .chain((0..zr.k()).map(|i| zr.col(i)))
        .collect();
    let ycols: Vec<&[f64]> = (0..yl.k())
        .map(|j| yl.col(j))
        .chain((0..yr.k()).map(|j| yr.col(j)))
        .collect();
    pk.gram_cols(n, &zcols, &ycols)
}

/// `out ← [l|r]·coef` (BLAS2 over the concatenation).
///
/// # Panics
/// Panics if `coef.len() != l.k() + r.k()`.
pub fn gemv_concat(
    pk: &ParKernels,
    l: &MultiVector,
    r: &MultiVector,
    coef: &[f64],
    out: &mut [f64],
) {
    assert_eq!(
        coef.len(),
        l.k() + r.k(),
        "gemv_concat: coefficient length mismatch"
    );
    pk.gemv(l, &coef[..l.k()], out);
    pk.gemv_acc(r, 1.0, &coef[l.k()..], out);
}

/// `out ← out + a·[l|r]·coef`.
pub fn gemv_concat_acc(
    pk: &ParKernels,
    l: &MultiVector,
    r: &MultiVector,
    a: f64,
    coef: &[f64],
    out: &mut [f64],
) {
    assert_eq!(
        coef.len(),
        l.k() + r.k(),
        "gemv_concat_acc: coefficient length mismatch"
    );
    pk.gemv_acc(l, a, &coef[..l.k()], out);
    pk.gemv_acc(r, a, &coef[l.k()..], out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(cols: &[&[f64]]) -> MultiVector {
        MultiVector::from_columns(&cols.iter().map(|c| c.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn gram_concat_matches_materialized() {
        let pk = ParKernels::serial();
        let l = mv(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let r = mv(&[&[3.0, -1.0]]);
        let full = mv(&[&[1.0, 2.0], &[0.0, 1.0], &[3.0, -1.0]]);
        let g = gram_concat(&pk, &l, &r, &l, &r);
        let want = full.gram(&full);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g[(i, j)], want[(i, j)]);
            }
        }
    }

    #[test]
    fn gram_concat_is_bitwise_identical_across_thread_counts() {
        // Long columns so the reduction spans many blocks, odd-count tail
        // included; the fused tiled kernel must agree with the serial
        // sub-block Gram products bit for bit.
        let n = 5 * 1024 + 3;
        let col = |seed: usize| -> Vec<f64> {
            (0..n)
                .map(|i| (((i * 31 + seed * 17) % 41) as f64) - 20.0)
                .collect()
        };
        let l = MultiVector::from_columns(&[col(0), col(1), col(2)]);
        let r = MultiVector::from_columns(&[col(3), col(4)]);
        let serial = gram_concat(&ParKernels::serial(), &l, &r, &l, &r);
        for t in [2usize, 4, 8] {
            let pk = ParKernels::new(t);
            let g = gram_concat(&pk, &l, &r, &l, &r);
            for i in 0..5 {
                for j in 0..5 {
                    assert_eq!(g[(i, j)], serial[(i, j)], "threads {t} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn gemv_concat_matches_materialized() {
        let pk = ParKernels::serial();
        let l = mv(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let r = mv(&[&[1.0, 1.0]]);
        let coef = [2.0, 3.0, 4.0];
        let mut out = vec![0.0; 2];
        gemv_concat(&pk, &l, &r, &coef, &mut out);
        assert_eq!(out, vec![6.0, 7.0]);
        gemv_concat_acc(&pk, &l, &r, -1.0, &coef, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }
}
