//! Rank-consensus verification for adaptive decisions.
//!
//! Every adaptive decision is computed from already-allreduced scalars, so
//! all ranks *should* decide identically — SPMD control flow. These words
//! piggyback on the next Gram allreduce to verify that invariant at run
//! time without an extra collective: each rank contributes its decision
//! plus a count of one; after the reduction, `sum == local · nranks` holds
//! (exactly, in f64 integer arithmetic) iff every rank decided the same.
//!
//! A poisoned reduction (injected NaN payload) makes the words non-finite;
//! that case is reported as [`Verdict::Poisoned`] and left to the solver's
//! breakdown/resilience path, which sees the same poison in the Gram matrix
//! itself.

/// Number of f64 words a consensus check occupies in the allreduce buffer.
pub const WORDS: usize = 3;

/// Outcome of a consensus verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All ranks decided identically.
    Agree,
    /// Decisions differed across ranks — a control-flow bug.
    Disagree,
    /// The reduction carried non-finite values (fault injection); the
    /// check is inconclusive and the caller's breakdown path owns it.
    Poisoned,
}

/// Packs this rank's decision `(s_next, rebuild)` for the allreduce.
pub fn pack(s_next: usize, rebuild: bool) -> [f64; WORDS] {
    [s_next as f64, if rebuild { 1.0 } else { 0.0 }, 1.0]
}

/// Verifies the allreduced words against this rank's own decision.
pub fn check(reduced: &[f64], s_next: usize, rebuild: bool) -> Verdict {
    assert_eq!(reduced.len(), WORDS, "consensus::check: word count");
    if reduced.iter().any(|v| !v.is_finite()) {
        return Verdict::Poisoned;
    }
    let nranks = reduced[2];
    let want = pack(s_next, rebuild);
    if reduced[0] == want[0] * nranks && reduced[1] == want[1] * nranks {
        Verdict::Agree
    } else {
        Verdict::Disagree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_across_ranks() {
        // Simulate a 4-rank allreduce: element-wise sum of identical packs.
        let mut buf = [0.0; WORDS];
        for _ in 0..4 {
            for (b, w) in buf.iter_mut().zip(pack(8, true)) {
                *b += w;
            }
        }
        assert_eq!(check(&buf, 8, true), Verdict::Agree);
        assert_eq!(check(&buf, 4, true), Verdict::Disagree);
        assert_eq!(check(&buf, 8, false), Verdict::Disagree);
    }

    #[test]
    fn single_rank_is_identity() {
        let buf = pack(5, false);
        assert_eq!(check(&buf, 5, false), Verdict::Agree);
    }

    #[test]
    fn poisoned_reduction_is_inconclusive() {
        let buf = [f64::NAN, 0.0, 2.0];
        assert_eq!(check(&buf, 3, false), Verdict::Poisoned);
    }
}
