//! Rank-consensus verification for adaptive decisions.
//!
//! Every adaptive decision is computed from already-allreduced scalars, so
//! all ranks *should* decide identically — SPMD control flow. These words
//! piggyback on the next Gram allreduce to verify that invariant at run
//! time without an extra collective: each rank contributes its decision
//! plus a count of one; after the reduction, `sum == local · nranks` holds
//! (exactly, in f64 integer arithmetic) iff every rank decided the same.
//!
//! A poisoned reduction (injected NaN payload) makes the words non-finite;
//! that case is reported as [`Verdict::Poisoned`] and left to the solver's
//! breakdown/resilience path, which sees the same poison in the Gram matrix
//! itself.

/// Number of f64 words a consensus check occupies in the allreduce buffer.
pub const WORDS: usize = 3;

/// Outcome of a consensus verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All ranks decided identically.
    Agree,
    /// Decisions differed across ranks — a control-flow bug.
    Disagree,
    /// The reduction carried non-finite values (fault injection); the
    /// check is inconclusive and the caller's breakdown path owns it.
    Poisoned,
}

/// Packs this rank's decision `(s_next, rebuild)` for the allreduce.
pub fn pack(s_next: usize, rebuild: bool) -> [f64; WORDS] {
    [s_next as f64, if rebuild { 1.0 } else { 0.0 }, 1.0]
}

/// Verifies the allreduced words against this rank's own decision.
pub fn check(reduced: &[f64], s_next: usize, rebuild: bool) -> Verdict {
    assert_eq!(reduced.len(), WORDS, "consensus::check: word count");
    if reduced.iter().any(|v| !v.is_finite()) {
        return Verdict::Poisoned;
    }
    let nranks = reduced[2];
    let want = pack(s_next, rebuild);
    if reduced[0] == want[0] * nranks && reduced[1] == want[1] * nranks {
        Verdict::Agree
    } else {
        Verdict::Disagree
    }
}

/// Number of f64 words a Gauss-Seidel sweep-count consensus check occupies.
pub const SWEEP_WORDS: usize = 3;

/// Packs this rank's Gauss-Seidel sweep counts for the two Gram solves of
/// one s-step block (`sweeps_b` for the matrix-RHS `B` system, `sweeps_a`
/// for the vector `a` system). The sweeps run on replicated post-allreduce
/// data, so every rank must count identically; like [`pack`], the third
/// word counts ranks so [`check_sweeps`] can test `sum == local · nranks`.
pub fn pack_sweeps(sweeps_b: usize, sweeps_a: usize) -> [f64; SWEEP_WORDS] {
    [sweeps_b as f64, sweeps_a as f64, 1.0]
}

/// Verifies allreduced sweep-count words against this rank's own counts.
pub fn check_sweeps(reduced: &[f64], sweeps_b: usize, sweeps_a: usize) -> Verdict {
    assert_eq!(
        reduced.len(),
        SWEEP_WORDS,
        "consensus::check_sweeps: word count"
    );
    if reduced.iter().any(|v| !v.is_finite()) {
        return Verdict::Poisoned;
    }
    let nranks = reduced[2];
    let want = pack_sweeps(sweeps_b, sweeps_a);
    if reduced[0] == want[0] * nranks && reduced[1] == want[1] * nranks {
        Verdict::Agree
    } else {
        Verdict::Disagree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_across_ranks() {
        // Simulate a 4-rank allreduce: element-wise sum of identical packs.
        let mut buf = [0.0; WORDS];
        for _ in 0..4 {
            for (b, w) in buf.iter_mut().zip(pack(8, true)) {
                *b += w;
            }
        }
        assert_eq!(check(&buf, 8, true), Verdict::Agree);
        assert_eq!(check(&buf, 4, true), Verdict::Disagree);
        assert_eq!(check(&buf, 8, false), Verdict::Disagree);
    }

    #[test]
    fn single_rank_is_identity() {
        let buf = pack(5, false);
        assert_eq!(check(&buf, 5, false), Verdict::Agree);
    }

    #[test]
    fn poisoned_reduction_is_inconclusive() {
        let buf = [f64::NAN, 0.0, 2.0];
        assert_eq!(check(&buf, 3, false), Verdict::Poisoned);
    }

    #[test]
    fn sweep_consensus_across_ranks() {
        let mut buf = [0.0; SWEEP_WORDS];
        for _ in 0..3 {
            for (b, w) in buf.iter_mut().zip(pack_sweeps(12, 7)) {
                *b += w;
            }
        }
        assert_eq!(check_sweeps(&buf, 12, 7), Verdict::Agree);
        assert_eq!(check_sweeps(&buf, 11, 7), Verdict::Disagree);
        assert_eq!(check_sweeps(&buf, 12, 8), Verdict::Disagree);
        assert_eq!(
            check_sweeps(&[f64::INFINITY, 0.0, 3.0], 12, 7),
            Verdict::Poisoned
        );
    }
}
