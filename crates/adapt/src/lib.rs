//! Adaptive-s control: spectral monitor, grow/shrink controller, and
//! dynamic basis updating for s-step PCG.
//!
//! The source paper shows that s-step stability is governed by the
//! conditioning of the computed Krylov basis, which drifts as the solve
//! progresses — yet a conventional s-step solver freezes `s` and the
//! Chebyshev/Newton shifts at setup. Carson's adaptive s-step CG
//! (*The Adaptive s-step CG Method*; *An Adaptive s-step CG Algorithm with
//! Dynamic Basis Updating*) monitors per-block observables and adjusts both
//! on the fly. This crate packages that control layer, independent of any
//! particular solver body:
//!
//! * [`SpectralMonitor`] — ingests the CG scalar coefficients `(α_i, β_i)`
//!   of every inner step and rebuilds the Lanczos tridiagonal
//!   incrementally, yielding running Ritz values for the preconditioned
//!   operator `M⁻¹A` (same construction as `spcg_basis::ritz`, but fed
//!   from the live solve instead of a warm-up run);
//! * [`SController`] — classifies each s-block from its Gram-matrix
//!   conditioning estimate and residual gap, then applies the grow/shrink
//!   rule with hysteresis, and decides when the Ritz-estimated spectral
//!   interval has drifted far enough to warrant rebuilding the basis
//!   (Chebyshev interval or Newton–Leja shifts);
//! * [`consensus`] — a tiny codec for making those decisions rank-identical
//!   through the solver's existing deterministic allreduce.
//!
//! Every decision here is a pure function of already-allreduced scalars, so
//! ranks that feed identical observables take identical decisions; the
//! consensus words exist to *verify* that invariant in distributed runs.

use spcg_basis::leja::newton_shifts;
use spcg_basis::ritz::SpectrumEstimate;
use spcg_basis::BasisType;

pub mod consensus;

/// Policy knobs for the adaptive controller (see
/// `SolveOptions::adaptive` in `spcg-solvers` for the env-var bindings).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePolicy {
    /// Smallest `s` the controller will shrink to (≥ 2: the CA-PCG
    /// coordinate space needs two inner steps).
    pub s_min: usize,
    /// Largest `s` the controller will grow to; also sizes the ghost-zone
    /// depth of distributed runs, so every block fits one exchange.
    pub s_max: usize,
    /// Gram conditioning below which a block counts as *healthy* (eligible
    /// for growth once the streak reaches `grow_patience`).
    pub cond_grow: f64,
    /// Gram conditioning above which the block is *ill-conditioned* and
    /// `s` is halved.
    pub cond_shrink: f64,
    /// Gram conditioning above which the block's coordinate arithmetic is
    /// numerically meaningless and is rejected outright (no inner steps).
    pub cond_reject: f64,
    /// Relative gap `|‖b − Ax‖ − ‖r‖| / ‖r‖` between the true and the
    /// recurrence residual above which the block is treated as
    /// ill-conditioned (only observable under the true-residual criterion).
    pub gap_tol: f64,
    /// Relative drift of the running Ritz interval past the current basis
    /// interval that triggers a basis rebuild.
    pub drift_tol: f64,
    /// Consecutive healthy blocks required before `s` is doubled — the
    /// hysteresis that keeps the controller from oscillating.
    pub grow_patience: usize,
    /// Ritz pairs required before the first basis rebuild (a monomial
    /// start is promoted as soon as this many are available).
    pub min_ritz: usize,
    /// Cap on retained `(α, β)` pairs; the leading window is kept (a
    /// leading principal submatrix of the Lanczos tridiagonal is itself a
    /// valid Lanczos matrix).
    pub max_ritz: usize,
    /// Safety widening of the Ritz interval when rebuilding a Chebyshev
    /// basis (Ritz values underestimate the spectrum's extent).
    pub margin: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            s_min: 2,
            s_max: 16,
            cond_grow: 1e4,
            // Reject at 1e10: beyond that the coordinate-space arithmetic
            // retains fewer than ~6 significant digits, and running the
            // block pollutes the search directions — skipping it (and
            // retuning) is measurably cheaper than running-then-shrinking.
            cond_shrink: 1e7,
            cond_reject: 1e10,
            gap_tol: 0.5,
            drift_tol: 0.25,
            grow_patience: 3,
            min_ritz: 6,
            max_ritz: 64,
            margin: 0.05,
        }
    }
}

impl AdaptivePolicy {
    /// Builder-style `s` range; clamps `s_min ≥ 2` and `s_max ≥ s_min`.
    pub fn with_s_range(mut self, s_min: usize, s_max: usize) -> Self {
        self.s_min = s_min.max(2);
        self.s_max = s_max.max(self.s_min);
        self
    }

    /// Builder-style conditioning thresholds (grow < shrink < reject).
    pub fn with_cond_thresholds(mut self, grow: f64, shrink: f64, reject: f64) -> Self {
        self.cond_grow = grow;
        self.cond_shrink = shrink.max(grow);
        self.cond_reject = reject.max(self.cond_shrink);
        self
    }

    /// Builder-style growth hysteresis (≥ 1 healthy blocks before growing).
    pub fn with_grow_patience(mut self, patience: usize) -> Self {
        self.grow_patience = patience.max(1);
        self
    }

    /// Builder-style Ritz drift tolerance for basis rebuilds.
    pub fn with_drift_tol(mut self, drift_tol: f64) -> Self {
        self.drift_tol = drift_tol.max(0.0);
        self
    }
}

/// Health classification of one s-block (see [`SController::classify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockHealth {
    /// Conditioning comfortably low: counts toward the growth streak.
    Healthy,
    /// Between the grow and shrink thresholds: keep `s`, reset the streak.
    Marginal,
    /// Past the shrink threshold (or the residual gap opened): halve `s`.
    IllConditioned,
    /// Past the reject threshold or non-finite: the block must not run.
    Reject,
}

/// One basis rebuild, recorded in solve results (`SolveResult::adaptive`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftUpdate {
    /// Iteration count (s-steps completed) when the rebuild happened.
    pub iteration: usize,
    /// Name of the basis *after* the rebuild (`monomial` is never a
    /// rebuild target): `"chebyshev"` or `"newton"`.
    pub basis: String,
    /// Lower end of the Ritz interval the rebuild used.
    pub lambda_min: f64,
    /// Upper end of the Ritz interval the rebuild used.
    pub lambda_max: f64,
    /// Ritz values available at rebuild time.
    pub ritz_count: usize,
}

/// Adaptive-control telemetry attached to a solve result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaptiveReport {
    /// Every basis rebuild, in order.
    pub shift_history: Vec<ShiftUpdate>,
    /// Final running Ritz values (ascending), empty if fewer than two
    /// inner steps were observed.
    pub ritz: Vec<f64>,
}

/// Running Ritz-value estimator fed by the live CG coefficients.
///
/// The CG scalars of `k` inner steps define the Lanczos tridiagonal
/// `T[i][i] = 1/α_i + β_{i−1}/α_{i−1}`, `T[i][i+1] = √β_i / α_i`, whose
/// eigenvalues approximate the spectrum of `M⁻¹A`. The monitor keeps the
/// *leading* `max_pairs` coefficients (a valid Lanczos matrix in its own
/// right) and must be [`reset`](SpectralMonitor::reset) whenever the solver
/// restarts its direction vectors — the recurrence linking the coefficients
/// breaks there.
#[derive(Debug, Clone)]
pub struct SpectralMonitor {
    alphas: Vec<f64>,
    betas: Vec<f64>,
    max_pairs: usize,
}

impl SpectralMonitor {
    /// New monitor retaining at most `max_pairs` coefficient pairs.
    pub fn new(max_pairs: usize) -> Self {
        SpectralMonitor {
            alphas: Vec::new(),
            betas: Vec::new(),
            max_pairs: max_pairs.max(2),
        }
    }

    /// Ingests one inner step's `(α, β)`. Non-finite or non-positive
    /// values are ignored (the solver's breakdown path owns those), as are
    /// observations past the retention cap.
    pub fn observe(&mut self, alpha: f64, beta: f64) {
        if !(alpha > 0.0) || !alpha.is_finite() || !(beta > 0.0) || !beta.is_finite() {
            return;
        }
        if self.alphas.len() >= self.max_pairs {
            return;
        }
        self.alphas.push(alpha);
        self.betas.push(beta);
    }

    /// Discards all recorded coefficients (direction restart).
    pub fn reset(&mut self) {
        self.alphas.clear();
        self.betas.clear();
    }

    /// Coefficient pairs recorded so far.
    pub fn pairs(&self) -> usize {
        self.alphas.len()
    }

    /// Ritz values of the current tridiagonal; `None` with fewer than two
    /// pairs (one Ritz value estimates nothing about an interval).
    pub fn ritz(&self) -> Option<SpectrumEstimate> {
        let k = self.alphas.len();
        if k < 2 {
            return None;
        }
        let mut d = Vec::with_capacity(k);
        let mut e = Vec::with_capacity(k - 1);
        for i in 0..k {
            let mut v = 1.0 / self.alphas[i];
            if i > 0 {
                v += self.betas[i - 1] / self.alphas[i - 1];
            }
            d.push(v);
            if i + 1 < k {
                e.push(self.betas[i].sqrt() / self.alphas[i]);
            }
        }
        let ritz = spcg_sparse::tridiag::eigenvalues(&d, &e);
        Some(SpectrumEstimate {
            lambda_min: ritz[0],
            lambda_max: *ritz.last().unwrap(),
            ritz,
            iterations: k,
        })
    }
}

/// The grow/shrink controller with hysteresis and dynamic basis updating.
///
/// State machine per s-block:
///
/// ```text
///            Healthy (streak == patience)            IllConditioned / Reject
/// s ────────────────────────────────▶ min(2s, s_max)       ┌──────────────▶ max(s/2, s_min)
///            Healthy (streak < patience) / Marginal: keep s┘
/// ```
///
/// and, orthogonally, a basis rebuild whenever the running Ritz interval
/// drifts outside the current basis' coverage by more than `drift_tol`
/// (monomial bases are promoted to Chebyshev as soon as `min_ritz` pairs
/// are available).
#[derive(Debug, Clone)]
pub struct SController {
    policy: AdaptivePolicy,
    s: usize,
    healthy_streak: usize,
}

impl SController {
    /// New controller starting at `s0` clamped into `[s_min, s_max]`.
    pub fn new(policy: AdaptivePolicy, s0: usize) -> Self {
        let s = s0.clamp(policy.s_min.max(2), policy.s_max.max(2));
        SController {
            policy,
            s,
            healthy_streak: 0,
        }
    }

    /// Current block size.
    pub fn s(&self) -> usize {
        self.s
    }

    /// The policy this controller runs under.
    pub fn policy(&self) -> &AdaptivePolicy {
        &self.policy
    }

    /// Classifies one block from its Gram conditioning estimate and
    /// (optional) relative residual gap.
    pub fn classify(&self, cond: f64, gap: Option<f64>) -> BlockHealth {
        if !cond.is_finite() || cond > self.policy.cond_reject {
            return BlockHealth::Reject;
        }
        let gap_bad = gap.is_some_and(|g| !g.is_finite() || g > self.policy.gap_tol);
        if cond > self.policy.cond_shrink || gap_bad {
            return BlockHealth::IllConditioned;
        }
        if cond < self.policy.cond_grow {
            BlockHealth::Healthy
        } else {
            BlockHealth::Marginal
        }
    }

    /// Applies the grow/shrink rule after a completed block; returns the
    /// next block size.
    pub fn after_block(&mut self, health: BlockHealth) -> usize {
        match health {
            BlockHealth::Healthy => {
                self.healthy_streak += 1;
                if self.healthy_streak >= self.policy.grow_patience && self.s < self.policy.s_max {
                    self.s = (self.s * 2).min(self.policy.s_max);
                    self.healthy_streak = 0;
                }
            }
            BlockHealth::Marginal => self.healthy_streak = 0,
            BlockHealth::IllConditioned | BlockHealth::Reject => {
                self.s = (self.s / 2).max(self.policy.s_min);
                self.healthy_streak = 0;
            }
        }
        self.s
    }

    /// Shrinks after a mid-block numerical breakdown; returns the next
    /// block size (unchanged when already at `s_min`).
    pub fn after_breakdown(&mut self) -> usize {
        self.healthy_streak = 0;
        self.s = (self.s / 2).max(self.policy.s_min);
        self.s
    }

    /// True when the running Ritz estimate warrants rebuilding `basis`:
    /// a monomial basis is promoted once `min_ritz` pairs exist; interval
    /// bases are rebuilt when the estimate drifts outside their coverage
    /// by more than `drift_tol` (relative).
    pub fn needs_rebuild(&self, basis: &BasisType, est: Option<&SpectrumEstimate>) -> bool {
        let Some(est) = est else { return false };
        if est.iterations < self.policy.min_ritz {
            return false;
        }
        let drift = self.policy.drift_tol;
        let outside = |lo: f64, hi: f64| {
            est.lambda_max > hi * (1.0 + drift) || est.lambda_min < lo * (1.0 - drift)
        };
        match basis {
            BasisType::Monomial => true,
            BasisType::Chebyshev {
                lambda_min,
                lambda_max,
            } => outside(*lambda_min, *lambda_max),
            BasisType::Newton { shifts } => {
                let lo = shifts.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = shifts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                shifts.is_empty() || outside(lo, hi)
            }
        }
    }

    /// Rebuilds `basis` from the Ritz estimate for block size `s_next`:
    /// monomial and Chebyshev bases become a Chebyshev basis on the
    /// (widened) Ritz interval, Newton bases get fresh Leja-ordered shifts.
    pub fn rebuild(&self, basis: &BasisType, est: &SpectrumEstimate, s_next: usize) -> BasisType {
        match basis {
            BasisType::Newton { .. } => BasisType::Newton {
                shifts: newton_shifts(&est.ritz, s_next),
            },
            _ => {
                let (lo, hi) = est.chebyshev_interval(self.policy.margin);
                BasisType::Chebyshev {
                    lambda_min: lo,
                    lambda_max: hi,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AdaptivePolicy {
        AdaptivePolicy::default().with_s_range(2, 16)
    }

    #[test]
    fn policy_builders_clamp() {
        let p = AdaptivePolicy::default().with_s_range(1, 0);
        assert_eq!(p.s_min, 2);
        assert_eq!(p.s_max, 2);
        let p = AdaptivePolicy::default().with_cond_thresholds(1e6, 1e4, 1e2);
        assert!(p.cond_grow <= p.cond_shrink && p.cond_shrink <= p.cond_reject);
        assert_eq!(
            AdaptivePolicy::default()
                .with_grow_patience(0)
                .grow_patience,
            1
        );
    }

    #[test]
    fn controller_clamps_starting_s() {
        assert_eq!(SController::new(policy(), 100).s(), 16);
        assert_eq!(SController::new(policy(), 1).s(), 2);
        assert_eq!(SController::new(policy(), 8).s(), 8);
    }

    #[test]
    fn classify_thresholds() {
        let c = SController::new(policy(), 8);
        assert_eq!(c.classify(10.0, None), BlockHealth::Healthy);
        assert_eq!(c.classify(1e6, None), BlockHealth::Marginal);
        assert_eq!(c.classify(1e10, None), BlockHealth::IllConditioned);
        assert_eq!(c.classify(1e15, None), BlockHealth::Reject);
        assert_eq!(c.classify(f64::NAN, None), BlockHealth::Reject);
        // An open residual gap is ill-conditioning even at low cond.
        assert_eq!(c.classify(10.0, Some(2.0)), BlockHealth::IllConditioned);
        assert_eq!(c.classify(10.0, Some(0.01)), BlockHealth::Healthy);
    }

    #[test]
    fn growth_needs_patience_and_shrink_resets_it() {
        let mut c = SController::new(policy().with_grow_patience(3), 4);
        assert_eq!(c.after_block(BlockHealth::Healthy), 4);
        assert_eq!(c.after_block(BlockHealth::Healthy), 4);
        assert_eq!(c.after_block(BlockHealth::Healthy), 8); // third healthy block doubles
        assert_eq!(c.after_block(BlockHealth::Healthy), 8);
        assert_eq!(c.after_block(BlockHealth::IllConditioned), 4);
        // Streak restarted: two healthy blocks are not enough again.
        assert_eq!(c.after_block(BlockHealth::Healthy), 4);
        assert_eq!(c.after_block(BlockHealth::Healthy), 4);
    }

    #[test]
    fn shrink_saturates_at_s_min() {
        let mut c = SController::new(policy(), 4);
        assert_eq!(c.after_breakdown(), 2);
        assert_eq!(c.after_breakdown(), 2);
    }

    #[test]
    fn growth_saturates_at_s_max() {
        let mut c = SController::new(policy().with_grow_patience(1), 12);
        assert_eq!(c.after_block(BlockHealth::Healthy), 16);
        assert_eq!(c.after_block(BlockHealth::Healthy), 16);
    }

    #[test]
    fn monitor_matches_warmup_construction() {
        // Feed coefficients of a known 2-eigenvalue system: CG on
        // diag(1, 3) with b having both eigencomponents converges in two
        // steps and the tridiagonal reproduces both eigenvalues.
        use spcg_basis::ritz::estimate_spectrum;
        use spcg_precond::Identity;
        use spcg_sparse::CsrMatrix;
        let a = CsrMatrix::from_diagonal(&[1.0, 3.0]);
        let est = estimate_spectrum(&a, &Identity::new(2), &[1.0, 1.0], 2);
        let mut mon = SpectralMonitor::new(64);
        // Re-derive the same (α, β) stream by running two CG steps by hand
        // is overkill; instead check the monitor agrees with the reference
        // construction when fed the same coefficients.
        // r0 = b, p0 = b: α0 = (rᵀr)/(pᵀAp) = 2/4 = 0.5
        // r1 = r0 − α0 A p0 = (0.5, −0.5): β0 = 0.25
        mon.observe(0.5, 0.25);
        // p1 = r1 + β0 p0 = (0.75, −0.25); α1 = 0.5/(0.75) = 2/3 ... the
        // exact α1 is (r1ᵀr1)/(p1ᵀAp1) = 0.5/0.75 = 2/3; β1 arbitrary > 0.
        mon.observe(2.0 / 3.0, 1e-30);
        let got = mon.ritz().unwrap();
        assert_eq!(got.ritz.len(), 2);
        assert!((got.lambda_min - est.lambda_min).abs() < 1e-9);
        assert!((got.lambda_max - est.lambda_max).abs() < 1e-9);
        assert!((got.lambda_min - 1.0).abs() < 1e-9);
        assert!((got.lambda_max - 3.0).abs() < 1e-9);
    }

    #[test]
    fn monitor_ignores_junk_and_caps() {
        let mut mon = SpectralMonitor::new(2);
        mon.observe(f64::NAN, 0.5);
        mon.observe(0.5, -1.0);
        mon.observe(0.0, 0.5);
        assert_eq!(mon.pairs(), 0);
        assert!(mon.ritz().is_none());
        mon.observe(0.5, 0.25);
        mon.observe(0.5, 0.25);
        mon.observe(0.5, 0.25); // past the cap: ignored
        assert_eq!(mon.pairs(), 2);
        mon.reset();
        assert_eq!(mon.pairs(), 0);
    }

    #[test]
    fn rebuild_promotes_monomial_to_chebyshev() {
        let c = SController::new(policy(), 8);
        let est = SpectrumEstimate {
            ritz: vec![0.1, 0.5, 1.9],
            lambda_min: 0.1,
            lambda_max: 1.9,
            iterations: 6,
        };
        assert!(c.needs_rebuild(&BasisType::Monomial, Some(&est)));
        let b = c.rebuild(&BasisType::Monomial, &est, 8);
        match b {
            BasisType::Chebyshev {
                lambda_min,
                lambda_max,
            } => {
                assert!(lambda_min < 0.1 && lambda_max > 1.9);
            }
            other => panic!("unexpected basis {other:?}"),
        }
        // Too few Ritz pairs: no rebuild yet.
        let early = SpectrumEstimate {
            iterations: 2,
            ..est.clone()
        };
        assert!(!c.needs_rebuild(&BasisType::Monomial, Some(&early)));
        assert!(!c.needs_rebuild(&BasisType::Monomial, None));
    }

    #[test]
    fn chebyshev_rebuild_only_on_drift() {
        let c = SController::new(policy(), 8);
        let covered = BasisType::Chebyshev {
            lambda_min: 0.05,
            lambda_max: 2.0,
        };
        let est = SpectrumEstimate {
            ritz: vec![0.1, 1.9],
            lambda_min: 0.1,
            lambda_max: 1.9,
            iterations: 8,
        };
        assert!(!c.needs_rebuild(&covered, Some(&est)));
        let drifted = SpectrumEstimate {
            ritz: vec![0.1, 3.0],
            lambda_min: 0.1,
            lambda_max: 3.0,
            iterations: 8,
        };
        assert!(c.needs_rebuild(&covered, Some(&drifted)));
    }

    #[test]
    fn newton_rebuild_refreshes_leja_shifts() {
        let c = SController::new(policy(), 4);
        let basis = BasisType::Newton {
            shifts: vec![1.0, 0.5, 1.5, 0.8],
        };
        let est = SpectrumEstimate {
            ritz: vec![0.2, 0.9, 2.5],
            lambda_min: 0.2,
            lambda_max: 2.5,
            iterations: 8,
        };
        assert!(c.needs_rebuild(&basis, Some(&est)));
        match c.rebuild(&basis, &est, 4) {
            BasisType::Newton { shifts } => assert_eq!(shifts.len(), 4),
            other => panic!("unexpected basis {other:?}"),
        }
    }
}
