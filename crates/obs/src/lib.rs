//! Span-based tracing and per-rank timeline observability.
//!
//! The FLOP/communication `Counters` of the solver stack say *how much*
//! work of each class a solve performed; this crate says *where the
//! wall-clock went*. A [`Tracer`] hands every rank a
//! [`Track`]; the rank opens RAII [`Span`]s (`track.span(Phase::Spmv)`)
//! around the phases of the paper's §4 cost model — SpMV, MPK levels,
//! preconditioner applies, Gram products, scalar work, vector updates —
//! plus the split-phase exchange phases (`ExchangePost`, `ExchangeWait`,
//! `Frontier`) whose relative placement shows whether the overlapped halo
//! exchange actually hides communication behind interior computation.
//!
//! Design constraints, in priority order:
//!
//! 1. **Tracing off is a no-op.** Every instrumentation site branches on
//!    an `Option`; with `None` no timestamp is taken and no allocation
//!    happens. Solver results and counters are bitwise identical with
//!    tracing on, off, or absent — spans only *observe*.
//! 2. **Recording is lock-free.** A [`Track`] owns its event buffer
//!    (single-threaded `RefCell<Vec<Event>>`); the only synchronization
//!    is one mutex acquisition when the track drains into the shared
//!    [`Tracer`] at rank exit (RAII, on drop).
//! 3. **Bounded.** Each track stops recording after a configurable event
//!    cap (default 1 M events; `SPCG_TRACE_CAP` overrides) and counts
//!    what it dropped, so tracing a long solve cannot exhaust memory.
//!
//! Two exporters read the collected tracks:
//!
//! * [`Tracer::chrome_trace_json`] — Chrome trace-event JSON (load in
//!   `chrome://tracing` or <https://ui.perfetto.dev>), one track per
//!   rank×thread (`pid` = rank, `tid` = thread), `B`/`E` duration events;
//! * [`Tracer::summary_json`] / [`Tracer::export_json`] — per-phase
//!   aggregation (count, total/min/max/mean wall-clock) with an optional
//!   caller-supplied counters object spliced in, the shape written to
//!   `results/TRACE_*.json`.
//!
//! [`validate_chrome_trace`] round-trips an export through the bundled
//! minimal JSON parser ([`json`]) and checks the `B`/`E` events of every
//! track nest and are monotone — the well-formedness check CI runs on
//! exported traces.

pub mod json;

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-track event cap (one `B` + one `E` per span).
pub const DEFAULT_EVENT_CAP: usize = 1 << 20;

/// The fixed phase taxonomy, matching the cost classes of the paper's
/// Table 1 plus the split-phase exchange schedule of the ranked engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Sparse matrix–vector product (interior rows under the overlapped
    /// schedule — the work that runs *inside* the exchange window).
    Spmv,
    /// One level (column) of the matrix powers kernel past the first
    /// product: recurrence SpMV plus basis corrections.
    MpkLevel,
    /// Preconditioner application.
    Precond,
    /// Local reduction work: dot products and Gram-matrix blocks,
    /// including the allreduce combining the partials.
    Gram,
    /// Replicated `O(s³)` scalar work (Alg. 6 coefficient systems).
    ScalarWork,
    /// Vector/block updates: AXPY, three-term recurrences, `P ← U + P·B`.
    VecUpdate,
    /// Split-phase exchange send side: publish the owned chunk.
    ExchangePost,
    /// Split-phase exchange receive completion: wait for neighbour
    /// readiness and gather the ghost runs.
    ExchangeWait,
    /// Frontier SpMV rows — the rows that had to wait for the exchange.
    Frontier,
    /// Small `s×s` solves (Cholesky with eigendecomposition fallback).
    SmallSolve,
    /// Residual-replacement restart of the resilience layer: recomputing
    /// the true residual and re-seeding the next solve stage.
    Restart,
    /// One expired wait slice inside a split-phase exchange — the
    /// timeout/retry protocol noticing a stalled neighbour and re-arming
    /// its wait.
    Retry,
    /// Sparse matrix–multivector product `Y ← A·X` of the batched solve
    /// path: one matrix stream serving every right-hand-side column.
    Spmm,
    /// Batch admission in the solve service: coalescing queued requests
    /// that share an operator fingerprint into one multi-RHS solve.
    BatchAdmit,
    /// Spectral estimation of the adaptive controller: symmetrized Gram
    /// Cholesky conditioning plus running Ritz values from the CG
    /// tridiagonal.
    SpectralEst,
    /// Mid-solve basis rebuild: recomputing the Chebyshev interval /
    /// Newton–Leja shifts and the MPK polynomial coefficients.
    BasisRebuild,
    /// Gauss-Seidel sweeps over a replicated Gram system (the CA-PCG-GS
    /// inner solve replacing the Cholesky [`Phase::SmallSolve`]).
    GramSweep,
}

impl Phase {
    /// Every phase, in export order.
    pub const ALL: [Phase; 17] = [
        Phase::Spmv,
        Phase::MpkLevel,
        Phase::Precond,
        Phase::Gram,
        Phase::ScalarWork,
        Phase::VecUpdate,
        Phase::ExchangePost,
        Phase::ExchangeWait,
        Phase::Frontier,
        Phase::SmallSolve,
        Phase::Restart,
        Phase::Retry,
        Phase::Spmm,
        Phase::BatchAdmit,
        Phase::SpectralEst,
        Phase::BasisRebuild,
        Phase::GramSweep,
    ];

    /// Stable snake_case name used in every export.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Spmv => "spmv",
            Phase::MpkLevel => "mpk_level",
            Phase::Precond => "precond",
            Phase::Gram => "gram",
            Phase::ScalarWork => "scalar_work",
            Phase::VecUpdate => "vec_update",
            Phase::ExchangePost => "exchange_post",
            Phase::ExchangeWait => "exchange_wait",
            Phase::Frontier => "frontier",
            Phase::SmallSolve => "small_solve",
            Phase::Restart => "restart",
            Phase::Retry => "retry",
            Phase::Spmm => "spmm",
            Phase::BatchAdmit => "batch_admit",
            Phase::SpectralEst => "spectral_est",
            Phase::BasisRebuild => "basis_rebuild",
            Phase::GramSweep => "gram_sweep",
        }
    }

    /// Position of this phase in [`Phase::ALL`] — the stable numeric id
    /// raw-event exports ([`Tracer::raw_tracks`]) use on the wire.
    pub fn index(self) -> usize {
        Phase::ALL.iter().position(|p| *p == self).unwrap()
    }

    /// Inverse of [`Phase::index`]; `None` for out-of-range ids.
    pub fn from_index(i: usize) -> Option<Phase> {
        Phase::ALL.get(i).copied()
    }
}

/// One recorded begin/end marker.
#[derive(Debug, Clone, Copy)]
struct Event {
    phase: Phase,
    begin: bool,
    t_ns: u64,
}

/// A drained track's raw data.
#[derive(Debug, Clone)]
struct TrackData {
    rank: usize,
    thread: usize,
    events: Vec<Event>,
    dropped: u64,
}

struct Shared {
    epoch: Instant,
    cap: usize,
    tracks: Mutex<Vec<TrackData>>,
}

/// The shared trace collector. Cheap to clone (an `Arc`); hand one to
/// `SolveOptions::trace` and read the exports back after the solve.
pub struct Tracer {
    shared: Arc<Shared>,
}

impl Clone for Tracer {
    fn clone(&self) -> Self {
        Tracer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tracks = self.shared.tracks.lock().unwrap();
        f.debug_struct("Tracer")
            .field("tracks", &tracks.len())
            .field("cap", &self.shared.cap)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh tracer with the default per-track event cap.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAP)
    }

    /// A fresh tracer capping each track at `cap` events; past the cap a
    /// track stops recording and counts what it dropped.
    pub fn with_capacity(cap: usize) -> Self {
        Tracer {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                cap: cap.max(2),
                tracks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The environment default: `Some(Tracer)` when `SPCG_TRACE` is set to
    /// anything but `0` or the empty string, with the event cap taken from
    /// `SPCG_TRACE_CAP` when that parses. `None` (tracing off) otherwise.
    pub fn from_env() -> Option<Tracer> {
        let v = std::env::var("SPCG_TRACE").ok()?;
        if v.is_empty() || v == "0" {
            return None;
        }
        let cap = std::env::var("SPCG_TRACE_CAP")
            .ok()
            .and_then(|c| c.parse::<usize>().ok())
            .unwrap_or(DEFAULT_EVENT_CAP);
        Some(Tracer::with_capacity(cap))
    }

    /// The per-track event cap this tracer was built with — forwarded to
    /// worker-process tracers so remote tracks drop at the same bound.
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }

    /// Opens the recording track of `rank` (thread 0). Must be created —
    /// and dropped — on the thread that records into it; dropping drains
    /// the buffer into the tracer.
    pub fn track(&self, rank: usize) -> Track {
        self.track_on(rank, 0)
    }

    /// Opens a track for an explicit rank×thread pair.
    pub fn track_on(&self, rank: usize, thread: usize) -> Track {
        Track {
            inner: Rc::new(TrackInner {
                rank,
                thread,
                epoch: self.shared.epoch,
                cap: self.shared.cap,
                buf: RefCell::new(Vec::new()),
                dropped: RefCell::new(0),
                shared: Arc::clone(&self.shared),
            }),
        }
    }

    /// All drained tracks, with their spans reconstructed from the
    /// begin/end events (order of recording, i.e. span-*end* order;
    /// `depth` 0 is top level). Live (undropped) tracks are not included.
    pub fn tracks(&self) -> Vec<TrackSpans> {
        let tracks = self.shared.tracks.lock().unwrap();
        tracks
            .iter()
            .map(|t| {
                let mut spans = Vec::new();
                let mut stack: Vec<(Phase, u64)> = Vec::new();
                for e in &t.events {
                    if e.begin {
                        stack.push((e.phase, e.t_ns));
                    } else {
                        let (phase, begin_ns) = stack
                            .pop()
                            .expect("unbalanced trace events: end without begin");
                        debug_assert_eq!(phase, e.phase, "unbalanced trace events");
                        spans.push(SpanRecord {
                            phase,
                            begin_s: begin_ns as f64 * 1e-9,
                            end_s: e.t_ns as f64 * 1e-9,
                            depth: stack.len(),
                        });
                    }
                }
                assert!(stack.is_empty(), "unbalanced trace events: unclosed span");
                TrackSpans {
                    rank: t.rank,
                    thread: t.thread,
                    dropped: t.dropped,
                    spans,
                }
            })
            .collect()
    }

    /// Per-phase aggregation over every drained track: span count and
    /// total/min/max/mean wall-clock (spans include their nested
    /// children's time). Phases with no spans are omitted.
    pub fn phase_summary(&self) -> Vec<PhaseSummary> {
        let mut agg: [Option<PhaseSummary>; 17] = Default::default();
        for track in self.tracks() {
            for s in &track.spans {
                let d = s.duration_s();
                let e = agg[s.phase.index()].get_or_insert(PhaseSummary {
                    phase: s.phase,
                    count: 0,
                    total_s: 0.0,
                    min_s: f64::INFINITY,
                    max_s: 0.0,
                    mean_s: 0.0,
                });
                e.count += 1;
                e.total_s += d;
                e.min_s = e.min_s.min(d);
                e.max_s = e.max_s.max(d);
            }
        }
        let mut out: Vec<PhaseSummary> = agg.into_iter().flatten().collect();
        for e in &mut out {
            e.mean_s = e.total_s / e.count as f64;
        }
        out
    }

    /// Chrome trace-event JSON (object format): one `B`/`E` pair per span,
    /// `pid` = rank, `tid` = thread, timestamps in microseconds since the
    /// tracer epoch. Loadable in `chrome://tracing` and Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let tracks = self.shared.tracks.lock().unwrap();
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&ev);
        };
        let mut named: Vec<usize> = Vec::new();
        for t in tracks.iter() {
            if !named.contains(&t.rank) {
                named.push(t.rank);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"rank {}\"}}}}",
                        t.rank, t.thread, t.rank
                    ),
                );
            }
            for e in &t.events {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":{},\"tid\":{}}}",
                        e.phase.as_str(),
                        if e.begin { 'B' } else { 'E' },
                        e.t_ns as f64 / 1e3,
                        t.rank,
                        t.thread
                    ),
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// The aggregated per-phase summary as a JSON object (no trace
    /// events). `counters_json`, when given, must be a JSON object (e.g.
    /// `Counters::to_json` from the instrumentation layer) and is spliced
    /// in verbatim as the `"counters"` field, merging the FLOP/
    /// communication counts with the wall-clock attribution.
    pub fn summary_json(&self, counters_json: Option<&str>) -> String {
        let mut out = String::from("{\n  \"phases\": [\n");
        let phases = self.phase_summary();
        for (i, p) in phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"phase\":\"{}\",\"count\":{},\"total_s\":{:.9},\"min_s\":{:.9},\"max_s\":{:.9},\"mean_s\":{:.9}}}{}\n",
                p.phase.as_str(),
                p.count,
                p.total_s,
                p.min_s,
                p.max_s,
                p.mean_s,
                if i + 1 < phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"tracks\": [\n");
        let tracks = self.tracks();
        for (i, t) in tracks.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rank\":{},\"thread\":{},\"spans\":{},\"dropped_events\":{}}}{}\n",
                t.rank,
                t.thread,
                t.spans.len(),
                t.dropped,
                if i + 1 < tracks.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"counters\": ");
        out.push_str(counters_json.unwrap_or("null"));
        out.push_str("\n}");
        out
    }

    /// Every drained track in raw event form — `(phase index, is-begin,
    /// nanoseconds since this tracer's epoch)` triples — the
    /// representation a proc-backend worker ships to its parent, which
    /// replays it with [`Tracer::import_raw`].
    pub fn raw_tracks(&self) -> Vec<RawTrack> {
        let tracks = self.shared.tracks.lock().unwrap();
        tracks
            .iter()
            .map(|t| RawTrack {
                rank: t.rank,
                thread: t.thread,
                events: t
                    .events
                    .iter()
                    .map(|e| (e.phase.index(), e.begin, e.t_ns))
                    .collect(),
                dropped: t.dropped,
            })
            .collect()
    }

    /// Imports a track recorded by *another* tracer (typically in a worker
    /// process) as a drained track of this one. Timestamps stay relative
    /// to the recording tracer's epoch — they are internally consistent
    /// per track, which is all the exports require.
    ///
    /// # Panics
    /// Panics on an unknown phase index (a wire-protocol bug).
    pub fn import_raw(&self, raw: RawTrack) {
        let events: Vec<Event> = raw
            .events
            .iter()
            .map(|&(phase, begin, t_ns)| Event {
                phase: Phase::from_index(phase).expect("import_raw: unknown phase index"),
                begin,
                t_ns,
            })
            .collect();
        if events.is_empty() && raw.dropped == 0 {
            return;
        }
        self.shared.tracks.lock().unwrap().push(TrackData {
            rank: raw.rank,
            thread: raw.thread,
            events,
            dropped: raw.dropped,
        });
    }

    /// The full export written to `results/TRACE_*.json`: the Chrome
    /// trace events plus the per-phase summary (and optional counters) in
    /// one object. Perfetto reads the `traceEvents` key and ignores the
    /// rest, so the same file serves both the timeline and the report.
    pub fn export_json(&self, counters_json: Option<&str>) -> String {
        let chrome = self.chrome_trace_json();
        // Splice the summary object before the trailing `}` of the
        // chrome object.
        let body = chrome
            .trim_end()
            .strip_suffix('}')
            .expect("chrome export is an object");
        let mut out = String::from(body);
        out.push_str(",\"summary\": ");
        out.push_str(&self.summary_json(counters_json));
        out.push_str("\n}\n");
        out
    }
}

/// One track in the raw event form of [`Tracer::raw_tracks`] /
/// [`Tracer::import_raw`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawTrack {
    /// Rank that recorded the track.
    pub rank: usize,
    /// Thread within the rank.
    pub thread: usize,
    /// `(phase index, is-begin, ns since the recording tracer's epoch)`.
    pub events: Vec<(usize, bool, u64)>,
    /// Events discarded after the track hit the event cap.
    pub dropped: u64,
}

/// A reconstructed span: phase, absolute begin/end (seconds since the
/// tracer epoch), and nesting depth (0 = top level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Phase of the span.
    pub phase: Phase,
    /// Begin time in seconds since the tracer epoch.
    pub begin_s: f64,
    /// End time in seconds since the tracer epoch.
    pub end_s: f64,
    /// Nesting depth at which the span ran (0 = top level).
    pub depth: usize,
}

impl SpanRecord {
    /// Wall-clock duration in seconds (includes nested children).
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.begin_s
    }
}

/// One drained rank×thread track with its reconstructed spans.
#[derive(Debug, Clone)]
pub struct TrackSpans {
    /// Rank that recorded the track (`pid` in the Chrome export).
    pub rank: usize,
    /// Thread within the rank (`tid` in the Chrome export).
    pub thread: usize,
    /// Events discarded after the track hit the event cap.
    pub dropped: u64,
    /// Spans in recording (end-time) order.
    pub spans: Vec<SpanRecord>,
}

impl TrackSpans {
    /// The spans of one phase, in recording order.
    pub fn phase_spans(&self, phase: Phase) -> Vec<SpanRecord> {
        self.spans
            .iter()
            .copied()
            .filter(|s| s.phase == phase)
            .collect()
    }

    /// Minimum duration among this track's spans of `phase` (the
    /// best-of-reps number benchmarks report), if any were recorded.
    pub fn min_duration_s(&self, phase: Phase) -> Option<f64> {
        self.spans
            .iter()
            .filter(|s| s.phase == phase)
            .map(SpanRecord::duration_s)
            .reduce(f64::min)
    }
}

/// Per-phase aggregate over every span of every track.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSummary {
    /// The phase.
    pub phase: Phase,
    /// Number of spans.
    pub count: u64,
    /// Summed wall-clock seconds.
    pub total_s: f64,
    /// Shortest span.
    pub min_s: f64,
    /// Longest span.
    pub max_s: f64,
    /// `total_s / count`.
    pub mean_s: f64,
}

struct TrackInner {
    rank: usize,
    thread: usize,
    epoch: Instant,
    cap: usize,
    buf: RefCell<Vec<Event>>,
    dropped: RefCell<u64>,
    shared: Arc<Shared>,
}

impl TrackInner {
    /// Records one event unless the cap is hit; returns whether it was
    /// recorded (a begin that was dropped must drop its end too, keeping
    /// the buffer balanced).
    fn record(&self, phase: Phase, begin: bool) -> bool {
        let mut buf = self.buf.borrow_mut();
        if buf.len() >= self.cap {
            *self.dropped.borrow_mut() += 1;
            return false;
        }
        buf.push(Event {
            phase,
            begin,
            t_ns: self.epoch.elapsed().as_nanos() as u64,
        });
        true
    }
}

impl Drop for TrackInner {
    fn drop(&mut self) {
        let events = std::mem::take(&mut *self.buf.borrow_mut());
        let dropped = *self.dropped.borrow();
        if events.is_empty() && dropped == 0 {
            return;
        }
        self.shared.tracks.lock().unwrap().push(TrackData {
            rank: self.rank,
            thread: self.thread,
            events,
            dropped,
        });
    }
}

/// A per-rank (per-thread) recording handle. Cheap to clone (`Rc`); all
/// clones share one buffer, which drains into the tracer when the last
/// clone drops — at rank exit.
pub struct Track {
    inner: Rc<TrackInner>,
}

impl Clone for Track {
    fn clone(&self) -> Self {
        Track {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for Track {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Track")
            .field("rank", &self.inner.rank)
            .field("thread", &self.inner.thread)
            .field("events", &self.inner.buf.borrow().len())
            .finish()
    }
}

impl Track {
    /// Opens a span of `phase`; the span ends when the guard drops.
    /// Spans nest: open another before dropping this one and the Chrome
    /// timeline shows it inside.
    pub fn span(&self, phase: Phase) -> Span {
        let recorded = self.inner.record(phase, true);
        Span {
            inner: Rc::clone(&self.inner),
            phase,
            recorded,
        }
    }
}

/// RAII span guard — see [`Track::span`].
pub struct Span {
    inner: Rc<TrackInner>,
    phase: Phase,
    recorded: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.recorded {
            // The end event must always pair the begin: bypass the cap.
            self.inner.buf.borrow_mut().push(Event {
                phase: self.phase,
                begin: false,
                t_ns: self.inner.epoch.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// The branch-on-`Option` instrumentation helper every call site uses:
/// `let _s = obs::span(track, Phase::Spmv);`. With `None` nothing happens —
/// no timestamp, no allocation.
#[inline]
pub fn span(track: Option<&Track>, phase: Phase) -> Option<Span> {
    track.map(|t| t.span(phase))
}

/// Statistics of a validated Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// `B`/`E` duration events checked.
    pub events: usize,
    /// Complete (matched) spans.
    pub spans: usize,
    /// Distinct `pid`×`tid` tracks.
    pub tracks: usize,
}

/// Round-trips a Chrome trace-event export through the bundled JSON
/// parser and checks well-formedness: a `traceEvents` array whose `B`/`E`
/// events carry `name`/`ts`/`pid`/`tid`, nest properly per track (every
/// `E` matches the innermost open `B` of the same name), close fully, and
/// have non-decreasing timestamps per track.
pub fn validate_chrome_trace(src: &str) -> Result<TraceStats, String> {
    let root = json::parse(src)?;
    let events = root
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .ok_or("missing traceEvents array")?;
    // Per-(pid, tid) open-span stacks and last timestamps.
    let mut tracks: Vec<((i64, i64), Vec<String>, f64)> = Vec::new();
    let mut stats = TraceStats {
        events: 0,
        spans: 0,
        tracks: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // metadata
        }
        if ph != "B" && ph != "E" {
            return Err(format!("event {i}: unsupported ph {ph:?}"));
        }
        let name = ev
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ts = ev
            .get("ts")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let pid = ev
            .get("pid")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))? as i64;
        let tid = ev
            .get("tid")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        let key = (pid, tid);
        let track = match tracks.iter_mut().find(|(k, _, _)| *k == key) {
            Some(t) => t,
            None => {
                tracks.push((key, Vec::new(), f64::NEG_INFINITY));
                stats.tracks += 1;
                tracks.last_mut().unwrap()
            }
        };
        if ts < track.2 {
            return Err(format!(
                "event {i}: track {key:?} timestamp {ts} decreases (last {})",
                track.2
            ));
        }
        track.2 = ts;
        match ph {
            "B" => track.1.push(name.to_string()),
            _ => {
                let open = track
                    .1
                    .pop()
                    .ok_or_else(|| format!("event {i}: E without open B on track {key:?}"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E {name:?} does not match open B {open:?} on track {key:?}"
                    ));
                }
                stats.spans += 1;
            }
        }
        stats.events += 1;
    }
    for (key, stack, _) in &tracks {
        if !stack.is_empty() {
            return Err(format!("track {key:?}: {} unclosed span(s)", stack.len()));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_reconstruct() {
        let tracer = Tracer::new();
        {
            let track = tracer.track(3);
            let _outer = track.span(Phase::MpkLevel);
            {
                let _inner = track.span(Phase::Spmv);
            }
            {
                let _inner = track.span(Phase::Precond);
            }
        }
        let tracks = tracer.tracks();
        assert_eq!(tracks.len(), 1);
        let t = &tracks[0];
        assert_eq!(t.rank, 3);
        assert_eq!(t.spans.len(), 3);
        // End order: spmv, precond, mpk_level.
        assert_eq!(t.spans[0].phase, Phase::Spmv);
        assert_eq!(t.spans[1].phase, Phase::Precond);
        assert_eq!(t.spans[2].phase, Phase::MpkLevel);
        assert_eq!(t.spans[0].depth, 1);
        assert_eq!(t.spans[2].depth, 0);
        let outer = t.spans[2];
        for inner in &t.spans[..2] {
            assert!(outer.begin_s <= inner.begin_s);
            assert!(inner.end_s <= outer.end_s);
            assert!(inner.begin_s <= inner.end_s);
        }
        // Siblings are disjoint in time.
        assert!(t.spans[0].end_s <= t.spans[1].begin_s);
    }

    #[test]
    fn none_track_records_nothing() {
        let _s = span(None, Phase::Spmv);
        let tracer = Tracer::new();
        {
            let track = tracer.track(0);
            let _s = span(Some(&track), Phase::Gram);
        }
        assert_eq!(tracer.tracks()[0].spans.len(), 1);
    }

    #[test]
    fn chrome_export_validates() {
        let tracer = Tracer::new();
        for rank in 0..2 {
            let track = tracer.track(rank);
            for _ in 0..3 {
                let _p = track.span(Phase::ExchangePost);
                drop(_p);
                let _o = track.span(Phase::Spmv);
                let _i = track.span(Phase::Frontier);
            }
        }
        let chrome = tracer.chrome_trace_json();
        let stats = validate_chrome_trace(&chrome).expect("trace must validate");
        assert_eq!(stats.tracks, 2);
        assert_eq!(stats.spans, 2 * 3 * 3);
        assert_eq!(stats.events, 2 * stats.spans);
        // The combined export keeps the trace loadable too.
        let export = tracer.export_json(Some("{\"spmv_count\": 7}"));
        let stats2 = validate_chrome_trace(&export).expect("export must validate");
        assert_eq!(stats2, stats);
        let root = json::parse(&export).unwrap();
        let counters = root.get("summary").and_then(|s| s.get("counters")).unwrap();
        assert_eq!(
            counters.get("spmv_count").and_then(json::Value::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn summary_aggregates_counts_and_bounds() {
        let tracer = Tracer::new();
        {
            let track = tracer.track(0);
            for _ in 0..5 {
                let _s = track.span(Phase::VecUpdate);
            }
        }
        let summary = tracer.phase_summary();
        assert_eq!(summary.len(), 1);
        let s = &summary[0];
        assert_eq!(s.phase, Phase::VecUpdate);
        assert_eq!(s.count, 5);
        assert!(s.min_s <= s.mean_s && s.mean_s <= s.max_s);
        assert!((s.total_s - s.mean_s * 5.0).abs() < 1e-12);
    }

    #[test]
    fn event_cap_drops_whole_spans_and_stays_balanced() {
        let tracer = Tracer::with_capacity(4);
        {
            let track = tracer.track(0);
            for _ in 0..10 {
                let _s = track.span(Phase::Spmv);
            }
        }
        let tracks = tracer.tracks();
        assert_eq!(tracks[0].spans.len(), 2); // 4-event cap = 2 spans
        assert_eq!(tracks[0].dropped, 8);
        validate_chrome_trace(&tracer.chrome_trace_json()).unwrap();
    }

    #[test]
    fn tracks_from_many_threads_collect() {
        let tracer = Tracer::new();
        std::thread::scope(|scope| {
            for rank in 0..4 {
                let tr = tracer.clone();
                scope.spawn(move || {
                    let track = tr.track(rank);
                    let _s = track.span(Phase::Gram);
                });
            }
        });
        let tracks = tracer.tracks();
        assert_eq!(tracks.len(), 4);
        let mut ranks: Vec<usize> = tracks.iter().map(|t| t.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
        validate_chrome_trace(&tracer.chrome_trace_json()).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"x\": 1}").is_err());
        // E without B.
        let bad =
            "{\"traceEvents\":[{\"name\":\"spmv\",\"ph\":\"E\",\"ts\":1,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Unclosed B.
        let bad =
            "{\"traceEvents\":[{\"name\":\"spmv\",\"ph\":\"B\",\"ts\":1,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Name mismatch.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"spmv\",\"ph\":\"B\",\"ts\":1,\"pid\":0,\"tid\":0},\
            {\"name\":\"gram\",\"ph\":\"E\",\"ts\":2,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Decreasing timestamps.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"spmv\",\"ph\":\"B\",\"ts\":5,\"pid\":0,\"tid\":0},\
            {\"name\":\"spmv\",\"ph\":\"E\",\"ts\":2,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn phase_index_roundtrips() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Phase::from_index(i), Some(*p));
        }
        assert_eq!(Phase::from_index(Phase::ALL.len()), None);
    }

    #[test]
    fn raw_tracks_roundtrip_through_import() {
        let worker = Tracer::new();
        {
            let track = worker.track_on(1, 2);
            let _o = track.span(Phase::ExchangeWait);
            let _i = track.span(Phase::Spmv);
        }
        let parent = Tracer::new();
        for raw in worker.raw_tracks() {
            parent.import_raw(raw);
        }
        let tracks = parent.tracks();
        assert_eq!(tracks.len(), 1);
        assert_eq!((tracks[0].rank, tracks[0].thread), (1, 2));
        assert_eq!(tracks[0].spans.len(), 2);
        assert_eq!(tracks[0].spans[0].phase, Phase::Spmv);
        assert_eq!(tracks[0].spans[1].phase, Phase::ExchangeWait);
        validate_chrome_trace(&parent.chrome_trace_json()).unwrap();
        // The raw form is faithful: re-exporting reproduces it.
        assert_eq!(parent.raw_tracks(), worker.raw_tracks());
    }

    #[test]
    fn from_env_parses_toggle() {
        // Only exercised when the caller's environment opts in; the
        // parsing itself is deterministic.
        match std::env::var("SPCG_TRACE") {
            Ok(v) if !v.is_empty() && v != "0" => assert!(Tracer::from_env().is_some()),
            Ok(_) => assert!(Tracer::from_env().is_none()),
            Err(_) => assert!(Tracer::from_env().is_none()),
        }
    }
}
