//! Minimal recursive-descent JSON parser used by the trace
//! well-formedness check.
//!
//! The workspace is std-only by policy, so the validator cannot lean on
//! serde; this parser supports exactly the JSON the exporters emit
//! (objects, arrays, strings with `\uXXXX` escapes, numbers, booleans,
//! null) and reports byte offsets on error. It is a validator's parser —
//! correctness and clear errors over speed.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved, duplicate keys kept last.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(format!("unterminated string at byte {}", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(format!(
                                        "lone high surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| {
                                format!("invalid \\u escape at byte {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode one multi-byte UTF-8 character from a bounded
                    // window — validating the whole remaining input per
                    // character would make string parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let ch = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                        }
                        Err(_) => None,
                    }
                    .ok_or_else(|| format!("invalid UTF-8 at byte {}", self.pos))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(format!("truncated \\u escape at byte {}", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {:?} at byte {}", text, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_f64(), Some(42.0));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(
            parse(r#""a\n\t\"\\é""#).unwrap().as_str(),
            Some("a\n\t\"\\é")
        );
        // Surrogate pair.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ux000""#).is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}, null], "d": {"e": true}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("c"));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(v.get("d").unwrap().get("e"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("'single'").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(parse("[ ]").unwrap(), Value::Array(vec![]));
    }
}
