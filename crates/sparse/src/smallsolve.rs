//! Factorizations and solves for the small (`O(s) × O(s)`) "scalar work"
//! systems of the s-step methods (eq. 12 and Alg. 6 lines 4 and 7).
//!
//! The coefficient matrices `W^(k)` are symmetric positive definite in exact
//! arithmetic but become indefinite or singular when the s-step basis loses
//! linear independence (the monomial-basis failure mode the paper studies),
//! so the solvers here report failure through [`SolveError`] instead of
//! panicking, letting the iterative solvers surface a diagnosed breakdown.

use crate::dense::DenseMat;

/// Why a small solve failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// Cholesky hit a non-positive pivot: the matrix is not numerically SPD.
    NotPositiveDefinite { pivot_index: usize },
    /// LU hit a zero pivot column: the matrix is numerically singular.
    Singular { pivot_index: usize },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotPositiveDefinite { pivot_index } => {
                write!(f, "matrix is not positive definite (pivot {pivot_index})")
            }
            SolveError::Singular { pivot_index } => {
                write!(f, "matrix is numerically singular (pivot {pivot_index})")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Cholesky factorization `A = L·Lᵀ` of a small SPD matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper part of the storage is unused).
    l: DenseMat,
}

impl Cholesky {
    /// Factors `a`; fails if a pivot is not strictly positive.
    pub fn factor(a: &DenseMat) -> Result<Self, SolveError> {
        assert_eq!(a.nrows(), a.ncols(), "Cholesky: matrix must be square");
        let n = a.nrows();
        let mut l = DenseMat::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if !(d > 0.0) || !d.is_finite() {
                return Err(SolveError::NotPositiveDefinite { pivot_index: j });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / djj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solves `A·x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "Cholesky::solve: rhs length mismatch");
        // Forward substitution L·y = b.
        for i in 0..n {
            let mut v = b[i];
            for k in 0..i {
                v -= self.l[(i, k)] * b[k];
            }
            b[i] = v / self.l[(i, i)];
        }
        // Back substitution Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut v = b[i];
            for k in (i + 1)..n {
                v -= self.l[(k, i)] * b[k];
            }
            b[i] = v / self.l[(i, i)];
        }
    }

    /// Solves `A·x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_mat(&self, b: &DenseMat) -> DenseMat {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "Cholesky::solve_mat: rhs rows mismatch");
        let mut out = DenseMat::zeros(n, b.ncols());
        let mut col = vec![0.0; n];
        for j in 0..b.ncols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_in_place(&mut col);
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        out
    }

    /// Determinant of `A` (product of squared diagonal entries of `L`).
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.dim() {
            d *= self.l[(i, i)] * self.l[(i, i)];
        }
        d
    }

    /// Crude 2-norm condition estimate from the extreme Cholesky pivots:
    /// `cond(A) ≈ (max_i L_ii / min_i L_ii)²`. Cheap and adequate for the
    /// adaptive-s heuristic, which only needs an order of magnitude.
    pub fn cond_estimate(&self) -> f64 {
        let n = self.dim();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            lo = lo.min(self.l[(i, i)]);
            hi = hi.max(self.l[(i, i)]);
        }
        let r = hi / lo;
        r * r
    }
}

/// LU factorization with partial pivoting, `P·A = L·U`, for small square
/// systems that may be indefinite (e.g. the moment matrices of sPCG_mon).
#[derive(Debug, Clone)]
pub struct Lu {
    lu: DenseMat,
    perm: Vec<usize>,
}

impl Lu {
    /// Factors `a`; fails if a pivot column is entirely (near-)zero.
    pub fn factor(a: &DenseMat) -> Result<Self, SolveError> {
        assert_eq!(a.nrows(), a.ncols(), "LU: matrix must be square");
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for j in 0..n {
            // Partial pivoting: pick the largest entry in column j.
            let mut piv = j;
            let mut best = lu[(j, j)].abs();
            for i in (j + 1)..n {
                let v = lu[(i, j)].abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if !(best > 0.0) || !best.is_finite() {
                return Err(SolveError::Singular { pivot_index: j });
            }
            if piv != j {
                perm.swap(j, piv);
                for c in 0..n {
                    let tmp = lu[(j, c)];
                    lu[(j, c)] = lu[(piv, c)];
                    lu[(piv, c)] = tmp;
                }
            }
            let d = lu[(j, j)];
            for i in (j + 1)..n {
                let m = lu[(i, j)] / d;
                lu[(i, j)] = m;
                for c in (j + 1)..n {
                    let v = lu[(j, c)];
                    lu[(i, c)] -= m * v;
                }
            }
        }
        Ok(Lu { lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "Lu::solve: rhs length mismatch");
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower triangle.
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.lu[(i, k)] * x[k];
            }
        }
        // Back substitution with upper triangle.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu[(i, k)] * x[k];
            }
            x[i] /= self.lu[(i, i)];
        }
        x
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_mat(&self, b: &DenseMat) -> DenseMat {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "Lu::solve_mat: rhs rows mismatch");
        let mut out = DenseMat::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let x = self.solve(&b.col(j));
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }
}

/// Default sweep cap for [`gauss_seidel`] / [`gauss_seidel_mat`]. Gram
/// systems of s-step methods are tiny (`O(s)²`), so a generous cap costs
/// microseconds while guaranteeing the iteration count stays bounded and
/// deterministic.
pub const GS_MAX_SWEEPS: usize = 200;

/// Default relative-residual early-exit tolerance for the Gauss-Seidel
/// Gram solves: machine epsilon, i.e. run the minimal-residual sweeps to
/// their stagnation floor. The inner solve's inexactness sets the outer
/// method's attainable accuracy floor almost linearly (an inner `1e-14`
/// leaves the outer residual plateauing ~100× above the Cholesky path), so
/// the sweeps must match direct-solve accuracy, not merely approach it;
/// the happy-breakdown exit in the accelerated core bounds the extra cost
/// at O(dim) sweeps.
pub const GS_TOL: f64 = f64::EPSILON;

/// Seeded Gauss-Seidel iteration for a small SPD system `A·x = b`.
///
/// Unlike [`Cholesky`], Gauss-Seidel has no pivot-failure mode: it converges
/// (possibly slowly) for every symmetric positive definite matrix, including
/// ones close enough to singular that Cholesky rejects them for a
/// non-positive pivot. That is exactly the breakdown class of ill-conditioned
/// s-step Gram systems, which is why the GS variant of CA-PCG survives
/// large-s monomial bases that break the Cholesky path.
///
/// Determinism contract: sweeps run in fixed row order `0..n`, the residual
/// check happens after every sweep, and the sweep count at exit is a pure
/// function of `(a, b, seed, max_sweeps, tol)` — callers operating on
/// replicated post-allreduce data therefore observe rank-identical sweep
/// counts, which the solvers verify at runtime via a consensus word.
///
/// Returns `(x, sweeps)`; `sweeps == max_sweeps` means the tolerance was not
/// met (the result may still be usable — callers judge by finiteness and the
/// outer recurrence). Fails only if a diagonal entry is zero or non-finite,
/// which makes the iteration undefined.
pub fn gauss_seidel(
    a: &DenseMat,
    b: &[f64],
    seed: Option<&[f64]>,
    max_sweeps: usize,
    tol: f64,
) -> Result<(Vec<f64>, usize), SolveError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "gauss_seidel: matrix must be square");
    assert_eq!(b.len(), n, "gauss_seidel: rhs length mismatch");
    for i in 0..n {
        let d = a[(i, i)];
        if !(d != 0.0) || !d.is_finite() {
            return Err(SolveError::Singular { pivot_index: i });
        }
    }
    let mut x = match seed {
        Some(s) => {
            assert_eq!(s.len(), n, "gauss_seidel: seed length mismatch");
            s.to_vec()
        }
        None => vec![0.0; n],
    };
    let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if bnorm == 0.0 {
        return Ok((vec![0.0; n], 0));
    }
    let mut sweeps = 0;
    while sweeps < max_sweeps {
        for i in 0..n {
            let mut v = b[i];
            for j in 0..n {
                if j != i {
                    v -= a[(i, j)] * x[j];
                }
            }
            x[i] = v / a[(i, i)];
        }
        sweeps += 1;
        let mut rn = 0.0;
        for i in 0..n {
            let mut v = b[i];
            for j in 0..n {
                v -= a[(i, j)] * x[j];
            }
            rn += v * v;
        }
        if !(rn.sqrt() > tol * bnorm) {
            break;
        }
    }
    Ok((x, sweeps))
}

/// Matrix-RHS version of [`gauss_seidel`]: all columns are swept together in
/// lockstep and the early exit fires only when *every* column's relative
/// residual meets `tol`, so the returned sweep count is a single
/// deterministic number for the whole system (one consensus word, not one
/// per column).
pub fn gauss_seidel_mat(
    a: &DenseMat,
    b: &DenseMat,
    seed: Option<&DenseMat>,
    max_sweeps: usize,
    tol: f64,
) -> Result<(DenseMat, usize), SolveError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "gauss_seidel_mat: matrix must be square");
    assert_eq!(b.nrows(), n, "gauss_seidel_mat: rhs rows mismatch");
    let k = b.ncols();
    for i in 0..n {
        let d = a[(i, i)];
        if !(d != 0.0) || !d.is_finite() {
            return Err(SolveError::Singular { pivot_index: i });
        }
    }
    let mut x = match seed {
        Some(s) => {
            assert_eq!(s.nrows(), n, "gauss_seidel_mat: seed rows mismatch");
            assert_eq!(s.ncols(), k, "gauss_seidel_mat: seed cols mismatch");
            s.clone()
        }
        None => DenseMat::zeros(n, k),
    };
    let mut bnorm = vec![0.0f64; k];
    for c in 0..k {
        for i in 0..n {
            bnorm[c] += b[(i, c)] * b[(i, c)];
        }
        bnorm[c] = bnorm[c].sqrt();
    }
    let mut sweeps = 0;
    while sweeps < max_sweeps {
        for c in 0..k {
            for i in 0..n {
                let mut v = b[(i, c)];
                for j in 0..n {
                    if j != i {
                        v -= a[(i, j)] * x[(j, c)];
                    }
                }
                x[(i, c)] = v / a[(i, i)];
            }
        }
        sweeps += 1;
        let mut all_met = true;
        for c in 0..k {
            if bnorm[c] == 0.0 {
                continue;
            }
            let mut rn = 0.0;
            for i in 0..n {
                let mut v = b[(i, c)];
                for j in 0..n {
                    v -= a[(i, j)] * x[(j, c)];
                }
                rn += v * v;
            }
            if rn.sqrt() > tol * bnorm[c] {
                all_met = false;
                break;
            }
        }
        if all_met {
            break;
        }
    }
    Ok((x, sweeps))
}

/// One symmetric Gauss-Seidel application `z = M⁻¹·r` with
/// `M = (D+L)·D⁻¹·(D+U)`: a forward triangular solve, a diagonal scale,
/// and a backward triangular solve. The caller has already validated the
/// diagonal (nonzero, finite).
fn sgs_apply(a: &DenseMat, r: &[f64]) -> Vec<f64> {
    let n = a.nrows();
    let mut u = vec![0.0f64; n];
    for i in 0..n {
        let mut v = r[i];
        for j in 0..i {
            v -= a[(i, j)] * u[j];
        }
        u[i] = v / a[(i, i)];
    }
    let mut z = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut v = a[(i, i)] * u[i];
        for j in i + 1..n {
            v -= a[(i, j)] * z[j];
        }
        z[i] = v / a[(i, i)];
    }
    z
}

/// Minimal-residual acceleration of the symmetric Gauss-Seidel sweep:
/// right-preconditioned GMRES on `a·x = b` with one [`sgs_apply`] per
/// iteration, Arnoldi via modified Gram-Schmidt, Givens-rotation QR of the
/// small Hessenberg. Updates `x` in place and returns the sweep count.
///
/// The 2-norm of the *true* residual is monotonically non-increasing by
/// construction, for every nonsingular symmetric system — including the
/// indefinite ones a corrupted Gram update produces, where a CG-style
/// acceleration loses positivity and returns garbage. That makes this the
/// factorization-free counterpart of the pivoted-LU fallback the Cholesky
/// path uses: bounded, backward-stable-grade answers on exactly the
/// systems where a pivot would fail.
fn gs_mr_core(a: &DenseMat, b: &[f64], x: &mut [f64], budget: usize, tol_abs: f64) -> usize {
    let n = a.nrows();
    let mut r = b.to_vec();
    if x.iter().any(|&v| v != 0.0) {
        let ax = a.matvec(x);
        for i in 0..n {
            r[i] -= ax[i];
        }
    }
    let rn = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if !(rn > tol_abs) || !rn.is_finite() {
        return 0;
    }
    let mut basis: Vec<Vec<f64>> = vec![r.iter().map(|v| v / rn).collect()];
    let mut dirs: Vec<Vec<f64>> = Vec::new(); // z_j = M⁻¹ v_j
    let mut h_cols: Vec<Vec<f64>> = Vec::new(); // rotated Hessenberg columns
    let mut rots: Vec<(f64, f64)> = Vec::new();
    let mut g = vec![rn];
    let mut sweeps = 0;
    while sweeps < budget {
        let j = sweeps;
        let z = sgs_apply(a, &basis[j]);
        sweeps += 1;
        let mut w = a.matvec(&z);
        dirs.push(z);
        let mut h = vec![0.0f64; j + 2];
        for (i, v) in basis.iter().enumerate() {
            let hij: f64 = w.iter().zip(v).map(|(a, b)| a * b).sum();
            h[i] = hij;
            for (wi, vi) in w.iter_mut().zip(v) {
                *wi -= hij * vi;
            }
        }
        let wn = w.iter().map(|v| v * v).sum::<f64>().sqrt();
        h[j + 1] = wn;
        // Apply the accumulated rotations, then a new one zeroing h[j+1].
        for (i, &(c, s)) in rots.iter().enumerate() {
            let (hi, hi1) = (h[i], h[i + 1]);
            h[i] = c * hi + s * hi1;
            h[i + 1] = -s * hi + c * hi1;
        }
        let denom = (h[j] * h[j] + h[j + 1] * h[j + 1]).sqrt();
        let (c, s) = if denom > 0.0 {
            (h[j] / denom, h[j + 1] / denom)
        } else {
            (1.0, 0.0)
        };
        h[j] = denom;
        h[j + 1] = 0.0;
        rots.push((c, s));
        h_cols.push(h);
        let gj = g[j];
        g[j] = c * gj;
        g.push(-s * gj);
        let res_est = g[j + 1].abs();
        let happy = !(wn > f64::EPSILON * rn);
        if !(res_est > tol_abs) || happy || !res_est.is_finite() {
            break;
        }
        basis.push(w.iter().map(|v| v / wn).collect());
    }
    // Back-substitute R·y = g over the accepted columns; a (numerically)
    // zero diagonal marks a direction GMRES exhausted — truncate it, the
    // minimal-residual property keeps the rest valid.
    let k = h_cols.len();
    let mut y = vec![0.0f64; k];
    for i in (0..k).rev() {
        let mut v = g[i];
        for (jj, yj) in y.iter().enumerate().skip(i + 1) {
            v -= h_cols[jj][i] * yj;
        }
        let d = h_cols[i][i];
        y[i] = if d.abs() > f64::EPSILON * rn {
            v / d
        } else {
            0.0
        };
    }
    for (yj, z) in y.iter().zip(&dirs) {
        if *yj != 0.0 {
            for i in 0..n {
                x[i] += yj * z[i];
            }
        }
    }
    sweeps
}

/// Seeded, conjugate-direction-accelerated symmetric Gauss-Seidel solve of
/// a small SPD system `A·x = b` — the Gram-system solver of the GS variant
/// of CA-PCG.
///
/// Plain Gauss-Seidel sweeps ([`gauss_seidel`]) converge for every SPD
/// matrix but at a rate that collapses on the nearly-singular moment
/// matrices s-step monomial bases produce — hundreds of sweeps can leave
/// the residual at `1e-2`, and that inexactness compounds through the
/// outer recurrence. This routine keeps the symmetric Gauss-Seidel sweep
/// as its only primitive but recombines the sweep directions with
/// minimal-residual coefficients (`gs_mr_core`): each iteration applies
/// one forward+backward sweep pair and the iterate is the residual-norm
/// minimizer over all sweeps so far. That restores direct-solve accuracy
/// in at most `n` sweeps in exact arithmetic while preserving everything
/// that makes the GS path robust: no factorization, no pivot-failure
/// mode, monotone residuals even on the indefinite systems round-off
/// produces near the outer method's accuracy floor, and graceful
/// (bounded, best-iterate) degradation on singular ones.
///
/// Determinism contract: identical to [`gauss_seidel`] — fixed sweep
/// order, residual early exit after every sweep, and the returned sweep
/// count is a pure function of `(a, b, seed, max_sweeps, tol)`, so
/// callers on replicated post-allreduce data observe rank-identical
/// counts (verified by the solvers via a consensus word).
///
/// Returns `(x, sweeps)` where `sweeps` counts symmetric sweep pairs
/// applied; fails only on a zero or non-finite diagonal entry.
pub fn gs_solve(
    a: &DenseMat,
    b: &[f64],
    seed: Option<&[f64]>,
    max_sweeps: usize,
    tol: f64,
) -> Result<(Vec<f64>, usize), SolveError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "gs_solve: matrix must be square");
    assert_eq!(b.len(), n, "gs_solve: rhs length mismatch");
    for i in 0..n {
        let d = a[(i, i)];
        if !(d != 0.0) || !d.is_finite() {
            return Err(SolveError::Singular { pivot_index: i });
        }
    }
    let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if bnorm == 0.0 {
        return Ok((vec![0.0; n], 0));
    }
    let mut x = match seed {
        Some(s) => {
            assert_eq!(s.len(), n, "gs_solve: seed length mismatch");
            s.to_vec()
        }
        None => vec![0.0; n],
    };
    // A non-finite seed would poison the iteration before the residual
    // check can catch it; fall back to the zero start deterministically.
    if x.iter().any(|v| !v.is_finite()) {
        x.iter_mut().for_each(|v| *v = 0.0);
    }
    let sweeps = gs_mr_core(a, b, &mut x, max_sweeps, tol * bnorm);
    Ok((x, sweeps))
}

/// Matrix-RHS version of [`gs_solve`]: columns are solved in a fixed
/// left-to-right order, each seeded from the matching column of `seed`, and
/// the returned count is the total over all columns — a single
/// deterministic number for the whole system (one consensus word, not one
/// per column).
pub fn gs_solve_mat(
    a: &DenseMat,
    b: &DenseMat,
    seed: Option<&DenseMat>,
    max_sweeps: usize,
    tol: f64,
) -> Result<(DenseMat, usize), SolveError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "gs_solve_mat: matrix must be square");
    assert_eq!(b.nrows(), n, "gs_solve_mat: rhs rows mismatch");
    let k = b.ncols();
    if let Some(s) = seed {
        assert_eq!(s.nrows(), n, "gs_solve_mat: seed rows mismatch");
        assert_eq!(s.ncols(), k, "gs_solve_mat: seed cols mismatch");
    }
    let mut out = DenseMat::zeros(n, k);
    let mut total = 0usize;
    for c in 0..k {
        let rhs = b.col(c);
        let sc = seed.map(|s| s.col(c));
        let (x, sweeps) = gs_solve(a, &rhs, sc.as_deref(), max_sweeps, tol)?;
        total += sweeps;
        for i in 0..n {
            out[(i, c)] = x[i];
        }
    }
    Ok((out, total))
}

/// Rank-revealing Cholesky with diagonal pivoting for small symmetric
/// positive *semi*-definite matrices — the `t×t` direction Grams of
/// enlarged-Krylov CG, which go numerically rank-deficient when some of the
/// `t` block directions collapse onto each other near convergence.
///
/// `P·A·Pᵀ ≈ L·Lᵀ` with `L` lower-trapezoidal of width [`rank`]. Pivots are
/// accepted while the largest remaining updated diagonal exceeds
/// `rel_eps · max_i A_ii`; the factorization never fails, it just reveals a
/// smaller rank. [`pseudo_solve`] solves on the span of the accepted pivot
/// directions and returns exact zeros for the rejected coordinates, so
/// deficient directions drop out of the recurrence instead of poisoning it.
///
/// [`rank`]: PivotedCholesky::rank
/// [`pseudo_solve`]: PivotedCholesky::pseudo_solve
#[derive(Debug, Clone)]
pub struct PivotedCholesky {
    l: DenseMat,
    perm: Vec<usize>,
    rank: usize,
    n: usize,
}

impl PivotedCholesky {
    /// Factors `a` with relative pivot threshold `rel_eps` (e.g. `1e-12`).
    pub fn factor(a: &DenseMat, rel_eps: f64) -> Self {
        let n = a.nrows();
        assert_eq!(a.ncols(), n, "PivotedCholesky: matrix must be square");
        let mut w = a.clone();
        let mut l = DenseMat::zeros(n, n);
        let mut perm: Vec<usize> = (0..n).collect();
        let mut dmax = 0.0f64;
        for i in 0..n {
            let d = w[(i, i)];
            if d.is_finite() {
                dmax = dmax.max(d.abs());
            }
        }
        let thresh = rel_eps * dmax;
        let mut rank = 0;
        for k in 0..n {
            // Largest remaining updated diagonal d_i = A_ii − Σ_j L_ij².
            let mut piv = k;
            let mut best = f64::NEG_INFINITY;
            for i in k..n {
                let mut d = w[(i, i)];
                for j in 0..k {
                    d -= l[(i, j)] * l[(i, j)];
                }
                if d > best {
                    best = d;
                    piv = i;
                }
            }
            if !(best > thresh) || !best.is_finite() {
                break;
            }
            if piv != k {
                perm.swap(k, piv);
                for c in 0..n {
                    let t = w[(k, c)];
                    w[(k, c)] = w[(piv, c)];
                    w[(piv, c)] = t;
                }
                for r in 0..n {
                    let t = w[(r, k)];
                    w[(r, k)] = w[(r, piv)];
                    w[(r, piv)] = t;
                }
                for c in 0..k {
                    let t = l[(k, c)];
                    l[(k, c)] = l[(piv, c)];
                    l[(piv, c)] = t;
                }
            }
            let dkk = best.sqrt();
            l[(k, k)] = dkk;
            for i in (k + 1)..n {
                let mut v = w[(i, k)];
                for j in 0..k {
                    v -= l[(i, j)] * l[(k, j)];
                }
                l[(i, k)] = v / dkk;
            }
            rank = k + 1;
        }
        PivotedCholesky { l, perm, rank, n }
    }

    /// Numerical rank revealed by the pivot threshold.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Whether every pivot was accepted.
    pub fn is_full_rank(&self) -> bool {
        self.rank == self.n
    }

    /// Solves `A·x = b` on the span of the accepted pivot directions;
    /// coordinates of rejected directions come back exactly zero.
    pub fn pseudo_solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "pseudo_solve: rhs length mismatch");
        let r = self.rank;
        let mut y = vec![0.0; r];
        for i in 0..r {
            let mut v = b[self.perm[i]];
            for j in 0..i {
                v -= self.l[(i, j)] * y[j];
            }
            y[i] = v / self.l[(i, i)];
        }
        for i in (0..r).rev() {
            let mut v = y[i];
            for j in (i + 1)..r {
                v -= self.l[(j, i)] * y[j];
            }
            y[i] = v / self.l[(i, i)];
        }
        let mut x = vec![0.0; self.n];
        for i in 0..r {
            x[self.perm[i]] = y[i];
        }
        x
    }

    /// Column-by-column [`Self::pseudo_solve`].
    pub fn pseudo_solve_mat(&self, b: &DenseMat) -> DenseMat {
        assert_eq!(b.nrows(), self.n, "pseudo_solve_mat: rhs rows mismatch");
        let mut out = DenseMat::zeros(self.n, b.ncols());
        for j in 0..b.ncols() {
            let x = self.pseudo_solve(&b.col(j));
            for i in 0..self.n {
                out[(i, j)] = x[i];
            }
        }
        out
    }
}

/// Convenience: solve a small SPD system, falling back to pivoted LU when the
/// matrix has lost positive definiteness to round-off. Returns `Err` only if
/// both factorizations fail, which the iterative solvers treat as breakdown.
pub fn solve_spd_with_fallback(a: &DenseMat, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    match Cholesky::factor(a) {
        Ok(ch) => Ok(ch.solve(b)),
        Err(_) => Lu::factor(a).map(|lu| lu.solve(b)),
    }
}

/// Matrix version of [`solve_spd_with_fallback`].
pub fn solve_spd_mat_with_fallback(a: &DenseMat, b: &DenseMat) -> Result<DenseMat, SolveError> {
    match Cholesky::factor(a) {
        Ok(ch) => Ok(ch.solve_mat(b)),
        Err(_) => Lu::factor(a).map(|lu| lu.solve_mat(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMat {
        DenseMat::from_row_major(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0])
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMat::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(SolveError::NotPositiveDefinite { pivot_index: 1 })
        ));
    }

    #[test]
    fn cholesky_det_and_cond() {
        let a = DenseMat::from_row_major(2, 2, vec![4.0, 0.0, 0.0, 1.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 4.0).abs() < 1e-14);
        assert!((ch.cond_estimate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lu_roundtrip_nonsymmetric() {
        let a = DenseMat::from_row_major(3, 3, vec![0.0, 2.0, 1.0, 1.0, 1.0, 0.0, 3.0, 0.0, 2.0]);
        let lu = Lu::factor(&a).unwrap();
        let b = vec![3.0, 1.0, 5.0];
        let x = lu.solve(&b);
        let ax = a.matvec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12, "residual too large: {ax:?}");
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = DenseMat::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(Lu::factor(&a), Err(SolveError::Singular { .. })));
    }

    #[test]
    fn lu_needs_pivoting() {
        // Zero leading pivot requires the row swap.
        let a = DenseMat::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = DenseMat::from_row_major(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let x = ch.solve_mat(&b);
        let ax = a.matmul(&x);
        for i in 0..3 {
            for j in 0..2 {
                assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fallback_uses_lu_for_indefinite() {
        // Symmetric indefinite: Cholesky fails, LU succeeds.
        let a = DenseMat::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve_spd_with_fallback(&a, &[1.0, 2.0]).unwrap();
        assert_eq!(x, vec![2.0, 1.0]);
    }

    #[test]
    fn gauss_seidel_matches_cholesky_on_spd() {
        let a = spd3();
        let b = vec![1.0, 2.0, 3.0];
        let want = Cholesky::factor(&a).unwrap().solve(&b);
        let (x, sweeps) = gauss_seidel(&a, &b, None, GS_MAX_SWEEPS, GS_TOL).unwrap();
        assert!(sweeps > 0 && sweeps < GS_MAX_SWEEPS);
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-10, "{x:?} vs {want:?}");
        }
    }

    #[test]
    fn gauss_seidel_is_deterministic_and_seedable() {
        let a = spd3();
        let b = vec![0.3, -1.2, 2.5];
        let (x1, s1) = gauss_seidel(&a, &b, None, GS_MAX_SWEEPS, GS_TOL).unwrap();
        let (x2, s2) = gauss_seidel(&a, &b, None, GS_MAX_SWEEPS, GS_TOL).unwrap();
        assert_eq!(x1, x2);
        assert_eq!(s1, s2);
        // Seeding with the answer converges in one residual check.
        let (x3, s3) = gauss_seidel(&a, &b, Some(&x1), GS_MAX_SWEEPS, GS_TOL).unwrap();
        assert!(s3 <= 1, "warm start took {s3} sweeps");
        for (a_, b_) in x3.iter().zip(&x1) {
            assert!((a_ - b_).abs() < 1e-12);
        }
    }

    #[test]
    fn gauss_seidel_survives_near_singular_spd() {
        // κ ≈ 1e14: Cholesky may succeed here, but push to the edge —
        // GS must stay finite and bounded regardless.
        let a = DenseMat::from_row_major(2, 2, vec![1.0, 1.0 - 5e-15, 1.0 - 5e-15, 1.0]);
        let b = vec![1.0, 1.0];
        let (x, sweeps) = gauss_seidel(&a, &b, None, 50, GS_TOL).unwrap();
        assert!(sweeps <= 50);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gauss_seidel_zero_rhs_short_circuits() {
        let a = spd3();
        let (x, sweeps) = gauss_seidel(&a, &[0.0; 3], Some(&[1.0, 2.0, 3.0]), 50, GS_TOL).unwrap();
        assert_eq!(sweeps, 0);
        assert_eq!(x, vec![0.0; 3]);
    }

    #[test]
    fn gauss_seidel_rejects_zero_diagonal() {
        let a = DenseMat::from_row_major(2, 2, vec![1.0, 1.0, 1.0, 0.0]);
        assert!(matches!(
            gauss_seidel(&a, &[1.0, 1.0], None, 10, GS_TOL),
            Err(SolveError::Singular { pivot_index: 1 })
        ));
    }

    #[test]
    fn gauss_seidel_mat_matches_vector_columns() {
        let a = spd3();
        let b = DenseMat::from_row_major(3, 2, vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.25]);
        let (x, sweeps) = gauss_seidel_mat(&a, &b, None, GS_MAX_SWEEPS, GS_TOL).unwrap();
        assert!(sweeps > 0);
        for c in 0..2 {
            let want = Cholesky::factor(&a).unwrap().solve(&b.col(c));
            for i in 0..3 {
                assert!((x[(i, c)] - want[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pivoted_cholesky_full_rank_matches_cholesky() {
        let a = spd3();
        let pc = PivotedCholesky::factor(&a, 1e-12);
        assert!(pc.is_full_rank());
        let b = vec![1.0, 2.0, 3.0];
        let want = Cholesky::factor(&a).unwrap().solve(&b);
        let x = pc.pseudo_solve(&b);
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-10);
        }
    }

    #[test]
    fn pivoted_cholesky_reveals_rank_deficiency() {
        // Rank-2 PSD: third row/col is the sum of the first two.
        let base = spd3();
        let mut a = DenseMat::zeros(3, 3);
        // v = columns [e0, e1, e0+e1] in a 2D latent space; A = VᵀGV with
        // G the 2×2 leading block of spd3.
        let g = [[base[(0, 0)], base[(0, 1)]], [base[(1, 0)], base[(1, 1)]]];
        let v = [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for p in 0..2 {
                    for q in 0..2 {
                        s += v[i][p] * g[p][q] * v[j][q];
                    }
                }
                a[(i, j)] = s;
            }
        }
        let pc = PivotedCholesky::factor(&a, 1e-10);
        assert_eq!(pc.rank(), 2);
        // Pseudo-solve of a consistent system: residual on the range is 0.
        let xtrue = vec![1.0, 2.0, 0.0];
        let b = a.matvec(&xtrue);
        let x = pc.pseudo_solve(&b);
        let ax = a.matvec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-9, "{ax:?} vs {b:?}");
        }
        // Exactly one coordinate dropped to literal zero.
        assert_eq!(x.iter().filter(|v| **v == 0.0).count(), 1);
    }

    #[test]
    fn pivoted_cholesky_zero_matrix_rank_zero() {
        let a = DenseMat::zeros(3, 3);
        let pc = PivotedCholesky::factor(&a, 1e-12);
        assert_eq!(pc.rank(), 0);
        assert_eq!(pc.pseudo_solve(&[1.0, 2.0, 3.0]), vec![0.0; 3]);
    }
}
