//! Factorizations and solves for the small (`O(s) × O(s)`) "scalar work"
//! systems of the s-step methods (eq. 12 and Alg. 6 lines 4 and 7).
//!
//! The coefficient matrices `W^(k)` are symmetric positive definite in exact
//! arithmetic but become indefinite or singular when the s-step basis loses
//! linear independence (the monomial-basis failure mode the paper studies),
//! so the solvers here report failure through [`SolveError`] instead of
//! panicking, letting the iterative solvers surface a diagnosed breakdown.

use crate::dense::DenseMat;

/// Why a small solve failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// Cholesky hit a non-positive pivot: the matrix is not numerically SPD.
    NotPositiveDefinite { pivot_index: usize },
    /// LU hit a zero pivot column: the matrix is numerically singular.
    Singular { pivot_index: usize },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotPositiveDefinite { pivot_index } => {
                write!(f, "matrix is not positive definite (pivot {pivot_index})")
            }
            SolveError::Singular { pivot_index } => {
                write!(f, "matrix is numerically singular (pivot {pivot_index})")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Cholesky factorization `A = L·Lᵀ` of a small SPD matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper part of the storage is unused).
    l: DenseMat,
}

impl Cholesky {
    /// Factors `a`; fails if a pivot is not strictly positive.
    pub fn factor(a: &DenseMat) -> Result<Self, SolveError> {
        assert_eq!(a.nrows(), a.ncols(), "Cholesky: matrix must be square");
        let n = a.nrows();
        let mut l = DenseMat::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if !(d > 0.0) || !d.is_finite() {
                return Err(SolveError::NotPositiveDefinite { pivot_index: j });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / djj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solves `A·x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "Cholesky::solve: rhs length mismatch");
        // Forward substitution L·y = b.
        for i in 0..n {
            let mut v = b[i];
            for k in 0..i {
                v -= self.l[(i, k)] * b[k];
            }
            b[i] = v / self.l[(i, i)];
        }
        // Back substitution Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut v = b[i];
            for k in (i + 1)..n {
                v -= self.l[(k, i)] * b[k];
            }
            b[i] = v / self.l[(i, i)];
        }
    }

    /// Solves `A·x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_mat(&self, b: &DenseMat) -> DenseMat {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "Cholesky::solve_mat: rhs rows mismatch");
        let mut out = DenseMat::zeros(n, b.ncols());
        let mut col = vec![0.0; n];
        for j in 0..b.ncols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_in_place(&mut col);
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        out
    }

    /// Determinant of `A` (product of squared diagonal entries of `L`).
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.dim() {
            d *= self.l[(i, i)] * self.l[(i, i)];
        }
        d
    }

    /// Crude 2-norm condition estimate from the extreme Cholesky pivots:
    /// `cond(A) ≈ (max_i L_ii / min_i L_ii)²`. Cheap and adequate for the
    /// adaptive-s heuristic, which only needs an order of magnitude.
    pub fn cond_estimate(&self) -> f64 {
        let n = self.dim();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            lo = lo.min(self.l[(i, i)]);
            hi = hi.max(self.l[(i, i)]);
        }
        let r = hi / lo;
        r * r
    }
}

/// LU factorization with partial pivoting, `P·A = L·U`, for small square
/// systems that may be indefinite (e.g. the moment matrices of sPCG_mon).
#[derive(Debug, Clone)]
pub struct Lu {
    lu: DenseMat,
    perm: Vec<usize>,
}

impl Lu {
    /// Factors `a`; fails if a pivot column is entirely (near-)zero.
    pub fn factor(a: &DenseMat) -> Result<Self, SolveError> {
        assert_eq!(a.nrows(), a.ncols(), "LU: matrix must be square");
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for j in 0..n {
            // Partial pivoting: pick the largest entry in column j.
            let mut piv = j;
            let mut best = lu[(j, j)].abs();
            for i in (j + 1)..n {
                let v = lu[(i, j)].abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if !(best > 0.0) || !best.is_finite() {
                return Err(SolveError::Singular { pivot_index: j });
            }
            if piv != j {
                perm.swap(j, piv);
                for c in 0..n {
                    let tmp = lu[(j, c)];
                    lu[(j, c)] = lu[(piv, c)];
                    lu[(piv, c)] = tmp;
                }
            }
            let d = lu[(j, j)];
            for i in (j + 1)..n {
                let m = lu[(i, j)] / d;
                lu[(i, j)] = m;
                for c in (j + 1)..n {
                    let v = lu[(j, c)];
                    lu[(i, c)] -= m * v;
                }
            }
        }
        Ok(Lu { lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "Lu::solve: rhs length mismatch");
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower triangle.
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.lu[(i, k)] * x[k];
            }
        }
        // Back substitution with upper triangle.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu[(i, k)] * x[k];
            }
            x[i] /= self.lu[(i, i)];
        }
        x
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_mat(&self, b: &DenseMat) -> DenseMat {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "Lu::solve_mat: rhs rows mismatch");
        let mut out = DenseMat::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let x = self.solve(&b.col(j));
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }
}

/// Convenience: solve a small SPD system, falling back to pivoted LU when the
/// matrix has lost positive definiteness to round-off. Returns `Err` only if
/// both factorizations fail, which the iterative solvers treat as breakdown.
pub fn solve_spd_with_fallback(a: &DenseMat, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    match Cholesky::factor(a) {
        Ok(ch) => Ok(ch.solve(b)),
        Err(_) => Lu::factor(a).map(|lu| lu.solve(b)),
    }
}

/// Matrix version of [`solve_spd_with_fallback`].
pub fn solve_spd_mat_with_fallback(a: &DenseMat, b: &DenseMat) -> Result<DenseMat, SolveError> {
    match Cholesky::factor(a) {
        Ok(ch) => Ok(ch.solve_mat(b)),
        Err(_) => Lu::factor(a).map(|lu| lu.solve_mat(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMat {
        DenseMat::from_row_major(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0])
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMat::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(SolveError::NotPositiveDefinite { pivot_index: 1 })
        ));
    }

    #[test]
    fn cholesky_det_and_cond() {
        let a = DenseMat::from_row_major(2, 2, vec![4.0, 0.0, 0.0, 1.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 4.0).abs() < 1e-14);
        assert!((ch.cond_estimate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lu_roundtrip_nonsymmetric() {
        let a = DenseMat::from_row_major(3, 3, vec![0.0, 2.0, 1.0, 1.0, 1.0, 0.0, 3.0, 0.0, 2.0]);
        let lu = Lu::factor(&a).unwrap();
        let b = vec![3.0, 1.0, 5.0];
        let x = lu.solve(&b);
        let ax = a.matvec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12, "residual too large: {ax:?}");
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = DenseMat::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(Lu::factor(&a), Err(SolveError::Singular { .. })));
    }

    #[test]
    fn lu_needs_pivoting() {
        // Zero leading pivot requires the row swap.
        let a = DenseMat::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = DenseMat::from_row_major(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let x = ch.solve_mat(&b);
        let ax = a.matmul(&x);
        for i in 0..3 {
            for j in 0..2 {
                assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fallback_uses_lu_for_indefinite() {
        // Symmetric indefinite: Cholesky fails, LU succeeds.
        let a = DenseMat::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve_spd_with_fallback(&a, &[1.0, 2.0]).unwrap();
        assert_eq!(x, vec![2.0, 1.0]);
    }
}
