//! Column-major dense block of vectors (an `n × k` "multivector").
//!
//! The s-step methods replace standard PCG's BLAS1 vector operations by
//! operations on blocks of `O(s)` vectors of length `n`: Gram products
//! (`Uᵀ·S`, one global reduction), blocked search-direction updates
//! (`P ← U + P·B`, BLAS3), and basis-times-small-vector products (BLAS2).
//! [`MultiVector`] provides these kernels with row-blocked loops so that the
//! large dimension streams through cache once per operation.

use crate::blas;
use crate::dense::DenseMat;
use crate::par::ParKernels;

/// Row-block size for the blocked kernels. 1024 doubles = 8 KiB per column
/// slice, so a handful of columns fit in L1 alongside the output block.
const ROW_BLOCK: usize = 1024;

// The parallel kernel layer reuses these row blocks as its reduction blocks;
// the fixed pairwise shape only lines up if the two sizes agree.
const _: () = assert!(ROW_BLOCK == blas::REDUCE_BLOCK);

/// A dense `n × k` matrix stored column-major, viewed as `k` vectors of
/// length `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVector {
    n: usize,
    k: usize,
    data: Vec<f64>,
}

impl MultiVector {
    /// The `n × k` zero multivector.
    pub fn zeros(n: usize, k: usize) -> Self {
        MultiVector {
            n,
            k,
            data: vec![0.0; n * k],
        }
    }

    /// Builds from `k` column vectors.
    ///
    /// # Panics
    /// Panics if the columns have differing lengths.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        let k = cols.len();
        let n = cols.first().map_or(0, Vec::len);
        let mut mv = MultiVector::zeros(n, k);
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), n, "from_columns: column {j} has wrong length");
            mv.col_mut(j).copy_from_slice(c);
        }
        mv
    }

    /// Vector length (number of rows).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of columns.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.k);
        &self.data[j * self.n..(j + 1) * self.n]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.k);
        &mut self.data[j * self.n..(j + 1) * self.n]
    }

    /// Two distinct columns, the second mutable — used by the matrix powers
    /// kernel which writes column `j+1` from column `j`.
    pub fn col_pair_mut(&mut self, read: usize, write: usize) -> (&[f64], &mut [f64]) {
        assert_ne!(read, write, "col_pair_mut: indices must differ");
        assert!(
            read < self.k && write < self.k,
            "col_pair_mut: index out of bounds"
        );
        let n = self.n;
        if read < write {
            let (a, b) = self.data.split_at_mut(write * n);
            (&a[read * n..read * n + n], &mut b[..n])
        } else {
            let (a, b) = self.data.split_at_mut(read * n);
            (&b[..n], &mut a[write * n..write * n + n])
        }
    }

    /// Splits the storage at column `write`: returns the concatenated
    /// columns `0..write` (read-only, column-major contiguous) together with
    /// column `write` mutable. Used by the cache-fused matrix powers kernel,
    /// which reads columns `j` and `j-1` while writing column `j+1`.
    pub fn split_at_col_mut(&mut self, write: usize) -> (&[f64], &mut [f64]) {
        assert!(write < self.k, "split_at_col_mut: index out of bounds");
        let n = self.n;
        let (head, tail) = self.data.split_at_mut(write * n);
        (head, &mut tail[..n])
    }

    /// Sets every entry to zero.
    pub fn fill_zero(&mut self) {
        blas::zero(&mut self.data);
    }

    /// Copies all columns from `other` (same shape).
    pub fn copy_from(&mut self, other: &MultiVector) {
        assert_eq!(self.n, other.n, "copy_from: row mismatch");
        assert_eq!(self.k, other.k, "copy_from: col mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Gram product `selfᵀ · other` (`k_self × k_other`).
    ///
    /// This is the local part of the single global reduction of the s-step
    /// methods: each rank computes the Gram block of its rows and the blocks
    /// are summed across ranks. Per entry the accumulation is the fixed-
    /// shape blocked pairwise reduction of [`crate::blas`], so the threaded
    /// Gram of [`ParKernels`] reproduces this serial result bitwise.
    pub fn gram(&self, other: &MultiVector) -> DenseMat {
        assert_eq!(self.n, other.n, "gram: row mismatch");
        let acols: Vec<&[f64]> = (0..self.k).map(|i| self.col(i)).collect();
        let bcols: Vec<&[f64]> = (0..other.k).map(|j| other.col(j)).collect();
        crate::par::gram_cols_impl(None, self.n, &acols, &bcols)
    }

    /// Gram product against a single vector: `selfᵀ · x` (length `k`).
    pub fn gram_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "gram_vec: length mismatch");
        (0..self.k).map(|j| blas::dot(self.col(j), x)).collect()
    }

    /// BLAS2 product `out ← self · coeffs` (`n`-vector from `k` coefficients).
    pub fn gemv(&self, coeffs: &[f64], out: &mut [f64]) {
        assert_eq!(coeffs.len(), self.k, "gemv: coefficient length mismatch");
        assert_eq!(out.len(), self.n, "gemv: output length mismatch");
        blas::zero(out);
        self.gemv_acc(1.0, coeffs, out);
    }

    /// `out ← out + a · self · coeffs`.
    pub fn gemv_acc(&self, a: f64, coeffs: &[f64], out: &mut [f64]) {
        assert_eq!(
            coeffs.len(),
            self.k,
            "gemv_acc: coefficient length mismatch"
        );
        assert_eq!(out.len(), self.n, "gemv_acc: output length mismatch");
        let mut row = 0;
        while row < self.n {
            let hi = (row + ROW_BLOCK).min(self.n);
            self.gemv_acc_block(a, coeffs, row, &mut out[row..hi]);
            row = hi;
        }
    }

    /// One row block of [`MultiVector::gemv_acc`]: accumulates rows
    /// `row..row + out_block.len()` into `out_block`. The parallel layer
    /// dispatches these blocks across threads; the arithmetic per row is
    /// identical either way.
    pub(crate) fn gemv_acc_block(&self, a: f64, coeffs: &[f64], row: usize, out_block: &mut [f64]) {
        let hi = row + out_block.len();
        for j in 0..self.k {
            let c = a * coeffs[j];
            if c == 0.0 {
                continue;
            }
            let col = &self.col(j)[row..hi];
            for (oi, &ci) in out_block.iter_mut().zip(col) {
                *oi += c * ci;
            }
        }
    }

    /// BLAS3 product `out ← self · b` where `b` is `k_self × k_out`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn gemm_small(&self, b: &DenseMat, out: &mut MultiVector) {
        assert_eq!(b.nrows(), self.k, "gemm_small: inner dimension mismatch");
        assert_eq!(out.n, self.n, "gemm_small: output rows mismatch");
        assert_eq!(out.k, b.ncols(), "gemm_small: output cols mismatch");
        out.fill_zero();
        self.gemm_small_acc(b, out);
    }

    /// `out ← out + self · b`.
    pub fn gemm_small_acc(&self, b: &DenseMat, out: &mut MultiVector) {
        assert_eq!(
            b.nrows(),
            self.k,
            "gemm_small_acc: inner dimension mismatch"
        );
        assert_eq!(out.n, self.n, "gemm_small_acc: output rows mismatch");
        assert_eq!(out.k, b.ncols(), "gemm_small_acc: output cols mismatch");
        let n = self.n;
        let mut row = 0;
        while row < n {
            let hi = (row + ROW_BLOCK).min(n);
            for j in 0..b.ncols() {
                // Output column j accumulates Σ_l self_l · b[l][j] over this
                // row block. We slice the output column once per l to satisfy
                // the borrow checker without copying.
                for l in 0..self.k {
                    let c = b[(l, j)];
                    if c == 0.0 {
                        continue;
                    }
                    let src_ptr = l * n + row;
                    let dst_ptr = j * n + row;
                    for i in 0..hi - row {
                        out.data[dst_ptr + i] += c * self.data[src_ptr + i];
                    }
                }
            }
            row = hi;
        }
    }

    /// Blocked search-direction update `self ← u + self · b` (Alg. 5 line 10
    /// and Alg. 2 line 9). Uses `scratch` (same shape) as the output buffer
    /// and swaps, so no allocation happens per iteration.
    pub fn blocked_update(&mut self, u: &MultiVector, b: &DenseMat, scratch: &mut MultiVector) {
        assert_eq!(u.n, self.n, "blocked_update: row mismatch");
        assert_eq!(u.k, b.ncols(), "blocked_update: u/b mismatch");
        assert_eq!(b.nrows(), self.k, "blocked_update: self/b mismatch");
        assert_eq!(scratch.n, self.n, "blocked_update: scratch rows mismatch");
        assert_eq!(scratch.k, u.k, "blocked_update: scratch cols mismatch");
        scratch.copy_from(u);
        self.gemm_small_acc(b, scratch);
        std::mem::swap(&mut self.data, &mut scratch.data);
        std::mem::swap(&mut self.k, &mut scratch.k);
    }

    /// Threaded [`MultiVector::blocked_update`]: same arithmetic, with the
    /// BLAS3 accumulation row-partitioned over the kernel layer. Bitwise
    /// equal to the serial update for any thread count.
    pub fn blocked_update_par(
        &mut self,
        pk: &ParKernels,
        u: &MultiVector,
        b: &DenseMat,
        scratch: &mut MultiVector,
    ) {
        assert_eq!(u.n, self.n, "blocked_update: row mismatch");
        assert_eq!(u.k, b.ncols(), "blocked_update: u/b mismatch");
        assert_eq!(b.nrows(), self.k, "blocked_update: self/b mismatch");
        assert_eq!(scratch.n, self.n, "blocked_update: scratch rows mismatch");
        assert_eq!(scratch.k, u.k, "blocked_update: scratch cols mismatch");
        scratch.copy_from(u);
        pk.gemm_small_acc(self, b, scratch);
        std::mem::swap(&mut self.data, &mut scratch.data);
        std::mem::swap(&mut self.k, &mut scratch.k);
    }

    /// Raw column-major storage (parallel kernel layer only).
    #[inline]
    pub(crate) fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw column-major storage, mutable (parallel kernel layer only).
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A view of the first `k` columns (cheap clone of the header, shared
    /// data copied). Used to form `R^(k)` from `S^(k)`.
    pub fn head_columns(&self, k: usize) -> MultiVector {
        assert!(k <= self.k, "head_columns: too many columns requested");
        MultiVector {
            n: self.n,
            k,
            data: self.data[..self.n * k].to_vec(),
        }
    }

    /// Maximum absolute entry across all columns.
    pub fn norm_max(&self) -> f64 {
        blas::norm_inf(&self.data)
    }

    /// Returns `true` if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        blas::has_non_finite(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(cols: &[&[f64]]) -> MultiVector {
        MultiVector::from_columns(&cols.iter().map(|c| c.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn gram_matches_naive() {
        let a = mv(&[&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.0]]);
        let b = mv(&[&[1.0, 1.0, 1.0], &[2.0, 0.0, -1.0], &[0.0, 0.0, 1.0]]);
        let g = a.gram(&b);
        assert_eq!(g.nrows(), 2);
        assert_eq!(g.ncols(), 3);
        assert_eq!(g[(0, 0)], 6.0);
        assert_eq!(g[(0, 1)], -1.0);
        assert_eq!(g[(0, 2)], 3.0);
        assert_eq!(g[(1, 0)], 1.0);
        assert_eq!(g[(1, 1)], 0.0);
        assert_eq!(g[(1, 2)], 0.0);
    }

    #[test]
    fn gram_blocked_matches_unblocked_long() {
        // Length > ROW_BLOCK so the blocking path is exercised.
        let n = ROW_BLOCK * 2 + 17;
        let c0: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let c1: Vec<f64> = (0..n).map(|i| ((i * 3 % 5) as f64) - 2.0).collect();
        let a = MultiVector::from_columns(&[c0.clone(), c1.clone()]);
        let g = a.gram(&a);
        assert!((g[(0, 1)] - crate::blas::dot(&c0, &c1)).abs() < 1e-9);
        assert!((g[(0, 1)] - g[(1, 0)]).abs() < 1e-12);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = mv(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let mut out = vec![0.0; 2];
        a.gemv(&[2.0, 3.0, -1.0], &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn gemm_small_matches_column_combination() {
        let a = mv(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMat::from_row_major(2, 2, vec![1.0, 0.0, 1.0, 1.0]);
        let mut out = MultiVector::zeros(2, 2);
        a.gemm_small(&b, &mut out);
        // out col0 = col0 + col1, out col1 = col1.
        assert_eq!(out.col(0), &[4.0, 6.0]);
        assert_eq!(out.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn blocked_update_is_u_plus_pb() {
        let mut p = mv(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let u = mv(&[&[10.0, 10.0], &[20.0, 20.0]]);
        let b = DenseMat::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut scratch = MultiVector::zeros(2, 2);
        p.blocked_update(&u, &b, &mut scratch);
        // col0 = u0 + 1*p0 + 3*p1 = [10,10] + [1,0] + [0,3] = [11,13]
        assert_eq!(p.col(0), &[11.0, 13.0]);
        // col1 = u1 + 2*p0 + 4*p1 = [20,20] + [2,0] + [0,4] = [22,24]
        assert_eq!(p.col(1), &[22.0, 24.0]);
    }

    #[test]
    fn col_pair_mut_both_orders() {
        let mut a = mv(&[&[1.0, 2.0], &[3.0, 4.0]]);
        {
            let (r, w) = a.col_pair_mut(0, 1);
            w[0] = r[0] * 10.0;
        }
        assert_eq!(a.col(1)[0], 10.0);
        {
            let (r, w) = a.col_pair_mut(1, 0);
            w[1] = r[1] * 2.0;
        }
        assert_eq!(a.col(0)[1], 8.0);
    }

    #[test]
    fn head_columns_truncates() {
        let a = mv(&[&[1.0], &[2.0], &[3.0]]);
        let h = a.head_columns(2);
        assert_eq!(h.k(), 2);
        assert_eq!(h.col(1), &[2.0]);
    }

    #[test]
    fn gram_vec_matches_gram() {
        let a = mv(&[&[1.0, 2.0], &[0.5, -1.0]]);
        let x = vec![2.0, 2.0];
        let gv = a.gram_vec(&x);
        assert_eq!(gv, vec![6.0, -1.0]);
    }
}
