//! Dense BLAS1-style kernels on `&[f64]` slices.
//!
//! These are the primitive vector operations from which both standard PCG
//! (BLAS1-bound) and the blocked s-step updates are built. They are written
//! so the auto-vectorizer produces tight SIMD loops: plain indexed loops over
//! equal-length slices with the bounds checked once up front.

/// Dot product `x · y`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Accumulate in four independent lanes so the FP adds do not form a
    // single serial dependency chain; the compiler turns this into SIMD.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Squared Euclidean norm `‖x‖²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// `y ← y + a·x` (the classic axpy).
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// `y ← x + b·y` (xpby), used for search-direction updates `p ← u + β·p`.
#[inline]
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for i in 0..x.len() {
        y[i] = x[i] + b * y[i];
    }
}

/// `z ← x - y` elementwise.
#[inline]
pub fn sub(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    assert_eq!(x.len(), z.len(), "sub: output length mismatch");
    for i in 0..x.len() {
        z[i] = x[i] - y[i];
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// Copy `src` into `dst`.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Set every entry of `x` to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = 0.0;
    }
}

/// Three-term linear combination `out ← a·x + b·y + c·z`, the core update of
/// the three-term recurrence solvers (PCG3, CA-PCG3).
#[inline]
pub fn lincomb3(a: f64, x: &[f64], b: f64, y: &[f64], c: f64, z: &[f64], out: &mut [f64]) {
    let n = out.len();
    assert!(
        x.len() == n && y.len() == n && z.len() == n,
        "lincomb3: length mismatch"
    );
    for i in 0..n {
        out[i] = a * x[i] + b * y[i] + c * z[i];
    }
}

/// Maximum absolute entry `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Returns `true` if any entry is NaN or infinite — used by the solvers'
/// divergence detection.
#[inline]
pub fn has_non_finite(x: &[f64]) -> bool {
    x.iter().any(|v| !v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..103).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64).cos()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12 * naive.abs().max(1.0));
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_short_vectors() {
        // Lengths below the unroll width exercise the tail loop alone.
        for n in 0..8 {
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let expected: f64 = x.iter().map(|v| v * v).sum();
            assert_eq!(dot(&x, &x), expected);
        }
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn xpby_basic() {
        let x = [1.0, 1.0];
        let mut y = [2.0, 4.0];
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, [2.0, 3.0]);
    }

    #[test]
    fn lincomb3_basic() {
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        let z = [1.0, 1.0];
        let mut out = [0.0, 0.0];
        lincomb3(2.0, &x, 3.0, &y, -1.0, &z, &mut out);
        assert_eq!(out, [1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!has_non_finite(&[1.0, 2.0]));
        assert!(has_non_finite(&[1.0, f64::NAN]));
        assert!(has_non_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
