//! Dense BLAS1-style kernels on `&[f64]` slices.
//!
//! These are the primitive vector operations from which both standard PCG
//! (BLAS1-bound) and the blocked s-step updates are built. They are written
//! so the auto-vectorizer produces tight SIMD loops: plain indexed loops over
//! equal-length slices with the bounds checked once up front.
//!
//! # Reduction shape
//!
//! Every dot-product-style reduction uses a *fixed-shape* blocked pairwise
//! summation: the input is cut into [`REDUCE_BLOCK`]-sized blocks, each block
//! is reduced by the four-lane kernel [`dot_block`], and the per-block
//! partials are combined by [`pairwise_sum`]. The shape depends only on the
//! vector length — never on who computes which block — so the threaded
//! reducer in [`crate::par`] produces bitwise-identical results for any
//! thread count, and the ranked-vs-serial parity tests stay meaningful.
//! Pairwise combination also carries an `O(log n)` error bound versus the
//! `O(n)` of naive left-to-right accumulation, which matters for the ill-
//! conditioned Gram systems of the s-step methods.

/// Reduction block size (entries) of the fixed-shape blocked summation.
///
/// Matches the row-block size of the `MultiVector` Gram/update kernels so a
/// single schedule serves both. Vectors no longer than this reduce in one
/// [`dot_block`] call.
pub const REDUCE_BLOCK: usize = 1024;

/// Dot product of one block, `x · y`, accumulated in four independent lanes
/// so the FP adds do not form a single serial dependency chain; the compiler
/// turns this into SIMD. This is the per-block kernel of the fixed-shape
/// reduction — the threaded reducer calls it on exactly the same blocks.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn dot_block(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// In-place pairwise reduction of a partial-sum array; returns the total.
///
/// Repeatedly halves the array by adding adjacent pairs (`v[2i] + v[2i+1]`),
/// carrying an odd trailing element unchanged. The association shape is a
/// function of `len()` alone, which is what makes the blocked reduction
/// independent of the thread count that produced the partials.
#[inline]
pub fn pairwise_sum(v: &mut [f64]) -> f64 {
    let mut m = v.len();
    if m == 0 {
        return 0.0;
    }
    while m > 1 {
        let half = m / 2;
        for i in 0..half {
            v[i] = v[2 * i] + v[2 * i + 1];
        }
        if m % 2 == 1 {
            v[half] = v[m - 1];
            m = half + 1;
        } else {
            m = half;
        }
    }
    v[0]
}

/// Dot product `x · y` with fixed-shape blocked pairwise accumulation.
///
/// For `x.len() <= REDUCE_BLOCK` this is a single [`dot_block`] call; longer
/// vectors reduce block-by-block with the partials combined by
/// [`pairwise_sum`]. The result is bitwise identical to the threaded
/// reduction at any thread count.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let n = x.len();
    if n <= REDUCE_BLOCK {
        return dot_block(x, y);
    }
    let mut partials: Vec<f64> = (0..n.div_ceil(REDUCE_BLOCK))
        .map(|b| {
            let lo = b * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(n);
            dot_block(&x[lo..hi], &y[lo..hi])
        })
        .collect();
    pairwise_sum(&mut partials)
}

/// Squared Euclidean norm `‖x‖²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// `y ← y + a·x` (the classic axpy).
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// `y ← x + b·y` (xpby), used for search-direction updates `p ← u + β·p`.
#[inline]
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for i in 0..x.len() {
        y[i] = x[i] + b * y[i];
    }
}

/// `z ← x - y` elementwise.
#[inline]
pub fn sub(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    assert_eq!(x.len(), z.len(), "sub: output length mismatch");
    for i in 0..x.len() {
        z[i] = x[i] - y[i];
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// Copy `src` into `dst`.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Set every entry of `x` to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = 0.0;
    }
}

/// Three-term linear combination `out ← a·x + b·y + c·z`, the core update of
/// the three-term recurrence solvers (PCG3, CA-PCG3).
#[inline]
pub fn lincomb3(a: f64, x: &[f64], b: f64, y: &[f64], c: f64, z: &[f64], out: &mut [f64]) {
    let n = out.len();
    assert!(
        x.len() == n && y.len() == n && z.len() == n,
        "lincomb3: length mismatch"
    );
    for i in 0..n {
        out[i] = a * x[i] + b * y[i] + c * z[i];
    }
}

/// Maximum absolute entry `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Returns `true` if any entry is NaN or infinite — used by the solvers'
/// divergence detection.
#[inline]
pub fn has_non_finite(x: &[f64]) -> bool {
    x.iter().any(|v| !v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..103).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64).cos()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12 * naive.abs().max(1.0));
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_short_vectors() {
        // Lengths below the unroll width exercise the tail loop alone.
        for n in 0..8 {
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let expected: f64 = x.iter().map(|v| v * v).sum();
            assert_eq!(dot(&x, &x), expected);
        }
    }

    #[test]
    fn dot_equals_dot_block_up_to_block_size() {
        // Below the block boundary the blocked reduction is one dot_block
        // call: bitwise equal to the pre-blocking kernel.
        for n in [1usize, 4, 103, REDUCE_BLOCK] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
            assert_eq!(dot(&x, &y), dot_block(&x, &y));
        }
    }

    #[test]
    fn dot_long_matches_explicit_block_shape() {
        // The blocked reduction is exactly: per-block dot_block partials
        // combined by pairwise_sum, regardless of length alignment.
        for n in [
            REDUCE_BLOCK + 1,
            3 * REDUCE_BLOCK,
            5 * REDUCE_BLOCK + 17,
            8 * REDUCE_BLOCK + 1023,
        ] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| 1.0 - (i as f64 * 0.2).cos()).collect();
            let mut partials: Vec<f64> = x
                .chunks(REDUCE_BLOCK)
                .zip(y.chunks(REDUCE_BLOCK))
                .map(|(a, b)| dot_block(a, b))
                .collect();
            assert_eq!(dot(&x, &y), pairwise_sum(&mut partials));
        }
    }

    #[test]
    fn pairwise_sum_shapes() {
        assert_eq!(pairwise_sum(&mut []), 0.0);
        assert_eq!(pairwise_sum(&mut [3.5]), 3.5);
        assert_eq!(pairwise_sum(&mut [1.0, 2.0]), 3.0);
        // Odd length carries the trailing element.
        assert_eq!(pairwise_sum(&mut [1.0, 2.0, 4.0]), 7.0);
        let mut v: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        assert_eq!(pairwise_sum(&mut v), 45.0);
    }

    /// Kahan (compensated) summation reference for the accuracy comparison.
    fn kahan_dot(x: &[f64], y: &[f64]) -> f64 {
        let mut sum = 0.0f64;
        let mut c = 0.0f64;
        for (a, b) in x.iter().zip(y) {
            let term = a * b - c;
            let t = sum + term;
            c = (t - sum) - term;
            sum = t;
        }
        sum
    }

    /// Plain left-to-right accumulation (the pre-blocking behaviour for the
    /// cross-block combine).
    fn naive_dot(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn blocked_dot_beats_naive_accumulation_vs_kahan() {
        // 0.1 is inexact in binary; summing ~131k copies left-to-right
        // accumulates O(n·eps) rounding, while the blocked pairwise shape
        // stays within O(log n · eps) of the compensated reference.
        let n = 128 * REDUCE_BLOCK + 7;
        let x = vec![1.0f64; n];
        let y = vec![0.1f64; n];
        let reference = kahan_dot(&x, &y);
        let naive_err = (naive_dot(&x, &y) - reference).abs();
        let blocked_err = (dot(&x, &y) - reference).abs();
        assert!(
            blocked_err * 8.0 <= naive_err.max(f64::EPSILON),
            "blocked {blocked_err:e} not clearly better than naive {naive_err:e}"
        );
        assert!(
            blocked_err <= 1e-10 * reference.abs(),
            "blocked error too large: {blocked_err:e}"
        );
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn xpby_basic() {
        let x = [1.0, 1.0];
        let mut y = [2.0, 4.0];
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, [2.0, 3.0]);
    }

    #[test]
    fn lincomb3_basic() {
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        let z = [1.0, 1.0];
        let mut out = [0.0, 0.0];
        lincomb3(2.0, &x, 3.0, &y, -1.0, &z, &mut out);
        assert_eq!(out, [1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!has_non_finite(&[1.0, 2.0]));
        assert!(has_non_finite(&[1.0, f64::NAN]));
        assert!(has_non_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
