//! Coordinate-format (COO) sparse matrix builder.
//!
//! COO is the natural format for assembling matrices entry by entry — the
//! stencil generators and the Matrix Market reader both produce COO, which is
//! then converted to [`crate::CsrMatrix`] for computation. Duplicate entries
//! are summed during conversion (finite-element style assembly).

use crate::csr::CsrMatrix;

/// A sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` COO matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with storage reserved for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Adds `v` at position `(i, j)`. Duplicates are summed on conversion.
    ///
    /// # Panics
    /// Panics if `(i, j)` is out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.nrows && j < self.ncols,
            "CooMatrix::push: index ({i},{j}) out of bounds"
        );
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
    }

    /// Adds `v` at `(i, j)` and, if `i != j`, also at `(j, i)` — convenient
    /// for assembling symmetric matrices from their lower triangle.
    pub fn push_sym(&mut self, i: usize, j: usize, v: f64) {
        self.push(i, j, v);
        if i != j {
            self.push(j, i, v);
        }
    }

    /// Converts to CSR, summing duplicate entries and dropping explicit
    /// zeros that result from cancellation is *not* done (explicit zeros are
    /// kept so sparsity patterns remain predictable for tests).
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row: O(nnz + n) and allocation-minimal.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let nnz = self.vals.len();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0f64; nnz];
        let mut next = row_counts.clone();
        for k in 0..nnz {
            let r = self.rows[k];
            let slot = next[r];
            next[r] += 1;
            col_idx[slot] = self.cols[k];
            values[slot] = self.vals[k];
        }
        // Sort within each row by column and merge duplicates.
        let mut out_ptr = vec![0usize; self.nrows + 1];
        let mut out_cols: Vec<usize> = Vec::with_capacity(nnz);
        let mut out_vals: Vec<f64> = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            let (lo, hi) = (row_counts[r], row_counts[r + 1]);
            scratch.clear();
            scratch.extend(
                col_idx[lo..hi]
                    .iter()
                    .copied()
                    .zip(values[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                i += 1;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
            }
            out_ptr[r + 1] = out_cols.len();
        }
        // The compaction above guarantees the CSR invariants (sorted,
        // deduplicated, in-bounds), so skip release-mode re-validation.
        CsrMatrix::from_raw_unchecked(self.nrows, self.ncols, out_ptr, out_cols, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 0, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 3.5);
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.get(1, 1), 0.0);
    }

    #[test]
    fn columns_sorted_after_conversion() {
        let mut coo = CooMatrix::new(1, 5);
        for &c in &[4, 1, 3, 0, 2] {
            coo.push(0, c, c as f64);
        }
        let csr = coo.to_csr();
        let row = csr.row(0);
        let cols: Vec<usize> = row.0.to_vec();
        assert_eq!(cols, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn push_sym_mirrors_off_diagonal() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 0, 2.0);
        coo.push_sym(2, 1, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.get(2, 1), 5.0);
        assert_eq!(csr.get(1, 2), 5.0);
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }
}
