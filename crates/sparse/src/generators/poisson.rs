//! Poisson-equation stencil matrices (Dirichlet boundary conditions).
//!
//! `poisson_3d(256)` is the exact strong-scaling test problem of the paper's
//! Figure 1: the 7-point finite-difference discretization of Poisson's
//! equation on a `256³` grid.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// 1D Laplacian: tridiagonal `[-1, 2, -1]` of size `n`.
pub fn poisson_1d(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i + 1 < n {
            coo.push_sym(i + 1, i, -1.0);
        }
    }
    coo.to_csr()
}

/// 2D Poisson matrix: 5-point stencil `[-1, -1, 4, -1, -1]` on an
/// `nx × ny` grid, size `nx·ny`.
pub fn poisson_2d_rect(nx: usize, ny: usize) -> CsrMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push(r, r, 4.0);
            if i + 1 < nx {
                coo.push_sym(idx(i + 1, j), r, -1.0);
            }
            if j + 1 < ny {
                coo.push_sym(idx(i, j + 1), r, -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 2D Poisson matrix on a square `m × m` grid.
pub fn poisson_2d(m: usize) -> CsrMatrix {
    poisson_2d_rect(m, m)
}

/// 3D Poisson matrix: 7-point stencil (diagonal 6, neighbours −1) on an
/// `nx × ny × nz` grid, size `nx·ny·nz`. This is the paper's Figure-1
/// problem for `nx = ny = nz = 256`.
pub fn poisson_3d_rect(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                coo.push(r, r, 6.0);
                if i + 1 < nx {
                    coo.push_sym(idx(i + 1, j, k), r, -1.0);
                }
                if j + 1 < ny {
                    coo.push_sym(idx(i, j + 1, k), r, -1.0);
                }
                if k + 1 < nz {
                    coo.push_sym(idx(i, j, k + 1), r, -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// 3D Poisson matrix on a cubic `m × m × m` grid.
pub fn poisson_3d(m: usize) -> CsrMatrix {
    poisson_3d_rect(m, m, m)
}

/// Exact extreme eigenvalues of the `m`-point-per-dimension Poisson matrix in
/// `dim` dimensions: `λ = Σ_d (2 - 2cos(k_d π/(m+1)))`. Used by tests and as
/// ground truth for the eigenvalue-estimation module.
pub fn poisson_extreme_eigenvalues(m: usize, dim: usize) -> (f64, f64) {
    let theta = std::f64::consts::PI / (m as f64 + 1.0);
    let lo_1d = 2.0 - 2.0 * theta.cos();
    let hi_1d = 2.0 - 2.0 * (theta * m as f64).cos();
    (dim as f64 * lo_1d, dim as f64 * hi_1d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_1d_structure() {
        let a = poisson_1d(5);
        assert_eq!(a.nnz(), 13);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn poisson_2d_row_sums() {
        let a = poisson_2d(4);
        assert_eq!(a.nrows(), 16);
        assert!(a.is_symmetric(0.0));
        // Interior rows sum to 0; boundary rows are diagonally dominant.
        let x = vec![1.0; 16];
        let mut y = vec![0.0; 16];
        a.spmv(&x, &mut y);
        assert!(y.iter().all(|&v| v >= 0.0));
        // The fully interior node (1,1) in a 4x4 grid has row sum 0.
        assert_eq!(y[4 + 1], 0.0);
    }

    #[test]
    fn poisson_3d_nnz_count() {
        let m = 5;
        let a = poisson_3d(m);
        let n = m * m * m;
        assert_eq!(a.nrows(), n);
        // nnz = 7n - 2*(boundary face deficits) = n + 2*3*(m-1)*m^2 off-diags + n diag
        let expected = n + 2 * 3 * (m - 1) * m * m;
        assert_eq!(a.nnz(), expected);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn poisson_spd_via_gershgorin_and_smallest_eig() {
        let (lo, hi) = poisson_extreme_eigenvalues(10, 3);
        assert!(lo > 0.0);
        assert!(hi < 12.0);
        let a = poisson_3d(10);
        let (glo, ghi) = a.gershgorin_bounds();
        assert!(glo >= -1e-12);
        assert!(ghi >= hi - 1e-9);
    }

    #[test]
    fn rect_matches_square() {
        let a = poisson_2d_rect(3, 3);
        let b = poisson_2d(3);
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }
}
