//! Random SPD matrices with an exactly prescribed spectrum.
//!
//! Construction: start from `D = diag(λ₁..λₙ)` and apply `rounds` sweeps of
//! random neighbour Givens rotations, `A = G_m … G₁ D G₁ᵀ … G_mᵀ`. Orthogonal
//! similarity preserves the spectrum *exactly*, while each disjoint-pair
//! sweep grows the bandwidth by at most two — so the result is a sparse
//! banded SPD matrix
//! whose conditioning (and hence CG iteration count and s-step basis
//! behaviour) is fully controlled. This is the workhorse behind the
//! Table-2 stand-in suite: the paper's stability phenomena are functions of
//! the spectrum, which this generator pins down.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::rng::Rng64;

/// Shape of the prescribed spectrum on `[λ_max/κ, λ_max]`.
#[derive(Debug, Clone, PartialEq)]
pub enum SpectrumShape {
    /// Evenly spaced eigenvalues — the classical worst case for CG, giving
    /// iteration counts tracking `O(√κ)`.
    Uniform { kappa: f64 },
    /// Geometrically spaced eigenvalues — CG converges superlinearly as the
    /// extreme eigenvalues are resolved.
    Geometric { kappa: f64 },
    /// Eigenvalues uniform in `log λ` with multiplicative random jitter.
    LogUniform { kappa: f64, jitter: f64 },
    /// A few tight clusters — easy for CG despite large κ.
    Clustered { kappa: f64, clusters: usize },
    /// One tiny outlier below an otherwise well-conditioned bulk — mimics
    /// the near-singular shell/structural matrices that stall solvers.
    Outlier { kappa: f64, bulk_kappa: f64 },
    /// Fully custom eigenvalue list (must be positive; length must match n).
    Custom(Vec<f64>),
}

impl SpectrumShape {
    /// Materializes the eigenvalue list (ascending, λ_max = `scale`).
    pub fn eigenvalues(&self, n: usize, scale: f64, rng: &mut Rng64) -> Vec<f64> {
        assert!(n > 0, "SpectrumShape: n must be positive");
        let mut ev = match self {
            SpectrumShape::Uniform { kappa } => {
                let lo = scale / kappa;
                (0..n)
                    .map(|i| {
                        if n == 1 {
                            scale
                        } else {
                            lo + (scale - lo) * i as f64 / (n - 1) as f64
                        }
                    })
                    .collect::<Vec<_>>()
            }
            SpectrumShape::Geometric { kappa } => {
                let lo = scale / kappa;
                (0..n)
                    .map(|i| {
                        if n == 1 {
                            scale
                        } else {
                            lo * (scale / lo).powf(i as f64 / (n - 1) as f64)
                        }
                    })
                    .collect::<Vec<_>>()
            }
            SpectrumShape::LogUniform { kappa, jitter } => {
                let lo = scale / kappa;
                let mut v: Vec<f64> = (0..n)
                    .map(|i| {
                        let t = if n == 1 {
                            1.0
                        } else {
                            i as f64 / (n - 1) as f64
                        };
                        let base = lo * (scale / lo).powf(t);
                        base * (1.0 + jitter * (rng.next_f64() - 0.5))
                    })
                    .collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                // Pin the extremes so κ is exact despite jitter.
                v[0] = lo;
                v[n - 1] = scale;
                v
            }
            SpectrumShape::Clustered { kappa, clusters } => {
                assert!(*clusters >= 1, "Clustered: need at least one cluster");
                let lo = scale / kappa;
                (0..n)
                    .map(|i| {
                        let c = i * clusters / n;
                        let center = if *clusters == 1 {
                            scale
                        } else {
                            lo * (scale / lo).powf(c as f64 / (clusters - 1) as f64)
                        };
                        center * (1.0 + 1e-4 * (rng.next_f64() - 0.5))
                    })
                    .collect()
            }
            SpectrumShape::Outlier { kappa, bulk_kappa } => {
                // Log-uniform bulk (same difficulty law as `LogUniform`)
                // plus one detached tiny eigenvalue.
                let lo = scale / kappa;
                let bulk_lo = scale / bulk_kappa;
                let mut v: Vec<f64> = (0..n - 1)
                    .map(|i| {
                        let t = if n <= 2 {
                            1.0
                        } else {
                            i as f64 / (n - 2) as f64
                        };
                        bulk_lo * (scale / bulk_lo).powf(t)
                    })
                    .collect();
                v.insert(0, lo);
                v
            }
            SpectrumShape::Custom(v) => {
                assert_eq!(v.len(), n, "Custom spectrum length must equal n");
                let mut v = v.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v
            }
        };
        ev.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            ev[0] > 0.0,
            "SpectrumShape: spectrum must be positive for SPD"
        );
        ev
    }
}

/// Symmetric band matrix used internally while applying Givens sweeps.
struct SymBand {
    n: usize,
    w: usize,
    /// `data[i * (w+1) + d] = A[i, i+d]`, `0 ≤ d ≤ w`.
    data: Vec<f64>,
}

impl SymBand {
    fn diag(ev: &[f64], w: usize) -> Self {
        let n = ev.len();
        let mut data = vec![0.0; n * (w + 1)];
        for (i, &l) in ev.iter().enumerate() {
            data[i * (w + 1)] = l;
        }
        SymBand { n, w, data }
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        if d > self.w {
            0.0
        } else {
            self.data[lo * (self.w + 1) + d]
        }
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, v: f64) {
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        if d > self.w {
            debug_assert!(v == 0.0, "SymBand::set: nonzero fill outside band");
            return;
        }
        self.data[lo * (self.w + 1) + d] = v;
    }

    /// Applies the symmetric similarity `A ← G A Gᵀ` for the Givens rotation
    /// mixing coordinates `p` and `p+1` with cosine `c`, sine `s`.
    fn rotate_pair(&mut self, p: usize, c: f64, s: f64) {
        let q = p + 1;
        let lo = p.saturating_sub(self.w);
        let hi = (q + 1 + self.w).min(self.n);
        // Row update on the window: rows p and q mix.
        let mut row_p: Vec<f64> = (lo..hi).map(|j| self.get(p, j)).collect();
        let mut row_q: Vec<f64> = (lo..hi).map(|j| self.get(q, j)).collect();
        for k in 0..hi - lo {
            let (a, b) = (row_p[k], row_q[k]);
            row_p[k] = c * a + s * b;
            row_q[k] = -s * a + c * b;
        }
        // Column update: within the two updated rows, columns p and q mix.
        let (kp, kq) = (p - lo, q - lo);
        let (a, b) = (row_p[kp], row_p[kq]);
        row_p[kp] = c * a + s * b;
        row_p[kq] = -s * a + c * b;
        let (a, b) = (row_q[kp], row_q[kq]);
        row_q[kp] = c * a + s * b;
        row_q[kq] = -s * a + c * b;
        // Column update for all other rows in the window (exploiting
        // symmetry: A[j, p] = A[p, j], already updated in row_p/row_q).
        for j in lo..hi {
            if j == p || j == q {
                continue;
            }
            self.set(j, p, row_p[j - lo]);
            self.set(j, q, row_q[j - lo]);
        }
        for j in lo..hi {
            self.set(p, j, row_p[j - lo]);
        }
        for j in lo..hi {
            self.set(q, j, row_q[j - lo]);
        }
    }

    fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.n * (2 * self.w + 1));
        for i in 0..self.n {
            for d in 0..=self.w {
                if i + d >= self.n {
                    break;
                }
                let v = self.data[i * (self.w + 1) + d];
                if v != 0.0 {
                    coo.push_sym(i, i + d, v);
                }
            }
        }
        coo.to_csr()
    }
}

/// Generates an `n × n` banded SPD matrix with the given spectrum (largest
/// eigenvalue = `scale`), applying `rounds` sweeps of random neighbour Givens
/// rotations. The final semi-bandwidth is at most `2·rounds`.
///
/// # Panics
/// Panics if `n == 0` or the spectrum is not strictly positive.
pub fn spd_with_spectrum(
    n: usize,
    shape: &SpectrumShape,
    scale: f64,
    rounds: usize,
    seed: u64,
) -> CsrMatrix {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut ev = shape.eigenvalues(n, scale, &mut rng);
    if n == 1 {
        return CsrMatrix::from_diagonal(&ev);
    }
    // Shuffle the eigenvalue placement: the Givens sweeps only mix
    // neighbouring coordinates, so with a sorted diagonal each eigenvector
    // stays localized among *similar* eigenvalues and diag(A) approximates
    // the local eigenvalue — making Jacobi an almost exact inverse and the
    // matrix artificially easy. Scattering the eigenvalues makes every
    // diagonal entry a mix of wildly different eigenvalues, restoring
    // realistic preconditioned difficulty.
    for i in (1..n).rev() {
        let j = rng.below_inclusive(i);
        ev.swap(i, j);
    }
    let mut band = SymBand::diag(&ev, (2 * rounds).max(1));
    // Each sweep rotates *disjoint* neighbour pairs (alternating even/odd
    // starting parity). Disjointness bounds the fill: the row mixing at
    // (p, p+1) unions the two row supports (+1), and the accompanying
    // column rotation widens every row holding entries in columns p, p+1 by
    // one more — at most +2 bandwidth per sweep, so semi-bandwidth ≤
    // 2·rounds. Overlapping pairs would instead cascade fill along the
    // sweep and destroy bandedness.
    for sweep in 0..rounds {
        let parity = sweep % 2;
        let mut p = parity;
        while p + 1 < n {
            let theta: f64 = rng.range_f64(0.2, 1.4);
            band.rotate_pair(p, theta.cos(), theta.sin());
            p += 2;
        }
    }
    band.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tridiag;

    #[test]
    fn spectrum_is_preserved_exactly_small() {
        // With rounds sweeps the matrix stays banded; verify the spectrum by
        // re-tridiagonalizing via dense Householder is overkill here — use a
        // 1-round case which stays tridiagonal and feed it to the tridiag
        // eigensolver.
        let n = 24;
        let shape = SpectrumShape::Uniform { kappa: 100.0 };
        let a = spd_with_spectrum(n, &shape, 1.0, 1, 42);
        // Extract tridiagonal bands.
        let d: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        let e: Vec<f64> = (0..n - 1).map(|i| a.get(i, i + 1)).collect();
        let ev = tridiag::eigenvalues(&d, &e);
        let mut rng = Rng64::seed_from_u64(42);
        let want = shape.eigenvalues(n, 1.0, &mut rng);
        for (g, w) in ev.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10, "eigenvalue drift: {g} vs {w}");
        }
    }

    #[test]
    fn trace_preserved_with_many_rounds() {
        let n = 100;
        let shape = SpectrumShape::Geometric { kappa: 1e4 };
        let a = spd_with_spectrum(n, &shape, 2.0, 5, 7);
        let mut rng = Rng64::seed_from_u64(7);
        let ev = shape.eigenvalues(n, 2.0, &mut rng);
        let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
        let sum: f64 = ev.iter().sum();
        assert!((trace - sum).abs() < 1e-8 * sum.abs());
    }

    #[test]
    fn result_is_symmetric_and_banded() {
        let a = spd_with_spectrum(60, &SpectrumShape::Uniform { kappa: 10.0 }, 1.0, 3, 1);
        assert!(a.is_symmetric(1e-12));
        // Semi-bandwidth must be at most `2·rounds`.
        for i in 0..60 {
            let (cols, _) = a.row(i);
            for &c in cols {
                assert!(c.abs_diff(i) <= 6, "fill outside band at ({i},{c})");
            }
        }
    }

    #[test]
    fn gershgorin_respects_scale() {
        let a = spd_with_spectrum(80, &SpectrumShape::Uniform { kappa: 1e3 }, 5.0, 4, 3);
        let (_, hi) = a.gershgorin_bounds();
        // Gershgorin upper bound must be at least λmax = 5.
        assert!(hi >= 5.0 - 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let s = SpectrumShape::LogUniform {
            kappa: 100.0,
            jitter: 0.3,
        };
        let a = spd_with_spectrum(30, &s, 1.0, 2, 9);
        let b = spd_with_spectrum(30, &s, 1.0, 2, 9);
        assert_eq!(a.values(), b.values());
        assert_eq!(a.col_idx(), b.col_idx());
    }

    #[test]
    fn shapes_have_exact_extremes() {
        let mut rng = Rng64::seed_from_u64(0);
        for shape in [
            SpectrumShape::Uniform { kappa: 50.0 },
            SpectrumShape::Geometric { kappa: 50.0 },
            SpectrumShape::LogUniform {
                kappa: 50.0,
                jitter: 0.2,
            },
        ] {
            let ev = shape.eigenvalues(40, 3.0, &mut rng);
            assert!((ev[0] - 3.0 / 50.0).abs() < 1e-12);
            assert!((ev[39] - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn outlier_shape_has_detached_smallest() {
        let mut rng = Rng64::seed_from_u64(0);
        let ev = SpectrumShape::Outlier {
            kappa: 1e6,
            bulk_kappa: 10.0,
        }
        .eigenvalues(50, 1.0, &mut rng);
        assert!((ev[0] - 1e-6).abs() < 1e-18);
        assert!(ev[1] >= 0.1 - 1e-12);
    }

    #[test]
    fn custom_spectrum_roundtrip() {
        let mut rng = Rng64::seed_from_u64(0);
        let ev = SpectrumShape::Custom(vec![3.0, 1.0, 2.0]).eigenvalues(3, 1.0, &mut rng);
        assert_eq!(ev, vec![1.0, 2.0, 3.0]);
    }
}
