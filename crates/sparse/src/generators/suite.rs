//! The Table-2 matrix suite.
//!
//! The paper's Table 2 uses the 40 SPD SuiteSparse matrices of size
//! 100 000 – 2 000 000 for which standard PCG converges within 10 000
//! iterations. Those files (up to 114M nonzeros) are not redistributable
//! here, so this module generates a *difficulty-matched stand-in* for each:
//! a banded SPD matrix with exactly prescribed spectrum (see
//! [`super::random_spd`]), sized down ~40× so the whole Table-2 sweep runs
//! on one machine, with the condition number calibrated so standard PCG's
//! iteration count lands near the paper's (`paper_pcg_iters`).
//!
//! What this preserves (and what Table 2 measures) is the *relative*
//! behaviour of the s-step solvers: whether the monomial basis collapses at
//! `s = 10`, whether the Chebyshev basis restores PCG-like convergence, and
//! which matrices defeat every s-step method. Those properties are driven by
//! the spectrum, which the generator controls exactly. Real SuiteSparse
//! `.mtx` files can be substituted via [`crate::io::read_matrix_market`].

use crate::csr::CsrMatrix;
use crate::generators::random_spd::{spd_with_spectrum, SpectrumShape};

/// One matrix of the Table-2 suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// SuiteSparse name of the matrix this entry stands in for.
    pub name: &'static str,
    /// Row count of the original SuiteSparse matrix.
    pub paper_n: usize,
    /// Iterations standard PCG needed in the paper (Table 2, PCG column).
    pub paper_pcg_iters: usize,
    /// Row count of the generated stand-in.
    pub n: usize,
    /// Spectrum shape of the stand-in.
    pub shape: SpectrumShape,
    /// Givens sweeps; semi-bandwidth of the stand-in is `2·rounds` (controls nnz/row).
    pub rounds: usize,
    /// RNG seed (distinct per entry so the suite is deterministic).
    pub seed: u64,
}

impl SuiteEntry {
    /// Generates the matrix (deterministic for a given entry).
    pub fn build(&self) -> CsrMatrix {
        spd_with_spectrum(self.n, &self.shape, 1.0, self.rounds, self.seed)
    }
}

/// Difficulty calibration: the paper's PCG iteration counts are reproduced
/// by choosing the condition number of a *log-uniform* spectrum (uniform
/// eigenvalue density per decade — the shape real FEM/structural matrices
/// exhibit, and the one whose low-end density forces CG to do real work
/// under the degree-3 Chebyshev preconditioner). An empirical sweep of this
/// exact pipeline (`spcg-bench --bin calibrate`, n = 8000, tol 1e-9) gives
/// the power law `iters ≈ 4.2·κ^0.43`; inverting:
fn kappa_for_iters(iters: usize) -> f64 {
    (iters as f64 / 4.2).powf(1.0 / 0.43).max(4.0)
}

fn scaled_n(paper_n: usize) -> usize {
    // ~40× size reduction, capped so the full 40-matrix × 9-solver Table-2
    // sweep finishes in minutes; difficulty (iteration count) is carried by
    // the spectrum, not the size.
    (paper_n / 40).clamp(3_000, 10_000)
}

/// Builds the 40-entry suite mirroring the paper's Table 2 row order.
///
/// Entries marked in the paper as defeating *all* s-step methods
/// (pwtk, Fault_639, bone010, Serena, Flan_1565) use an [`SpectrumShape::Outlier`]
/// spectrum — a detached tiny eigenvalue that finite-precision s-step bases
/// cannot track — rather than a merely large uniform κ.
pub fn suite_matrices() -> Vec<SuiteEntry> {
    // (name, paper_n, paper_nnz/1e6, paper PCG iters, hard-for-all flag)
    const ROWS: &[(&str, usize, f64, usize, bool)] = &[
        ("2cubes_sphere", 101_492, 1.6, 22, false),
        ("thermomech_TC", 102_158, 0.7, 11, false),
        ("shipsec8", 114_919, 3.3, 1666, false),
        ("ship_003", 121_728, 3.8, 1584, false),
        ("cfd2", 123_440, 3.1, 1731, false),
        ("boneS01", 127_224, 5.5, 787, false),
        ("shipsec1", 140_874, 3.6, 909, false),
        ("bmw7st_1", 141_347, 7.3, 7243, false),
        ("Dubcova3", 146_689, 3.6, 73, false),
        ("bmwcra_1", 148_770, 11.0, 2183, false),
        ("G2_circuit", 150_102, 0.7, 506, false),
        ("shipsec5", 179_860, 4.6, 751, false),
        ("thermomech_dM", 204_316, 1.4, 11, false),
        ("pwtk", 217_918, 12.0, 7377, true),
        ("hood", 220_542, 9.9, 1515, false),
        ("offshore", 259_789, 4.2, 178, false),
        ("af_0_k101", 503_625, 18.0, 8891, false),
        ("af_1_k101", 503_625, 18.0, 8359, false),
        ("af_2_k101", 503_625, 18.0, 9956, false),
        ("af_3_k101", 503_625, 18.0, 8076, false),
        ("af_4_k101", 503_625, 18.0, 9881, false),
        ("af_5_k101", 503_625, 18.0, 9467, false),
        ("af_shell3", 504_855, 18.0, 993, false),
        ("af_shell4", 504_855, 18.0, 993, false),
        ("af_shell7", 504_855, 18.0, 991, false),
        ("af_shell8", 504_855, 18.0, 991, false),
        ("parabolic_fem", 525_825, 18.0, 540, false),
        ("Fault_639", 638_802, 27.0, 5414, true),
        ("apache2", 715_176, 4.8, 1554, false),
        ("Emilia_923", 923_136, 40.0, 4564, false),
        ("audikw_1", 943_695, 78.0, 2520, false),
        ("ldoor", 952_203, 42.0, 2764, false),
        ("bone010", 986_703, 48.0, 4308, true),
        ("ecology2", 999_999, 5.0, 2345, false),
        ("thermal2", 1_228_045, 8.6, 1674, false),
        ("Serena", 1_391_349, 64.0, 570, true),
        ("Geo_1438", 1_437_960, 60.0, 545, false),
        ("Hook_1498", 1_498_023, 59.0, 1817, false),
        ("Flan_1565", 1_564_794, 114.0, 4469, true),
        ("G3_circuit", 1_585_478, 7.7, 628, false),
    ];
    ROWS.iter()
        .enumerate()
        .map(|(i, &(name, paper_n, paper_nnz_m, iters, hard_for_all))| {
            let n = scaled_n(paper_n);
            let kappa = kappa_for_iters(iters);
            let shape = if hard_for_all {
                // Detached outlier: PCG resolves it; s-step bases cannot.
                SpectrumShape::Outlier {
                    kappa: (kappa * 1e4).max(1e9),
                    bulk_kappa: kappa,
                }
            } else if iters <= 30 {
                // Very easy matrices: small geometric spectrum.
                SpectrumShape::Geometric { kappa }
            } else {
                SpectrumShape::LogUniform { kappa, jitter: 0.1 }
            };
            // nnz/row of the stand-in ≈ 4·rounds+1 (semi-bandwidth 2·rounds),
            // matched to the original's nnz/row.
            let nnz_per_row = (paper_nnz_m * 1e6 / paper_n as f64).round() as usize;
            let rounds = (nnz_per_row / 4).clamp(1, 6);
            SuiteEntry {
                name,
                paper_n,
                paper_pcg_iters: iters,
                n,
                shape,
                rounds,
                seed: 1000 + i as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_forty_entries() {
        assert_eq!(suite_matrices().len(), 40);
    }

    #[test]
    fn names_are_unique() {
        let s = suite_matrices();
        let mut names: Vec<_> = s.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 40);
    }

    #[test]
    fn sizes_are_scaled_and_bounded() {
        for e in suite_matrices() {
            assert!(e.n >= 3_000 && e.n <= 10_000, "{}: n = {}", e.name, e.n);
            assert!(e.n <= e.paper_n);
        }
    }

    #[test]
    fn easy_matrix_builds_spd() {
        let suite = suite_matrices();
        let tc = suite.iter().find(|e| e.name == "thermomech_TC").unwrap();
        let a = tc.build();
        assert_eq!(a.nrows(), tc.n);
        assert!(a.is_symmetric(1e-10));
        let (lo, _) = a.gershgorin_bounds();
        // Gershgorin may dip below zero after rotations, but not far below
        // -λmax; the real SPD guarantee is by construction (similarity).
        assert!(lo > -1.0);
    }

    #[test]
    fn hard_for_all_entries_use_outlier_spectra() {
        for e in suite_matrices() {
            let is_outlier = matches!(e.shape, SpectrumShape::Outlier { .. });
            let should = ["pwtk", "Fault_639", "bone010", "Serena", "Flan_1565"].contains(&e.name);
            assert_eq!(is_outlier, should, "{}", e.name);
        }
    }

    #[test]
    fn kappa_monotone_in_iters() {
        assert!(kappa_for_iters(100) < kappa_for_iters(1000));
        assert!(kappa_for_iters(10) >= 4.0);
    }
}
