//! Synthetic SPD problem generators.
//!
//! The paper evaluates on (a) SuiteSparse matrices (Table 2/3) and (b) a
//! 7-point 3D Poisson matrix (Figure 1). The Poisson generators here are
//! exactly the paper's synthetic problem; the [`suite`] module provides a
//! 40-matrix stand-in for the SuiteSparse subset with matched difficulty
//! classes (see DESIGN.md §3 for the substitution rationale).

pub mod anisotropic;
pub mod poisson;
pub mod random_spd;
pub mod suite;

pub use anisotropic::{anisotropic_2d, anisotropic_3d};
pub use poisson::{poisson_1d, poisson_2d, poisson_3d};
pub use random_spd::{spd_with_spectrum, SpectrumShape};
pub use suite::{suite_matrices, SuiteEntry};

/// Builds the right-hand side used throughout the paper's experiments
/// (§5.1): `b = A·x*` with every entry of the solution `x*` equal to
/// `1/√n`, so `‖x*‖₂ = 1`.
pub fn paper_rhs(a: &crate::CsrMatrix) -> Vec<f64> {
    let n = a.nrows();
    let xstar = vec![1.0 / (n as f64).sqrt(); n];
    let mut b = vec![0.0; n];
    a.spmv(&xstar, &mut b);
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rhs_recovers_unit_norm_solution() {
        let a = poisson_1d(32);
        let b = paper_rhs(&a);
        // The residual of x* must be zero by construction.
        let n = a.nrows();
        let xstar = vec![1.0 / (n as f64).sqrt(); n];
        let mut ax = vec![0.0; n];
        a.spmv(&xstar, &mut ax);
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-15);
        }
        let norm: f64 = xstar.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }
}
