//! Anisotropic diffusion stencils.
//!
//! Anisotropy stretches the spectrum of the discrete operator (condition
//! number grows with the anisotropy ratio), producing the "hard but
//! convergent" difficulty class seen in several SuiteSparse matrices
//! (thermal, parabolic_fem-like problems).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// 2D anisotropic diffusion `-(ε u_xx + u_yy)` on an `m × m` grid
/// (5-point stencil). `eps < 1` weakens coupling in x; the condition number
/// scales like `O(m² / ε)` for small `eps`.
pub fn anisotropic_2d(m: usize, eps: f64) -> CsrMatrix {
    assert!(eps > 0.0, "anisotropic_2d: eps must be positive");
    let n = m * m;
    let idx = |i: usize, j: usize| i * m + j;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..m {
        for j in 0..m {
            let r = idx(i, j);
            coo.push(r, r, 2.0 * eps + 2.0);
            if i + 1 < m {
                coo.push_sym(idx(i + 1, j), r, -eps);
            }
            if j + 1 < m {
                coo.push_sym(idx(i, j + 1), r, -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 3D anisotropic diffusion `-(εx u_xx + εy u_yy + u_zz)` on an `m³` grid
/// (7-point stencil).
pub fn anisotropic_3d(m: usize, eps_x: f64, eps_y: f64) -> CsrMatrix {
    assert!(
        eps_x > 0.0 && eps_y > 0.0,
        "anisotropic_3d: eps must be positive"
    );
    let n = m * m * m;
    let idx = |i: usize, j: usize, k: usize| (i * m + j) * m + k;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for i in 0..m {
        for j in 0..m {
            for k in 0..m {
                let r = idx(i, j, k);
                coo.push(r, r, 2.0 * (eps_x + eps_y + 1.0));
                if i + 1 < m {
                    coo.push_sym(idx(i + 1, j, k), r, -eps_x);
                }
                if j + 1 < m {
                    coo.push_sym(idx(i, j + 1, k), r, -eps_y);
                }
                if k + 1 < m {
                    coo.push_sym(idx(i, j, k + 1), r, -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_limit_matches_poisson() {
        let a = anisotropic_2d(6, 1.0);
        let p = super::super::poisson::poisson_2d(6);
        for i in 0..36 {
            for j in 0..36 {
                assert_eq!(a.get(i, j), p.get(i, j));
            }
        }
    }

    #[test]
    fn anisotropy_preserves_symmetry_and_positivity() {
        let a = anisotropic_2d(8, 1e-3);
        assert!(a.is_symmetric(0.0));
        let (lo, _) = a.gershgorin_bounds();
        assert!(lo >= -1e-14);
    }

    #[test]
    fn anisotropic_3d_structure() {
        let a = anisotropic_3d(4, 0.1, 0.01);
        assert_eq!(a.nrows(), 64);
        assert!(a.is_symmetric(1e-15));
        assert!((a.get(0, 0) - 2.0 * (0.1 + 0.01 + 1.0)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_nonpositive_eps() {
        anisotropic_2d(4, 0.0);
    }
}
