//! 1D block-row partitioning.
//!
//! The paper distributes matrices block-row-wise and vectors accordingly
//! (§5.1). [`BlockRowPartition`] computes balanced contiguous row ranges and,
//! together with a CSR matrix, the communication footprint of a distributed
//! SpMV (which off-rank entries each rank needs — the "halo").

use crate::csr::CsrMatrix;

/// A balanced contiguous partition of `n` rows over `nparts` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRowPartition {
    n: usize,
    offsets: Vec<usize>,
}

impl BlockRowPartition {
    /// Splits `n` rows into `nparts` contiguous blocks whose sizes differ by
    /// at most one (the first `n % nparts` blocks get the extra row).
    ///
    /// # Panics
    /// Panics if `nparts == 0`.
    pub fn balanced(n: usize, nparts: usize) -> Self {
        assert!(nparts > 0, "BlockRowPartition: nparts must be positive");
        let base = n / nparts;
        let extra = n % nparts;
        let mut offsets = Vec::with_capacity(nparts + 1);
        let mut acc = 0;
        offsets.push(0);
        for p in 0..nparts {
            acc += base + usize::from(p < extra);
            offsets.push(acc);
        }
        BlockRowPartition { n, offsets }
    }

    /// Total number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of parts.
    pub fn nparts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Row range `[begin, end)` of part `p`.
    pub fn range(&self, p: usize) -> (usize, usize) {
        (self.offsets[p], self.offsets[p + 1])
    }

    /// Number of rows owned by part `p`.
    pub fn len(&self, p: usize) -> usize {
        self.offsets[p + 1] - self.offsets[p]
    }

    /// True if some part owns zero rows.
    pub fn has_empty_part(&self) -> bool {
        (0..self.nparts()).any(|p| self.len(p) == 0)
    }

    /// The part that owns row `r`.
    pub fn owner(&self, r: usize) -> usize {
        assert!(r < self.n, "owner: row out of range");
        // offsets is sorted; binary search for the containing interval.
        match self.offsets.binary_search(&r) {
            Ok(p) if p == self.nparts() => p - 1,
            Ok(p) => {
                // r is exactly at a boundary: it belongs to the part starting
                // there unless that part is empty; skip empty parts forward.
                let mut q = p;
                while self.offsets[q + 1] == self.offsets[q] {
                    q += 1;
                }
                q
            }
            Err(p) => p - 1,
        }
    }

    /// Per-part halo: for each part, the sorted list of off-part column
    /// indices referenced by its rows of `a` — exactly the remote vector
    /// entries a distributed SpMV must communicate.
    pub fn halo_columns(&self, a: &CsrMatrix) -> Vec<Vec<usize>> {
        assert_eq!(a.nrows(), self.n, "halo_columns: matrix size mismatch");
        let mut halos = Vec::with_capacity(self.nparts());
        for p in 0..self.nparts() {
            let (lo, hi) = self.range(p);
            let mut cols: Vec<usize> = Vec::new();
            for r in lo..hi {
                let (rcols, _) = a.row(r);
                for &c in rcols {
                    if c < lo || c >= hi {
                        cols.push(c);
                    }
                }
            }
            cols.sort_unstable();
            cols.dedup();
            halos.push(cols);
        }
        halos
    }

    /// Total halo volume (words exchanged per distributed SpMV, counting
    /// each remote entry once per consuming rank).
    pub fn halo_volume(&self, a: &CsrMatrix) -> usize {
        self.halo_columns(a).iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn balanced_sizes_differ_by_at_most_one() {
        let p = BlockRowPartition::balanced(10, 3);
        assert_eq!(p.range(0), (0, 4));
        assert_eq!(p.range(1), (4, 7));
        assert_eq!(p.range(2), (7, 10));
    }

    #[test]
    fn covers_all_rows_exactly_once() {
        for (n, k) in [(1, 1), (7, 3), (100, 7), (5, 8)] {
            let p = BlockRowPartition::balanced(n, k);
            let mut count = 0;
            for part in 0..p.nparts() {
                let (lo, hi) = p.range(part);
                count += hi - lo;
            }
            assert_eq!(count, n);
        }
    }

    #[test]
    fn owner_is_consistent_with_range() {
        let p = BlockRowPartition::balanced(17, 4);
        for r in 0..17 {
            let o = p.owner(r);
            let (lo, hi) = p.range(o);
            assert!(r >= lo && r < hi, "row {r} not in its owner's range");
        }
    }

    #[test]
    fn tridiagonal_halo_is_boundary_only() {
        let a = poisson_1d(12);
        let p = BlockRowPartition::balanced(12, 3);
        let halos = p.halo_columns(&a);
        // Middle part [4,8) needs rows 3 and 8.
        assert_eq!(halos[1], vec![3, 8]);
        // End parts need one remote entry each.
        assert_eq!(halos[0], vec![4]);
        assert_eq!(halos[2], vec![7]);
    }

    #[test]
    fn poisson2d_halo_volume_scales_with_cuts() {
        let m = 16;
        let a = poisson_2d(m);
        let p2 = BlockRowPartition::balanced(m * m, 2);
        let p4 = BlockRowPartition::balanced(m * m, 4);
        // Each cut through the grid costs ~2m remote entries (m each side).
        assert_eq!(p2.halo_volume(&a), 2 * m);
        assert_eq!(p4.halo_volume(&a), 6 * m);
    }

    #[test]
    fn more_parts_than_rows() {
        let p = BlockRowPartition::balanced(3, 5);
        assert!(p.has_empty_part());
        let total: usize = (0..5).map(|q| p.len(q)).sum();
        assert_eq!(total, 3);
    }
}
