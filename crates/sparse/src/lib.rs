//! Sparse linear-algebra substrate for the `spcg` workspace.
//!
//! This crate provides everything the s-step PCG solvers need from a sparse
//! linear-algebra library, implemented from scratch:
//!
//! * [`CsrMatrix`] — compressed sparse row storage with symmetric-positive-
//!   definite (SPD) oriented helpers (diagonal extraction, symmetry checks,
//!   Gershgorin bounds) and a cache-friendly sparse matrix-vector product.
//! * [`SellMatrix`] — the same matrices in SELL-C-σ sliced layout: sorted
//!   slices padded column-major so the SpMV inner loop carries many
//!   independent rows at unit stride, bitwise identical to the CSR kernel.
//! * [`CooMatrix`] — a coordinate-format builder used by the generators and
//!   the Matrix Market reader.
//! * [`MultiVector`] — a column-major dense block of vectors (`n × k`) used
//!   for the s-step basis matrices, with blocked BLAS2/BLAS3-style kernels.
//! * [`DenseMat`] — small dense matrices (`O(s) × O(s)`) with Cholesky and
//!   partially pivoted LU factorizations for the "Scalar Work" systems.
//! * [`tridiag`] — a symmetric tridiagonal eigensolver (implicit QL with
//!   Wilkinson shifts) used for Ritz-value estimation.
//! * [`generators`] — synthetic SPD problem generators: 1D/2D/3D Poisson
//!   stencils, anisotropic diffusion, random SPD matrices with prescribed
//!   spectra, and a 40-matrix suite standing in for the SuiteSparse subset
//!   used in the paper's Table 2.
//! * [`io`] — Matrix Market (`.mtx`) reader/writer so real SuiteSparse
//!   matrices can be used when available.
//! * [`partition`] — 1D block-row partitioning used by the distributed
//!   executor in `spcg-dist`.

pub mod blas;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod generators;
pub mod ghost;
pub mod io;
pub mod multivector;
pub mod par;
pub mod partition;
pub mod rng;
pub mod sell;
pub mod smallsolve;
pub mod split;
pub mod tridiag;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMat;
pub use ghost::GhostZone;
pub use multivector::MultiVector;
pub use par::{ParKernels, ThreadPool};
pub use sell::{SellMatrix, SparseFormat};
pub use split::RowSplit;

/// Workspace-wide floating point scalar. The paper's experiments are all in
/// IEEE double precision; the numerical-stability phenomena reproduced here
/// (monomial-basis collapse for `s = 10`) are specific to `f64` round-off.
pub type Scalar = f64;
