//! Small deterministic PRNG for the generators and tests.
//!
//! The workspace builds in hermetic environments with no registry access, so
//! instead of depending on the `rand` crate the generators use this
//! self-contained generator: SplitMix64 seeding feeding xoshiro256++, the
//! same construction `rand`'s `SmallRng` family uses. Quality is far beyond
//! what spectrum-pinned matrix generation needs, and streams are fully
//! determined by the seed, so every generated matrix is reproducible.

/// Deterministic 64-bit PRNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state; the
        // constants are the reference ones from Steele/Lea/Vigna.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "range_f64: empty range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in the *inclusive* range `[0, bound]` via unbiased
    /// rejection sampling.
    pub fn below_inclusive(&mut self, bound: usize) -> usize {
        let m = bound as u64 + 1;
        if m == 0 {
            return self.next_u64() as usize;
        }
        // Rejection zone keeps the draw exactly uniform.
        let zone = u64::MAX - (u64::MAX - m + 1) % m;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return (v % m) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 10k uniform draws is 0.5 within a few standard errors.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng64::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.range_f64(0.2, 1.4);
            assert!((0.2..1.4).contains(&v));
        }
    }

    #[test]
    fn below_inclusive_covers_range() {
        let mut r = Rng64::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below_inclusive(4);
            assert!(v <= 4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
