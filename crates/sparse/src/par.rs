//! Shared-memory parallel kernel layer: [`ThreadPool`] and [`ParKernels`].
//!
//! Parallelizes the per-rank hot path of the solvers — SpMV, the tall-skinny
//! Gram products, and the blocked/fused vector updates — over a persistent
//! pool of OS threads (no external dependencies; plain
//! `std::sync` primitives). The layer obeys one invariant throughout:
//!
//! > **Results are bitwise identical for any thread count.**
//!
//! Elementwise and row-partitioned kernels (SpMV, AXPY, the multivector
//! updates) get this for free: each output element is computed by exactly
//! one thread with the same scalar arithmetic as the serial kernel.
//! Reductions (dot products, Gram matrices) use the *fixed-shape* blocked
//! pairwise summation of [`crate::blas`]: per-[`REDUCE_BLOCK`] partials
//! computed by [`blas::dot_block`] and combined by [`blas::pairwise_sum`],
//! a shape that depends only on the vector length — never on which thread
//! computed which block. `threads = 1` therefore reproduces the serial
//! solver exactly, and the ranked-vs-serial parity tests remain meaningful
//! with threading enabled.
//!
//! Pool ownership: a [`ParKernels`] handle is an `Arc` around its pool, so
//! the executors clone handles freely; the workers park on a condvar while
//! idle and are joined when the last handle drops. With `threads = 1` no
//! worker threads exist at all and every kernel runs inline on the caller.

use crate::blas::{self, pairwise_sum, REDUCE_BLOCK};
use crate::csr::CsrMatrix;
use crate::dense::DenseMat;
use crate::multivector::MultiVector;
use crate::sell::SellMatrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A borrowed parallel job: invoked once per pool member with the member's
/// index. The `'static` lifetime is a lie told to the type system; see the
/// safety argument in [`ThreadPool::run`].
type Job = &'static (dyn Fn(usize) + Sync);

struct PoolState {
    job: Option<Job>,
    /// Bumped per `run` call so sleeping workers recognise fresh work.
    epoch: u64,
    /// Workers that have not yet finished the current job.
    pending: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    start: Condvar,
    done: Condvar,
}

/// A persistent pool of `threads - 1` worker threads; the caller of
/// [`ThreadPool::run`] participates as member 0, so `threads = 1` spawns
/// nothing and runs jobs inline.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` members total (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                pending: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spcg-par-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("ThreadPool: cannot spawn worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// Total pool members (workers plus the calling thread).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(member_index)` once on every pool member (indices
    /// `0..threads`, the caller being member 0) and blocks until all
    /// invocations return. Not reentrant: kernels never nest pool calls.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.threads == 1 {
            f(0);
            return;
        }
        // SAFETY: the job reference is only dereferenced by workers between
        // the notify below and the `pending == 0` handshake at the end of
        // this function, during which `f` is kept alive by this stack
        // frame. The slot is cleared before returning.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(job);
            st.epoch += 1;
            st.pending = self.threads - 1;
            self.shared.start.notify_all();
        }
        f(0);
        let mut st = self.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, id: usize) {
    let mut seen_epoch = 0u64;
    let mut st = shared.state.lock().unwrap();
    loop {
        if st.shutdown {
            return;
        }
        if st.epoch != seen_epoch {
            seen_epoch = st.epoch;
            let job = st.job.expect("ThreadPool: epoch bumped without a job");
            drop(st);
            job(id);
            st = shared.state.lock().unwrap();
            st.pending -= 1;
            if st.pending == 0 {
                shared.done.notify_all();
            }
        } else {
            st = shared.start.wait(st).unwrap();
        }
    }
}

/// A raw pointer that may cross threads. Every use is confined to this
/// crate and guarded by a disjointness argument: concurrent tasks write
/// non-overlapping index ranges of the pointee.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the `Sync`
    /// wrapper, not the raw pointer itself.
    #[inline]
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

/// Handle to the parallel kernel layer. Cheap to clone (an `Arc` around the
/// pool); all kernels are deterministic in the sense documented at the
/// module level.
#[derive(Clone)]
pub struct ParKernels {
    pool: Arc<ThreadPool>,
}

impl std::fmt::Debug for ParKernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParKernels")
            .field("threads", &self.threads())
            .finish()
    }
}

impl ParKernels {
    /// Creates a kernel layer over a fresh pool of `threads` members.
    pub fn new(threads: usize) -> Self {
        ParKernels {
            pool: Arc::new(ThreadPool::new(threads)),
        }
    }

    /// The single-threaded layer: every kernel runs inline on the caller,
    /// reproducing the serial reference arithmetic verbatim.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Pool width.
    #[inline]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Runs `f(task_index)` for every index in `0..ntasks`, distributing
    /// tasks dynamically over the pool. Tasks must be independent; output
    /// placement must depend only on the task index (never on the executing
    /// thread) to preserve determinism.
    pub fn run_indexed<F: Fn(usize) + Sync>(&self, ntasks: usize, f: F) {
        if ntasks == 0 {
            return;
        }
        if self.threads() == 1 || ntasks == 1 {
            for i in 0..ntasks {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        self.pool.run(&|_member| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= ntasks {
                break;
            }
            f(i);
        });
    }

    /// Splits `data` into `chunk`-sized pieces and runs
    /// `f(chunk_index, offset, piece)` on each in parallel. The pieces are
    /// disjoint, so this is the safe gateway for parallel mutation.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "for_each_chunk_mut: zero chunk size");
        let n = data.len();
        if self.threads() == 1 {
            for (c, piece) in data.chunks_mut(chunk).enumerate() {
                f(c, c * chunk, piece);
            }
            return;
        }
        let ptr = SendPtr(data.as_mut_ptr());
        self.run_indexed(n.div_ceil(chunk), |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            // SAFETY: `[lo, hi)` ranges are disjoint across task indices and
            // within bounds; the exclusive borrow of `data` outlives the run.
            let piece = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
            f(c, lo, piece);
        });
    }

    /// Runs `f(range_index, piece)` on the contiguous, disjoint sub-slices
    /// of `data` delimited by `bounds` (as produced by
    /// [`CsrMatrix::row_schedule`] or a preconditioner's block offsets).
    pub fn for_each_range_mut<T, F>(&self, data: &mut [T], bounds: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let nranges = bounds.len().saturating_sub(1);
        debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        if nranges > 0 {
            assert!(
                bounds[nranges] <= data.len(),
                "for_each_range_mut: bounds exceed data"
            );
        }
        if self.threads() == 1 {
            for c in 0..nranges {
                f(c, &mut data[bounds[c]..bounds[c + 1]]);
            }
            return;
        }
        let ptr = SendPtr(data.as_mut_ptr());
        self.run_indexed(nranges, |c| {
            let (lo, hi) = (bounds[c], bounds[c + 1]);
            // SAFETY: the bounds are monotone (checked above), so ranges are
            // disjoint and within the exclusive borrow of `data`.
            let piece = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
            f(c, piece);
        });
    }

    /// Dot product `x · y` — the parallel instance of the fixed-shape
    /// blocked pairwise reduction. Bitwise equal to [`blas::dot`] for any
    /// thread count.
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        let n = x.len();
        if self.threads() == 1 || n <= REDUCE_BLOCK {
            return blas::dot(x, y);
        }
        let mut partials = vec![0.0f64; n.div_ceil(REDUCE_BLOCK)];
        self.for_each_chunk_mut(&mut partials, 1, |b, _, out| {
            let lo = b * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(n);
            out[0] = blas::dot_block(&x[lo..hi], &y[lo..hi]);
        });
        pairwise_sum(&mut partials)
    }

    /// Squared Euclidean norm `‖x‖²`.
    pub fn norm2_sq(&self, x: &[f64]) -> f64 {
        self.dot(x, x)
    }

    /// Sparse matrix-vector product `y ← A·x` over the matrix's cached
    /// nnz-balanced row schedule. Row-partitioned, hence bitwise equal to
    /// [`CsrMatrix::spmv`] for any thread count.
    pub fn spmv(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        if self.threads() == 1 {
            a.spmv(x, y);
            return;
        }
        assert_eq!(x.len(), a.ncols(), "spmv: x length mismatch");
        assert_eq!(y.len(), a.nrows(), "spmv: y length mismatch");
        let bounds = a.row_schedule(self.threads());
        self.for_each_range_mut(y, &bounds, |c, piece| {
            a.spmv_rows(bounds[c], bounds[c + 1], x, piece);
        });
    }

    /// Sparse matrix-vector product `y ← A·x` on the SELL-C-σ layout,
    /// over the matrix's cached padded-work-balanced slice schedule.
    /// Slice-partitioned with an injective output permutation (threads
    /// write disjoint positions), hence bitwise equal to
    /// [`SellMatrix::spmv`] — and to the CSR kernels — for any thread
    /// count.
    pub fn spmv_sell(&self, a: &SellMatrix, x: &[f64], y: &mut [f64]) {
        if self.threads() == 1 || a.nslices() <= 1 {
            a.spmv(x, y);
            return;
        }
        assert!(x.len() >= a.ncols(), "spmv_sell: x length mismatch");
        assert!(y.len() >= a.out_len(), "spmv_sell: y length mismatch");
        let bounds = a.slice_schedule(self.threads());
        let ptr = SendPtr(y.as_mut_ptr());
        self.run_indexed(bounds.len() - 1, |c| {
            // Safety: chunks own disjoint slice ranges, the permutation is
            // injective, and out_len was bounds-checked above — so every
            // write lands in `y` and no position is written twice.
            let mut write = |i: usize, v: f64| unsafe { *ptr.get().add(i) = v };
            a.spmv_slices_into(bounds[c], bounds[c + 1], x, &mut write);
        });
    }

    /// [`ParKernels::spmv_sell`] restricted to the first `nlanes` lane
    /// positions (the ghost-zone frontier's per-level active prefix).
    /// Threads split the full slices of the prefix; the final partial
    /// slice runs inline. Bitwise equal to
    /// [`SellMatrix::spmv_lanes_prefix`] for any thread count.
    pub fn spmv_sell_prefix(&self, a: &SellMatrix, nlanes: usize, x: &[f64], y: &mut [f64]) {
        let full = nlanes / crate::sell::SELL_C;
        if self.threads() == 1 || full <= 1 {
            a.spmv_lanes_prefix(nlanes, x, y);
            return;
        }
        assert!(x.len() >= a.ncols(), "spmv_sell_prefix: x length mismatch");
        let y_len = y.len();
        let ptr = SendPtr(y.as_mut_ptr());
        // Per-call bounds over the prefix of full slices — the active
        // prefix changes per MPK level, so it cannot use the cached
        // full-matrix schedule (mirrors GhostZone::spmv_prefix_par).
        let bounds = crate::csr::nnz_balanced_bounds(a.slice_ptr(), full, self.threads());
        self.run_indexed(bounds.len() - 1, |c| {
            // Safety: disjoint slice ranges + injective permutation; each
            // output index is bounds-checked before the raw write.
            let mut write = |i: usize, v: f64| {
                assert!(i < y_len, "spmv_sell_prefix: y length mismatch");
                unsafe { *ptr.get().add(i) = v }
            };
            a.spmv_slices_into(bounds[c], bounds[c + 1], x, &mut write);
        });
        let rem = nlanes % crate::sell::SELL_C;
        if rem > 0 {
            a.spmv_slice_lanes_into(full, rem, x, &mut |i, v| y[i] = v);
        }
    }

    /// Sparse matrix–multivector product `Y ← A·X` over the matrix's
    /// cached nnz-balanced row schedule — the threaded instance of
    /// [`CsrMatrix::spmm`]. Row-partitioned (each chunk owns its rows in
    /// *every* column), hence column `j` of the result is bitwise equal
    /// to [`ParKernels::spmv`]`(a, x.col(j))` for any thread count.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn spmm(&self, a: &CsrMatrix, x: &MultiVector, y: &mut MultiVector) {
        assert_eq!(x.n(), a.ncols(), "spmm: x row mismatch");
        assert_eq!(y.n(), a.nrows(), "spmm: y row mismatch");
        assert_eq!(x.k(), y.k(), "spmm: column count mismatch");
        if self.threads() == 1 {
            a.spmm(x, y);
            return;
        }
        let bounds = a.row_schedule(self.threads());
        let k = x.k();
        let ptr = SendPtr(y.data_mut().as_mut_ptr());
        if k == 1 {
            self.run_indexed(bounds.len() - 1, |c| {
                // Safety: chunks own disjoint row ranges, and the flat
                // index `j·nrows + r` stays inside `y`'s `nrows·k` buffer
                // for every (row, column) pair — so no position is
                // written twice.
                let mut write = |i: usize, v: f64| unsafe { *ptr.get().add(i) = v };
                a.spmm_rows_into(bounds[c], bounds[c + 1], x, &mut write);
            });
            return;
        }
        // Repack the operand once on the calling thread; every chunk
        // reads the same interleaved buffer.
        CsrMatrix::with_interleaved(x, |xr| {
            self.run_indexed(bounds.len() - 1, |c| {
                // Safety: as above — disjoint row ranges, in-bounds flat
                // indices.
                let mut write = |i: usize, v: f64| unsafe { *ptr.get().add(i) = v };
                a.spmm_rows_interleaved(bounds[c], bounds[c + 1], xr, k, &mut write);
            });
        });
    }

    /// Sparse matrix–multivector product `Y ← A·X` on the SELL-C-σ
    /// layout over the cached padded-work-balanced slice schedule — the
    /// threaded instance of [`SellMatrix::spmm`]. Slice-partitioned with
    /// an injective output permutation per column, hence column `j` of
    /// the result is bitwise equal to [`ParKernels::spmv_sell`] — and to
    /// the CSR kernels — for any thread count.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn spmm_sell(&self, a: &SellMatrix, x: &MultiVector, y: &mut MultiVector) {
        assert!(x.n() >= a.ncols(), "spmm_sell: x row mismatch");
        assert!(y.n() >= a.out_len(), "spmm_sell: y row mismatch");
        assert_eq!(x.k(), y.k(), "spmm_sell: column count mismatch");
        if self.threads() == 1 || a.nslices() <= 1 {
            a.spmm(x, y);
            return;
        }
        let ld = y.n();
        let bounds = a.slice_schedule(self.threads());
        let ptr = SendPtr(y.data_mut().as_mut_ptr());
        self.run_indexed(bounds.len() - 1, |c| {
            // Safety: chunks own disjoint slice ranges, the permutation is
            // injective per column, and `j·ld + row` was bounds-checked by
            // the `out_len`/`k` asserts above.
            let mut write = |i: usize, v: f64| unsafe { *ptr.get().add(i) = v };
            a.spmm_slices_into(bounds[c], bounds[c + 1], x, ld, &mut write);
        });
    }

    /// `y ← y + a·x`.
    pub fn axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        if self.threads() == 1 {
            blas::axpy(a, x, y);
            return;
        }
        self.for_each_chunk_mut(y, REDUCE_BLOCK, |_, lo, piece| {
            blas::axpy(a, &x[lo..lo + piece.len()], piece);
        });
    }

    /// `y ← x + b·y`.
    pub fn xpby(&self, x: &[f64], b: f64, y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "xpby: length mismatch");
        if self.threads() == 1 {
            blas::xpby(x, b, y);
            return;
        }
        self.for_each_chunk_mut(y, REDUCE_BLOCK, |_, lo, piece| {
            blas::xpby(&x[lo..lo + piece.len()], b, piece);
        });
    }

    /// `z ← x - y`.
    pub fn sub(&self, x: &[f64], y: &[f64], z: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "sub: length mismatch");
        assert_eq!(x.len(), z.len(), "sub: output length mismatch");
        if self.threads() == 1 {
            blas::sub(x, y, z);
            return;
        }
        self.for_each_chunk_mut(z, REDUCE_BLOCK, |_, lo, piece| {
            let hi = lo + piece.len();
            blas::sub(&x[lo..hi], &y[lo..hi], piece);
        });
    }

    /// `x ← a·x`.
    pub fn scale(&self, a: f64, x: &mut [f64]) {
        if self.threads() == 1 {
            blas::scale(a, x);
            return;
        }
        self.for_each_chunk_mut(x, REDUCE_BLOCK, |_, _, piece| {
            blas::scale(a, piece);
        });
    }

    /// Pointwise product `z[i] ← w[i] · x[i]` (Jacobi-style applications).
    pub fn pointwise_mul(&self, w: &[f64], x: &[f64], z: &mut [f64]) {
        assert_eq!(w.len(), x.len(), "pointwise_mul: length mismatch");
        assert_eq!(w.len(), z.len(), "pointwise_mul: output length mismatch");
        self.for_each_chunk_mut(z, REDUCE_BLOCK, |_, lo, piece| {
            for (i, zi) in piece.iter_mut().enumerate() {
                *zi = w[lo + i] * x[lo + i];
            }
        });
    }

    /// Fused PCG column step for pointwise preconditioners:
    /// `x ← x + α·p`, `r ← r − α·s`, `u ← w ∘ r`, returning `r · u` —
    /// one sweep over the column instead of four. Every element sees the
    /// identical expression it would see from the separate
    /// [`ParKernels::axpy`] / [`ParKernels::pointwise_mul`] /
    /// [`ParKernels::dot`] calls, and the returned dot keeps the
    /// fixed-shape blocked pairwise reduction (the fusion blocks *are*
    /// the reduction blocks), so the result is bitwise identical to the
    /// unfused sequence for any thread count. What changes is traffic:
    /// `r`'s update, its preconditioned image, and the dot all happen
    /// while the block is cache-hot, instead of three DRAM round trips.
    #[allow(clippy::too_many_arguments)]
    pub fn pcg_step_fused(
        &self,
        alpha: f64,
        p: &[f64],
        s: &[f64],
        w: &[f64],
        x: &mut [f64],
        r: &mut [f64],
        u: &mut [f64],
    ) -> f64 {
        let n = x.len();
        assert_eq!(p.len(), n, "pcg_step_fused: p length mismatch");
        assert_eq!(s.len(), n, "pcg_step_fused: s length mismatch");
        assert_eq!(w.len(), n, "pcg_step_fused: w length mismatch");
        assert_eq!(r.len(), n, "pcg_step_fused: r length mismatch");
        assert_eq!(u.len(), n, "pcg_step_fused: u length mismatch");
        let nblocks = n.div_ceil(REDUCE_BLOCK).max(1);
        let mut partials = vec![0.0f64; nblocks];
        if self.threads() == 1 {
            for (b, out) in partials.iter_mut().enumerate() {
                let lo = b * REDUCE_BLOCK;
                let hi = (lo + REDUCE_BLOCK).min(n);
                *out = pcg_fused_block(
                    alpha,
                    &p[lo..hi],
                    &s[lo..hi],
                    &w[lo..hi],
                    &mut x[lo..hi],
                    &mut r[lo..hi],
                    &mut u[lo..hi],
                );
            }
            return pairwise_sum(&mut partials);
        }
        let (px, pr, pu) = (
            SendPtr(x.as_mut_ptr()),
            SendPtr(r.as_mut_ptr()),
            SendPtr(u.as_mut_ptr()),
        );
        self.for_each_chunk_mut(&mut partials, 1, |b, _, out| {
            let lo = b * REDUCE_BLOCK;
            let hi = (lo + REDUCE_BLOCK).min(n);
            // Safety: each task owns the disjoint block `[lo, hi)` of
            // `x`, `r`, and `u`, all of length `n ≥ hi`.
            let (xs, rs, us) = unsafe {
                (
                    std::slice::from_raw_parts_mut(px.get().add(lo), hi - lo),
                    std::slice::from_raw_parts_mut(pr.get().add(lo), hi - lo),
                    std::slice::from_raw_parts_mut(pu.get().add(lo), hi - lo),
                )
            };
            out[0] = pcg_fused_block(alpha, &p[lo..hi], &s[lo..hi], &w[lo..hi], xs, rs, us);
        });
        pairwise_sum(&mut partials)
    }

    /// Fused three-term recurrence update
    /// `out[i] ← ρ·(base[i] + γ·dir[i]) + (1−ρ)·prev[i]`
    /// (PCG3 / CA-PCG3 iterate reconstruction; pass `−γ` for the residual
    /// form `base − γ·dir`).
    pub fn three_term(
        &self,
        rho: f64,
        gamma: f64,
        base: &[f64],
        dir: &[f64],
        prev: &[f64],
        out: &mut [f64],
    ) {
        let n = out.len();
        assert!(
            base.len() == n && dir.len() == n && prev.len() == n,
            "three_term: length mismatch"
        );
        self.for_each_chunk_mut(out, REDUCE_BLOCK, |_, lo, piece| {
            for (i, oi) in piece.iter_mut().enumerate() {
                let g = lo + i;
                *oi = rho * (base[g] + gamma * dir[g]) + (1.0 - rho) * prev[g];
            }
        });
    }

    /// Gram product `aᵀ · b` with the fixed-shape blocked pairwise
    /// reduction per entry. Bitwise equal to [`MultiVector::gram`] for any
    /// thread count.
    pub fn gram(&self, a: &MultiVector, b: &MultiVector) -> DenseMat {
        assert_eq!(a.n(), b.n(), "gram: row mismatch");
        let acols: Vec<&[f64]> = (0..a.k()).map(|i| a.col(i)).collect();
        let bcols: Vec<&[f64]> = (0..b.k()).map(|j| b.col(j)).collect();
        self.gram_cols(a.n(), &acols, &bcols)
    }

    /// Fused Gram product over explicit column sets: one pass over the rows
    /// computes all `|acols| × |bcols|` entries with register-blocked 2×2
    /// column tiles. The concatenated-block Gram `[Z|W]ᵀ·[Y|V]` of the
    /// s-step methods feeds all four sub-blocks through a single call, so
    /// each row block of every column is streamed once instead of once per
    /// sub-block pair.
    ///
    /// Per (i, j) entry the accumulation shape is exactly
    /// `pairwise_sum(dot_block per REDUCE_BLOCK)` — independent of tiling,
    /// fusion, and thread count.
    pub fn gram_cols(&self, n: usize, acols: &[&[f64]], bcols: &[&[f64]]) -> DenseMat {
        gram_cols_impl(Some(self), n, acols, bcols)
    }

    /// BLAS2 accumulation `out ← out + a · mv · coeffs`, row-partitioned.
    pub fn gemv_acc(&self, mv: &MultiVector, a: f64, coeffs: &[f64], out: &mut [f64]) {
        if self.threads() == 1 {
            mv.gemv_acc(a, coeffs, out);
            return;
        }
        assert_eq!(
            coeffs.len(),
            mv.k(),
            "gemv_acc: coefficient length mismatch"
        );
        assert_eq!(out.len(), mv.n(), "gemv_acc: output length mismatch");
        self.for_each_chunk_mut(out, REDUCE_BLOCK, |_, lo, piece| {
            mv.gemv_acc_block(a, coeffs, lo, piece);
        });
    }

    /// BLAS2 product `out ← mv · coeffs`.
    pub fn gemv(&self, mv: &MultiVector, coeffs: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), mv.n(), "gemv: output length mismatch");
        self.for_each_chunk_mut(out, REDUCE_BLOCK, |_, _, piece| {
            blas::zero(piece);
        });
        self.gemv_acc(mv, 1.0, coeffs, out);
    }

    /// BLAS3 accumulation `out ← out + src · b`, row-partitioned with the
    /// same row blocks and loop nesting as
    /// [`MultiVector::gemm_small_acc`], hence bitwise equal to it.
    pub fn gemm_small_acc(&self, src: &MultiVector, b: &DenseMat, out: &mut MultiVector) {
        if self.threads() == 1 {
            src.gemm_small_acc(b, out);
            return;
        }
        assert_eq!(
            b.nrows(),
            src.k(),
            "gemm_small_acc: inner dimension mismatch"
        );
        assert_eq!(out.n(), src.n(), "gemm_small_acc: output rows mismatch");
        assert_eq!(out.k(), b.ncols(), "gemm_small_acc: output cols mismatch");
        let n = src.n();
        let kdst = out.k();
        let ksrc = src.k();
        let sdata = src.data();
        let ptr = SendPtr(out.data_mut().as_mut_ptr());
        self.run_indexed(n.div_ceil(REDUCE_BLOCK), |blk| {
            let row = blk * REDUCE_BLOCK;
            let hi = (row + REDUCE_BLOCK).min(n);
            for j in 0..kdst {
                let dst_ptr = j * n + row;
                // SAFETY: output row block `[row, hi)` of column j is touched
                // by this task index only; the exclusive borrow of `out`
                // outlives the run.
                let dst =
                    unsafe { std::slice::from_raw_parts_mut(ptr.get().add(dst_ptr), hi - row) };
                for l in 0..ksrc {
                    let c = b[(l, j)];
                    if c == 0.0 {
                        continue;
                    }
                    let src_col = &sdata[l * n + row..l * n + hi];
                    for (d, &s) in dst.iter_mut().zip(src_col) {
                        *d += c * s;
                    }
                }
            }
        });
    }
}

/// Shared Gram implementation: `pk = None` is the serial reference used by
/// [`MultiVector::gram`]; `Some` parallelizes the per-block partials. The
/// partial layout and the pairwise combine are identical in both paths.
pub(crate) fn gram_cols_impl(
    pk: Option<&ParKernels>,
    n: usize,
    acols: &[&[f64]],
    bcols: &[&[f64]],
) -> DenseMat {
    let (ka, kb) = (acols.len(), bcols.len());
    let mut out = DenseMat::zeros(ka, kb);
    if ka == 0 || kb == 0 || n == 0 {
        return out;
    }
    debug_assert!(acols.iter().chain(bcols).all(|c| c.len() == n));
    let nblocks = n.div_ceil(REDUCE_BLOCK);
    let kk = ka * kb;
    let mut partials = vec![0.0f64; nblocks * kk];
    match pk {
        Some(pk) if pk.threads() > 1 && nblocks > 1 => {
            pk.for_each_chunk_mut(&mut partials, kk, |blk, _, piece| {
                fill_gram_block(n, acols, bcols, blk, piece);
            });
        }
        _ => {
            for (blk, piece) in partials.chunks_mut(kk).enumerate() {
                fill_gram_block(n, acols, bcols, blk, piece);
            }
        }
    }
    let mut scratch = vec![0.0f64; nblocks];
    for i in 0..ka {
        for j in 0..kb {
            for blk in 0..nblocks {
                scratch[blk] = partials[blk * kk + i * kb + j];
            }
            out[(i, j)] = pairwise_sum(&mut scratch);
        }
    }
    out
}

/// Computes the `ka × kb` partial Gram tile of one row block into `out`
/// (row-major), register-blocking the columns 2×2 so each loaded row chunk
/// feeds four accumulators. Each entry's arithmetic sequence is exactly
/// [`blas::dot_block`] on the same rows.
fn fill_gram_block(n: usize, acols: &[&[f64]], bcols: &[&[f64]], blk: usize, out: &mut [f64]) {
    let lo = blk * REDUCE_BLOCK;
    let hi = (lo + REDUCE_BLOCK).min(n);
    let (ka, kb) = (acols.len(), bcols.len());
    let mut i = 0;
    while i + 2 <= ka {
        let a0 = &acols[i][lo..hi];
        let a1 = &acols[i + 1][lo..hi];
        let mut j = 0;
        while j + 2 <= kb {
            let (s00, s01, s10, s11) =
                dot_block_2x2(a0, a1, &bcols[j][lo..hi], &bcols[j + 1][lo..hi]);
            out[i * kb + j] = s00;
            out[i * kb + j + 1] = s01;
            out[(i + 1) * kb + j] = s10;
            out[(i + 1) * kb + j + 1] = s11;
            j += 2;
        }
        if j < kb {
            let bj = &bcols[j][lo..hi];
            out[i * kb + j] = blas::dot_block(a0, bj);
            out[(i + 1) * kb + j] = blas::dot_block(a1, bj);
        }
        i += 2;
    }
    if i < ka {
        let ai = &acols[i][lo..hi];
        for j in 0..kb {
            out[i * kb + j] = blas::dot_block(ai, &bcols[j][lo..hi]);
        }
    }
}

/// One [`REDUCE_BLOCK`]-sized block of [`ParKernels::pcg_step_fused`]:
/// the two AXPYs, the pointwise preconditioner application, and the
/// block's dot partial, each via the exact per-element expression (and
/// for the dot, the exact [`blas::dot_block`] kernel) of the unfused
/// operations.
fn pcg_fused_block(
    alpha: f64,
    p: &[f64],
    s: &[f64],
    w: &[f64],
    x: &mut [f64],
    r: &mut [f64],
    u: &mut [f64],
) -> f64 {
    blas::axpy(alpha, p, x);
    blas::axpy(-alpha, s, r);
    for (i, ui) in u.iter_mut().enumerate() {
        *ui = w[i] * r[i];
    }
    blas::dot_block(r, u)
}

/// Four simultaneous block dots sharing loads: `(a0·b0, a0·b1, a1·b0,
/// a1·b1)`. Each product follows the exact four-lane + tail accumulation
/// order of [`blas::dot_block`], so tiling does not perturb a single bit.
fn dot_block_2x2(a0: &[f64], a1: &[f64], b0: &[f64], b1: &[f64]) -> (f64, f64, f64, f64) {
    let n = a0.len();
    let mut acc00 = [0.0f64; 4];
    let mut acc01 = [0.0f64; 4];
    let mut acc10 = [0.0f64; 4];
    let mut acc11 = [0.0f64; 4];
    let chunks = n / 4;
    for c in 0..chunks {
        let base = c * 4;
        for k in 0..4 {
            let x0 = a0[base + k];
            let x1 = a1[base + k];
            let y0 = b0[base + k];
            let y1 = b1[base + k];
            acc00[k] += x0 * y0;
            acc01[k] += x0 * y1;
            acc10[k] += x1 * y0;
            acc11[k] += x1 * y1;
        }
    }
    let mut t = [0.0f64; 4];
    for i in chunks * 4..n {
        t[0] += a0[i] * b0[i];
        t[1] += a0[i] * b1[i];
        t[2] += a1[i] * b0[i];
        t[3] += a1[i] * b1[i];
    }
    (
        (acc00[0] + acc00[1]) + (acc00[2] + acc00[3]) + t[0],
        (acc01[0] + acc01[1]) + (acc01[2] + acc01[3]) + t[1],
        (acc10[0] + acc10[1]) + (acc10[2] + acc10[3]) + t[2],
        (acc11[0] + acc11[1]) + (acc11[2] + acc11[3]) + t[3],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson::{poisson_2d, poisson_3d};
    use crate::rng::Rng64;

    const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng64::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64() - 0.5).collect()
    }

    fn random_mv(n: usize, k: usize, seed: u64) -> MultiVector {
        let cols: Vec<Vec<f64>> = (0..k).map(|j| random_vec(n, seed + j as u64)).collect();
        MultiVector::from_columns(&cols)
    }

    #[test]
    fn pool_runs_every_member_and_is_reusable() {
        let pool = ThreadPool::new(4);
        for _ in 0..3 {
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(&|id| {
                hits[id].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        }
    }

    #[test]
    fn run_indexed_covers_all_tasks_once() {
        for t in THREAD_COUNTS {
            let pk = ParKernels::new(t);
            let ntasks = 57;
            let hits: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
            pk.run_indexed(ntasks, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn for_each_chunk_mut_touches_disjoint_pieces() {
        for t in THREAD_COUNTS {
            let pk = ParKernels::new(t);
            let mut data = vec![0usize; 10_000];
            pk.for_each_chunk_mut(&mut data, 1024, |c, lo, piece| {
                for (i, v) in piece.iter_mut().enumerate() {
                    *v = c * 1_000_000 + lo + i;
                }
            });
            for (g, &v) in data.iter().enumerate() {
                assert_eq!(v, (g / 1024) * 1_000_000 + g);
            }
        }
    }

    #[test]
    fn dot_is_bitwise_identical_across_thread_counts() {
        for n in [8usize, 1000, 1024, 1025, 4096, 100_003] {
            let x = random_vec(n, 11);
            let y = random_vec(n, 99);
            let serial = blas::dot(&x, &y);
            for t in THREAD_COUNTS {
                let pk = ParKernels::new(t);
                assert_eq!(pk.dot(&x, &y), serial, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn spmv_is_bitwise_identical_across_thread_counts() {
        let a = poisson_3d(14); // n = 2744 — several schedule chunks
        let x = random_vec(a.ncols(), 5);
        let mut serial = vec![0.0; a.nrows()];
        a.spmv(&x, &mut serial);
        for t in THREAD_COUNTS {
            let pk = ParKernels::new(t);
            let mut y = vec![1.0; a.nrows()];
            pk.spmv(&a, &x, &mut y);
            assert_eq!(y, serial, "t={t}");
        }
    }

    #[test]
    fn spmv_sell_is_bitwise_identical_across_thread_counts() {
        let a = poisson_3d(14); // n = 2744 — several slice-schedule chunks
        let sell = a.sell();
        let x = random_vec(a.ncols(), 5);
        let mut serial = vec![0.0; a.nrows()];
        a.spmv(&x, &mut serial);
        for t in THREAD_COUNTS {
            let pk = ParKernels::new(t);
            let mut y = vec![1.0; a.nrows()];
            pk.spmv_sell(&sell, &x, &mut y);
            assert_eq!(y, serial, "t={t}");
        }
    }

    #[test]
    fn spmv_sell_prefix_is_bitwise_identical_across_thread_counts() {
        let a = poisson_2d(40); // 1600 rows in one ascending list
        let rows: Vec<usize> = (0..a.nrows()).collect();
        let sell = SellMatrix::from_rows(a.row_ptr(), a.col_idx(), a.values(), &rows);
        let x = random_vec(a.ncols(), 17);
        let mut full = vec![0.0; a.nrows()];
        a.spmv(&x, &mut full);
        for cut in [0usize, 31, 32, 33, 500, 1600] {
            let mut serial = vec![f64::NAN; a.nrows()];
            sell.spmv_lanes_prefix(cut, &x, &mut serial);
            for t in THREAD_COUNTS {
                let pk = ParKernels::new(t);
                let mut y = vec![f64::NAN; a.nrows()];
                pk.spmv_sell_prefix(&sell, cut, &x, &mut y);
                for r in 0..cut {
                    assert_eq!(y[r].to_bits(), full[r].to_bits(), "t={t} cut={cut} r={r}");
                    assert_eq!(y[r].to_bits(), serial[r].to_bits(), "t={t} cut={cut} r={r}");
                }
            }
        }
    }

    #[test]
    fn spmm_columns_match_spmv_bitwise_for_any_thread_count() {
        let a = poisson_3d(14);
        let n = a.nrows();
        for k in [1usize, 2, 4, 8] {
            let x = random_mv(n, k, 31 + k as u64);
            for t in THREAD_COUNTS {
                let pk = ParKernels::new(t);
                let mut y = random_mv(n, k, 99);
                pk.spmm(&a, &x, &mut y);
                for j in 0..k {
                    let mut want = vec![0.0; n];
                    a.spmv(x.col(j), &mut want);
                    assert_eq!(y.col(j), &want[..], "k={k} t={t} col={j}");
                }
            }
        }
    }

    #[test]
    fn spmm_sell_columns_match_spmv_bitwise_for_any_thread_count() {
        let a = poisson_3d(14);
        let sell = a.sell();
        let n = a.nrows();
        for k in [1usize, 2, 4, 8] {
            let x = random_mv(n, k, 53 + k as u64);
            for t in THREAD_COUNTS {
                let pk = ParKernels::new(t);
                let mut y = random_mv(n, k, 7);
                pk.spmm_sell(&sell, &x, &mut y);
                for j in 0..k {
                    let mut want = vec![0.0; n];
                    a.spmv(x.col(j), &mut want);
                    assert_eq!(y.col(j), &want[..], "k={k} t={t} col={j}");
                }
            }
        }
    }

    #[test]
    fn gram_is_bitwise_identical_across_thread_counts() {
        let n = 5 * REDUCE_BLOCK + 321;
        let a = random_mv(n, 5, 7);
        let b = random_mv(n, 6, 1007);
        let serial = a.gram(&b);
        for t in THREAD_COUNTS {
            let pk = ParKernels::new(t);
            let g = pk.gram(&a, &b);
            for i in 0..5 {
                for j in 0..6 {
                    assert_eq!(g[(i, j)], serial[(i, j)], "t={t} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn gram_matches_naive_dot_products() {
        let n = 2 * REDUCE_BLOCK + 10;
        let a = random_mv(n, 3, 21);
        let b = random_mv(n, 4, 22);
        let g = ParKernels::new(4).gram(&a, &b);
        for i in 0..3 {
            for j in 0..4 {
                let naive: f64 = a.col(i).iter().zip(b.col(j)).map(|(p, q)| p * q).sum();
                assert!((g[(i, j)] - naive).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn fused_gram_cols_equals_blockwise_grams() {
        // The fused concatenated Gram must reproduce the four independent
        // sub-block Grams bitwise (the per-pair reduction shape does not
        // see the concatenation).
        let n = 3 * REDUCE_BLOCK + 77;
        let zl = random_mv(n, 3, 31);
        let zr = random_mv(n, 2, 32);
        let yl = random_mv(n, 3, 33);
        let yr = random_mv(n, 4, 34);
        let pk = ParKernels::new(4);
        let acols: Vec<&[f64]> = (0..3)
            .map(|i| zl.col(i))
            .chain((0..2).map(|i| zr.col(i)))
            .collect();
        let bcols: Vec<&[f64]> = (0..3)
            .map(|j| yl.col(j))
            .chain((0..4).map(|j| yr.col(j)))
            .collect();
        let fused = pk.gram_cols(n, &acols, &bcols);
        let blocks = [
            (0, 0, pk.gram(&zl, &yl)),
            (0, 3, pk.gram(&zl, &yr)),
            (3, 0, pk.gram(&zr, &yl)),
            (3, 3, pk.gram(&zr, &yr)),
        ];
        for (ri, rj, g) in &blocks {
            for i in 0..g.nrows() {
                for j in 0..g.ncols() {
                    assert_eq!(fused[(ri + i, rj + j)], g[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn elementwise_kernels_match_serial_bitwise() {
        let n = 4 * REDUCE_BLOCK + 13;
        let x = random_vec(n, 3);
        let p = random_vec(n, 4);
        for t in THREAD_COUNTS {
            let pk = ParKernels::new(t);

            let mut y_ser = p.clone();
            blas::axpy(0.37, &x, &mut y_ser);
            let mut y_par = p.clone();
            pk.axpy(0.37, &x, &mut y_par);
            assert_eq!(y_par, y_ser, "axpy t={t}");

            let mut y_ser = p.clone();
            blas::xpby(&x, -1.4, &mut y_ser);
            let mut y_par = p.clone();
            pk.xpby(&x, -1.4, &mut y_par);
            assert_eq!(y_par, y_ser, "xpby t={t}");

            let mut z_ser = vec![0.0; n];
            blas::sub(&x, &p, &mut z_ser);
            let mut z_par = vec![1.0; n];
            pk.sub(&x, &p, &mut z_par);
            assert_eq!(z_par, z_ser, "sub t={t}");

            let mut z_ser = vec![0.0; n];
            for i in 0..n {
                z_ser[i] = x[i] * p[i];
            }
            let mut z_par = vec![0.0; n];
            pk.pointwise_mul(&x, &p, &mut z_par);
            assert_eq!(z_par, z_ser, "pointwise t={t}");

            let prev = random_vec(n, 5);
            let (rho, gamma) = (1.7, 0.23);
            let mut o_ser = vec![0.0; n];
            for i in 0..n {
                o_ser[i] = rho * (x[i] + gamma * p[i]) + (1.0 - rho) * prev[i];
            }
            let mut o_par = vec![0.0; n];
            pk.three_term(rho, gamma, &x, &p, &prev, &mut o_par);
            assert_eq!(o_par, o_ser, "three_term t={t}");
        }
    }

    #[test]
    fn gemv_and_gemm_match_serial_bitwise() {
        let n = 3 * REDUCE_BLOCK + 5;
        let mv = random_mv(n, 5, 41);
        let coeffs = [0.3, -1.0, 0.0, 2.5, 0.125];
        let b =
            DenseMat::from_row_major(5, 4, (0..20).map(|i| ((i * 13 % 7) as f64) - 3.0).collect());
        let base = random_mv(n, 4, 55);

        let mut out_ser = random_vec(n, 60);
        let out0 = out_ser.clone();
        mv.gemv_acc(1.5, &coeffs, &mut out_ser);
        let mut g_ser = base.clone();
        mv.gemm_small_acc(&b, &mut g_ser);

        for t in THREAD_COUNTS {
            let pk = ParKernels::new(t);
            let mut out_par = out0.clone();
            pk.gemv_acc(&mv, 1.5, &coeffs, &mut out_par);
            assert_eq!(out_par, out_ser, "gemv_acc t={t}");

            let mut g_par = base.clone();
            pk.gemm_small_acc(&mv, &b, &mut g_par);
            assert_eq!(g_par, g_ser, "gemm_small_acc t={t}");
        }
    }

    #[test]
    fn blocked_update_par_matches_serial() {
        let n = 2 * REDUCE_BLOCK + 9;
        let u = random_mv(n, 3, 71);
        let b = DenseMat::from_row_major(3, 3, (0..9).map(|i| i as f64 * 0.1 - 0.3).collect());
        let mut p_ser = random_mv(n, 3, 72);
        let p0 = p_ser.clone();
        let mut scratch = MultiVector::zeros(n, 3);
        p_ser.blocked_update(&u, &b, &mut scratch);
        for t in THREAD_COUNTS {
            let pk = ParKernels::new(t);
            let mut p_par = p0.clone();
            let mut scratch = MultiVector::zeros(n, 3);
            p_par.blocked_update_par(&pk, &u, &b, &mut scratch);
            assert_eq!(p_par, p_ser, "t={t}");
        }
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let pk = ParKernels::new(8);
        let a = poisson_2d(3); // n = 9, fewer rows than threads
        let x = random_vec(9, 2);
        let mut y = vec![0.0; 9];
        pk.spmv(&a, &x, &mut y);
        let mut serial = vec![0.0; 9];
        a.spmv(&x, &mut serial);
        assert_eq!(y, serial);
        assert_eq!(pk.dot(&x, &x), blas::dot(&x, &x));
    }
}
