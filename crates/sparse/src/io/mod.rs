//! Matrix file I/O.

mod matrix_market;

pub use matrix_market::{read_matrix_market, read_matrix_market_str, write_matrix_market, MmError};
