//! Matrix Market (`.mtx`) coordinate-format reader and writer.
//!
//! Supports the subset needed for SuiteSparse SPD matrices:
//! `%%MatrixMarket matrix coordinate real {general|symmetric}` and
//! `coordinate pattern` (pattern entries become 1.0). Symmetric files store
//! the lower triangle; the reader mirrors off-diagonal entries.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// I/O failure reading the file.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse { line: usize, msg: String },
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "matrix market io error: {e}"),
            MmError::Parse { line, msg } => {
                write!(f, "matrix market parse error (line {line}): {msg}")
            }
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> MmError {
    MmError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<CsrMatrix, MmError> {
    let text = fs::read_to_string(path)?;
    read_matrix_market_str(&text)
}

/// Parses Matrix Market content from a string.
pub fn read_matrix_market_str(text: &str) -> Result<CsrMatrix, MmError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty file"))?;
    let header_lc = header.to_ascii_lowercase();
    let fields: Vec<&str> = header_lc.split_whitespace().collect();
    if fields.len() < 5 || !fields[0].starts_with("%%matrixmarket") {
        return Err(parse_err(1, "missing %%MatrixMarket header"));
    }
    if fields[1] != "matrix" || fields[2] != "coordinate" {
        return Err(parse_err(
            1,
            format!("unsupported object/format: {} {}", fields[1], fields[2]),
        ));
    }
    let pattern = match fields[3] {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(parse_err(1, format!("unsupported field type: {other}"))),
    };
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(1, format!("unsupported symmetry: {other}"))),
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for (i, l) in lines.by_ref() {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((i + 1, t.to_string()));
        break;
    }
    let (size_lineno, size_text) = size_line.ok_or_else(|| parse_err(0, "missing size line"))?;
    let dims: Vec<usize> = size_text
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| parse_err(size_lineno, "bad size entry"))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err(size_lineno, "size line must have 3 entries"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for (i, l) in lines {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let lineno = i + 1;
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing row index"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad row index"))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing column index"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad column index"))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err(lineno, "missing value"))?
                .parse()
                .map_err(|_| parse_err(lineno, "bad value"))?
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(lineno, format!("index ({r},{c}) out of bounds")));
        }
        // Matrix Market is 1-based.
        if symmetric {
            coo.push_sym(r - 1, c - 1, v);
        } else {
            coo.push(r - 1, c - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            0,
            format!("expected {nnz} entries, found {seen}"),
        ));
    }
    Ok(coo.to_csr())
}

/// Writes a CSR matrix as `coordinate real general` (or `symmetric` when the
/// matrix is symmetric, storing only the lower triangle).
pub fn write_matrix_market(a: &CsrMatrix, path: impl AsRef<Path>) -> std::io::Result<()> {
    let symmetric = a.is_symmetric(0.0);
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix coordinate real ");
    out.push_str(if symmetric {
        "symmetric\n"
    } else {
        "general\n"
    });
    out.push_str("% written by spcg-sparse\n");
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if symmetric && c > r {
                continue;
            }
            entries.push((r + 1, c + 1, v));
        }
    }
    out.push_str(&format!("{} {} {}\n", a.nrows(), a.ncols(), entries.len()));
    for (r, c, v) in entries {
        out.push_str(&format!("{r} {c} {v:.17e}\n"));
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n% comment\n2 2 3\n1 1 2.0\n2 2 3.0\n1 2 -1.0\n";
        let a = read_matrix_market_str(text).unwrap();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn parses_symmetric_and_mirrors() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 4\n1 1 4.0\n2 1 -1.0\n2 2 4.0\n3 3 4.0\n";
        let a = read_matrix_market_str(text).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn parses_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let a = read_matrix_market_str(text).unwrap();
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market_str("garbage\n1 1 0\n").is_err());
        assert!(read_matrix_market_str("%%MatrixMarket matrix array real general\n1 1\n").is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market_str(text),
            Err(MmError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_out_of_bounds_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market_str(text).is_err());
    }

    #[test]
    fn roundtrip_through_file() {
        let a = crate::generators::poisson::poisson_2d(5);
        let dir = std::env::temp_dir();
        let path = dir.join("spcg_mm_roundtrip_test.mtx");
        write_matrix_market(&a, &path).unwrap();
        let b = read_matrix_market(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-15);
            }
        }
    }
}
