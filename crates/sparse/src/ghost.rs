//! Depth-s ghost zones for the distributed matrix powers kernel.
//!
//! A rank owning the contiguous row block `[lo, hi)` can compute `s` levels
//! of the MPK recurrence from a **single** neighbour exchange if it first
//! fetches every vector entry within graph distance `s` of its block (the
//! "PA1" scheme of Demmel et al.): level `j` of the recurrence is then
//! valid on `reach(s − j)` and the final level exactly on the owned rows.
//!
//! [`GhostZone`] precomputes the reachability sets by breadth-first search
//! over the column structure of `A`, orders the extended index set so each
//! reach set is a *prefix* (owned rows first, then ghosts grouped by BFS
//! distance), and builds a remapped local CSR operator over that extended
//! index space. Entry order within each row is preserved, so row sums are
//! bitwise identical to the global SpMV's.

use crate::csr::CsrMatrix;
use crate::multivector::MultiVector;
use crate::sell::SellMatrix;
use std::sync::{Arc, Mutex};

/// The depth-s reachability structure of one rank's row block.
#[derive(Debug)]
pub struct GhostZone {
    lo: usize,
    hi: usize,
    depth: usize,
    /// Extended index set in global row numbers: `[lo, hi)` in order, then
    /// ghosts grouped by BFS distance (each group sorted ascending).
    ext: Vec<usize>,
    /// `prefix[d]` = |reach(d)| for `d = 0 ..= depth`; `prefix[0]` is the
    /// owned count and `prefix[depth] == ext.len()`.
    prefix: Vec<usize>,
    /// Rows `0 .. prefix[depth-1]` of `A` restricted to the extended index
    /// space, stored raw: the renumbered columns are not ascending (ghosts
    /// are ordered by BFS distance), so this cannot be a [`CsrMatrix`].
    /// Entry order within each row is the original ascending-global order,
    /// which keeps row-sum rounding identical to the global SpMV.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Local (extended-space) indices of owned rows whose columns all fall
    /// inside the owned prefix `[0, n_owned)` — computable before the halo
    /// exchange completes. Ascending; from the matrix's cached
    /// [`crate::RowSplit`].
    interior: Vec<usize>,
    /// Local indices of all other local rows (owned rows touching ghost
    /// columns, plus every ghost row). Ascending; together with `interior`
    /// this partitions `[0, reach_len(depth−1))`.
    frontier: Vec<usize>,
    /// Lazily packed SELL-C-σ layout of the interior row list (identity
    /// lane order — no σ-sort, so `perm` is the list itself).
    sell_interior: Mutex<Option<Arc<SellMatrix>>>,
    /// Lazily packed SELL-C-σ layout of the frontier row list. The list is
    /// ascending, so the per-level prefix cut `rows < nrows` is a lane
    /// prefix.
    sell_frontier: Mutex<Option<Arc<SellMatrix>>>,
}

impl Clone for GhostZone {
    fn clone(&self) -> Self {
        // The SELL packings are derived data; the clone rebuilds on demand.
        GhostZone {
            lo: self.lo,
            hi: self.hi,
            depth: self.depth,
            ext: self.ext.clone(),
            prefix: self.prefix.clone(),
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.clone(),
            interior: self.interior.clone(),
            frontier: self.frontier.clone(),
            sell_interior: Mutex::new(None),
            sell_frontier: Mutex::new(None),
        }
    }
}

impl GhostZone {
    /// Builds the depth-`depth` ghost zone of rows `[lo, hi)` of `a`.
    ///
    /// # Panics
    /// Panics if `depth == 0`, the range is invalid, or `a` is not square.
    pub fn new(a: &CsrMatrix, lo: usize, hi: usize, depth: usize) -> Self {
        assert!(depth >= 1, "GhostZone: depth must be at least 1");
        assert!(lo <= hi && hi <= a.nrows(), "GhostZone: invalid row range");
        assert_eq!(a.nrows(), a.ncols(), "GhostZone: matrix must be square");
        let n = a.nrows();

        // pos[g] = position of global index g in `ext`, or usize::MAX.
        let mut pos = vec![usize::MAX; n];
        let mut ext: Vec<usize> = (lo..hi).collect();
        for (p, &g) in ext.iter().enumerate() {
            pos[g] = p;
        }
        let mut prefix = vec![ext.len()];

        // BFS level by level: frontier = indices first reached at level d.
        let mut frontier_begin = 0usize;
        for _ in 0..depth {
            let frontier_end = ext.len();
            let mut next: Vec<usize> = Vec::new();
            for p in frontier_begin..frontier_end {
                let (cols, _) = a.row(ext[p]);
                for &c in cols {
                    if pos[c] == usize::MAX {
                        pos[c] = usize::MAX - 1; // mark, number after sorting
                        next.push(c);
                    }
                }
            }
            next.sort_unstable();
            for &g in &next {
                pos[g] = ext.len();
                ext.push(g);
            }
            frontier_begin = frontier_end;
            prefix.push(ext.len());
        }

        // Remapped rows 0 .. prefix[depth-1] in original entry order.
        let nrows_local = prefix[depth - 1];
        let mut row_ptr = Vec::with_capacity(nrows_local + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for p in 0..nrows_local {
            let (cols, vals) = a.row(ext[p]);
            for (&c, &v) in cols.iter().zip(vals) {
                debug_assert!(pos[c] < ext.len(), "ghost closure violated");
                col_idx.push(pos[c]);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }

        // Interior/frontier split: owned rows classified by the matrix's
        // cached RowSplit (global columns in [lo, hi) ⇔ remapped columns in
        // the owned prefix); ghost rows always join the frontier — their
        // operands include ghost entries regardless of structure.
        let n_owned = hi - lo;
        let split = a.row_split(lo, hi);
        let interior: Vec<usize> = split.interior().iter().map(|&g| g - lo).collect();
        let mut frontier: Vec<usize> = split.frontier().iter().map(|&g| g - lo).collect();
        frontier.extend(n_owned..nrows_local);

        GhostZone {
            lo,
            hi,
            depth,
            ext,
            prefix,
            row_ptr,
            col_idx,
            values,
            interior,
            frontier,
            sell_interior: Mutex::new(None),
            sell_frontier: Mutex::new(None),
        }
    }

    /// Owned row range `[lo, hi)`.
    pub fn range(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Number of owned rows.
    pub fn n_owned(&self) -> usize {
        self.hi - self.lo
    }

    /// BFS depth of the plan.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Size of the full extended index set (`|reach(depth)|`).
    pub fn ext_len(&self) -> usize {
        self.ext.len()
    }

    /// `|reach(d)|` — the valid prefix length of MPK level `depth − d`.
    ///
    /// # Panics
    /// Panics if `d > depth`.
    pub fn reach_len(&self, d: usize) -> usize {
        self.prefix[d]
    }

    /// Global indices of the ghost entries (everything past the owned
    /// prefix), in extended order — exactly what one exchange must fetch.
    pub fn ghost_indices(&self) -> &[usize] {
        &self.ext[self.n_owned()..]
    }

    /// All extended indices (owned, then ghosts by BFS distance).
    pub fn ext_indices(&self) -> &[usize] {
        &self.ext
    }

    /// Applies the remapped operator to rows `0 .. nrows` of the extended
    /// index space: `y[p] = Σ A[ext[p], ext[q]] · x_ext[q]`, with the same
    /// per-row accumulation order as [`CsrMatrix::spmv`].
    ///
    /// # Panics
    /// Panics if `nrows > reach_len(depth-1)` or buffers are too short.
    pub fn spmv_prefix(&self, nrows: usize, x_ext: &[f64], y: &mut [f64]) {
        assert!(
            nrows <= self.prefix[self.depth - 1],
            "spmv_prefix: row prefix too long"
        );
        assert!(
            x_ext.len() >= self.ext.len(),
            "spmv_prefix: x_ext too short"
        );
        assert!(y.len() >= nrows, "spmv_prefix: y too short");
        self.spmv_prefix_rows(0, nrows, x_ext, y);
    }

    /// Rows `[row_begin, row_end)` of [`GhostZone::spmv_prefix`], writing
    /// `y_block[r - row_begin]` — the per-chunk kernel of the threaded
    /// prefix SpMV.
    fn spmv_prefix_rows(
        &self,
        row_begin: usize,
        row_end: usize,
        x_ext: &[f64],
        y_block: &mut [f64],
    ) {
        for r in row_begin..row_end {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x_ext[self.col_idx[k]];
            }
            y_block[r - row_begin] = acc;
        }
    }

    /// Threaded [`GhostZone::spmv_prefix`]: the active row prefix is split
    /// into nnz-balanced chunks on the fly (the prefix length changes per
    /// MPK level, so unlike [`CsrMatrix::row_schedule`] there is nothing to
    /// cache). Row-partitioned, hence bitwise equal to the serial prefix
    /// SpMV for any thread count.
    pub fn spmv_prefix_par(
        &self,
        pk: &crate::par::ParKernels,
        nrows: usize,
        x_ext: &[f64],
        y: &mut [f64],
    ) {
        if pk.threads() == 1 {
            self.spmv_prefix(nrows, x_ext, y);
            return;
        }
        assert!(
            nrows <= self.prefix[self.depth - 1],
            "spmv_prefix: row prefix too long"
        );
        assert!(
            x_ext.len() >= self.ext.len(),
            "spmv_prefix: x_ext too short"
        );
        assert!(y.len() >= nrows, "spmv_prefix: y too short");
        let bounds = crate::csr::nnz_balanced_bounds(&self.row_ptr, nrows, pk.threads());
        pk.for_each_range_mut(&mut y[..nrows], &bounds, |c, piece| {
            self.spmv_prefix_rows(bounds[c], bounds[c + 1], x_ext, piece);
        });
    }

    /// Multi-RHS instance of [`GhostZone::spmv_prefix`]: applies the
    /// remapped operator to rows `0 .. nrows` for every column of
    /// `x_ext` (each column an extended vector: owned prefix, then
    /// ghosts). Row-blocked so one pass over a block's entries serves all
    /// k columns from cache; per column the accumulation is identical to
    /// the single-vector prefix SpMV, so column `j` of `y` is **bitwise
    /// equal** to `spmv_prefix(nrows, x_ext.col(j))`.
    ///
    /// # Panics
    /// Panics if `nrows > reach_len(depth-1)` or buffers are too short.
    pub fn spmm_prefix(&self, nrows: usize, x_ext: &MultiVector, y: &mut MultiVector) {
        self.assert_spmm_shapes(nrows, x_ext, y);
        let ld = y.n();
        let data = y.data_mut();
        self.spmm_prefix_rows_into(0, nrows, x_ext, ld, &mut |i, v| data[i] = v);
    }

    /// Threaded [`GhostZone::spmm_prefix`]: the active row prefix is
    /// split into nnz-balanced chunks on the fly (mirroring
    /// [`GhostZone::spmv_prefix_par`]); each chunk owns its rows in every
    /// column, so the result is bitwise equal to the serial multi-RHS
    /// prefix SpMV for any thread count.
    ///
    /// # Panics
    /// Panics if `nrows > reach_len(depth-1)` or buffers are too short.
    pub fn spmm_prefix_par(
        &self,
        pk: &crate::par::ParKernels,
        nrows: usize,
        x_ext: &MultiVector,
        y: &mut MultiVector,
    ) {
        if pk.threads() == 1 {
            self.spmm_prefix(nrows, x_ext, y);
            return;
        }
        self.assert_spmm_shapes(nrows, x_ext, y);
        let ld = y.n();
        let bounds = crate::csr::nnz_balanced_bounds(&self.row_ptr, nrows, pk.threads());
        let ptr = crate::par::SendPtr(y.data_mut().as_mut_ptr());
        pk.run_indexed(bounds.len() - 1, |c| {
            // Safety: chunks own disjoint row ranges in every column and
            // `j·ld + r` was bounds-checked by `assert_spmm_shapes`.
            let mut write = |i: usize, v: f64| unsafe { *ptr.get().add(i) = v };
            self.spmm_prefix_rows_into(bounds[c], bounds[c + 1], x_ext, ld, &mut write);
        });
    }

    fn assert_spmm_shapes(&self, nrows: usize, x_ext: &MultiVector, y: &MultiVector) {
        assert!(
            nrows <= self.prefix[self.depth - 1],
            "spmm_prefix: row prefix too long"
        );
        assert!(x_ext.n() >= self.ext.len(), "spmm_prefix: x_ext too short");
        assert!(y.n() >= nrows, "spmm_prefix: y too short");
        assert_eq!(x_ext.k(), y.k(), "spmm_prefix: column count mismatch");
    }

    /// Rows `[row_begin, row_end)` across all columns, writing
    /// `write(j·ld + r, acc)` with the per-row accumulation order of
    /// [`GhostZone::spmv_prefix`].
    fn spmm_prefix_rows_into<F: FnMut(usize, f64)>(
        &self,
        row_begin: usize,
        row_end: usize,
        x_ext: &MultiVector,
        ld: usize,
        write: &mut F,
    ) {
        let k = x_ext.k();
        let mut blk = row_begin;
        while blk < row_end {
            let blk_end = (blk + crate::csr::SPMM_ROW_BLOCK).min(row_end);
            for j in 0..k {
                let xj = x_ext.col(j);
                for r in blk..blk_end {
                    let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                    let mut acc = 0.0;
                    for e in lo..hi {
                        acc += self.values[e] * xj[self.col_idx[e]];
                    }
                    write(j * ld + r, acc);
                }
            }
            blk = blk_end;
        }
    }

    /// Local indices of the owned rows computable without any ghost data
    /// (every column inside the owned prefix). Ascending, disjoint from
    /// [`GhostZone::frontier_rows`].
    pub fn interior_rows(&self) -> &[usize] {
        &self.interior
    }

    /// Local indices `< nrows` of the rows that need ghost operands:
    /// owned rows touching ghost columns plus the ghost rows themselves.
    /// Together with [`GhostZone::interior_rows`] this partitions
    /// `[0, nrows)` for any row prefix `nrows ≥ n_owned()`.
    ///
    /// # Panics
    /// Panics if `nrows < n_owned()` (the interior list would then leak
    /// rows past the prefix).
    pub fn frontier_rows(&self, nrows: usize) -> &[usize] {
        assert!(
            nrows >= self.n_owned(),
            "frontier_rows: prefix shorter than the owned block"
        );
        let cut = self.frontier.partition_point(|&r| r < nrows);
        &self.frontier[..cut]
    }

    /// [`GhostZone::spmv_prefix`] restricted to an explicit row list:
    /// `y[r] = Σ A[ext[r], ext[q]] · x_ext[q]` for each `r` in `rows`,
    /// with the identical per-row accumulation — running the interior and
    /// frontier lists (in any order) reproduces the prefix SpMV bitwise.
    ///
    /// # Panics
    /// Panics if a row is out of range of `y` or the local operator.
    pub fn spmv_rows_list(&self, rows: &[usize], x_ext: &[f64], y: &mut [f64]) {
        assert!(
            x_ext.len() >= self.ext.len(),
            "spmv_rows_list: x_ext too short"
        );
        for &r in rows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x_ext[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// Threaded [`GhostZone::spmv_rows_list`]: the list is cut into
    /// nnz-balanced chunks (the same schedule machinery as the prefix
    /// SpMV); each chunk writes its own rows, so the result is bitwise
    /// equal to the serial list SpMV for any thread count.
    ///
    /// # Panics
    /// Panics if `rows` is not strictly ascending (the disjoint-write
    /// safety argument needs distinct rows) or a row is out of range.
    pub fn spmv_rows_list_par(
        &self,
        pk: &crate::par::ParKernels,
        rows: &[usize],
        x_ext: &[f64],
        y: &mut [f64],
    ) {
        if pk.threads() == 1 || rows.len() <= 1 {
            self.spmv_rows_list(rows, x_ext, y);
            return;
        }
        assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "spmv_rows_list_par: rows must be strictly ascending"
        );
        assert!(
            *rows.last().unwrap() < y.len(),
            "spmv_rows_list_par: y too short"
        );
        assert!(
            x_ext.len() >= self.ext.len(),
            "spmv_rows_list_par: x_ext too short"
        );
        let bounds = crate::csr::nnz_balanced_bounds_list(rows, &self.row_ptr, pk.threads());
        let ptr = crate::par::SendPtr(y.as_mut_ptr());
        pk.run_indexed(bounds.len() - 1, |c| {
            for &r in &rows[bounds[c]..bounds[c + 1]] {
                let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x_ext[self.col_idx[k]];
                }
                // SAFETY: the rows are strictly ascending (checked above)
                // and the chunks partition the list, so every task writes a
                // distinct set of in-bounds `y` elements; the exclusive
                // borrow of `y` outlives the run.
                unsafe { *ptr.get().add(r) = acc };
            }
        });
    }

    /// Gathers `global[ext[i]]` for the ghost entries into a buffer laid
    /// out as `[owned values, ghost values]` (a test/serial convenience;
    /// the ranked engine gathers ghosts from the exchange board instead).
    pub fn extend_from_global(&self, global: &[f64]) -> Vec<f64> {
        self.ext.iter().map(|&g| global[g]).collect()
    }

    /// The interior row list packed into SELL-C-σ layout, built on first
    /// request and cached (reset on clone). Lane order is the list itself,
    /// so results scatter to the same `y[r]` positions as the CSR kernel.
    fn interior_sell(&self) -> Arc<SellMatrix> {
        let mut cache = self.sell_interior.lock().unwrap();
        if let Some(s) = cache.as_ref() {
            return Arc::clone(s);
        }
        let s = Arc::new(SellMatrix::from_rows(
            &self.row_ptr,
            &self.col_idx,
            &self.values,
            &self.interior,
        ));
        *cache = Some(Arc::clone(&s));
        s
    }

    /// The frontier row list packed into SELL-C-σ layout (cached like
    /// [`GhostZone::interior_sell`]). Ascending list order makes every
    /// per-level prefix cut a lane prefix.
    fn frontier_sell(&self) -> Arc<SellMatrix> {
        let mut cache = self.sell_frontier.lock().unwrap();
        if let Some(s) = cache.as_ref() {
            return Arc::clone(s);
        }
        let s = Arc::new(SellMatrix::from_rows(
            &self.row_ptr,
            &self.col_idx,
            &self.values,
            &self.frontier,
        ));
        *cache = Some(Arc::clone(&s));
        s
    }

    /// SELL-layout twin of running [`GhostZone::spmv_rows_list_par`] over
    /// [`GhostZone::interior_rows`]: computes the interior rows into
    /// `y[r]`, bitwise identical for any thread count.
    pub fn spmv_interior_sell(&self, pk: &crate::par::ParKernels, x_ext: &[f64], y: &mut [f64]) {
        assert!(
            x_ext.len() >= self.ext.len(),
            "spmv_interior_sell: x_ext too short"
        );
        pk.spmv_sell(&self.interior_sell(), x_ext, y);
    }

    /// SELL-layout twin of running [`GhostZone::spmv_rows_list_par`] over
    /// [`GhostZone::frontier_rows`]`(nrows)`: computes the frontier rows
    /// `< nrows` into `y[r]` via a lane-prefix cut of the packed list.
    ///
    /// # Panics
    /// Panics if `nrows < n_owned()` (same contract as
    /// [`GhostZone::frontier_rows`]).
    pub fn spmv_frontier_sell(
        &self,
        pk: &crate::par::ParKernels,
        nrows: usize,
        x_ext: &[f64],
        y: &mut [f64],
    ) {
        assert!(
            nrows >= self.n_owned(),
            "frontier_rows: prefix shorter than the owned block"
        );
        assert!(
            x_ext.len() >= self.ext.len(),
            "spmv_frontier_sell: x_ext too short"
        );
        let nlanes = self.frontier.partition_point(|&r| r < nrows);
        pk.spmv_sell_prefix(&self.frontier_sell(), nlanes, x_ext, y);
    }

    /// SELL-layout twin of [`GhostZone::spmv_prefix_par`]: interior rows
    /// plus the frontier prefix cover exactly `[0, nrows)`, and each row
    /// runs the identical per-row accumulation, so the result is bitwise
    /// equal to the CSR prefix SpMV (the order-independence proven by the
    /// split-vs-prefix test).
    ///
    /// # Panics
    /// Panics if `nrows` is not in `[n_owned(), reach_len(depth-1)]` or
    /// buffers are too short.
    pub fn spmv_prefix_sell(
        &self,
        pk: &crate::par::ParKernels,
        nrows: usize,
        x_ext: &[f64],
        y: &mut [f64],
    ) {
        assert!(
            nrows <= self.prefix[self.depth - 1],
            "spmv_prefix: row prefix too long"
        );
        assert!(y.len() >= nrows, "spmv_prefix: y too short");
        self.spmv_interior_sell(pk, x_ext, y);
        self.spmv_frontier_sell(pk, nrows, x_ext, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson::{poisson_1d, poisson_2d};

    #[test]
    fn depth1_matches_partition_halo() {
        let a = poisson_1d(12);
        let gz = GhostZone::new(&a, 4, 8, 1);
        assert_eq!(gz.n_owned(), 4);
        assert_eq!(gz.ghost_indices(), &[3, 8]);
        assert_eq!(gz.reach_len(0), 4);
        assert_eq!(gz.reach_len(1), 6);
    }

    #[test]
    fn reach_sets_grow_by_one_layer_on_tridiagonal() {
        let a = poisson_1d(20);
        let gz = GhostZone::new(&a, 8, 12, 3);
        // Each depth adds one row on each side.
        assert_eq!(gz.ghost_indices(), &[7, 12, 6, 13, 5, 14]);
        assert_eq!(gz.reach_len(1), 6);
        assert_eq!(gz.reach_len(2), 8);
        assert_eq!(gz.reach_len(3), 10);
    }

    #[test]
    fn local_spmv_matches_global_on_computable_rows() {
        let a = poisson_2d(8);
        let gz = GhostZone::new(&a, 16, 40, 3);
        let x: Vec<f64> = (0..64).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let x_ext = gz.extend_from_global(&x);
        let mut y_local = vec![0.0; gz.reach_len(2)];
        gz.spmv_prefix(gz.reach_len(2), &x_ext, &mut y_local);
        let mut y_global = vec![0.0; 64];
        a.spmv(&x, &mut y_global);
        for p in 0..gz.reach_len(2) {
            let g = gz.ext_indices()[p];
            // Bitwise: entry order inside each row is preserved.
            assert_eq!(y_local[p], y_global[g], "row {g}");
        }
    }

    #[test]
    fn spmv_prefix_par_is_bitwise_identical_across_thread_counts() {
        use crate::par::ParKernels;
        let a = crate::generators::poisson::poisson_3d(14);
        let n = a.nrows();
        let gz = GhostZone::new(&a, n / 4, 3 * n / 4, 3);
        let x: Vec<f64> = (0..n).map(|i| ((i * 11 % 17) as f64) - 8.0).collect();
        let x_ext = gz.extend_from_global(&x);
        for d in [1usize, 2] {
            let rows = gz.reach_len(d);
            let mut serial = vec![0.0; rows];
            gz.spmv_prefix(rows, &x_ext, &mut serial);
            for t in [1usize, 2, 4, 8] {
                let pk = ParKernels::new(t);
                let mut y = vec![1.0; rows];
                gz.spmv_prefix_par(&pk, rows, &x_ext, &mut y);
                assert_eq!(y, serial, "depth {d}, threads {t}");
            }
        }
    }

    #[test]
    fn spmm_prefix_columns_match_spmv_prefix_bitwise() {
        use crate::par::ParKernels;
        let a = crate::generators::poisson::poisson_3d(14);
        let n = a.nrows();
        let gz = GhostZone::new(&a, n / 4, 3 * n / 4, 3);
        for k in [1usize, 2, 4] {
            let cols: Vec<Vec<f64>> = (0..k)
                .map(|j| {
                    (0..n)
                        .map(|i| ((i * (7 + j) % 19) as f64) - 9.0)
                        .collect::<Vec<f64>>()
                })
                .collect();
            let ext_cols: Vec<Vec<f64>> = cols.iter().map(|c| gz.extend_from_global(c)).collect();
            let x_ext = MultiVector::from_columns(&ext_cols);
            let rows = gz.reach_len(1);
            let mut serial = MultiVector::zeros(rows, k);
            gz.spmm_prefix(rows, &x_ext, &mut serial);
            for j in 0..k {
                let mut want = vec![0.0; rows];
                gz.spmv_prefix(rows, &ext_cols[j], &mut want);
                assert_eq!(serial.col(j), &want[..], "k={k} col={j}");
            }
            for t in [1usize, 2, 4, 8] {
                let pk = ParKernels::new(t);
                let mut y = MultiVector::zeros(rows, k);
                gz.spmm_prefix_par(&pk, rows, &x_ext, &mut y);
                for j in 0..k {
                    assert_eq!(y.col(j), serial.col(j), "k={k} t={t} col={j}");
                }
            }
        }
    }

    #[test]
    fn interior_and_frontier_partition_every_prefix() {
        let a = poisson_2d(10);
        let n = a.nrows();
        let gz = GhostZone::new(&a, n / 4, 2 * n / 3, 3);
        for d in 0..gz.depth() {
            let rows = gz.reach_len(d);
            let mut all: Vec<usize> = gz
                .interior_rows()
                .iter()
                .chain(gz.frontier_rows(rows))
                .copied()
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..rows).collect::<Vec<_>>(), "prefix depth {d}");
        }
        // Interior rows reference only owned columns.
        for &r in gz.interior_rows() {
            assert!(r < gz.n_owned());
        }
        // Every ghost row is frontier.
        let rows = gz.reach_len(gz.depth() - 1);
        let f = gz.frontier_rows(rows);
        for g in gz.n_owned()..rows {
            assert!(
                f.binary_search(&g).is_ok(),
                "ghost row {g} must be frontier"
            );
        }
    }

    #[test]
    fn split_spmv_matches_prefix_spmv_bitwise() {
        use crate::par::ParKernels;
        let a = crate::generators::poisson::poisson_3d(11);
        let n = a.nrows();
        let gz = GhostZone::new(&a, n / 5, 4 * n / 5, 3);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 19) as f64) - 9.0).collect();
        let x_ext = gz.extend_from_global(&x);
        for d in [1usize, 2] {
            let rows = gz.reach_len(d);
            let mut reference = vec![0.0; rows];
            gz.spmv_prefix(rows, &x_ext, &mut reference);
            for t in [1usize, 2, 4] {
                let pk = ParKernels::new(t);
                let mut y = vec![f64::NAN; rows];
                // Interior first with stale ghost operands is the overlap
                // execution order; the result must not depend on it.
                gz.spmv_rows_list_par(&pk, gz.interior_rows(), &x_ext, &mut y);
                gz.spmv_rows_list_par(&pk, gz.frontier_rows(rows), &x_ext, &mut y);
                assert_eq!(y, reference, "depth {d}, threads {t}");
            }
        }
    }

    #[test]
    fn sell_prefix_matches_csr_prefix_bitwise() {
        use crate::par::ParKernels;
        let a = crate::generators::poisson::poisson_3d(11);
        let n = a.nrows();
        let gz = GhostZone::new(&a, n / 5, 4 * n / 5, 3);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 19) as f64) - 9.0).collect();
        let x_ext = gz.extend_from_global(&x);
        for d in [1usize, 2] {
            let rows = gz.reach_len(d);
            let mut reference = vec![0.0; rows];
            gz.spmv_prefix(rows, &x_ext, &mut reference);
            for t in [1usize, 2, 4] {
                let pk = ParKernels::new(t);
                let mut y = vec![f64::NAN; rows];
                gz.spmv_prefix_sell(&pk, rows, &x_ext, &mut y);
                assert_eq!(y, reference, "depth {d}, threads {t}");
                // The split schedule (interior with stale ghosts first,
                // frontier after) must agree too — the overlap order.
                let mut ys = vec![f64::NAN; rows];
                gz.spmv_interior_sell(&pk, &x_ext, &mut ys);
                gz.spmv_frontier_sell(&pk, rows, &x_ext, &mut ys);
                assert_eq!(ys, reference, "split, depth {d}, threads {t}");
            }
        }
    }

    #[test]
    fn sell_caches_are_shared_and_reset_on_clone() {
        let a = poisson_2d(12);
        let gz = GhostZone::new(&a, 24, 120, 2);
        let s1 = gz.interior_sell();
        let s2 = gz.interior_sell();
        assert!(std::sync::Arc::ptr_eq(&s1, &s2));
        let gz2 = gz.clone();
        let s3 = gz2.interior_sell();
        assert!(!std::sync::Arc::ptr_eq(&s1, &s3));
        assert_eq!(s1.lanes(), s3.lanes());
    }

    #[test]
    fn boundary_block_has_one_sided_ghosts() {
        let a = poisson_1d(10);
        let gz = GhostZone::new(&a, 0, 3, 2);
        assert_eq!(gz.ghost_indices(), &[3, 4]);
    }

    #[test]
    fn full_matrix_block_has_no_ghosts() {
        let a = poisson_2d(5);
        let gz = GhostZone::new(&a, 0, 25, 4);
        assert!(gz.ghost_indices().is_empty());
        assert_eq!(gz.ext_len(), 25);
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn rejects_zero_depth() {
        let a = poisson_1d(4);
        GhostZone::new(&a, 0, 2, 0);
    }
}
