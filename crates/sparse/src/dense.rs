//! Small dense matrices for the `O(s) × O(s)` "scalar work" of the s-step
//! methods: Gram matrices, change-of-basis matrices, and coefficient blocks.
//!
//! Storage is row-major. These matrices never exceed a few dozen rows
//! (`2s + 1` with `s ≤ ~20`), so the kernels favour clarity over blocking.

use std::fmt;

/// A small dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct DenseMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows {
            write!(f, "  [")?;
            for j in 0..self.ncols {
                write!(f, "{:>12.5e}", self[(i, j)])?;
                if j + 1 < self.ncols {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl DenseMat {
    /// The `nrows × ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "DenseMat: data length mismatch");
        DenseMat { nrows, ncols, data }
    }

    /// Builds from a function of the index pair.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Column `j` collected into a `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMat {
        DenseMat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &DenseMat) -> DenseMat {
        assert_eq!(self.ncols, other.nrows, "matmul: dimension mismatch");
        let mut out = DenseMat::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: dimension mismatch");
        (0..self.nrows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix-vector product `selfᵀ · x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t: dimension mismatch");
        let mut out = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for j in 0..self.ncols {
                out[j] += self[(i, j)] * xi;
            }
        }
        out
    }

    /// `self ← self + a·other` elementwise.
    pub fn axpy(&mut self, a: f64, other: &DenseMat) {
        assert_eq!(self.nrows, other.nrows, "axpy: row mismatch");
        assert_eq!(self.ncols, other.ncols, "axpy: col mismatch");
        for (s, o) in self.data.iter_mut().zip(&other.data) {
            *s += a * o;
        }
    }

    /// Scales all entries by `a`.
    pub fn scale(&mut self, a: f64) {
        for v in &mut self.data {
            *v *= a;
        }
    }

    /// Symmetrizes in place: `self ← (self + selfᵀ)/2`. The Gram matrices of
    /// the s-step methods are symmetric in exact arithmetic; symmetrizing the
    /// finite-precision product keeps the small solves well behaved.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.nrows, self.ncols, "symmetrize: matrix must be square");
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for DenseMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = DenseMat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let i3 = DenseMat::identity(3);
        assert_eq!(a.matmul(&i3), a);
        assert_eq!(i3.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMat::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMat::from_row_major(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matvec_and_transpose_consistent() {
        let a = DenseMat::from_row_major(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let x = [2.0, 1.0, 0.5];
        let y = a.matvec(&x);
        let yt = a.transpose().matvec_t(&x);
        assert_eq!(y, yt);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = DenseMat::from_row_major(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, -1.0, 2.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut a = DenseMat::from_row_major(2, 2, vec![1.0, 2.0, 4.0, 3.0]);
        a.symmetrize();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = DenseMat::identity(2);
        let b = DenseMat::from_row_major(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 1.0, 1.0, 1.5]);
    }

    #[test]
    fn norms() {
        let a = DenseMat::from_row_major(1, 2, vec![3.0, -4.0]);
        assert_eq!(a.norm_max(), 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
    }
}
