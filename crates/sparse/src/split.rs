//! Interior/frontier row splitting for communication–computation overlap.
//!
//! A rank owning the contiguous row block `[lo, hi)` of a sparse matrix can
//! start its local SpMV before the halo exchange delivers remote entries:
//! **interior** rows reference only owned columns and are computable
//! immediately, while **frontier** rows touch at least one column outside
//! `[lo, hi)` and must wait for the exchange to complete. [`RowSplit`]
//! classifies the owned rows once per `(lo, hi)` range; the split is
//! symmetric-permutation-free — both classes are plain row-index schedules
//! over the *existing* CSR, so the per-row accumulation (and hence every
//! bit of the result) is unchanged, only the execution order of two
//! disjoint row sets moves.
//!
//! The split is cached on [`CsrMatrix`] (see [`CsrMatrix::row_split`]) so
//! the depth-1 SpMV ghost zone and the depth-s MPK ghost zone of the same
//! rank — and repeated solves on the same matrix — share one scan.

use crate::csr::CsrMatrix;

/// Classification of the rows `[lo, hi)` of a matrix into interior rows
/// (all columns in `[lo, hi)`) and frontier rows (at least one column
/// outside). Both lists hold **global** row indices in ascending order and
/// partition `[lo, hi)` exactly.
#[derive(Debug, Clone)]
pub struct RowSplit {
    lo: usize,
    hi: usize,
    interior: Vec<usize>,
    frontier: Vec<usize>,
}

impl RowSplit {
    /// Scans rows `[lo, hi)` of `a` and classifies each by whether every
    /// column index falls inside the owned range.
    ///
    /// # Panics
    /// Panics if the range is invalid.
    pub(crate) fn new(a: &CsrMatrix, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= a.nrows(), "RowSplit: invalid row range");
        let mut interior = Vec::new();
        let mut frontier = Vec::new();
        for r in lo..hi {
            let (cols, _) = a.row(r);
            // Columns are ascending, so the first/last entries bound them all.
            let inside = match (cols.first(), cols.last()) {
                (Some(&first), Some(&last)) => lo <= first && last < hi,
                _ => true, // an empty row references nothing remote
            };
            if inside {
                interior.push(r);
            } else {
                frontier.push(r);
            }
        }
        RowSplit {
            lo,
            hi,
            interior,
            frontier,
        }
    }

    /// The owned row range `[lo, hi)` this split describes.
    pub fn range(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Global indices of rows whose columns all lie in `[lo, hi)`,
    /// ascending.
    pub fn interior(&self) -> &[usize] {
        &self.interior
    }

    /// Global indices of rows touching at least one column outside
    /// `[lo, hi)`, ascending.
    pub fn frontier(&self) -> &[usize] {
        &self.frontier
    }

    /// Number of interior rows.
    pub fn n_interior(&self) -> usize {
        self.interior.len()
    }

    /// Number of frontier rows.
    pub fn n_frontier(&self) -> usize {
        self.frontier.len()
    }

    /// Fraction of owned rows that are interior (`1.0` for an empty range —
    /// nothing blocks on communication).
    pub fn interior_fraction(&self) -> f64 {
        let n = self.hi - self.lo;
        if n == 0 {
            1.0
        } else {
            self.interior.len() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::generators::poisson::{poisson_1d, poisson_3d};
    use crate::ghost::GhostZone;

    #[test]
    fn one_rank_partition_is_all_interior() {
        let a = poisson_3d(8);
        let s = a.row_split(0, a.nrows());
        assert_eq!(s.n_interior(), a.nrows());
        assert_eq!(s.n_frontier(), 0);
        assert_eq!(s.interior_fraction(), 1.0);
        assert_eq!(s.interior(), (0..a.nrows()).collect::<Vec<_>>());
    }

    #[test]
    fn split_partitions_the_range_and_classifies_exactly() {
        let a = poisson_3d(10);
        let n = a.nrows();
        let (lo, hi) = (n / 3, 3 * n / 4);
        let s = a.row_split(lo, hi);
        assert_eq!(s.range(), (lo, hi));
        assert_eq!(s.n_interior() + s.n_frontier(), hi - lo);
        // Merge of the two ascending lists is exactly [lo, hi).
        let mut all: Vec<usize> = s.interior().iter().chain(s.frontier()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (lo..hi).collect::<Vec<_>>());
        // Independent per-row check against the raw structure.
        for r in lo..hi {
            let (cols, _) = a.row(r);
            let remote = cols.iter().any(|&c| c < lo || c >= hi);
            assert_eq!(s.frontier().binary_search(&r).is_ok(), remote, "row {r}");
        }
    }

    /// On the 7-point Poisson stencil the frontier rows are exactly the
    /// rows adjacent (graph distance 1) to the ghost entries a depth-1
    /// [`GhostZone`] fetches.
    #[test]
    fn frontier_rows_are_the_depth1_ghost_adjacent_rows() {
        let a = poisson_3d(9);
        let n = a.nrows();
        for (lo, hi) in [(0, n / 4), (n / 4, n / 2), (n / 2, n)] {
            let s = a.row_split(lo, hi);
            let gz = GhostZone::new(&a, lo, hi, 1);
            let ghosts = gz.ghost_indices();
            let expected: Vec<usize> = (lo..hi)
                .filter(|&r| a.row(r).0.iter().any(|c| ghosts.contains(c)))
                .collect();
            assert_eq!(s.frontier(), expected, "range [{lo}, {hi})");
        }
    }

    /// Growing the block of a 7-point Poisson operator grows the interior
    /// fraction: the frontier is a surface (O(g²) rows per cut) while the
    /// block volume grows linearly in its height.
    #[test]
    fn interior_fraction_grows_with_block_size() {
        let g = 12;
        let a = poisson_3d(g);
        let n = a.nrows();
        let mid = n / 2;
        let mut last = -1.0;
        for half in [g * g, 2 * g * g, 4 * g * g, 5 * g * g] {
            let s = a.row_split(mid - half, mid + half);
            let f = s.interior_fraction();
            assert!(f > last, "fraction {f} must grow (was {last})");
            last = f;
        }
        // Plane-aligned cuts of the 7-point stencil: exactly one plane of
        // frontier rows at each cut.
        let s = a.row_split(mid - g * g, mid + g * g);
        assert_eq!(s.n_frontier(), 2 * g * g);
    }

    #[test]
    fn tridiagonal_split_has_two_frontier_rows() {
        let a = poisson_1d(32);
        let s = a.row_split(8, 24);
        assert_eq!(s.frontier(), &[8, 23]);
        assert_eq!(s.n_interior(), 14);
    }

    #[test]
    fn row_split_cache_returns_shared_plan() {
        let a = poisson_1d(16);
        let s1 = a.row_split(4, 12);
        let s2 = a.row_split(4, 12);
        assert!(std::sync::Arc::ptr_eq(&s1, &s2));
        // A different range is a different (also cached) plan.
        let other = a.row_split(0, 8);
        assert_eq!(other.frontier(), &[7]);
        let again = a.row_split(4, 12);
        assert!(std::sync::Arc::ptr_eq(&s1, &again));
    }
}
