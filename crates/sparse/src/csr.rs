//! Compressed sparse row (CSR) matrix.
//!
//! CSR is the computational format for all system matrices in this
//! workspace. The solvers only ever need `y = A·x` (plus row access for the
//! Jacobi/SSOR preconditioners), so the interface is deliberately small; the
//! SPD-oriented helpers (symmetry check, Gershgorin bounds, diagonal
//! extraction) support the preconditioners and the basis-parameter
//! estimation.

use crate::coo::CooMatrix;
use crate::multivector::MultiVector;
use crate::sell::SellMatrix;
use crate::split::RowSplit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Row-block granularity of the SpMM kernels: one block's CSR entries are
/// streamed once and reused from cache for every right-hand-side column,
/// which is the whole point of batching — the matrix traffic is paid once
/// per block instead of once per column.
pub(crate) const SPMM_ROW_BLOCK: usize = 128;

/// Row-panel granularity of the windowed SpMM operand pack (see
/// [`CsrMatrix::spmm_windowed`]). For banded matrices each panel's column
/// reach is `panel + 2·bandwidth` rows, so the interleaved pack of one
/// panel fits in cache instead of allocating (and streaming) an `n·k`
/// scratch copy of the whole operand.
pub(crate) const SPMM_PANEL_ROWS: usize = 8192;

/// A consumer of SpMM results: `put` receives each result as both the
/// column-major flat index `i = j·nrows + r` (what the plain `write`
/// closures use) and its `(row, column)` decomposition (so fused sinks
/// never divide in the hot loop), and `block_done` fires after every
/// `SPMM_ROW_BLOCK` row block so fused post-passes (the true-residual
/// diff, the pᵀAp Gram fold) can touch the freshly produced slice while
/// it is still cache-hot. Any `FnMut(usize, f64)` is a sink with a no-op
/// `block_done`.
pub(crate) trait SpmmSink {
    fn put(&mut self, i: usize, r: usize, j: usize, v: f64);
    fn block_done(&mut self, _lo: usize, _hi: usize) {}
}

impl<F: FnMut(usize, f64)> SpmmSink for F {
    #[inline(always)]
    fn put(&mut self, i: usize, _r: usize, _j: usize, v: f64) {
        self(i, v)
    }
}

/// Sink of [`CsrMatrix::spmm_residual_sq`]: stages each row block of the
/// product in a `SPMM_ROW_BLOCK``×k` buffer (a few KB, L1-resident) and
/// folds it straight into the per-column `Σ (b − A·x)²` accumulators —
/// the product itself never reaches memory, which matters because the
/// criterion's `A·x` is dead the moment it is diffed. Per column the diff
/// visits rows `0..nrows` ascending with `acc += d·d`, exactly the serial
/// pass over a stored product, so the accumulators are bitwise
/// independent of both the blocking and the skipped store.
struct CritSink<'a> {
    bs: &'a [&'a [f64]],
    /// `SPMM_ROW_BLOCK × k` staging tile, row-major like the pack.
    buf: Vec<f64>,
    acc: Vec<f64>,
    k: usize,
}

impl SpmmSink for CritSink<'_> {
    #[inline(always)]
    fn put(&mut self, _i: usize, r: usize, j: usize, v: f64) {
        self.buf[(r & (SPMM_ROW_BLOCK - 1)) * self.k + j] = v;
    }

    fn block_done(&mut self, lo: usize, hi: usize) {
        for (j, a) in self.acc.iter_mut().enumerate() {
            let b = self.bs[j];
            let mut s = *a;
            for r in lo..hi {
                let d = b[r] - self.buf[(r & (SPMM_ROW_BLOCK - 1)) * self.k + j];
                s += d * d;
            }
            *a = s;
        }
    }
}

/// Sink of [`CsrMatrix::spmm_dot`]: stores the product `Y = A·X` and folds
/// each row block into per-column `xᵀ·(A·x)` Gram accumulators while the
/// block is hot. The fold replicates [`crate::blas::dot`]'s fixed shape
/// exactly — four accumulator lanes by `index mod 4` within each
/// [`REDUCE_BLOCK`]-aligned block (plus the serial tail of a final short
/// block), lanes combined `(a₀+a₁)+(a₂+a₃)+tail` into one partial per
/// block, partials combined by [`crate::blas::pairwise_sum`] — so the
/// returned dots are bitwise equal to `blas::dot(x_j, y_j)` on the
/// finished columns. Row blocks and panels are multiples of
/// [`REDUCE_BLOCK`] apart, so a reduce block never straddles `block_done`
/// calls.
struct DotSink<'a> {
    data: &'a mut [f64],
    xs: Vec<&'a [f64]>,
    /// Live lane accumulators `[a₀..a₃, tail]` of the current reduce
    /// block, per column.
    lanes: Vec<[f64; 5]>,
    /// Finished per-reduce-block partials, per column.
    partials: Vec<Vec<f64>>,
    ld: usize,
    n: usize,
}

impl SpmmSink for DotSink<'_> {
    #[inline(always)]
    fn put(&mut self, i: usize, _r: usize, _j: usize, v: f64) {
        self.data[i] = v;
    }

    fn block_done(&mut self, lo: usize, hi: usize) {
        let rb_lo = lo / crate::blas::REDUCE_BLOCK * crate::blas::REDUCE_BLOCK;
        let rb_len = crate::blas::REDUCE_BLOCK.min(self.n - rb_lo);
        let q4 = rb_len / 4 * 4;
        for (j, xj) in self.xs.iter().enumerate() {
            let yj = &self.data[j * self.ld..][..self.ld];
            let lanes = &mut self.lanes[j];
            for r in lo..hi {
                let l = r - rb_lo;
                let p = xj[r] * yj[r];
                if l < q4 {
                    lanes[l & 3] += p;
                } else {
                    lanes[4] += p;
                }
            }
            if hi == rb_lo + rb_len {
                self.partials[j].push((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + lanes[4]);
                *lanes = [0.0; 5];
            }
        }
    }
}

/// Stored column-index widths the SpMM kernels can stream: the native
/// `usize` array or the packed `u32` copy from [`CsrMatrix::cols_u32`].
/// The conversion back to `usize` is free; the win is the halved bytes
/// per matrix entry in the hot loop.
pub(crate) trait ColIndex: Copy {
    fn idx(self) -> usize;
}

impl ColIndex for usize {
    #[inline(always)]
    fn idx(self) -> usize {
        self
    }
}

impl ColIndex for u32 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Validates the CSR invariants in debug builds only — the single gate
/// every trusted ("unchecked") construction path goes through, so hot
/// paths cannot drift apart in which invariants they skip. Release builds
/// compile this to nothing; broken invariants there surface as index
/// panics or wrong products, never memory unsafety (all access is
/// bounds-checked).
pub(crate) fn debug_assert_csr_invariants(
    nrows: usize,
    ncols: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
) {
    if cfg!(debug_assertions) {
        validate_raw(nrows, ncols, row_ptr, col_idx, values);
    }
}

/// Validates the CSR invariants, panicking on the first violation.
fn validate_raw(nrows: usize, ncols: usize, row_ptr: &[usize], col_idx: &[usize], values: &[f64]) {
    assert_eq!(
        row_ptr.len(),
        nrows + 1,
        "CSR: row_ptr length must be nrows+1"
    );
    assert_eq!(row_ptr[0], 0, "CSR: row_ptr must start at 0");
    assert_eq!(col_idx.len(), values.len(), "CSR: col/val length mismatch");
    assert_eq!(
        *row_ptr.last().unwrap(),
        col_idx.len(),
        "CSR: row_ptr end mismatch"
    );
    for r in 0..nrows {
        assert!(
            row_ptr[r] <= row_ptr[r + 1],
            "CSR: row_ptr must be monotone"
        );
        let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
        for w in row.windows(2) {
            assert!(
                w[0] < w[1],
                "CSR: columns must be strictly increasing in row {r}"
            );
        }
        if let Some(&last) = row.last() {
            assert!(last < ncols, "CSR: column index out of bounds in row {r}");
        }
    }
}

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (enforced by [`CsrMatrix::from_raw`]):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, monotone non-decreasing;
/// * `col_idx.len() == values.len() == row_ptr[nrows]`;
/// * column indices within each row are strictly increasing and `< ncols`.
#[derive(Debug)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Lazily computed nnz-balanced row partition for the threaded SpMV,
    /// keyed by chunk count (see [`CsrMatrix::row_schedule`]).
    schedule: Mutex<Option<(usize, Arc<Vec<usize>>)>>,
    /// Lazily computed interior/frontier row splits, keyed by owned row
    /// range (see [`CsrMatrix::row_split`]). One entry per distinct range —
    /// in practice one per rank of a block-row partition.
    splits: SplitCache,
    /// Lazily converted SELL-C-σ sibling of this matrix (see
    /// [`CsrMatrix::sell`]), built on first request and shared.
    sell: Mutex<Option<Arc<SellMatrix>>>,
    /// Lazily built `u32` copy of `col_idx` for the SpMM kernels (see
    /// [`CsrMatrix::cols_u32`]): half the index bytes per matrix entry,
    /// which matters because the batched solver is bound by how much of
    /// its working set stays cache-resident.
    cols_u32: Mutex<Option<Arc<Vec<u32>>>>,
    /// One-time "every column index is `< ncols`" verification, backing
    /// the unchecked gathers of the SpMM group kernels (see
    /// [`CsrMatrix::spmm_rows_into`]).
    cols_bounded: AtomicBool,
    /// Lazily computed per-panel column reach `[lo, hi)` for the windowed
    /// SpMM pack (see [`CsrMatrix::panel_reach`]): panel `p` covers rows
    /// `[p·SPMM_PANEL_ROWS, (p+1)·SPMM_PANEL_ROWS)` and touches only
    /// operand rows inside its reach.
    panel_reach: ReachCache,
}

/// Lazily filled per-panel column-reach cache (see
/// [`CsrMatrix::panel_reach`]).
type ReachCache = Mutex<Option<Arc<Vec<(usize, usize)>>>>;

/// Cache of [`RowSplit`]s keyed by owned row range.
type SplitCache = Mutex<Vec<((usize, usize), Arc<RowSplit>)>>;

impl Clone for CsrMatrix {
    fn clone(&self) -> Self {
        // The schedule cache is derived data; the clone recomputes on demand.
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.clone(),
            schedule: Mutex::new(None),
            splits: Mutex::new(Vec::new()),
            sell: Mutex::new(None),
            cols_u32: Mutex::new(None),
            cols_bounded: AtomicBool::new(false),
            panel_reach: Mutex::new(None),
        }
    }
}

impl CsrMatrix {
    fn assemble(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            schedule: Mutex::new(None),
            splits: Mutex::new(Vec::new()),
            sell: Mutex::new(None),
            cols_u32: Mutex::new(None),
            cols_bounded: AtomicBool::new(false),
            panel_reach: Mutex::new(None),
        }
    }

    /// Builds a CSR matrix from raw arrays, validating the invariants.
    ///
    /// # Panics
    /// Panics if any CSR invariant is violated.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        validate_raw(nrows, ncols, &row_ptr, &col_idx, &values);
        Self::assemble(nrows, ncols, row_ptr, col_idx, values)
    }

    /// Builds a CSR matrix from raw arrays that are already known to satisfy
    /// the invariants, validating only under `debug_assertions`.
    ///
    /// Use on hot construction paths (COO compaction, ghost-zone and
    /// partition extraction) where the arrays come out of an algorithm that
    /// guarantees them; keep [`CsrMatrix::from_raw`] for I/O paths. Broken
    /// invariants in release builds lead to index panics or wrong products,
    /// never to memory unsafety (all access is bounds-checked).
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_csr_invariants(nrows, ncols, &row_ptr, &col_idx, &values);
        Self::assemble(nrows, ncols, row_ptr, col_idx, values)
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::assemble(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// A diagonal matrix with the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        Self::assemble(n, n, (0..=n).collect(), (0..n).collect(), diag.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(i, j)`, or `0.0` if not stored. O(log nnz(row i)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix-vector product `y ← A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// SpMV restricted to a contiguous row range `[row_begin, row_end)`,
    /// writing into `y[row_begin..row_end]`. This is the per-rank kernel of
    /// the block-row-distributed executor in `spcg-dist`.
    pub fn spmv_rows(&self, row_begin: usize, row_end: usize, x: &[f64], y: &mut [f64]) {
        assert!(
            row_begin <= row_end && row_end <= self.nrows,
            "spmv_rows: bad range"
        );
        assert_eq!(x.len(), self.ncols, "spmv_rows: x length mismatch");
        for r in row_begin..row_end {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r - row_begin] = acc;
        }
    }

    /// `y ← y + a·A·x`.
    pub fn spmv_acc(&self, a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv_acc: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv_acc: y length mismatch");
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] += a * acc;
        }
    }

    /// Sparse matrix–multivector product `Y ← A·X` over k right-hand-side
    /// columns. Each `SPMM_ROW_BLOCK`-row block of the matrix is
    /// streamed once and serves every column while its entries are hot in
    /// cache; per column the per-row accumulation order is identical to
    /// [`CsrMatrix::spmv`], so column `j` of the result is **bitwise
    /// equal** to `spmv(x.col(j))`.
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn spmm(&self, x: &MultiVector, y: &mut MultiVector) {
        assert_eq!(x.n(), self.ncols, "spmm: x row mismatch");
        assert_eq!(y.n(), self.nrows, "spmm: y row mismatch");
        assert_eq!(x.k(), y.k(), "spmm: column count mismatch");
        let data = y.data_mut();
        self.spmm_rows_into(0, self.nrows, x, &mut |i, v| data[i] = v);
    }

    /// Per column `j`, the true-residual accumulation
    /// `Σ_i (bs[j][i] − (A·X)_j[i])²` with the product `A·X` never stored:
    /// each `SPMM_ROW_BLOCK` row block is staged in an L1-resident tile
    /// and diffed immediately (see `CritSink`), so the criterion costs
    /// one matrix stream and one read of `bs` — no `n·k` scratch write,
    /// no re-read. Per column the accumulation visits rows `0..nrows` in
    /// order with `acc += d·d`, exactly the serial diff loop over a
    /// finished product, so the result is bitwise identical to
    /// [`CsrMatrix::spmm`] into scratch followed by a separate pass.
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn spmm_residual_sq(&self, x: &MultiVector, bs: &[&[f64]]) -> Vec<f64> {
        assert_eq!(x.n(), self.ncols, "spmm: x row mismatch");
        assert_eq!(bs.len(), x.k(), "spmm_residual_sq: rhs count mismatch");
        for b in bs {
            assert_eq!(b.len(), self.nrows, "spmm_residual_sq: rhs length mismatch");
        }
        let k = x.k();
        let mut sink = CritSink {
            bs,
            buf: vec![0.0; SPMM_ROW_BLOCK * k],
            acc: vec![0.0; k],
            k,
        };
        if k == 1 {
            // Width 1 runs the direct SpMV loop into the staging tile —
            // no interleaved pack to amortize.
            let mut blk = 0;
            while blk < self.nrows {
                let blk_end = (blk + SPMM_ROW_BLOCK).min(self.nrows);
                self.spmm_rows_into(blk, blk_end, x, &mut sink);
                sink.block_done(blk, blk_end);
                blk = blk_end;
            }
        } else {
            self.spmm_windowed(0, self.nrows, x, &mut sink);
        }
        sink.acc
    }

    /// `Y ← A·X` plus, per column `j`, the Gram value `xⱼᵀ·(A·x)ⱼ` folded
    /// in while each row block of the product is cache-hot (see
    /// `DotSink`) — the pᵀAp inner product of a CG iteration without
    /// re-streaming either vector. The returned dots are bitwise equal to
    /// `blas::dot(x.col(j), y.col(j))` run on the finished product.
    ///
    /// # Panics
    /// Panics on any dimension mismatch or if the matrix is not square
    /// (the Gram fold pairs operand and product rows one-to-one).
    pub fn spmm_dot(&self, x: &MultiVector, y: &mut MultiVector) -> Vec<f64> {
        assert_eq!(self.nrows, self.ncols, "spmm_dot: matrix must be square");
        assert_eq!(x.n(), self.ncols, "spmm: x row mismatch");
        assert_eq!(y.n(), self.nrows, "spmm: y row mismatch");
        assert_eq!(x.k(), y.k(), "spmm: column count mismatch");
        let (k, nrows) = (x.k(), self.nrows);
        let mut sink = DotSink {
            data: y.data_mut(),
            xs: (0..k).map(|j| x.col(j)).collect(),
            lanes: vec![[0.0; 5]; k],
            partials: vec![Vec::with_capacity(nrows.div_ceil(crate::blas::REDUCE_BLOCK)); k],
            ld: nrows,
            n: nrows,
        };
        if k == 1 {
            let mut blk = 0;
            while blk < nrows {
                let blk_end = (blk + SPMM_ROW_BLOCK).min(nrows);
                self.spmm_rows_into(blk, blk_end, x, &mut sink);
                sink.block_done(blk, blk_end);
                blk = blk_end;
            }
        } else {
            self.spmm_windowed(0, nrows, x, &mut sink);
        }
        sink.partials
            .iter_mut()
            .map(|p| crate::blas::pairwise_sum(p))
            .collect()
    }

    /// Runs `f` with `x` repacked row-major (element `i·k + j` holds
    /// `x.col(j)[i]`) in a reused thread-local scratch buffer. The
    /// interleaved layout puts the `k` operand values of one matrix
    /// column index on one or two cache lines, which is what lets the
    /// grouped SpMM kernel issue contiguous vector loads instead of `k`
    /// scattered gathers.
    pub(crate) fn with_interleaved<R>(x: &MultiVector, f: impl FnOnce(&[f64]) -> R) -> R {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<f64>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            let (n, k) = (x.n(), x.k());
            buf.clear();
            buf.resize(n * k, 0.0);
            let cols: Vec<&[f64]> = (0..k).map(|j| x.col(j)).collect();
            // Row-outer order: writes are sequential and the reads are k
            // prefetch-friendly unit-stride streams.
            for (i, row) in buf.chunks_exact_mut(k).enumerate() {
                for (dst, col) in row.iter_mut().zip(&cols) {
                    // Safety: every column has exactly `n` elements and
                    // `chunks_exact(k)` yields exactly `n` rows.
                    *dst = unsafe { *col.get_unchecked(i) };
                }
            }
            f(&buf)
        })
    }

    /// The SpMM row-range kernel behind [`CsrMatrix::spmm`] and the
    /// threaded [`crate::ParKernels::spmm`]: rows `[row_begin, row_end)`
    /// across all columns of `x`, handing each result to
    /// `write(j·nrows + r, acc)` (column-major flat index with leading
    /// dimension `nrows`). Row-blocked so the block's entries serve all
    /// columns from cache, and column-grouped ([`spmm_rows_group`]) so
    /// the scalar gather loop carries several independent accumulator
    /// chains per matrix entry; per (row, column) the accumulation is
    /// the CSR entry order of [`CsrMatrix::spmv`].
    pub(crate) fn spmm_rows_into<S: SpmmSink>(
        &self,
        row_begin: usize,
        row_end: usize,
        x: &MultiVector,
        write: &mut S,
    ) {
        let k = x.k();
        if k == 1 {
            // Width 1 is exactly SpMV: the fully bounds-checked scalar
            // loop, with no verification pass to amortize.
            let xj = x.col(0);
            for r in row_begin..row_end {
                let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                let mut acc = 0.0;
                for e in lo..hi {
                    acc += self.values[e] * xj[self.col_idx[e]];
                }
                write.put(r, r, 0, acc);
            }
            return;
        }
        self.spmm_windowed(row_begin, row_end, x, write);
    }

    /// The SpMM row-range kernel over a row-major (interleaved) operand,
    /// as produced by [`CsrMatrix::with_interleaved`]: `xr[i·k + j]` is
    /// row `i` of column `j`. Threaded callers repack once and hand every
    /// chunk the same buffer. Results go to `write(j·nrows + r, acc)`
    /// exactly like [`CsrMatrix::spmm_rows_into`].
    pub(crate) fn spmm_rows_interleaved<S: SpmmSink>(
        &self,
        row_begin: usize,
        row_end: usize,
        xr: &[f64],
        k: usize,
        write: &mut S,
    ) {
        assert!(xr.len() >= self.ncols * k, "spmm: operand too short");
        self.ensure_cols_bounded();
        // The narrow index copy halves the bytes of matrix metadata the
        // kernel streams per entry; on matrices too wide for `u32` the
        // ladder runs off the original indices unchanged.
        match self.cols_u32() {
            Some(cols) => self.spmm_ladder(row_begin, row_end, &cols, xr, k, 0, write),
            None => self.spmm_ladder(row_begin, row_end, &self.col_idx, xr, k, 0, write),
        }
    }

    /// The column-group ladder of [`CsrMatrix::spmm_rows_interleaved`],
    /// generic over the stored index width. `off` is the flat-index base
    /// of the operand window: entry column `c` reads `xr[c·k + j − off]`,
    /// so a full pack passes `off = 0` and the windowed pack passes
    /// `reach.lo · k` with `xr` holding only rows `[reach.lo, reach.hi)`.
    #[allow(clippy::too_many_arguments)]
    fn spmm_ladder<I: ColIndex, S: SpmmSink>(
        &self,
        row_begin: usize,
        row_end: usize,
        cols: &[I],
        xr: &[f64],
        k: usize,
        off: usize,
        write: &mut S,
    ) {
        debug_assert_eq!(cols.len(), self.values.len());
        let simd = crate::sell::simd_ok();
        let mut blk = row_begin;
        while blk < row_end {
            let blk_end = (blk + SPMM_ROW_BLOCK).min(row_end);
            let mut j = 0;
            // Eight is the widest rung: a 16-wide group streams 128 bytes
            // of operand per matrix entry and measures ~25% slower than
            // two 8-wide passes over the (cached) row block.
            while j + 8 <= k {
                self.group_dispatch::<8, I, S>(simd, blk, blk_end, cols, xr, k, j, off, write);
                j += 8;
            }
            if j + 4 <= k {
                self.group_dispatch::<4, I, S>(simd, blk, blk_end, cols, xr, k, j, off, write);
                j += 4;
            }
            if j + 2 <= k {
                self.spmm_rows_group::<2, I, S>(blk, blk_end, cols, xr, k, j, off, write);
                j += 2;
            }
            if j < k {
                self.spmm_rows_group::<1, I, S>(blk, blk_end, cols, xr, k, j, off, write);
            }
            blk = blk_end;
        }
    }

    /// Routes one column group to the AVX2 kernel when the CPU has it,
    /// else to the scalar group. Both compute the identical mul-then-add
    /// chain per lane, so the choice never changes a single bit of the
    /// result — it only changes how many lanes one instruction carries.
    #[allow(unused_variables)]
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn group_dispatch<const G: usize, I: ColIndex, S: SpmmSink>(
        &self,
        simd: bool,
        row_begin: usize,
        row_end: usize,
        cols: &[I],
        xr: &[f64],
        k: usize,
        j0: usize,
        off: usize,
        write: &mut S,
    ) {
        #[cfg(target_arch = "x86_64")]
        if simd {
            // Safety: AVX2 presence was just checked; the operand/index
            // bounds contract is `spmm_rows_interleaved`'s.
            unsafe {
                self.spmm_rows_group_avx2::<G, I, S>(
                    row_begin, row_end, cols, xr, k, j0, off, write,
                )
            };
            return;
        }
        self.spmm_rows_group::<G, I, S>(row_begin, row_end, cols, xr, k, j0, off, write);
    }

    /// One group of `G` columns over a row range of the interleaved
    /// operand. Per matrix entry the group's `G` operand values are
    /// contiguous at `xr[c·k + j0 ..]`, so the inner loop compiles to a
    /// couple of vector loads and lane-parallel multiply/adds feeding `G`
    /// *independent* accumulator chains — on one core this, not cache
    /// reuse, is where batched SpMM beats `G` separate SpMV calls: the
    /// single-vector kernel is latency-bound on its one `acc += v·x[c]`
    /// recurrence. Lane `g`'s chain is element-for-element the
    /// [`CsrMatrix::spmv`] order (one multiply, one add per entry, CSR
    /// entry order), so results stay bitwise equal per column.
    ///
    /// Callers must have run [`CsrMatrix::ensure_cols_bounded`] and
    /// guaranteed that `xr` covers every operand index the row range can
    /// touch after the `off` rebase (`xr.len() ≥ reach·k − off` for a
    /// windowed pack, `ncols·k` for a full one), with `j0 + G ≤ k`.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn spmm_rows_group<const G: usize, I: ColIndex, S: SpmmSink>(
        &self,
        row_begin: usize,
        row_end: usize,
        cols: &[I],
        xr: &[f64],
        k: usize,
        j0: usize,
        off: usize,
        write: &mut S,
    ) {
        let ld = self.nrows;
        for r in row_begin..row_end {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = [0.0f64; G];
            for e in lo..hi {
                let v = self.values[e];
                let c = cols[e].idx();
                let base = c * k + j0 - off;
                debug_assert!(c * k + j0 >= off);
                debug_assert!(base + G <= xr.len());
                for g in 0..G {
                    // Safety: `c < ncols` was verified for the whole
                    // matrix by `ensure_cols_bounded`, and the caller
                    // guaranteed `xr` covers the rebased index range
                    // with `j0 + G ≤ k`.
                    acc[g] += v * unsafe { *xr.get_unchecked(base + g) };
                }
            }
            for g in 0..G {
                write.put((j0 + g) * ld + r, r, j0 + g, acc[g]);
            }
        }
    }

    /// AVX2 instance of [`CsrMatrix::spmm_rows_group`]: per matrix entry,
    /// one broadcast of the value and `G/4` contiguous 256-bit loads of
    /// the interleaved operand feed `G/4` packed multiply/adds — no
    /// gathers, because the interleaving already placed the group's
    /// operand values side by side. Lane `g` still performs exactly one
    /// multiply and one add per entry in CSR entry order, so the result
    /// is bitwise identical to the scalar group (packed `mul`/`add` are
    /// lane-wise IEEE operations; no FMA contraction).
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available, `G ∈ {4, 8, 16}`, and the
    /// bounds contract of [`CsrMatrix::spmm_rows_interleaved`] (columns
    /// verified `< ncols`, `xr.len() ≥ ncols·k`, `j0 + G ≤ k`).
    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn spmm_rows_group_avx2<const G: usize, I: ColIndex, S: SpmmSink>(
        &self,
        row_begin: usize,
        row_end: usize,
        cols: &[I],
        xr: &[f64],
        k: usize,
        j0: usize,
        off: usize,
        write: &mut S,
    ) {
        use std::arch::x86_64::*;
        const { assert!(G == 4 || G == 8 || G == 16) };
        let nv = G / 4;
        let ld = self.nrows;
        let xp = xr.as_ptr();
        for r in row_begin..row_end {
            let lo = *self.row_ptr.get_unchecked(r);
            let hi = *self.row_ptr.get_unchecked(r + 1);
            // Up to four 4-lane accumulators; unused slots fold away once
            // the `nv` loops unroll.
            let mut acc = [_mm256_setzero_pd(); 4];
            for e in lo..hi {
                let v = _mm256_set1_pd(*self.values.get_unchecked(e));
                let base = cols.get_unchecked(e).idx() * k + j0 - off;
                for q in 0..nv {
                    let x = _mm256_loadu_pd(xp.add(base + 4 * q));
                    acc[q] = _mm256_add_pd(acc[q], _mm256_mul_pd(v, x));
                }
            }
            let mut out = [0.0f64; G];
            for q in 0..nv {
                _mm256_storeu_pd(out.as_mut_ptr().add(4 * q), acc[q]);
            }
            for g in 0..G {
                write.put((j0 + g) * ld + r, r, j0 + g, out[g]);
            }
        }
    }

    /// Per-panel operand reach `[lo, hi)` of the [`SPMM_PANEL_ROWS`] row
    /// panels, computed once per matrix and cached. Column indices within
    /// a CSR row are sorted, so each row contributes just its first and
    /// last entry; an empty panel reports `(0, 0)`.
    fn panel_reach(&self) -> Arc<Vec<(usize, usize)>> {
        let mut guard = self.panel_reach.lock().unwrap();
        if let Some(reach) = guard.as_ref() {
            return Arc::clone(reach);
        }
        let npanels = self.nrows.div_ceil(SPMM_PANEL_ROWS);
        let mut reach = Vec::with_capacity(npanels);
        for p in 0..npanels {
            let r0 = p * SPMM_PANEL_ROWS;
            let r1 = ((p + 1) * SPMM_PANEL_ROWS).min(self.nrows);
            let (mut lo, mut hi) = (self.ncols, 0usize);
            for r in r0..r1 {
                let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
                if s < e {
                    lo = lo.min(self.col_idx[s]);
                    hi = hi.max(self.col_idx[e - 1] + 1);
                }
            }
            reach.push(if lo < hi { (lo, hi) } else { (0, 0) });
        }
        let reach = Arc::new(reach);
        *guard = Some(Arc::clone(&reach));
        reach
    }

    /// The windowed serial SpMM driver: rows `[row_begin, row_end)` across
    /// all `k > 1` columns of `x`, packing the operand one row panel at a
    /// time instead of all at once. Each panel's interleaved pack covers
    /// only its column reach — for a banded matrix a slab of
    /// `panel + 2·bandwidth` rows that stays cache-resident — so the
    /// operand is read from memory once and the `n·k` scratch copy (which
    /// both inflated the resident set and doubled the operand traffic of
    /// the full pack) never exists. On matrices whose panel reaches would
    /// repack more than twice the operand (irregular structure), one full
    /// pack is used instead. After every `SPMM_ROW_BLOCK` row block the
    /// sink's `block_done` hook fires, enabling fused post-passes over the
    /// still-hot output slice. The arithmetic per (row, column) is the
    /// ladder's regardless of windowing — packing changes addressing, not
    /// values — so results stay bitwise equal to [`CsrMatrix::spmv`] per
    /// column.
    pub(crate) fn spmm_windowed<S: SpmmSink>(
        &self,
        row_begin: usize,
        row_end: usize,
        x: &MultiVector,
        sink: &mut S,
    ) {
        let k = x.k();
        assert!(x.n() >= self.ncols, "spmm: x row mismatch");
        self.ensure_cols_bounded();
        let reach = self.panel_reach();
        let repacked: usize = reach.iter().map(|&(lo, hi)| hi - lo).sum();
        let full = repacked > 2 * self.ncols;
        let u32cols = self.cols_u32();
        thread_local! {
            static SLAB: std::cell::RefCell<Vec<f64>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SLAB.with(|cell| {
            let mut buf = cell.borrow_mut();
            let cols: Vec<&[f64]> = (0..k).map(|j| x.col(j)).collect();
            let mut r = row_begin;
            while r < row_end {
                let (panel_end, clo, chi) = if full {
                    (row_end, 0, self.ncols)
                } else {
                    let p = r / SPMM_PANEL_ROWS;
                    let end = ((p + 1) * SPMM_PANEL_ROWS).min(row_end);
                    (end, reach[p].0, reach[p].1)
                };
                let w = chi - clo;
                buf.clear();
                buf.resize(w * k, 0.0);
                for (i, row) in buf.chunks_exact_mut(k).enumerate() {
                    for (dst, col) in row.iter_mut().zip(&cols) {
                        // Safety: `clo + i < chi ≤ ncols ≤ col.len()`.
                        *dst = unsafe { *col.get_unchecked(clo + i) };
                    }
                }
                let off = clo * k;
                let mut blk = r;
                while blk < panel_end {
                    let end = (blk + SPMM_ROW_BLOCK).min(panel_end);
                    match &u32cols {
                        Some(c) => self.spmm_ladder(blk, end, c, &buf, k, off, sink),
                        None => self.spmm_ladder(blk, end, &self.col_idx, &buf, k, off, sink),
                    }
                    sink.block_done(blk, end);
                    blk = end;
                }
                r = panel_end;
            }
        });
    }

    /// One-time verification that every stored column index is `< ncols`,
    /// backing the unchecked gathers of [`CsrMatrix::spmm_rows_group`].
    /// [`CsrMatrix::from_raw`] already guarantees the invariant; this
    /// explicit pass exists so a matrix assembled through
    /// [`CsrMatrix::from_raw_unchecked`] with broken invariants panics on
    /// its first SpMM instead of reading out of bounds. Verified once per
    /// matrix and remembered (relaxed ordering: a racing duplicate check
    /// is harmless).
    fn ensure_cols_bounded(&self) {
        if self.cols_bounded.load(Ordering::Relaxed) {
            return;
        }
        assert!(
            self.col_idx.iter().all(|&c| c < self.ncols),
            "spmm: column index out of bounds"
        );
        self.cols_bounded.store(true, Ordering::Relaxed);
    }

    /// Copies the diagonal into a vector; missing diagonal entries become 0.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.ncols, self.nrows, self.nnz());
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(c, r, v);
            }
        }
        coo.to_csr()
    }

    /// Checks structural and numerical symmetry up to absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Gershgorin bounds `(lo, hi)` on the spectrum: every eigenvalue lies in
    /// `[min_i (a_ii − R_i), max_i (a_ii + R_i)]` with `R_i` the off-diagonal
    /// row sum. For SPD matrices `max(lo, 0)` is a usable lower bound.
    pub fn gershgorin_bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let mut diag = 0.0;
            let mut radius = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == r {
                    diag = v;
                } else {
                    radius += v.abs();
                }
            }
            lo = lo.min(diag - radius);
            hi = hi.max(diag + radius);
        }
        if self.nrows == 0 {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Scales the matrix in place by `a`.
    pub fn scale(&mut self, a: f64) {
        for v in &mut self.values {
            *v *= a;
        }
    }

    /// Adds `shift` to every diagonal entry, assuming the diagonal is fully
    /// stored (true for all generators in this workspace).
    ///
    /// # Panics
    /// Panics if some row has no stored diagonal entry.
    pub fn shift_diagonal(&mut self, shift: f64) {
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let pos = self.col_idx[lo..hi]
                .binary_search(&r)
                .unwrap_or_else(|_| panic!("shift_diagonal: row {r} has no diagonal entry"));
            self.values[lo + pos] += shift;
        }
    }

    /// Number of FLOPs of one SpMV with this matrix (`2·nnz`), used by the
    /// instrumentation layer.
    pub fn spmv_flops(&self) -> u64 {
        2 * self.nnz() as u64
    }

    /// An nnz-balanced partition of the rows into `nchunks` contiguous
    /// chunks: returns boundaries `b` of length `nchunks + 1` with
    /// `b[0] == 0`, `b[nchunks] == nrows`, and chunk `c` owning rows
    /// `b[c]..b[c+1]`. Cut points sit where the nonzero prefix count crosses
    /// `c·nnz/nchunks`, so every chunk carries roughly equal SpMV work even
    /// on matrices with skewed row lengths.
    ///
    /// The schedule is cached on the matrix (per chunk count), so repeated
    /// threaded SpMVs pay the binary searches once.
    pub fn row_schedule(&self, nchunks: usize) -> Arc<Vec<usize>> {
        let nchunks = nchunks.max(1);
        let mut cache = self.schedule.lock().unwrap();
        if let Some((c, bounds)) = cache.as_ref() {
            if *c == nchunks {
                return Arc::clone(bounds);
            }
        }
        let bounds = Arc::new(nnz_balanced_bounds(&self.row_ptr, self.nrows, nchunks));
        *cache = Some((nchunks, Arc::clone(&bounds)));
        bounds
    }

    /// The interior/frontier classification of rows `[lo, hi)` — which of
    /// them reference only columns inside the range (computable before a
    /// halo exchange completes) and which touch remote columns. Cached per
    /// range, so the depth-1 and depth-s ghost zones of one rank share a
    /// single scan.
    ///
    /// # Panics
    /// Panics if the range is invalid.
    pub fn row_split(&self, lo: usize, hi: usize) -> Arc<RowSplit> {
        let mut cache = self.splits.lock().unwrap();
        if let Some((_, split)) = cache.iter().find(|(range, _)| *range == (lo, hi)) {
            return Arc::clone(split);
        }
        let split = Arc::new(RowSplit::new(self, lo, hi));
        cache.push(((lo, hi), Arc::clone(&split)));
        split
    }

    /// This matrix converted to SELL-C-σ layout (see
    /// [`SellMatrix`]), built on first request and cached — every
    /// executor of a solve shares the one conversion.
    pub fn sell(&self) -> Arc<SellMatrix> {
        let mut cache = self.sell.lock().unwrap();
        if let Some(s) = cache.as_ref() {
            return Arc::clone(s);
        }
        let s = Arc::new(SellMatrix::from_csr(self));
        *cache = Some(Arc::clone(&s));
        s
    }

    /// The column indices packed into `u32`, built on first request and
    /// cached; `None` when the matrix is too wide to pack. The SpMM
    /// kernels stream this copy instead of the `usize` array — 4 bytes of
    /// index per entry instead of 8 — which both halves the metadata
    /// traffic of every matrix pass and shrinks the hot working set a
    /// wide batch must keep cache-resident. Indices carry no arithmetic,
    /// so the packed copy cannot change a result bit.
    fn cols_u32(&self) -> Option<Arc<Vec<u32>>> {
        if self.ncols > u32::MAX as usize {
            return None;
        }
        let mut cache = self.cols_u32.lock().unwrap();
        if let Some(c) = cache.as_ref() {
            return Some(Arc::clone(c));
        }
        let c = Arc::new(self.col_idx.iter().map(|&c| c as u32).collect::<Vec<u32>>());
        *cache = Some(Arc::clone(&c));
        Some(c)
    }
}

/// Computes nnz-balanced chunk boundaries over `row_ptr[..=nrows]`; shared by
/// the cached matrix schedule and the ghost-zone prefix SpMV (whose active
/// row prefix changes per MPK level, so it cannot cache).
pub(crate) fn nnz_balanced_bounds(row_ptr: &[usize], nrows: usize, nchunks: usize) -> Vec<usize> {
    let nnz = row_ptr[nrows];
    let mut bounds = Vec::with_capacity(nchunks + 1);
    bounds.push(0);
    for c in 1..nchunks {
        // Smallest row whose prefix reaches the target; clamped monotone.
        let target = nnz * c / nchunks;
        let cut = row_ptr[..=nrows].partition_point(|&p| p < target);
        bounds.push(cut.min(nrows).max(*bounds.last().unwrap()));
    }
    bounds.push(nrows);
    bounds
}

/// [`nnz_balanced_bounds`] over a *scattered* row list: returns boundaries
/// `b` (length `nchunks + 1`) into `rows` such that the rows
/// `rows[b[c]..b[c+1]]` of chunk `c` carry roughly `nnz(list)/nchunks`
/// nonzeros each. This is the schedule of the interior/frontier SpMV, whose
/// row sets are non-contiguous.
pub(crate) fn nnz_balanced_bounds_list(
    rows: &[usize],
    row_ptr: &[usize],
    nchunks: usize,
) -> Vec<usize> {
    // Prefix nonzero counts over the list (position p = nnz of rows[..p]).
    let mut prefix = Vec::with_capacity(rows.len() + 1);
    prefix.push(0usize);
    for &r in rows {
        prefix.push(prefix.last().unwrap() + (row_ptr[r + 1] - row_ptr[r]));
    }
    nnz_balanced_bounds(&prefix, rows.len(), nchunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 4.0);
        }
        coo.push_sym(1, 0, -1.0);
        coo.push_sym(2, 1, -1.0);
        coo.to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [2.0, 4.0, 10.0]);
    }

    #[test]
    fn spmv_acc_accumulates() {
        let a = small();
        let x = [1.0, 0.0, 0.0];
        let mut y = [1.0, 1.0, 1.0];
        a.spmv_acc(2.0, &x, &mut y);
        assert_eq!(y, [9.0, -1.0, 1.0]);
    }

    #[test]
    fn spmv_rows_matches_full() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut full = [0.0; 3];
        a.spmv(&x, &mut full);
        let mut part = [0.0; 2];
        a.spmv_rows(1, 3, &x, &mut part);
        assert_eq!(part, [full[1], full[2]]);
    }

    #[test]
    fn identity_and_diagonal() {
        let i3 = CsrMatrix::identity(3);
        let x = [5.0, -1.0, 2.0];
        let mut y = [0.0; 3];
        i3.spmv(&x, &mut y);
        assert_eq!(y, x);
        assert_eq!(i3.diagonal(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn transpose_of_symmetric_is_equal() {
        let a = small();
        let at = a.transpose();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), at.get(i, j));
            }
        }
    }

    #[test]
    fn symmetry_check() {
        let a = small();
        assert!(a.is_symmetric(0.0));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 1, 1.0);
        assert!(!coo.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn gershgorin_contains_spectrum() {
        // Eigenvalues of the 3x3 tridiagonal (4,-1) matrix: 4 - 2cos(kπ/4).
        let a = small();
        let (lo, hi) = a.gershgorin_bounds();
        for k in 1..=3 {
            let ev = 4.0 - 2.0 * (std::f64::consts::PI * k as f64 / 4.0).cos();
            assert!(ev >= lo - 1e-12 && ev <= hi + 1e-12);
        }
    }

    #[test]
    fn shift_diagonal_changes_get() {
        let mut a = small();
        a.shift_diagonal(1.5);
        assert_eq!(a.get(0, 0), 5.5);
        assert_eq!(a.get(0, 1), -1.0);
    }

    #[test]
    fn norms_small_matrix() {
        let a = small();
        assert!((a.frobenius_norm() - (3.0f64 * 16.0 + 4.0).sqrt()).abs() < 1e-14);
        assert_eq!(a.norm_inf(), 6.0);
    }

    #[test]
    #[should_panic(expected = "columns must be strictly increasing")]
    fn from_raw_rejects_unsorted() {
        CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn from_raw_unchecked_builds_valid_matrix() {
        let a = CsrMatrix::from_raw_unchecked(2, 2, vec![0, 1, 2], vec![0, 1], vec![2.0, 3.0]);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 1), 3.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "columns must be strictly increasing")]
    fn from_raw_unchecked_still_validates_in_debug() {
        CsrMatrix::from_raw_unchecked(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn row_schedule_covers_rows_and_balances_nnz() {
        let a = crate::generators::poisson::poisson_2d(20);
        for nchunks in [1usize, 2, 3, 7, 8] {
            let b = a.row_schedule(nchunks);
            assert_eq!(b.len(), nchunks + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), a.nrows());
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
            let fair = a.nnz() / nchunks;
            for c in 0..nchunks {
                let work = a.row_ptr()[b[c + 1]] - a.row_ptr()[b[c]];
                // Each cut lands within one row of the exact nnz target.
                assert!(
                    work <= fair + 10,
                    "chunk {c}/{nchunks}: {work} nnz vs fair {fair}"
                );
            }
        }
        // The second request for the same chunk count hits the cache.
        let b1 = a.row_schedule(4);
        let b2 = a.row_schedule(4);
        assert!(Arc::ptr_eq(&b1, &b2));
    }

    #[test]
    fn row_schedule_handles_empty_and_skewed_matrices() {
        let empty = CsrMatrix::from_raw(3, 3, vec![0, 0, 0, 0], vec![], vec![]);
        let b = empty.row_schedule(4);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 3);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));

        // One dense row among empty ones: all cuts collapse around it.
        let dense_row = CsrMatrix::from_raw(3, 3, vec![0, 0, 3, 3], vec![0, 1, 2], vec![1.0; 3]);
        let b = dense_row.row_schedule(3);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 3);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "row_ptr length")]
    fn from_raw_rejects_bad_ptr() {
        CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "columns must be strictly increasing")]
    fn debug_invariant_helper_rejects_unsorted_columns() {
        // Regression: every trusted construction path funnels through the
        // one debug gate, so unsorted input cannot slip past any of them.
        debug_assert_csr_invariants(1, 3, &[0, 2], &[2, 0], &[1.0, 1.0]);
    }

    #[test]
    fn sell_accessor_converts_once_and_matches() {
        let a = crate::generators::poisson::poisson_2d(13);
        let s1 = a.sell();
        let s2 = a.sell();
        assert!(Arc::ptr_eq(&s1, &s2));
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut y_csr = vec![0.0; a.nrows()];
        let mut y_sell = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y_csr);
        s1.spmv(&x, &mut y_sell);
        assert!(y_csr
            .iter()
            .zip(&y_sell)
            .all(|(p, q)| p.to_bits() == q.to_bits()));
        // The clone starts with a fresh (empty) conversion cache.
        let b = a.clone();
        let s3 = b.sell();
        assert!(!Arc::ptr_eq(&s1, &s3));
    }
}
