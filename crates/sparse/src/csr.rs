//! Compressed sparse row (CSR) matrix.
//!
//! CSR is the computational format for all system matrices in this
//! workspace. The solvers only ever need `y = A·x` (plus row access for the
//! Jacobi/SSOR preconditioners), so the interface is deliberately small; the
//! SPD-oriented helpers (symmetry check, Gershgorin bounds, diagonal
//! extraction) support the preconditioners and the basis-parameter
//! estimation.

use crate::coo::CooMatrix;
use crate::sell::SellMatrix;
use crate::split::RowSplit;
use std::sync::{Arc, Mutex};

/// Validates the CSR invariants in debug builds only — the single gate
/// every trusted ("unchecked") construction path goes through, so hot
/// paths cannot drift apart in which invariants they skip. Release builds
/// compile this to nothing; broken invariants there surface as index
/// panics or wrong products, never memory unsafety (all access is
/// bounds-checked).
pub(crate) fn debug_assert_csr_invariants(
    nrows: usize,
    ncols: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
) {
    if cfg!(debug_assertions) {
        validate_raw(nrows, ncols, row_ptr, col_idx, values);
    }
}

/// Validates the CSR invariants, panicking on the first violation.
fn validate_raw(nrows: usize, ncols: usize, row_ptr: &[usize], col_idx: &[usize], values: &[f64]) {
    assert_eq!(
        row_ptr.len(),
        nrows + 1,
        "CSR: row_ptr length must be nrows+1"
    );
    assert_eq!(row_ptr[0], 0, "CSR: row_ptr must start at 0");
    assert_eq!(col_idx.len(), values.len(), "CSR: col/val length mismatch");
    assert_eq!(
        *row_ptr.last().unwrap(),
        col_idx.len(),
        "CSR: row_ptr end mismatch"
    );
    for r in 0..nrows {
        assert!(
            row_ptr[r] <= row_ptr[r + 1],
            "CSR: row_ptr must be monotone"
        );
        let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
        for w in row.windows(2) {
            assert!(
                w[0] < w[1],
                "CSR: columns must be strictly increasing in row {r}"
            );
        }
        if let Some(&last) = row.last() {
            assert!(last < ncols, "CSR: column index out of bounds in row {r}");
        }
    }
}

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (enforced by [`CsrMatrix::from_raw`]):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, monotone non-decreasing;
/// * `col_idx.len() == values.len() == row_ptr[nrows]`;
/// * column indices within each row are strictly increasing and `< ncols`.
#[derive(Debug)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Lazily computed nnz-balanced row partition for the threaded SpMV,
    /// keyed by chunk count (see [`CsrMatrix::row_schedule`]).
    schedule: Mutex<Option<(usize, Arc<Vec<usize>>)>>,
    /// Lazily computed interior/frontier row splits, keyed by owned row
    /// range (see [`CsrMatrix::row_split`]). One entry per distinct range —
    /// in practice one per rank of a block-row partition.
    splits: SplitCache,
    /// Lazily converted SELL-C-σ sibling of this matrix (see
    /// [`CsrMatrix::sell`]), built on first request and shared.
    sell: Mutex<Option<Arc<SellMatrix>>>,
}

/// Cache of [`RowSplit`]s keyed by owned row range.
type SplitCache = Mutex<Vec<((usize, usize), Arc<RowSplit>)>>;

impl Clone for CsrMatrix {
    fn clone(&self) -> Self {
        // The schedule cache is derived data; the clone recomputes on demand.
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.clone(),
            schedule: Mutex::new(None),
            splits: Mutex::new(Vec::new()),
            sell: Mutex::new(None),
        }
    }
}

impl CsrMatrix {
    fn assemble(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            schedule: Mutex::new(None),
            splits: Mutex::new(Vec::new()),
            sell: Mutex::new(None),
        }
    }

    /// Builds a CSR matrix from raw arrays, validating the invariants.
    ///
    /// # Panics
    /// Panics if any CSR invariant is violated.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        validate_raw(nrows, ncols, &row_ptr, &col_idx, &values);
        Self::assemble(nrows, ncols, row_ptr, col_idx, values)
    }

    /// Builds a CSR matrix from raw arrays that are already known to satisfy
    /// the invariants, validating only under `debug_assertions`.
    ///
    /// Use on hot construction paths (COO compaction, ghost-zone and
    /// partition extraction) where the arrays come out of an algorithm that
    /// guarantees them; keep [`CsrMatrix::from_raw`] for I/O paths. Broken
    /// invariants in release builds lead to index panics or wrong products,
    /// never to memory unsafety (all access is bounds-checked).
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_csr_invariants(nrows, ncols, &row_ptr, &col_idx, &values);
        Self::assemble(nrows, ncols, row_ptr, col_idx, values)
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::assemble(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// A diagonal matrix with the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        Self::assemble(n, n, (0..=n).collect(), (0..n).collect(), diag.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(i, j)`, or `0.0` if not stored. O(log nnz(row i)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix-vector product `y ← A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// SpMV restricted to a contiguous row range `[row_begin, row_end)`,
    /// writing into `y[row_begin..row_end]`. This is the per-rank kernel of
    /// the block-row-distributed executor in `spcg-dist`.
    pub fn spmv_rows(&self, row_begin: usize, row_end: usize, x: &[f64], y: &mut [f64]) {
        assert!(
            row_begin <= row_end && row_end <= self.nrows,
            "spmv_rows: bad range"
        );
        assert_eq!(x.len(), self.ncols, "spmv_rows: x length mismatch");
        for r in row_begin..row_end {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r - row_begin] = acc;
        }
    }

    /// `y ← y + a·A·x`.
    pub fn spmv_acc(&self, a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv_acc: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv_acc: y length mismatch");
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] += a * acc;
        }
    }

    /// Copies the diagonal into a vector; missing diagonal entries become 0.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.ncols, self.nrows, self.nnz());
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(c, r, v);
            }
        }
        coo.to_csr()
    }

    /// Checks structural and numerical symmetry up to absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Gershgorin bounds `(lo, hi)` on the spectrum: every eigenvalue lies in
    /// `[min_i (a_ii − R_i), max_i (a_ii + R_i)]` with `R_i` the off-diagonal
    /// row sum. For SPD matrices `max(lo, 0)` is a usable lower bound.
    pub fn gershgorin_bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let mut diag = 0.0;
            let mut radius = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == r {
                    diag = v;
                } else {
                    radius += v.abs();
                }
            }
            lo = lo.min(diag - radius);
            hi = hi.max(diag + radius);
        }
        if self.nrows == 0 {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Scales the matrix in place by `a`.
    pub fn scale(&mut self, a: f64) {
        for v in &mut self.values {
            *v *= a;
        }
    }

    /// Adds `shift` to every diagonal entry, assuming the diagonal is fully
    /// stored (true for all generators in this workspace).
    ///
    /// # Panics
    /// Panics if some row has no stored diagonal entry.
    pub fn shift_diagonal(&mut self, shift: f64) {
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let pos = self.col_idx[lo..hi]
                .binary_search(&r)
                .unwrap_or_else(|_| panic!("shift_diagonal: row {r} has no diagonal entry"));
            self.values[lo + pos] += shift;
        }
    }

    /// Number of FLOPs of one SpMV with this matrix (`2·nnz`), used by the
    /// instrumentation layer.
    pub fn spmv_flops(&self) -> u64 {
        2 * self.nnz() as u64
    }

    /// An nnz-balanced partition of the rows into `nchunks` contiguous
    /// chunks: returns boundaries `b` of length `nchunks + 1` with
    /// `b[0] == 0`, `b[nchunks] == nrows`, and chunk `c` owning rows
    /// `b[c]..b[c+1]`. Cut points sit where the nonzero prefix count crosses
    /// `c·nnz/nchunks`, so every chunk carries roughly equal SpMV work even
    /// on matrices with skewed row lengths.
    ///
    /// The schedule is cached on the matrix (per chunk count), so repeated
    /// threaded SpMVs pay the binary searches once.
    pub fn row_schedule(&self, nchunks: usize) -> Arc<Vec<usize>> {
        let nchunks = nchunks.max(1);
        let mut cache = self.schedule.lock().unwrap();
        if let Some((c, bounds)) = cache.as_ref() {
            if *c == nchunks {
                return Arc::clone(bounds);
            }
        }
        let bounds = Arc::new(nnz_balanced_bounds(&self.row_ptr, self.nrows, nchunks));
        *cache = Some((nchunks, Arc::clone(&bounds)));
        bounds
    }

    /// The interior/frontier classification of rows `[lo, hi)` — which of
    /// them reference only columns inside the range (computable before a
    /// halo exchange completes) and which touch remote columns. Cached per
    /// range, so the depth-1 and depth-s ghost zones of one rank share a
    /// single scan.
    ///
    /// # Panics
    /// Panics if the range is invalid.
    pub fn row_split(&self, lo: usize, hi: usize) -> Arc<RowSplit> {
        let mut cache = self.splits.lock().unwrap();
        if let Some((_, split)) = cache.iter().find(|(range, _)| *range == (lo, hi)) {
            return Arc::clone(split);
        }
        let split = Arc::new(RowSplit::new(self, lo, hi));
        cache.push(((lo, hi), Arc::clone(&split)));
        split
    }

    /// This matrix converted to SELL-C-σ layout (see
    /// [`SellMatrix`]), built on first request and cached — every
    /// executor of a solve shares the one conversion.
    pub fn sell(&self) -> Arc<SellMatrix> {
        let mut cache = self.sell.lock().unwrap();
        if let Some(s) = cache.as_ref() {
            return Arc::clone(s);
        }
        let s = Arc::new(SellMatrix::from_csr(self));
        *cache = Some(Arc::clone(&s));
        s
    }
}

/// Computes nnz-balanced chunk boundaries over `row_ptr[..=nrows]`; shared by
/// the cached matrix schedule and the ghost-zone prefix SpMV (whose active
/// row prefix changes per MPK level, so it cannot cache).
pub(crate) fn nnz_balanced_bounds(row_ptr: &[usize], nrows: usize, nchunks: usize) -> Vec<usize> {
    let nnz = row_ptr[nrows];
    let mut bounds = Vec::with_capacity(nchunks + 1);
    bounds.push(0);
    for c in 1..nchunks {
        // Smallest row whose prefix reaches the target; clamped monotone.
        let target = nnz * c / nchunks;
        let cut = row_ptr[..=nrows].partition_point(|&p| p < target);
        bounds.push(cut.min(nrows).max(*bounds.last().unwrap()));
    }
    bounds.push(nrows);
    bounds
}

/// [`nnz_balanced_bounds`] over a *scattered* row list: returns boundaries
/// `b` (length `nchunks + 1`) into `rows` such that the rows
/// `rows[b[c]..b[c+1]]` of chunk `c` carry roughly `nnz(list)/nchunks`
/// nonzeros each. This is the schedule of the interior/frontier SpMV, whose
/// row sets are non-contiguous.
pub(crate) fn nnz_balanced_bounds_list(
    rows: &[usize],
    row_ptr: &[usize],
    nchunks: usize,
) -> Vec<usize> {
    // Prefix nonzero counts over the list (position p = nnz of rows[..p]).
    let mut prefix = Vec::with_capacity(rows.len() + 1);
    prefix.push(0usize);
    for &r in rows {
        prefix.push(prefix.last().unwrap() + (row_ptr[r + 1] - row_ptr[r]));
    }
    nnz_balanced_bounds(&prefix, rows.len(), nchunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 4.0);
        }
        coo.push_sym(1, 0, -1.0);
        coo.push_sym(2, 1, -1.0);
        coo.to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [2.0, 4.0, 10.0]);
    }

    #[test]
    fn spmv_acc_accumulates() {
        let a = small();
        let x = [1.0, 0.0, 0.0];
        let mut y = [1.0, 1.0, 1.0];
        a.spmv_acc(2.0, &x, &mut y);
        assert_eq!(y, [9.0, -1.0, 1.0]);
    }

    #[test]
    fn spmv_rows_matches_full() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut full = [0.0; 3];
        a.spmv(&x, &mut full);
        let mut part = [0.0; 2];
        a.spmv_rows(1, 3, &x, &mut part);
        assert_eq!(part, [full[1], full[2]]);
    }

    #[test]
    fn identity_and_diagonal() {
        let i3 = CsrMatrix::identity(3);
        let x = [5.0, -1.0, 2.0];
        let mut y = [0.0; 3];
        i3.spmv(&x, &mut y);
        assert_eq!(y, x);
        assert_eq!(i3.diagonal(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn transpose_of_symmetric_is_equal() {
        let a = small();
        let at = a.transpose();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), at.get(i, j));
            }
        }
    }

    #[test]
    fn symmetry_check() {
        let a = small();
        assert!(a.is_symmetric(0.0));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 1, 1.0);
        assert!(!coo.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn gershgorin_contains_spectrum() {
        // Eigenvalues of the 3x3 tridiagonal (4,-1) matrix: 4 - 2cos(kπ/4).
        let a = small();
        let (lo, hi) = a.gershgorin_bounds();
        for k in 1..=3 {
            let ev = 4.0 - 2.0 * (std::f64::consts::PI * k as f64 / 4.0).cos();
            assert!(ev >= lo - 1e-12 && ev <= hi + 1e-12);
        }
    }

    #[test]
    fn shift_diagonal_changes_get() {
        let mut a = small();
        a.shift_diagonal(1.5);
        assert_eq!(a.get(0, 0), 5.5);
        assert_eq!(a.get(0, 1), -1.0);
    }

    #[test]
    fn norms_small_matrix() {
        let a = small();
        assert!((a.frobenius_norm() - (3.0f64 * 16.0 + 4.0).sqrt()).abs() < 1e-14);
        assert_eq!(a.norm_inf(), 6.0);
    }

    #[test]
    #[should_panic(expected = "columns must be strictly increasing")]
    fn from_raw_rejects_unsorted() {
        CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn from_raw_unchecked_builds_valid_matrix() {
        let a = CsrMatrix::from_raw_unchecked(2, 2, vec![0, 1, 2], vec![0, 1], vec![2.0, 3.0]);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 1), 3.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "columns must be strictly increasing")]
    fn from_raw_unchecked_still_validates_in_debug() {
        CsrMatrix::from_raw_unchecked(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn row_schedule_covers_rows_and_balances_nnz() {
        let a = crate::generators::poisson::poisson_2d(20);
        for nchunks in [1usize, 2, 3, 7, 8] {
            let b = a.row_schedule(nchunks);
            assert_eq!(b.len(), nchunks + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), a.nrows());
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
            let fair = a.nnz() / nchunks;
            for c in 0..nchunks {
                let work = a.row_ptr()[b[c + 1]] - a.row_ptr()[b[c]];
                // Each cut lands within one row of the exact nnz target.
                assert!(
                    work <= fair + 10,
                    "chunk {c}/{nchunks}: {work} nnz vs fair {fair}"
                );
            }
        }
        // The second request for the same chunk count hits the cache.
        let b1 = a.row_schedule(4);
        let b2 = a.row_schedule(4);
        assert!(Arc::ptr_eq(&b1, &b2));
    }

    #[test]
    fn row_schedule_handles_empty_and_skewed_matrices() {
        let empty = CsrMatrix::from_raw(3, 3, vec![0, 0, 0, 0], vec![], vec![]);
        let b = empty.row_schedule(4);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 3);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));

        // One dense row among empty ones: all cuts collapse around it.
        let dense_row = CsrMatrix::from_raw(3, 3, vec![0, 0, 3, 3], vec![0, 1, 2], vec![1.0; 3]);
        let b = dense_row.row_schedule(3);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 3);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "row_ptr length")]
    fn from_raw_rejects_bad_ptr() {
        CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "columns must be strictly increasing")]
    fn debug_invariant_helper_rejects_unsorted_columns() {
        // Regression: every trusted construction path funnels through the
        // one debug gate, so unsorted input cannot slip past any of them.
        debug_assert_csr_invariants(1, 3, &[0, 2], &[2, 0], &[1.0, 1.0]);
    }

    #[test]
    fn sell_accessor_converts_once_and_matches() {
        let a = crate::generators::poisson::poisson_2d(13);
        let s1 = a.sell();
        let s2 = a.sell();
        assert!(Arc::ptr_eq(&s1, &s2));
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut y_csr = vec![0.0; a.nrows()];
        let mut y_sell = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y_csr);
        s1.spmv(&x, &mut y_sell);
        assert!(y_csr
            .iter()
            .zip(&y_sell)
            .all(|(p, q)| p.to_bits() == q.to_bits()));
        // The clone starts with a fresh (empty) conversion cache.
        let b = a.clone();
        let s3 = b.sell();
        assert!(!Arc::ptr_eq(&s1, &s3));
    }
}
