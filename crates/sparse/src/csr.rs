//! Compressed sparse row (CSR) matrix.
//!
//! CSR is the computational format for all system matrices in this
//! workspace. The solvers only ever need `y = A·x` (plus row access for the
//! Jacobi/SSOR preconditioners), so the interface is deliberately small; the
//! SPD-oriented helpers (symmetry check, Gershgorin bounds, diagonal
//! extraction) support the preconditioners and the basis-parameter
//! estimation.

use crate::coo::CooMatrix;

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (enforced by [`CsrMatrix::from_raw`]):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, monotone non-decreasing;
/// * `col_idx.len() == values.len() == row_ptr[nrows]`;
/// * column indices within each row are strictly increasing and `< ncols`.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating the invariants.
    ///
    /// # Panics
    /// Panics if any CSR invariant is violated.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            row_ptr.len(),
            nrows + 1,
            "CSR: row_ptr length must be nrows+1"
        );
        assert_eq!(row_ptr[0], 0, "CSR: row_ptr must start at 0");
        assert_eq!(col_idx.len(), values.len(), "CSR: col/val length mismatch");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "CSR: row_ptr end mismatch"
        );
        for r in 0..nrows {
            assert!(
                row_ptr[r] <= row_ptr[r + 1],
                "CSR: row_ptr must be monotone"
            );
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                assert!(
                    w[0] < w[1],
                    "CSR: columns must be strictly increasing in row {r}"
                );
            }
            if let Some(&last) = row.last() {
                assert!(last < ncols, "CSR: column index out of bounds in row {r}");
            }
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// A diagonal matrix with the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: diag.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(i, j)`, or `0.0` if not stored. O(log nnz(row i)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix-vector product `y ← A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// SpMV restricted to a contiguous row range `[row_begin, row_end)`,
    /// writing into `y[row_begin..row_end]`. This is the per-rank kernel of
    /// the block-row-distributed executor in `spcg-dist`.
    pub fn spmv_rows(&self, row_begin: usize, row_end: usize, x: &[f64], y: &mut [f64]) {
        assert!(
            row_begin <= row_end && row_end <= self.nrows,
            "spmv_rows: bad range"
        );
        assert_eq!(x.len(), self.ncols, "spmv_rows: x length mismatch");
        for r in row_begin..row_end {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r - row_begin] = acc;
        }
    }

    /// `y ← y + a·A·x`.
    pub fn spmv_acc(&self, a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv_acc: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv_acc: y length mismatch");
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] += a * acc;
        }
    }

    /// Copies the diagonal into a vector; missing diagonal entries become 0.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.ncols, self.nrows, self.nnz());
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(c, r, v);
            }
        }
        coo.to_csr()
    }

    /// Checks structural and numerical symmetry up to absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Gershgorin bounds `(lo, hi)` on the spectrum: every eigenvalue lies in
    /// `[min_i (a_ii − R_i), max_i (a_ii + R_i)]` with `R_i` the off-diagonal
    /// row sum. For SPD matrices `max(lo, 0)` is a usable lower bound.
    pub fn gershgorin_bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let mut diag = 0.0;
            let mut radius = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == r {
                    diag = v;
                } else {
                    radius += v.abs();
                }
            }
            lo = lo.min(diag - radius);
            hi = hi.max(diag + radius);
        }
        if self.nrows == 0 {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Scales the matrix in place by `a`.
    pub fn scale(&mut self, a: f64) {
        for v in &mut self.values {
            *v *= a;
        }
    }

    /// Adds `shift` to every diagonal entry, assuming the diagonal is fully
    /// stored (true for all generators in this workspace).
    ///
    /// # Panics
    /// Panics if some row has no stored diagonal entry.
    pub fn shift_diagonal(&mut self, shift: f64) {
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let pos = self.col_idx[lo..hi]
                .binary_search(&r)
                .unwrap_or_else(|_| panic!("shift_diagonal: row {r} has no diagonal entry"));
            self.values[lo + pos] += shift;
        }
    }

    /// Number of FLOPs of one SpMV with this matrix (`2·nnz`), used by the
    /// instrumentation layer.
    pub fn spmv_flops(&self) -> u64 {
        2 * self.nnz() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 4.0);
        }
        coo.push_sym(1, 0, -1.0);
        coo.push_sym(2, 1, -1.0);
        coo.to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [2.0, 4.0, 10.0]);
    }

    #[test]
    fn spmv_acc_accumulates() {
        let a = small();
        let x = [1.0, 0.0, 0.0];
        let mut y = [1.0, 1.0, 1.0];
        a.spmv_acc(2.0, &x, &mut y);
        assert_eq!(y, [9.0, -1.0, 1.0]);
    }

    #[test]
    fn spmv_rows_matches_full() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut full = [0.0; 3];
        a.spmv(&x, &mut full);
        let mut part = [0.0; 2];
        a.spmv_rows(1, 3, &x, &mut part);
        assert_eq!(part, [full[1], full[2]]);
    }

    #[test]
    fn identity_and_diagonal() {
        let i3 = CsrMatrix::identity(3);
        let x = [5.0, -1.0, 2.0];
        let mut y = [0.0; 3];
        i3.spmv(&x, &mut y);
        assert_eq!(y, x);
        assert_eq!(i3.diagonal(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn transpose_of_symmetric_is_equal() {
        let a = small();
        let at = a.transpose();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), at.get(i, j));
            }
        }
    }

    #[test]
    fn symmetry_check() {
        let a = small();
        assert!(a.is_symmetric(0.0));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 1, 1.0);
        assert!(!coo.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn gershgorin_contains_spectrum() {
        // Eigenvalues of the 3x3 tridiagonal (4,-1) matrix: 4 - 2cos(kπ/4).
        let a = small();
        let (lo, hi) = a.gershgorin_bounds();
        for k in 1..=3 {
            let ev = 4.0 - 2.0 * (std::f64::consts::PI * k as f64 / 4.0).cos();
            assert!(ev >= lo - 1e-12 && ev <= hi + 1e-12);
        }
    }

    #[test]
    fn shift_diagonal_changes_get() {
        let mut a = small();
        a.shift_diagonal(1.5);
        assert_eq!(a.get(0, 0), 5.5);
        assert_eq!(a.get(0, 1), -1.0);
    }

    #[test]
    fn norms_small_matrix() {
        let a = small();
        assert!((a.frobenius_norm() - (3.0f64 * 16.0 + 4.0).sqrt()).abs() < 1e-14);
        assert_eq!(a.norm_inf(), 6.0);
    }

    #[test]
    #[should_panic(expected = "columns must be strictly increasing")]
    fn from_raw_rejects_unsorted() {
        CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "row_ptr length")]
    fn from_raw_rejects_bad_ptr() {
        CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }
}
