//! SELL-C-σ sliced sparse format: the bandwidth-oriented sibling of
//! [`CsrMatrix`].
//!
//! CSR's SpMV walks one row at a time, so the inner loop is a single
//! *serial* chain of multiply-accumulates — on the 7-point Poisson
//! stencils that dominate this workspace the chain is 7 FMAs deep and the
//! kernel is latency-bound, not bandwidth-bound. SELL-C-σ restructures the
//! matrix so the inner loop carries many *independent* rows at once:
//!
//! * rows are grouped into **slices** of `C = 32` ([`SELL_C`]) lanes;
//! * each slice is padded to its longest row and stored **column-major**
//!   (entry `j` of lane `l` lives at `base + j·C + l`), so entry `j` of
//!   all 32 lanes is one unit-stride run;
//! * within **σ-windows** of `σ = 256` rows ([`SELL_SIGMA`]) the rows are
//!   stably sorted by descending length, which packs similar-length rows
//!   into the same slice and bounds padding waste — and because σ is a
//!   multiple of C the sort never crosses a window boundary, so a row's
//!   sorted position stays inside its own window;
//! * the sort permutation is kept alongside ([`SellMatrix::perm`]) and
//!   results are scattered back to **original row order**, so callers
//!   never see the reordering.
//!
//! # Bitwise determinism
//!
//! The kernel reproduces `CsrMatrix::spmv` bit for bit, for any thread
//! count:
//!
//! * each row gets exactly **one accumulator**, fed its entries in the
//!   original CSR order — instruction-level parallelism comes from
//!   carrying [`LANE_BLOCK`] independent rows through the width loop, not
//!   from splitting any row's sum;
//! * pad slots hold value `0.0` and the lane's own last real column (or
//!   column 0 for empty lanes). A pad contributes `acc + 0.0·x[c]`, and
//!   since an accumulator that starts at `+0.0` can never become `-0.0`
//!   through addition (IEEE round-to-nearest only yields `-0.0` from
//!   `-0.0 + -0.0`), adding the `±0.0` product is a bitwise identity on
//!   `acc`. (The one caveat: `0.0·x[c]` is NaN when `x[c]` is infinite,
//!   which only arises in already-diverged solves.)
//! * threading partitions **whole slices**; the permutation is injective,
//!   so threads write disjoint output positions and the result is
//!   identical for any partition.
//!
//! The same layout generalizes to *scattered row lists* (the ghost-zone
//! interior/frontier kernels): [`SellMatrix::from_rows`] packs an explicit
//! list of rows in the given order, with `perm` carrying the output
//! position of each lane. An ascending list keeps prefix cuts (`rows <
//! nrows`) equal to lane prefixes, which is what the per-level MPK
//! frontier needs.
//!
//! # Index compression
//!
//! The kernel is bandwidth-bound, so bytes per stored entry decide the
//! throughput. Column indices are stored per slice as either `u32`
//! absolutes (12 bytes per entry with the value) or, when a slice's
//! column span fits 16 bits, as `u16` offsets from the slice's smallest
//! column (10 bytes per entry). Banded matrices — every stencil in this
//! workspace — take the narrow path for every slice; the wide path is the
//! general-matrix fallback and both may coexist in one matrix.

use crate::csr::{nnz_balanced_bounds, CsrMatrix};
use crate::multivector::MultiVector;
use std::sync::{Arc, Mutex};

/// Slice height: rows per slice, and the unit stride of the column-major
/// inner loop. A power of two so slice indices are shifts.
pub const SELL_C: usize = 32;

/// Sorting window: rows are length-sorted only within σ-aligned windows.
/// A multiple of [`SELL_C`], so sorted positions never leave their window
/// and the permutation is block-confined (see the module docs).
pub const SELL_SIGMA: usize = 256;

/// Lanes carried per unrolled block of the SpMV inner loop: eight
/// independent accumulators in registers, covering a 32-lane slice in
/// four blocks.
pub const LANE_BLOCK: usize = 8;

/// Which sparse-matrix storage the executors run their SpMV-class kernels
/// on. Selected per solve via `SolveOptions` (`SPCG_FORMAT=csr|sell`);
/// results are bitwise identical across formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparseFormat {
    /// Compressed sparse row — the assembly format and the default.
    #[default]
    Csr,
    /// SELL-C-σ sliced format (this module): unrolled unit-stride kernels.
    Sell,
}

impl SparseFormat {
    /// Reads `SPCG_FORMAT` (`csr` | `sell`, case-insensitive). `None` when
    /// unset or empty.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a misspelled format silently
    /// falling back to CSR would invalidate a benchmark run.
    pub fn from_env() -> Option<Self> {
        let v = std::env::var("SPCG_FORMAT").ok()?;
        match v.to_ascii_lowercase().as_str() {
            "" => None,
            "csr" => Some(SparseFormat::Csr),
            "sell" => Some(SparseFormat::Sell),
            other => panic!("SPCG_FORMAT: unknown format {other:?} (expected csr|sell)"),
        }
    }

    /// Short lowercase name (`"csr"` | `"sell"`), stable for JSON keys.
    pub fn name(&self) -> &'static str {
        match self {
            SparseFormat::Csr => "csr",
            SparseFormat::Sell => "sell",
        }
    }
}

/// A sparse matrix (or scattered row subset of one) in SELL-C-σ layout.
///
/// Built from a [`CsrMatrix`] ([`SellMatrix::from_csr`], σ-sorted) or from
/// an explicit row list over raw CSR arrays ([`SellMatrix::from_rows`],
/// order preserved). See the module docs for the layout and the
/// determinism argument.
#[derive(Debug)]
pub struct SellMatrix {
    /// Columns of the source operand (`x` must be at least this long).
    ncols: usize,
    /// Stored (real, un-padded) nonzeros.
    nnz: usize,
    /// One past the largest output index written (`y` must be at least
    /// this long).
    out_len: usize,
    /// Per-slice offsets into `cols`/`vals`; slice `s` occupies
    /// `slice_ptr[s]..slice_ptr[s+1]` = `width(s)·C` slots. Doubles as the
    /// padded-work prefix for the nnz-balanced slice schedule.
    slice_ptr: Vec<usize>,
    /// Column indices of wide slices, column-major per slice, pads
    /// pointing at the lane's own last real column (locality-neutral,
    /// always in bounds). Only the slots of [`SliceCols::Wide`] slices are
    /// meaningful; narrow slices live in `cols16`.
    cols: Vec<u32>,
    /// Base-relative column offsets of narrow slices (see the module's
    /// *Index compression* section); parallel to `cols`.
    cols16: Vec<u16>,
    /// Per-slice column encoding.
    kind: Vec<SliceCols>,
    /// Values, column-major per slice, pads zero.
    vals: Vec<f64>,
    /// `perm[p]` = output row of lane position `p` (length = real lanes;
    /// virtual lanes padding the last slice are never read or written).
    perm: Vec<usize>,
    /// Max σ-window distance between a row and the columns it touches —
    /// the one-hop dependency half-width of the fused MPK tiling. Only
    /// computed by [`SellMatrix::from_csr`] (zero for row-list builds).
    window_reach: usize,
    /// Lazily computed padded-work-balanced slice partition for the
    /// threaded SpMV, keyed by chunk count (mirrors
    /// [`CsrMatrix::row_schedule`]).
    schedule: Mutex<Option<(usize, Arc<Vec<usize>>)>>,
}

impl Clone for SellMatrix {
    fn clone(&self) -> Self {
        SellMatrix {
            ncols: self.ncols,
            nnz: self.nnz,
            out_len: self.out_len,
            slice_ptr: self.slice_ptr.clone(),
            cols: self.cols.clone(),
            cols16: self.cols16.clone(),
            kind: self.kind.clone(),
            vals: self.vals.clone(),
            perm: self.perm.clone(),
            window_reach: self.window_reach,
            schedule: Mutex::new(None),
        }
    }
}

/// How one slice stores its column indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SliceCols {
    /// Absolute `u32` indices in `SellMatrix::cols`.
    Wide,
    /// `u16` offsets in `SellMatrix::cols16`, relative to this base
    /// column (the slice's smallest referenced column).
    Narrow(u32),
}

/// One stored column slot resolved to an `x` index: absolute for the wide
/// path, base-relative for the narrow path. Monomorphized per slice so
/// the inner loops stay branch-free.
trait ColIx: Copy {
    fn ix(self, base: usize) -> usize;

    /// The AVX2 width loop of one [`LANE_BLOCK`] lane block: eight
    /// accumulators in two `ymm` registers, gathered `x` reads, separate
    /// multiply and add so every lane reproduces the scalar loop bit for
    /// bit.
    ///
    /// # Safety
    /// AVX2 must be available; `cols`/`vals` point at the block's first
    /// lane with `width` strided steps of [`SELL_C`] in bounds; every
    /// resolved index must be readable from `xb`.
    #[cfg(target_arch = "x86_64")]
    unsafe fn block_avx2(
        cols: *const Self,
        vals: *const f64,
        width: usize,
        xb: *const f64,
        acc: &mut [f64; LANE_BLOCK],
    );
}

impl ColIx for u32 {
    #[inline(always)]
    fn ix(self, _base: usize) -> usize {
        self as usize
    }

    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    unsafe fn block_avx2(
        cols: *const Self,
        vals: *const f64,
        width: usize,
        xb: *const f64,
        acc: &mut [f64; LANE_BLOCK],
    ) {
        avx2_block_u32(cols, vals, width, xb, acc);
    }
}

impl ColIx for u16 {
    #[inline(always)]
    fn ix(self, base: usize) -> usize {
        base + self as usize
    }

    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    unsafe fn block_avx2(
        cols: *const Self,
        vals: *const f64,
        width: usize,
        xb: *const f64,
        acc: &mut [f64; LANE_BLOCK],
    ) {
        avx2_block_u16(cols, vals, width, xb, acc);
    }
}

/// Whether the AVX2 SIMD kernels (the SELL gather blocks and the CSR
/// SpMM column groups) may run. The detection macro caches its CPUID
/// probe, so this is a relaxed atomic load.
#[cfg(target_arch = "x86_64")]
pub(crate) fn simd_ok() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn simd_ok() -> bool {
    false
}

// The SIMD block kernels hard-code two 4-wide halves of the lane block.
const _: () = assert!(LANE_BLOCK == 8);

/// AVX2 lane block over `u16` base-relative offsets: zero-extend eight
/// offsets, gather from `xb` (already advanced to the base column),
/// multiply, add. See [`ColIx::block_avx2`] for the safety contract.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_block_u16(
    cols: *const u16,
    vals: *const f64,
    width: usize,
    xb: *const f64,
    acc: &mut [f64; LANE_BLOCK],
) {
    use std::arch::x86_64::*;
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    let mut k = 0usize;
    for _ in 0..width {
        let idx = _mm256_cvtepu16_epi32(_mm_loadu_si128(cols.add(k) as *const __m128i));
        let g0 = _mm256_i32gather_pd::<8>(xb, _mm256_castsi256_si128(idx));
        let g1 = _mm256_i32gather_pd::<8>(xb, _mm256_extracti128_si256::<1>(idx));
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(vals.add(k)), g0));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(vals.add(k + 4)), g1));
        k += SELL_C;
    }
    _mm256_storeu_pd(acc.as_mut_ptr(), a0);
    _mm256_storeu_pd(acc.as_mut_ptr().add(4), a1);
}

/// AVX2 lane block over absolute `u32` columns. The caller guarantees
/// every index fits `i32` (the gather reads signed indices); see
/// [`ColIx::block_avx2`] for the rest of the safety contract.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_block_u32(
    cols: *const u32,
    vals: *const f64,
    width: usize,
    xb: *const f64,
    acc: &mut [f64; LANE_BLOCK],
) {
    use std::arch::x86_64::*;
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    let mut k = 0usize;
    for _ in 0..width {
        let idx = _mm256_loadu_si256(cols.add(k) as *const __m256i);
        let g0 = _mm256_i32gather_pd::<8>(xb, _mm256_castsi256_si128(idx));
        let g1 = _mm256_i32gather_pd::<8>(xb, _mm256_extracti128_si256::<1>(idx));
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(vals.add(k)), g0));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(vals.add(k + 4)), g1));
        k += SELL_C;
    }
    _mm256_storeu_pd(acc.as_mut_ptr(), a0);
    _mm256_storeu_pd(acc.as_mut_ptr().add(4), a1);
}

impl SellMatrix {
    /// Converts a full CSR matrix: σ-window sorted, output in original row
    /// order. Also records the σ-window reach half-width for the fused
    /// MPK tiling.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let order = sigma_sorted_order(a.row_ptr(), a.nrows());
        let mut m = Self::build(a.row_ptr(), a.col_idx(), a.values(), a.ncols(), order);
        m.out_len = a.nrows();
        m.window_reach = window_reach(a);
        m
    }

    /// Packs the listed rows of raw CSR arrays, in the given order and
    /// without sorting: lane `p` holds `rows[p]` and scatters its result
    /// to `y[rows[p]]`. Used for the ghost-zone interior/frontier row
    /// lists, whose ascending order makes a row prefix a lane prefix.
    pub fn from_rows(row_ptr: &[usize], col_idx: &[usize], values: &[f64], rows: &[usize]) -> Self {
        let ncols = rows
            .iter()
            .flat_map(|&r| col_idx[row_ptr[r]..row_ptr[r + 1]].iter())
            .fold(0usize, |m, &c| m.max(c + 1));
        Self::build(row_ptr, col_idx, values, ncols, rows.to_vec())
    }

    /// Core packer: `order[p]` is the source row of lane `p` and also its
    /// output index.
    fn build(
        row_ptr: &[usize],
        col_idx: &[usize],
        values: &[f64],
        ncols: usize,
        order: Vec<usize>,
    ) -> Self {
        let lanes = order.len();
        let nslices = lanes.div_ceil(SELL_C);
        let mut slice_ptr = Vec::with_capacity(nslices + 1);
        slice_ptr.push(0usize);
        for s in 0..nslices {
            let width = order[s * SELL_C..lanes.min((s + 1) * SELL_C)]
                .iter()
                .map(|&r| row_ptr[r + 1] - row_ptr[r])
                .max()
                .unwrap_or(0);
            slice_ptr.push(slice_ptr[s] + width * SELL_C);
        }
        let total = *slice_ptr.last().unwrap();
        assert!(
            ncols <= u32::MAX as usize,
            "SellMatrix: more than 2^32 columns"
        );
        // Per-slice column span over the real entries, to pick the index
        // encoding: a span that fits 16 bits takes the narrow path.
        let mut col_lo = vec![usize::MAX; nslices];
        let mut col_hi = vec![0usize; nslices];
        for (p, &r) in order.iter().enumerate() {
            let s = p / SELL_C;
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                // Hard check: the unchecked gather in the kernel relies on
                // every stored index being in bounds for any `x` of length
                // `ncols` (pads repeat an already-checked real column).
                assert!(c < ncols, "SellMatrix: column out of range");
                col_lo[s] = col_lo[s].min(c);
                col_hi[s] = col_hi[s].max(c);
            }
        }
        let kind: Vec<SliceCols> = (0..nslices)
            .map(|s| {
                if col_lo[s] <= col_hi[s] && col_hi[s] - col_lo[s] <= u16::MAX as usize {
                    SliceCols::Narrow(col_lo[s] as u32)
                } else {
                    SliceCols::Wide
                }
            })
            .collect();
        let mut cols = vec![0u32; total];
        let mut cols16 = vec![0u16; total];
        let mut vals = vec![0.0f64; total];
        let mut nnz = 0usize;
        for (p, &r) in order.iter().enumerate() {
            let (s, lane) = (p / SELL_C, p % SELL_C);
            let base = slice_ptr[s];
            let width = (slice_ptr[s + 1] - base) / SELL_C;
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            let len = hi - lo;
            nnz += len;
            // Pads: zero value (already), and the lane's last real column
            // so the pad gather re-reads a line the lane already touched
            // (the slice's smallest column for an empty lane — a slice
            // with any pad slot has at least one real entry, so it is in
            // bounds).
            let pad_col = if len > 0 { col_idx[hi - 1] } else { col_lo[s] };
            match kind[s] {
                SliceCols::Narrow(b) => {
                    let b = b as usize;
                    for j in 0..len {
                        cols16[base + j * SELL_C + lane] = (col_idx[lo + j] - b) as u16;
                        vals[base + j * SELL_C + lane] = values[lo + j];
                    }
                    for j in len..width {
                        cols16[base + j * SELL_C + lane] = (pad_col - b) as u16;
                    }
                }
                SliceCols::Wide => {
                    for j in 0..len {
                        cols[base + j * SELL_C + lane] = col_idx[lo + j] as u32;
                        vals[base + j * SELL_C + lane] = values[lo + j];
                    }
                    for j in len..width {
                        cols[base + j * SELL_C + lane] = pad_col as u32;
                    }
                }
            }
        }
        let out_len = order.iter().map(|&r| r + 1).max().unwrap_or(0);
        SellMatrix {
            ncols,
            nnz,
            out_len,
            slice_ptr,
            cols,
            cols16,
            kind,
            vals,
            perm: order,
            window_reach: 0,
            schedule: Mutex::new(None),
        }
    }

    /// Real (un-padded) stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Stored slots including padding — the actual SpMV work.
    #[inline]
    pub fn padded_nnz(&self) -> usize {
        *self.slice_ptr.last().unwrap()
    }

    /// Minimum `x` length accepted by the kernels.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Minimum `y` length accepted by the kernels (one past the largest
    /// output index).
    #[inline]
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    /// Real lanes (= rows packed).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.perm.len()
    }

    /// Slice count.
    #[inline]
    pub fn nslices(&self) -> usize {
        self.slice_ptr.len() - 1
    }

    /// Lane-position → output-row permutation.
    #[inline]
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// σ-window dependency half-width of the original matrix (see the
    /// field docs); zero for row-list builds.
    #[inline]
    pub fn window_reach_halfwidth(&self) -> usize {
        self.window_reach
    }

    /// Per-slice padded-work prefix (length `nslices + 1`), for external
    /// schedule computations over slice prefixes.
    #[inline]
    pub(crate) fn slice_ptr(&self) -> &[usize] {
        &self.slice_ptr
    }

    /// Fraction of stored slots that are padding (0 when empty).
    pub fn pad_ratio(&self) -> f64 {
        let padded = self.padded_nnz();
        if padded == 0 {
            0.0
        } else {
            (padded - self.nnz) as f64 / padded as f64
        }
    }

    /// The SpMV kernel over slices `[s_begin, s_end)`, lanes `0..lane_end`
    /// of the final slice `last_partial` (pass `usize::MAX` as
    /// `lane_cut_slice` for no cut). Each real lane's accumulator is fed
    /// its entries in original CSR order and handed to `write(out, acc)`.
    #[inline]
    fn spmv_slices_with<F: FnMut(usize, f64)>(
        &self,
        s_begin: usize,
        s_end: usize,
        x: &[f64],
        write: &mut F,
    ) {
        for s in s_begin..s_end {
            let lane_end = SELL_C.min(self.perm.len() - s * SELL_C);
            self.spmv_slice_lanes(s, lane_end, x, write);
        }
    }

    /// One slice, lanes `0..lane_end`: [`LANE_BLOCK`] independent
    /// accumulators per pass through the width loop, scalar tail for the
    /// remaining lanes.
    #[inline]
    fn spmv_slice_lanes<F: FnMut(usize, f64)>(
        &self,
        s: usize,
        lane_end: usize,
        x: &[f64],
        write: &mut F,
    ) {
        let base = self.slice_ptr[s];
        let end = self.slice_ptr[s + 1];
        let width = (end - base) / SELL_C;
        let lane0 = s * SELL_C;
        let vals = &self.vals[base..end];
        let perm = &self.perm[lane0..lane0 + lane_end];
        debug_assert!(x.len() >= self.ncols, "sell kernel: x length mismatch");
        match self.kind[s] {
            // Narrow offsets always fit the gather's signed-i32 indices;
            // wide absolutes only do when the matrix is under 2³¹ columns.
            SliceCols::Narrow(b) => lanes_core(
                &self.cols16[base..end],
                b as usize,
                vals,
                width,
                lane_end,
                perm,
                x,
                simd_ok(),
                write,
            ),
            SliceCols::Wide => lanes_core(
                &self.cols[base..end],
                0,
                vals,
                width,
                lane_end,
                perm,
                x,
                simd_ok() && self.ncols <= i32::MAX as usize,
                write,
            ),
        }
    }

    /// Serial SpMV: `y[perm[p]] = Σ_j vals·x[cols]` for every real lane.
    /// Bitwise identical to [`CsrMatrix::spmv`] on the packed rows.
    ///
    /// # Panics
    /// Panics if `x.len() < ncols()` or `y.len() < out_len()`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert!(x.len() >= self.ncols, "sell spmv: x length mismatch");
        assert!(y.len() >= self.out_len, "sell spmv: y length mismatch");
        self.spmv_slices_with(0, self.nslices(), x, &mut |i, v| y[i] = v);
    }

    /// Serial SpMV over the slice range `[s_begin, s_end)` only, writing
    /// `y[perm[p]]` for every real lane of those slices. The band kernel
    /// of the cache-fused matrix powers sweep: a σ-window band maps to a
    /// slice range, and its output rows stay inside the band's original
    /// window range (σ-confinement), so callers may pass the full output
    /// column and rely on only the band being written.
    ///
    /// # Panics
    /// Panics if the slice range is invalid or buffers are too short.
    pub fn spmv_slices(&self, s_begin: usize, s_end: usize, x: &[f64], y: &mut [f64]) {
        assert!(
            s_begin <= s_end && s_end <= self.nslices(),
            "sell spmv_slices: bad slice range"
        );
        assert!(x.len() >= self.ncols, "sell spmv_slices: x length mismatch");
        assert!(
            y.len() >= self.out_len,
            "sell spmv_slices: y length mismatch"
        );
        self.spmv_slices_with(s_begin, s_end, x, &mut |i, v| y[i] = v);
    }

    /// Serial SpMV restricted to the first `nlanes` lane positions — for
    /// an ascending row list this is exactly the rows `< perm[nlanes]`,
    /// the per-level active prefix of the MPK frontier.
    pub fn spmv_lanes_prefix(&self, nlanes: usize, x: &[f64], y: &mut [f64]) {
        assert!(nlanes <= self.lanes(), "sell prefix: lane count too large");
        assert!(x.len() >= self.ncols, "sell prefix: x length mismatch");
        let full = nlanes / SELL_C;
        self.spmv_slices_with(0, full, x, &mut |i, v| y[i] = v);
        let rem = nlanes % SELL_C;
        if rem > 0 {
            self.spmv_slice_lanes(full, rem, x, &mut |i, v| y[i] = v);
        }
    }

    /// The cached padded-work-balanced slice partition (boundaries in
    /// slice units, length `nchunks + 1`), mirroring
    /// [`CsrMatrix::row_schedule`].
    pub fn slice_schedule(&self, nchunks: usize) -> Arc<Vec<usize>> {
        let nchunks = nchunks.max(1);
        let mut cache = self.schedule.lock().unwrap();
        if let Some((c, bounds)) = cache.as_ref() {
            if *c == nchunks {
                return Arc::clone(bounds);
            }
        }
        let bounds = Arc::new(nnz_balanced_bounds(
            &self.slice_ptr,
            self.nslices(),
            nchunks,
        ));
        *cache = Some((nchunks, Arc::clone(&bounds)));
        bounds
    }

    /// Slice-range kernel for the threaded scatter paths (crate-internal:
    /// `ParKernels` drives it through a raw-pointer writer).
    #[inline]
    pub(crate) fn spmv_slices_into<F: FnMut(usize, f64)>(
        &self,
        s_begin: usize,
        s_end: usize,
        x: &[f64],
        write: &mut F,
    ) {
        self.spmv_slices_with(s_begin, s_end, x, write);
    }

    /// Partial-slice kernel for the threaded prefix path.
    #[inline]
    pub(crate) fn spmv_slice_lanes_into<F: FnMut(usize, f64)>(
        &self,
        s: usize,
        lane_end: usize,
        x: &[f64],
        write: &mut F,
    ) {
        self.spmv_slice_lanes(s, lane_end, x, write);
    }

    /// Sparse matrix–multivector product `Y ← A·X` on the sliced layout.
    /// Each slice's packed entries are read once per column while still
    /// hot in cache (a slice is `C·width` slots — far below any L1), so
    /// the matrix stream is amortized over the k right-hand sides; per
    /// column the lane arithmetic is exactly [`SellMatrix::spmv`], hence
    /// column `j` of the result is **bitwise equal** to `spmv(x.col(j))`
    /// — and to the CSR kernels.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn spmm(&self, x: &MultiVector, y: &mut MultiVector) {
        assert!(x.n() >= self.ncols, "sell spmm: x row mismatch");
        assert!(y.n() >= self.out_len, "sell spmm: y row mismatch");
        assert_eq!(x.k(), y.k(), "sell spmm: column count mismatch");
        let ld = y.n();
        let data = y.data_mut();
        self.spmm_slices_into(0, self.nslices(), x, ld, &mut |i, v| data[i] = v);
    }

    /// Slice-range SpMM kernel for [`SellMatrix::spmm`] and the threaded
    /// [`crate::ParKernels::spmm_sell`]: slices `[s_begin, s_end)` across
    /// all columns of `x`, handing each result to `write(j·ld + row, v)`
    /// (column-major flat index with leading dimension `ld`). The inner
    /// slice×column order keeps one slice's entries cache-resident for
    /// every column.
    pub(crate) fn spmm_slices_into<F: FnMut(usize, f64)>(
        &self,
        s_begin: usize,
        s_end: usize,
        x: &MultiVector,
        ld: usize,
        write: &mut F,
    ) {
        for s in s_begin..s_end {
            let lane_end = SELL_C.min(self.perm.len() - s * SELL_C);
            for j in 0..x.k() {
                let base = j * ld;
                self.spmv_slice_lanes(s, lane_end, x.col(j), &mut |i, v| write(base + i, v));
            }
        }
    }
}

/// The σ-window sorted row order: within each window of [`SELL_SIGMA`]
/// rows, positions are stably sorted by descending row length (ties keep
/// original order), and windows concatenate. Every sorted position stays
/// inside its own window.
/// The shared slice kernel body: [`LANE_BLOCK`] independent accumulators
/// per pass through the width loop, scalar tail for the remaining lanes.
/// `cols`/`vals` are the slice's `width·C` slots, `perm` its first
/// `lane_end` output positions.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn lanes_core<C: ColIx, F: FnMut(usize, f64)>(
    cols: &[C],
    col_base: usize,
    vals: &[f64],
    width: usize,
    lane_end: usize,
    perm: &[usize],
    x: &[f64],
    use_simd: bool,
    write: &mut F,
) {
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;
    let mut l = 0;
    while l + LANE_BLOCK <= lane_end {
        let mut acc = [0.0f64; LANE_BLOCK];
        // Safety (both paths): `k + LANE_BLOCK ≤ width·C = cols.len()` by
        // the loop bounds (lanes never exceed `C`), and construction
        // asserts every stored column — pads included — resolves below
        // `ncols ≤ x.len()`, which the public entry points check. The
        // unchecked gather is what lets the eight lanes pipeline without
        // per-element bounds tests; the dispatch in `spmv_slice_lanes`
        // only sets `use_simd` when AVX2 is detected and the indices fit
        // the gather's signed-i32 lanes.
        #[cfg(target_arch = "x86_64")]
        let done = use_simd && {
            unsafe {
                C::block_avx2(
                    cols.as_ptr().add(l),
                    vals.as_ptr().add(l),
                    width,
                    x.as_ptr().add(col_base),
                    &mut acc,
                );
            }
            true
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = false;
        if !done {
            let mut k = l;
            for _ in 0..width {
                unsafe {
                    let c8 = cols.get_unchecked(k..k + LANE_BLOCK);
                    let v8 = vals.get_unchecked(k..k + LANE_BLOCK);
                    for u in 0..LANE_BLOCK {
                        acc[u] += v8[u] * x.get_unchecked(c8[u].ix(col_base));
                    }
                }
                k += SELL_C;
            }
        }
        for (u, a) in acc.iter().enumerate() {
            write(perm[l + u], *a);
        }
        l += LANE_BLOCK;
    }
    for lane in l..lane_end {
        let mut acc = 0.0;
        let mut k = lane;
        for _ in 0..width {
            // Safety: same argument as the blocked loop above.
            unsafe {
                acc += vals.get_unchecked(k) * x.get_unchecked(cols.get_unchecked(k).ix(col_base));
            }
            k += SELL_C;
        }
        write(perm[lane], acc);
    }
}

fn sigma_sorted_order(row_ptr: &[usize], nrows: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..nrows).collect();
    let mut w = 0;
    while w < nrows {
        let end = (w + SELL_SIGMA).min(nrows);
        order[w..end]
            .sort_by(|&a, &b| (row_ptr[b + 1] - row_ptr[b]).cmp(&(row_ptr[a + 1] - row_ptr[a])));
        w = end;
    }
    order
}

/// Max σ-window distance between any row's window and the windows of the
/// columns it references: the one-hop dependency half-width `h` of the
/// fused MPK tiling. Because σ-sorting is window-confined, this purely
/// structural quantity (computed in original indices) bounds the sorted
/// layout's dependencies too.
pub fn window_reach(a: &CsrMatrix) -> usize {
    let mut h = 0usize;
    for r in 0..a.nrows() {
        let w = r / SELL_SIGMA;
        let (cols, _) = a.row(r);
        for &c in cols {
            let cw = c / SELL_SIGMA;
            h = h.max(w.abs_diff(cw));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson::{poisson_2d, poisson_3d};

    fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(p, q)| p.to_bits() == q.to_bits())
    }

    #[test]
    fn spmv_matches_csr_bitwise_on_poisson() {
        for a in [poisson_2d(23), poisson_3d(7)] {
            let n = a.nrows();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.01).collect();
            let mut y_csr = vec![0.0; n];
            a.spmv(&x, &mut y_csr);
            let s = SellMatrix::from_csr(&a);
            let mut y_sell = vec![f64::NAN; n];
            s.spmv(&x, &mut y_sell);
            assert!(bitwise_eq(&y_csr, &y_sell), "n={n}");
            assert_eq!(s.nnz(), a.nnz());
        }
    }

    #[test]
    fn sigma_sort_is_window_confined_bijection() {
        let a = poisson_2d(30); // 900 rows: several σ-windows, ragged tail
        let s = SellMatrix::from_csr(&a);
        let perm = s.perm();
        assert_eq!(perm.len(), a.nrows());
        let mut seen = vec![false; a.nrows()];
        for (p, &r) in perm.iter().enumerate() {
            assert!(!seen[r], "perm not injective at {p}");
            seen[r] = true;
            // σ-confinement: sorted position and original row share a window.
            assert_eq!(p / SELL_SIGMA, r / SELL_SIGMA, "row {r} left its window");
        }
        assert!(seen.into_iter().all(|s| s));
        // Round-trip: scattering lane results through perm touches every
        // output exactly once (checked by injectivity + surjectivity above).
    }

    #[test]
    fn slices_sorted_descending_within_windows() {
        let a = poisson_2d(19);
        let s = SellMatrix::from_csr(&a);
        let rp = a.row_ptr();
        for win in s.perm().chunks(SELL_SIGMA) {
            let lens: Vec<usize> = win.iter().map(|&r| rp[r + 1] - rp[r]).collect();
            assert!(lens.windows(2).all(|w| w[0] >= w[1]), "not descending");
        }
    }

    #[test]
    fn padding_and_widths() {
        // Ragged rows: lengths 3, 1, 0, 2 in one slice.
        let row_ptr = vec![0, 3, 4, 4, 6];
        let col_idx = vec![0, 1, 2, 1, 0, 3];
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let rows = vec![0, 1, 2, 3];
        let s = SellMatrix::from_rows(&row_ptr, &col_idx, &values, &rows);
        assert_eq!(s.nslices(), 1);
        assert_eq!(s.padded_nnz(), 3 * SELL_C); // width = longest row = 3
        assert_eq!(s.nnz(), 6);
        assert!(s.pad_ratio() > 0.9); // 6 real slots of 96
        let x = vec![1.0, 10.0, 100.0, 1000.0];
        let mut y = vec![f64::NAN; 4];
        s.spmv(&x, &mut y);
        assert_eq!(y, vec![321.0, 40.0, 0.0, 6005.0]);
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        // Matrix of only empty rows: zero widths, zero storage.
        let s = SellMatrix::from_rows(&[0, 0, 0, 0], &[], &[], &[0, 1, 2]);
        assert_eq!(s.padded_nnz(), 0);
        let mut y = vec![f64::NAN; 3];
        s.spmv(&[], &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
        // Empty row list: no lanes, no slices, spmv is a no-op.
        let s = SellMatrix::from_rows(&[0, 2], &[0, 1], &[1.0, 1.0], &[]);
        assert_eq!(s.nslices(), 0);
        s.spmv(&[1.0, 1.0], &mut []);
    }

    #[test]
    fn row_list_preserves_order_and_prefix_cuts() {
        let a = poisson_2d(11);
        let n = a.nrows();
        let rows: Vec<usize> = (0..n).filter(|r| r % 3 != 1).collect(); // ascending
        let s = SellMatrix::from_rows(a.row_ptr(), a.col_idx(), a.values(), &rows);
        assert_eq!(s.perm(), &rows[..]);
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut y_ref = vec![0.0; n];
        a.spmv(&x, &mut y_ref);
        // Full list.
        let mut y = vec![0.0; n];
        s.spmv(&x, &mut y);
        for (p, &r) in rows.iter().enumerate() {
            assert_eq!(y[r].to_bits(), y_ref[r].to_bits(), "lane {p}");
        }
        // Prefix cut at an arbitrary lane count, crossing a slice boundary.
        for cut in [0, 1, SELL_C - 1, SELL_C, SELL_C + 5, rows.len()] {
            let mut yp = vec![0.0; n];
            s.spmv_lanes_prefix(cut, &x, &mut yp);
            for (p, &r) in rows.iter().enumerate().take(cut) {
                assert_eq!(yp[r].to_bits(), y_ref[r].to_bits(), "cut {cut} lane {p}");
            }
        }
    }

    #[test]
    fn slice_schedule_covers_and_caches() {
        let a = poisson_3d(9);
        let s = SellMatrix::from_csr(&a);
        for nchunks in [1usize, 2, 3, 8] {
            let b = s.slice_schedule(nchunks);
            assert_eq!(b.len(), nchunks + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), s.nslices());
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
        let b1 = s.slice_schedule(4);
        let b2 = s.slice_schedule(4);
        assert!(Arc::ptr_eq(&b1, &b2));
    }

    #[test]
    fn window_reach_of_stencils() {
        // 1D chain: neighbours are ±1 row, so reach is confined to
        // adjacent windows.
        let a = crate::generators::poisson::poisson_1d(1000);
        assert_eq!(window_reach(&a), 1);
        // 3D stencil on 12³: ±144 rows < σ, still one window.
        let a = poisson_3d(12);
        assert!(window_reach(&a) <= 1);
        // Identity: zero reach.
        assert_eq!(window_reach(&CsrMatrix::identity(600)), 0);
    }

    #[test]
    fn format_env_parsing() {
        assert_eq!(SparseFormat::default(), SparseFormat::Csr);
        assert_eq!(SparseFormat::Csr.name(), "csr");
        assert_eq!(SparseFormat::Sell.name(), "sell");
    }
}
