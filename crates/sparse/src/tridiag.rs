//! Symmetric tridiagonal eigensolver.
//!
//! The Lanczos/CG coefficients of a few warm-up PCG iterations define a
//! symmetric tridiagonal matrix whose eigenvalues (Ritz values) estimate the
//! spectrum of the preconditioned operator `M⁻¹A`. The paper uses these
//! estimates for the Newton-basis shifts and the Chebyshev basis/
//! preconditioner intervals (§5.1). This module provides the implicit QL
//! algorithm with Wilkinson shifts — the standard kernel (LAPACK `dsterf`
//! analogue) — implemented from scratch.

/// Computes all eigenvalues of the symmetric tridiagonal matrix with
/// diagonal `d` and off-diagonal `e` (`e.len() == d.len() - 1`), returned in
/// ascending order.
///
/// Uses the implicit QL algorithm with Wilkinson shifts; each eigenvalue
/// converges in a handful of iterations, giving `O(n²)` total work, entirely
/// negligible at the `n ≈ 2s` sizes used here.
///
/// # Panics
/// Panics if the dimensions are inconsistent or convergence fails after an
/// unreasonable number of sweeps (which cannot happen for finite input).
pub fn eigenvalues(d: &[f64], e: &[f64]) -> Vec<f64> {
    let n = d.len();
    assert!(n > 0, "tridiag::eigenvalues: empty matrix");
    assert_eq!(
        e.len(),
        n.saturating_sub(1),
        "tridiag::eigenvalues: off-diagonal length"
    );
    let mut d = d.to_vec();
    // Pad the off-diagonal with a trailing zero, Numerical-Recipes style.
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiag::eigenvalues: QL failed to converge");
            // Wilkinson shift from the leading 2x2 of the active block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Off-diagonal underflow mid-sweep: deflate and restart.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("tridiag eigenvalues must be finite")
    });
    d
}

/// Extreme eigenvalues `(λ_min, λ_max)` of the symmetric tridiagonal matrix.
pub fn extreme_eigenvalues(d: &[f64], e: &[f64]) -> (f64, f64) {
    let ev = eigenvalues(d, e);
    (ev[0], *ev.last().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let ev = eigenvalues(&[3.0, 1.0, 2.0], &[0.0, 0.0]);
        assert_eq!(ev, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn single_entry() {
        assert_eq!(eigenvalues(&[7.5], &[]), vec![7.5]);
    }

    #[test]
    fn two_by_two_known() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let ev = eigenvalues(&[2.0, 2.0], &[1.0]);
        assert!((ev[0] - 1.0).abs() < 1e-12);
        assert!((ev[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn laplacian_1d_matches_analytic() {
        // Tridiag(-1, 2, -1) of size n has eigenvalues 2 - 2cos(kπ/(n+1)).
        let n = 50;
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        let ev = eigenvalues(&d, &e);
        for k in 1..=n {
            let exact = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / (n as f64 + 1.0)).cos();
            assert!(
                (ev[k - 1] - exact).abs() < 1e-10,
                "eigenvalue {k}: got {} want {exact}",
                ev[k - 1]
            );
        }
    }

    #[test]
    fn trace_is_preserved() {
        let d = vec![1.0, -2.0, 5.0, 0.5, 3.0];
        let e = vec![0.7, -1.3, 2.0, 0.1];
        let ev = eigenvalues(&d, &e);
        let trace: f64 = d.iter().sum();
        let sum: f64 = ev.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn extreme_eigenvalues_order() {
        let (lo, hi) = extreme_eigenvalues(&[2.0, 2.0, 2.0], &[-1.0, -1.0]);
        assert!(lo < hi);
        assert!((lo - (2.0 - 2.0f64.sqrt())).abs() < 1e-12);
        assert!((hi - (2.0 + 2.0f64.sqrt())).abs() < 1e-12);
    }
}
