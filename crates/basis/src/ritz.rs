//! Ritz-value estimation from warm-up PCG iterations.
//!
//! The paper (§5.1): "Estimates for the largest and smallest eigenvalues
//! necessary for the Chebyshev basis type and the Chebyshev preconditioner
//! were computed with a few iterations of standard PCG (not included in the
//! runtimes)." The CG coefficients (α_i, β_i) of k iterations define the
//! Lanczos tridiagonal
//!
//! ```text
//! T[i][i]   = 1/α_i + β_i/α_{i-1}     (β_0/α_{-1} ≡ 0)
//! T[i][i+1] = √β_{i+1} / α_i
//! ```
//!
//! whose eigenvalues (Ritz values) approximate the spectrum of the
//! preconditioned operator `M⁻¹A`. The extreme Ritz values feed the
//! Chebyshev basis interval; the full set, Leja-ordered, provides Newton
//! shifts (§2.3).

use spcg_precond::Preconditioner;
use spcg_sparse::{blas, tridiag, CsrMatrix};

/// Result of a spectrum estimation run.
#[derive(Debug, Clone)]
pub struct SpectrumEstimate {
    /// Ritz values in ascending order.
    pub ritz: Vec<f64>,
    /// Smallest Ritz value (underestimates λ_min of `M⁻¹A`).
    pub lambda_min: f64,
    /// Largest Ritz value (underestimates λ_max of `M⁻¹A`).
    pub lambda_max: f64,
    /// PCG iterations actually performed (may stop early on breakdown).
    pub iterations: usize,
}

impl SpectrumEstimate {
    /// The Chebyshev interval the paper's setup would use: the Ritz extremes
    /// with a safety margin (Ritz values underestimate λ_max and
    /// overestimate λ_min, so the interval is widened by `margin`, e.g.
    /// 0.05 for 5%).
    pub fn chebyshev_interval(&self, margin: f64) -> (f64, f64) {
        let lo = (self.lambda_min * (1.0 - margin)).max(self.lambda_min * 1e-3);
        let hi = self.lambda_max * (1.0 + margin);
        (lo, hi)
    }
}

/// Runs `iters` PCG iterations on `A x = b` (zero start) with preconditioner
/// `m` and returns the Ritz values of the Lanczos tridiagonal.
///
/// # Panics
/// Panics on dimension mismatch. Breakdown (residual vanishing during the
/// warm-up, e.g. for tiny systems) stops the harvest early rather than
/// panicking; at least one Ritz value is always returned for a nonzero `b`.
pub fn estimate_spectrum(
    a: &CsrMatrix,
    m: &dyn Preconditioner,
    b: &[f64],
    iters: usize,
) -> SpectrumEstimate {
    let n = a.nrows();
    assert_eq!(b.len(), n, "estimate_spectrum: rhs length mismatch");
    assert!(iters >= 1, "estimate_spectrum: need at least one iteration");
    assert!(
        blas::norm2(b) > 0.0,
        "estimate_spectrum: rhs must be nonzero"
    );

    let mut r = b.to_vec(); // x0 = 0 → r0 = b
    let mut u = vec![0.0; n];
    m.apply(&r, &mut u);
    let mut p = u.clone();
    let mut s = vec![0.0; n];
    let mut rho = blas::dot(&r, &u);
    let mut alphas: Vec<f64> = Vec::with_capacity(iters);
    let mut betas: Vec<f64> = Vec::with_capacity(iters);

    for _ in 0..iters {
        a.spmv(&p, &mut s);
        let denom = blas::dot(&p, &s);
        if !(denom > 0.0) || !denom.is_finite() {
            break; // numerical breakdown; keep what we have
        }
        let alpha = rho / denom;
        alphas.push(alpha);
        blas::axpy(-alpha, &s, &mut r);
        m.apply(&r, &mut u);
        let rho_new = blas::dot(&r, &u);
        if !(rho_new > 0.0) || !rho_new.is_finite() {
            break;
        }
        let beta = rho_new / rho;
        betas.push(beta);
        rho = rho_new;
        blas::xpby(&u, beta, &mut p);
    }

    assert!(
        !alphas.is_empty(),
        "estimate_spectrum: breakdown before first iteration"
    );
    let k = alphas.len();
    let mut d = Vec::with_capacity(k);
    let mut e = Vec::with_capacity(k.saturating_sub(1));
    for i in 0..k {
        let mut v = 1.0 / alphas[i];
        if i > 0 {
            v += betas[i - 1] / alphas[i - 1];
        }
        d.push(v);
        if i + 1 < k {
            e.push(betas[i].sqrt() / alphas[i]);
        }
    }
    let ritz = tridiag::eigenvalues(&d, &e);
    SpectrumEstimate {
        lambda_min: ritz[0],
        lambda_max: *ritz.last().unwrap(),
        ritz,
        iterations: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::poisson::{poisson_1d, poisson_extreme_eigenvalues};

    #[test]
    fn unpreconditioned_ritz_values_bracket_spectrum() {
        let n = 64;
        let a = poisson_1d(n);
        let m = Identity::new(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.17).sin()).collect();
        let est = estimate_spectrum(&a, &m, &b, 30);
        let (lo, hi) = poisson_extreme_eigenvalues(n, 1);
        // Ritz values lie inside the true spectrum and approach the extremes.
        assert!(est.lambda_min >= lo - 1e-10);
        assert!(est.lambda_max <= hi + 1e-10);
        assert!(
            est.lambda_max > 0.9 * hi,
            "λmax estimate too small: {}",
            est.lambda_max
        );
        assert!(
            est.lambda_min < 10.0 * lo,
            "λmin estimate too large: {}",
            est.lambda_min
        );
    }

    #[test]
    fn jacobi_preconditioned_spectrum_of_scaled_identity() {
        // For A = c·I, M⁻¹A = I: the single distinct Ritz value is 1.
        let a = CsrMatrix::from_diagonal(&[5.0; 16]);
        let m = Jacobi::new(&a);
        let b = vec![1.0; 16];
        let est = estimate_spectrum(&a, &m, &b, 8);
        assert!((est.lambda_min - 1.0).abs() < 1e-10);
        assert!((est.lambda_max - 1.0).abs() < 1e-10);
    }

    #[test]
    fn early_breakdown_is_handled() {
        // A 2x2 system converges in ≤2 iterations; asking for 10 must not
        // panic and must return plausible Ritz values.
        let a = poisson_1d(2);
        let m = Identity::new(2);
        let est = estimate_spectrum(&a, &m, &[1.0, 2.0], 10);
        assert!(est.iterations <= 3);
        assert!(est.lambda_min > 0.0);
        assert!(est.lambda_max >= est.lambda_min);
    }

    #[test]
    fn chebyshev_interval_widens() {
        let a = poisson_1d(32);
        let m = Identity::new(32);
        let b = vec![1.0; 32];
        let est = estimate_spectrum(&a, &m, &b, 16);
        let (lo, hi) = est.chebyshev_interval(0.05);
        assert!(lo < est.lambda_min);
        assert!(hi > est.lambda_max);
    }

    #[test]
    fn ritz_count_matches_iterations() {
        let a = poisson_1d(40);
        let m = Identity::new(40);
        let b: Vec<f64> = (0..40).map(|i| (i as f64).cos() + 2.0).collect();
        let est = estimate_spectrum(&a, &m, &b, 12);
        assert_eq!(est.ritz.len(), est.iterations);
    }
}
