//! Three-term recurrence parameters of the s-step basis polynomials.
//!
//! Workspace-wide convention (see crate docs): the polynomials satisfy
//!
//! ```text
//! P_0(z) = 1
//! z·P_j(z) = γ_j·P_{j+1}(z) + θ_j·P_j(z) + μ_{j-1}·P_{j-1}(z)
//! ```
//!
//! equivalently `P_{j+1}(z) = ((z − θ_j)·P_j(z) − μ_{j-1}·P_{j-1}(z)) / γ_j`
//! (the paper's eq. (8) with the sign of μ folded into the coefficient).
//! The change-of-basis matrix `B_i` of eq. (9) then has θ on the diagonal,
//! μ on the superdiagonal and γ on the subdiagonal.

/// Recurrence coefficients for polynomials `P_0 … P_degree`.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisParams {
    /// θ_0 … θ_{degree-1} (shifts).
    pub theta: Vec<f64>,
    /// γ_0 … γ_{degree-1} (scalings; must be nonzero).
    pub gamma: Vec<f64>,
    /// μ_0 … μ_{degree-2} (second-order couplings; empty for degree ≤ 1).
    pub mu: Vec<f64>,
}

impl BasisParams {
    /// Validates and wraps raw coefficient lists.
    ///
    /// # Panics
    /// Panics if lengths are inconsistent or some `γ_j == 0`.
    pub fn new(theta: Vec<f64>, gamma: Vec<f64>, mu: Vec<f64>) -> Self {
        assert_eq!(
            theta.len(),
            gamma.len(),
            "BasisParams: theta/gamma length mismatch"
        );
        assert!(
            mu.len() + 1 == theta.len() || (theta.is_empty() && mu.is_empty()),
            "BasisParams: mu must have degree-1 entries (got {} for degree {})",
            mu.len(),
            theta.len()
        );
        assert!(
            gamma.iter().all(|&g| g != 0.0),
            "BasisParams: gamma entries must be nonzero"
        );
        BasisParams { theta, gamma, mu }
    }

    /// Highest polynomial index these parameters can build (`P_degree`).
    pub fn degree(&self) -> usize {
        self.theta.len()
    }

    /// Monomial basis: `P_{j+1}(z) = z·P_j(z)`.
    pub fn monomial(degree: usize) -> Self {
        BasisParams {
            theta: vec![0.0; degree],
            gamma: vec![1.0; degree],
            mu: vec![0.0; degree.saturating_sub(1)],
        }
    }

    /// Newton basis with the given shifts: `P_{j+1}(z) = (z − σ_j)·P_j(z)`.
    ///
    /// # Panics
    /// Panics if fewer shifts than `degree` are supplied.
    pub fn newton(shifts: &[f64], degree: usize) -> Self {
        assert!(
            shifts.len() >= degree,
            "BasisParams::newton: need {degree} shifts, got {}",
            shifts.len()
        );
        BasisParams {
            theta: shifts[..degree].to_vec(),
            gamma: vec![1.0; degree],
            mu: vec![0.0; degree.saturating_sub(1)],
        }
    }

    /// Scaled-and-shifted Chebyshev basis on `[lambda_min, lambda_max]`:
    /// `P_j(z) = T_j((z − c)/e)` with `c` the interval center and `e` the
    /// half-width, bounded by 1 in magnitude on the interval. Coefficients:
    /// θ_j = c, γ_0 = e, γ_j = e/2 (j ≥ 1), μ_j = e/2.
    ///
    /// # Panics
    /// Panics unless `lambda_min < lambda_max`.
    pub fn chebyshev(lambda_min: f64, lambda_max: f64, degree: usize) -> Self {
        assert!(
            lambda_min < lambda_max,
            "BasisParams::chebyshev: need lambda_min < lambda_max (got {lambda_min}, {lambda_max})"
        );
        let c = 0.5 * (lambda_max + lambda_min);
        let e = 0.5 * (lambda_max - lambda_min);
        let mut gamma = vec![0.5 * e; degree];
        if degree > 0 {
            gamma[0] = e;
        }
        BasisParams {
            theta: vec![c; degree],
            gamma,
            mu: vec![0.5 * e; degree.saturating_sub(1)],
        }
    }

    /// Evaluates `P_0(z) … P_degree(z)` at a scalar `z` — used by tests and
    /// by the basis-conditioning diagnostics.
    pub fn eval_all(&self, z: f64) -> Vec<f64> {
        let d = self.degree();
        let mut out = Vec::with_capacity(d + 1);
        out.push(1.0);
        if d == 0 {
            return out;
        }
        out.push((z - self.theta[0]) / self.gamma[0]);
        for j in 1..d {
            let v = ((z - self.theta[j]) * out[j] - self.mu[j - 1] * out[j - 1]) / self.gamma[j];
            out.push(v);
        }
        out
    }

    /// Extra FLOPs per column of length `n` that this basis adds to the MPK
    /// over the monomial basis (paper §4.2: ≤ 3n for the first product, ≤ 5n
    /// for subsequent ones). `j` is the index of the column being produced
    /// (`j ≥ 1`).
    pub fn extra_flops_for_column(&self, j: usize, n: u64) -> u64 {
        debug_assert!(j >= 1 && j <= self.degree());
        let mut f = 0;
        if self.theta[j - 1] != 0.0 {
            f += 2 * n; // axpy with the shift
        }
        if j >= 2 && self.mu[j - 2] != 0.0 {
            f += 2 * n; // axpy with the second-order coupling
        }
        if self.gamma[j - 1] != 1.0 {
            f += n; // scaling
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_evaluates_to_powers() {
        let p = BasisParams::monomial(5);
        let vals = p.eval_all(2.0);
        assert_eq!(vals, vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0]);
    }

    #[test]
    fn newton_evaluates_to_shifted_products() {
        let p = BasisParams::newton(&[1.0, 2.0, 3.0], 3);
        let vals = p.eval_all(5.0);
        assert_eq!(vals, vec![1.0, 4.0, 12.0, 24.0]);
    }

    #[test]
    fn chebyshev_matches_cos_identity() {
        // On [0, 2]: c = 1, e = 1, P_j(z) = T_j(z - 1). At z = 1 + cos(φ),
        // P_j = cos(j φ).
        let p = BasisParams::chebyshev(0.0, 2.0, 6);
        let phi = 0.7f64;
        let z = 1.0 + phi.cos();
        let vals = p.eval_all(z);
        for (j, v) in vals.iter().enumerate() {
            let want = (j as f64 * phi).cos();
            assert!((v - want).abs() < 1e-12, "T_{j}: got {v}, want {want}");
        }
    }

    #[test]
    fn chebyshev_bounded_on_interval() {
        let p = BasisParams::chebyshev(0.5, 4.0, 10);
        for k in 0..50 {
            let z = 0.5 + 3.5 * k as f64 / 49.0;
            for v in p.eval_all(z) {
                assert!(v.abs() <= 1.0 + 1e-12, "unbounded at z={z}: {v}");
            }
        }
    }

    #[test]
    fn monomial_unbounded_chebyshev_bounded() {
        // The numerical motivation for non-monomial bases in one assert:
        // at the top of the spectrum the monomial basis grows as λ^j while
        // Chebyshev stays at 1.
        let mono = BasisParams::monomial(10);
        let cheb = BasisParams::chebyshev(0.0, 4.0, 10);
        let m = mono.eval_all(4.0);
        let c = cheb.eval_all(4.0);
        assert!(m[10] > 1e5);
        assert!(c[10].abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn extra_flops_zero_for_monomial() {
        let p = BasisParams::monomial(4);
        for j in 1..=4 {
            assert_eq!(p.extra_flops_for_column(j, 100), 0);
        }
    }

    #[test]
    fn extra_flops_matches_paper_bounds() {
        // Interval chosen so no γ collapses to exactly 1.
        let p = BasisParams::chebyshev(0.0, 3.0, 4);
        // First column: shift (2n) + scaling (n) = 3n.
        assert_eq!(p.extra_flops_for_column(1, 10), 30);
        // Subsequent: shift (2n) + mu (2n) + scaling (n) = 5n.
        assert_eq!(p.extra_flops_for_column(2, 10), 50);
    }

    #[test]
    #[should_panic(expected = "gamma entries must be nonzero")]
    fn rejects_zero_gamma() {
        BasisParams::new(vec![0.0], vec![0.0], vec![]);
    }

    #[test]
    fn degree_zero_is_valid() {
        let p = BasisParams::monomial(0);
        assert_eq!(p.eval_all(3.0), vec![1.0]);
    }
}
