//! Change-of-basis matrices (paper eq. (9) and §2.3).
//!
//! For basis vectors `v_j = P_j(AM⁻¹)·w`, the recurrence
//! `z·P_j = γ_j·P_{j+1} + θ_j·P_j + μ_{j-1}·P_{j-1}` means multiplying a
//! basis column by the operator is a local 3-term combination of columns:
//! `(AM⁻¹)·v_j = γ_j·v_{j+1} + θ_j·v_j + μ_{j-1}·v_{j-1}`. Collecting
//! columns `0 … i−2` gives the `i × (i−1)` matrix `B_i` with θ on the
//! diagonal, μ on the superdiagonal and γ on the subdiagonal — eq. (9).
//!
//! sPCG uses `B = B_{s+1}` to form `AU^(k) = S^(k)·B` (Alg. 5 line 8);
//! CA-PCG embeds `B_{s+1}` and `B_s` in a `(2s+1)²` block matrix so the MV
//! products of its inner loop can be performed on coordinate vectors.

use crate::poly::BasisParams;
use spcg_sparse::DenseMat;

/// The `i × (i−1)` change-of-basis matrix `B_i` of eq. (9).
///
/// # Panics
/// Panics if `i < 2` or the parameters cover fewer than `i−1` polynomials.
pub fn b_small(params: &BasisParams, i: usize) -> DenseMat {
    assert!(i >= 2, "b_small: need i >= 2");
    assert!(
        params.degree() >= i - 1,
        "b_small: params degree {} too small for i = {i}",
        params.degree()
    );
    let mut b = DenseMat::zeros(i, i - 1);
    for j in 0..i - 1 {
        b[(j, j)] = params.theta[j];
        b[(j + 1, j)] = params.gamma[j];
        if j >= 1 {
            b[(j - 1, j)] = params.mu[j - 1];
        }
    }
    b
}

/// The `(2s+1) × (2s+1)` change-of-basis matrix of CA-PCG (§2.3):
///
/// ```text
/// B = [ B_{s+1}   0   0      0 ]
///     [ 0         0   B_s    0 ]
/// ```
///
/// so that `A·Ẑ^(k) = Y^(k)·B` where `Ẑ` is `Z` with the last column of
/// each block zeroed.
///
/// # Panics
/// Panics if `s < 2` or the parameters cover fewer than `s` polynomials.
pub fn b_capcg(params: &BasisParams, s: usize) -> DenseMat {
    assert!(s >= 2, "b_capcg: need s >= 2");
    let b_sp1 = b_small(params, s + 1); // (s+1) × s
    let b_s = b_small(params, s); // s × (s-1)
    let mut b = DenseMat::zeros(2 * s + 1, 2 * s + 1);
    for j in 0..s {
        for i in 0..=s {
            b[(i, j)] = b_sp1[(i, j)];
        }
    }
    for j in 0..s - 1 {
        for i in 0..s {
            b[(s + 1 + i, s + 1 + j)] = b_s[(i, j)];
        }
    }
    b
}

/// Applies the change of basis to full-length columns: `out = V · B_{k+1}`
/// where `V` has `k+1` columns and `out` gets `k` columns,
/// `out_j = γ_j·v_{j+1} + θ_j·v_j + μ_{j-1}·v_{j-1}`.
///
/// This is how sPCG forms `AU^(k) = S^(k)·B` (Alg. 5 line 8) without any
/// additional SpMV. Returns the FLOPs spent (0 for the monomial basis,
/// where the operation degenerates to a column copy; at most `(5s−2)·n`
/// in general — paper §4.2).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn apply_b_to_columns(
    v: &spcg_sparse::MultiVector,
    params: &BasisParams,
    out: &mut spcg_sparse::MultiVector,
) -> u64 {
    apply_b_to_columns_par(&spcg_sparse::ParKernels::serial(), v, params, out)
}

/// [`apply_b_to_columns`] with the column combinations row-partitioned over
/// an intra-rank thread pool — bitwise identical to the serial version for
/// every thread count (each row is updated by the same expression).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn apply_b_to_columns_par(
    pk: &spcg_sparse::ParKernels,
    v: &spcg_sparse::MultiVector,
    params: &BasisParams,
    out: &mut spcg_sparse::MultiVector,
) -> u64 {
    let k = out.k();
    assert_eq!(
        v.k(),
        k + 1,
        "apply_b_to_columns: v must have one more column than out"
    );
    assert_eq!(v.n(), out.n(), "apply_b_to_columns: row mismatch");
    assert!(
        params.degree() >= k,
        "apply_b_to_columns: params degree too small"
    );
    let n = v.n();
    let mut flops = 0u64;
    for j in 0..k {
        let gamma = params.gamma[j];
        let theta = params.theta[j];
        let mu = if j >= 1 { params.mu[j - 1] } else { 0.0 };
        {
            let src = v.col(j + 1);
            let dst = out.col_mut(j);
            if gamma == 1.0 {
                dst.copy_from_slice(src);
            } else {
                pk.for_each_chunk_mut(dst, spcg_sparse::blas::REDUCE_BLOCK, |_, lo, piece| {
                    for (i, di) in piece.iter_mut().enumerate() {
                        *di = gamma * src[lo + i];
                    }
                });
                flops += n as u64;
            }
        }
        if theta != 0.0 {
            pk.axpy(theta, v.col(j), out.col_mut(j));
            flops += 2 * n as u64;
        }
        if mu != 0.0 {
            pk.axpy(mu, v.col(j - 1), out.col_mut(j));
            flops += 2 * n as u64;
        }
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_small_monomial_is_shift_matrix() {
        let p = BasisParams::monomial(4);
        let b = b_small(&p, 4);
        // Monomial: subdiagonal ones only.
        for i in 0..4 {
            for j in 0..3 {
                let want = if i == j + 1 { 1.0 } else { 0.0 };
                assert_eq!(b[(i, j)], want, "({i},{j})");
            }
        }
    }

    #[test]
    fn b_small_satisfies_recurrence_on_diagonal_operator() {
        // For a scalar z, the basis values p = [P_0(z), …, P_i-1(z)] must
        // satisfy z·p[0..i-1] = p · B_i (the defining property of B).
        let params = BasisParams::chebyshev(0.5, 3.5, 6);
        let b = b_small(&params, 6);
        for &z in &[0.5, 1.0, 2.2, 3.5, 4.1] {
            let p = params.eval_all(z); // P_0 … P_6; we use P_0 … P_5
            for j in 0..5 {
                let mut acc = 0.0;
                for l in 0..6 {
                    acc += p[l] * b[(l, j)];
                }
                assert!(
                    (acc - z * p[j]).abs() < 1e-10 * (1.0 + z * p[j].abs()),
                    "z={z}, column {j}: {acc} vs {}",
                    z * p[j]
                );
            }
        }
    }

    #[test]
    fn b_small_newton_has_shifts_on_diagonal() {
        let p = BasisParams::newton(&[2.0, 3.0, 5.0], 3);
        let b = b_small(&p, 3);
        assert_eq!(b[(0, 0)], 2.0);
        assert_eq!(b[(1, 1)], 3.0);
        assert_eq!(b[(1, 0)], 1.0);
        assert_eq!(b[(0, 1)], 0.0); // Newton has no μ coupling
    }

    #[test]
    fn b_capcg_block_structure() {
        let params = BasisParams::chebyshev(0.0, 2.0, 5);
        let s = 4;
        let b = b_capcg(&params, s);
        assert_eq!(b.nrows(), 2 * s + 1);
        assert_eq!(b.ncols(), 2 * s + 1);
        // Column s and column 2s are zero.
        for i in 0..2 * s + 1 {
            assert_eq!(b[(i, s)], 0.0);
            assert_eq!(b[(i, 2 * s)], 0.0);
        }
        // Top-left block equals B_{s+1}.
        let bs1 = b_small(&params, s + 1);
        for i in 0..=s {
            for j in 0..s {
                assert_eq!(b[(i, j)], bs1[(i, j)]);
            }
        }
        // Bottom-right block equals B_s shifted by s+1 columns / rows.
        let bs = b_small(&params, s);
        for i in 0..s {
            for j in 0..s - 1 {
                assert_eq!(b[(s + 1 + i, s + 1 + j)], bs[(i, j)]);
            }
        }
        // Rows 0..s have no entries in the second block's columns.
        for i in 0..=s {
            for j in s + 1..2 * s + 1 {
                assert_eq!(b[(i, j)], 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "need i >= 2")]
    fn b_small_rejects_tiny() {
        b_small(&BasisParams::monomial(2), 1);
    }

    #[test]
    fn apply_b_monomial_is_column_shift_and_free() {
        use spcg_sparse::MultiVector;
        let params = BasisParams::monomial(3);
        let v = MultiVector::from_columns(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ]);
        let mut out = MultiVector::zeros(2, 3);
        let flops = apply_b_to_columns(&v, &params, &mut out);
        assert_eq!(flops, 0);
        assert_eq!(out.col(0), v.col(1));
        assert_eq!(out.col(2), v.col(3));
    }

    #[test]
    fn apply_b_matches_dense_product() {
        use spcg_sparse::MultiVector;
        let params = BasisParams::chebyshev(0.3, 2.7, 4);
        let n = 5;
        let cols: Vec<Vec<f64>> = (0..5)
            .map(|j| (0..n).map(|i| ((i * 5 + j * 3) % 7) as f64 - 3.0).collect())
            .collect();
        let v = MultiVector::from_columns(&cols);
        let mut out = MultiVector::zeros(n, 4);
        let flops = apply_b_to_columns(&v, &params, &mut out);
        assert!(flops > 0);
        let b = b_small(&params, 5);
        let mut want = MultiVector::zeros(n, 4);
        v.gemm_small(&b, &mut want);
        for j in 0..4 {
            for i in 0..n {
                assert!((out.col(j)[i] - want.col(j)[i]).abs() < 1e-12, "({i},{j})");
            }
        }
    }
}
