//! s-step basis machinery: polynomial recurrences, the Matrix Powers Kernel
//! (MPK), change-of-basis matrices, and spectrum estimation.
//!
//! "The choice of the basis is the main factor that influences stability of
//! communication-avoiding Krylov subspace methods" (paper §2.3). This crate
//! implements everything around that choice:
//!
//! * [`BasisType`] / [`poly::BasisParams`] — the three-term recurrence
//!   parameters (θ, γ, μ) of eq. (8) for the monomial, Newton, and Chebyshev
//!   bases, in the single convention used across the workspace:
//!   `z·P_j(z) = γ_j·P_{j+1}(z) + θ_j·P_j(z) + μ_{j-1}·P_{j-1}(z)`.
//! * [`mpk::Mpk`] — computes the basis matrices `V` (eq. 6) and `M⁻¹V`
//!   (eq. 7) with one SpMV and at most one preconditioner application per
//!   column, charging [`spcg_dist::Counters`] for the extra `3n`/`5n` FLOPs
//!   arbitrary bases add (paper §4.2).
//! * [`cob`] — the change-of-basis matrices `B_i` of eq. (9) and the
//!   block matrix `B` of CA-PCG (§2.3).
//! * [`ritz`] / [`leja`] — Ritz-value estimation from a few warm-up PCG
//!   iterations (the paper's §5.1 setup) and modified Leja ordering for the
//!   Newton shifts.

pub mod cob;
pub mod dist_mpk;
pub mod leja;
pub mod mpk;
pub mod poly;
pub mod ritz;
pub mod types;

pub use dist_mpk::DistMpk;
pub use mpk::Mpk;
pub use poly::BasisParams;
pub use types::BasisType;
