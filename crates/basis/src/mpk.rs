//! Matrix Powers Kernel (MPK): builds the s-step basis matrices.
//!
//! Computes (paper eqs. (6)–(7))
//!
//! ```text
//! V    = [P_0(AM⁻¹)·w, P_1(AM⁻¹)·w, …]          (v_cols columns)
//! M⁻¹V = [P_0(M⁻¹A)·v, P_1(M⁻¹A)·v, …]          (mv_cols columns, v = M⁻¹w)
//! ```
//!
//! using the recurrence `v_{j+1} = (A·(M⁻¹v_j) − θ_j·v_j − μ_{j-1}·v_{j-1}) / γ_j`:
//! one SpMV per new `V` column and one preconditioner application per new
//! `M⁻¹V` column. In a block-row-distributed setting the SpMV needs only
//! neighbour (halo) communication, never a global reduction — that is the
//! communication-avoiding property all three s-step methods share.
//!
//! The kernel charges the supplied [`Counters`] for the SpMVs, the
//! preconditioner applications, and the extra `≤3n` / `≤5n` FLOPs per
//! column that non-monomial bases add (paper §4.2).

use crate::poly::BasisParams;
use spcg_dist::Counters;
use spcg_obs::{Phase, Track};
use spcg_precond::Preconditioner;
use spcg_sparse::{CsrMatrix, MultiVector, ParKernels};

/// Matrix powers kernel over `A` and `M⁻¹`.
pub struct Mpk<'a> {
    a: &'a CsrMatrix,
    m: &'a dyn Preconditioner,
    pk: ParKernels,
    track: Option<Track>,
}

impl<'a> Mpk<'a> {
    /// Creates the kernel for a matrix/preconditioner pair (serial
    /// execution).
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent.
    pub fn new(a: &'a CsrMatrix, m: &'a dyn Preconditioner) -> Self {
        Self::new_par(a, m, ParKernels::serial())
    }

    /// Creates the kernel with an intra-rank thread pool. The SpMV, the
    /// preconditioner applications, and the elementwise recurrence passes
    /// are row-partitioned over `pk`; results are bitwise identical to the
    /// serial kernel for every thread count.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent.
    pub fn new_par(a: &'a CsrMatrix, m: &'a dyn Preconditioner, pk: ParKernels) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "Mpk: matrix must be square");
        assert_eq!(a.nrows(), m.dim(), "Mpk: preconditioner dimension mismatch");
        Mpk {
            a,
            m,
            pk,
            track: None,
        }
    }

    /// Attaches a trace track: each basis column records an
    /// [`MpkLevel`](Phase) span with the SpMV and preconditioner apply
    /// nested inside. Instrumentation only — results are unchanged.
    pub fn with_track(mut self, track: Option<Track>) -> Self {
        self.track = track;
        self
    }

    /// Fills `v` (`n × v_cols`) and `mv` (`n × mv_cols`) with the basis
    /// matrices seeded by `w`.
    ///
    /// * `known_mw`: pass `M⁻¹w` if it is already available (the s-step
    ///   solvers usually have it from the previous outer iteration); this
    ///   saves one preconditioner application — the bookkeeping behind
    ///   CA-PCG's `2s−1` (not `2s+1`) preconditioner applications.
    /// * Requires `v_cols ≥ 1` and `v_cols − 1 ≤ mv_cols ≤ v_cols`: building
    ///   `v_{j+1}` consumes `M⁻¹v_j`, so all but possibly the last `V`
    ///   column must be preconditioned anyway.
    ///
    /// # Panics
    /// Panics on dimension or parameter-degree mismatches.
    pub fn run(
        &self,
        w: &[f64],
        known_mw: Option<&[f64]>,
        params: &BasisParams,
        v: &mut MultiVector,
        mv: &mut MultiVector,
        counters: &mut Counters,
    ) {
        let n = self.a.nrows();
        let v_cols = v.k();
        let mv_cols = mv.k();
        assert!(v_cols >= 1, "Mpk::run: need at least one V column");
        assert!(
            mv_cols + 1 >= v_cols && mv_cols <= v_cols,
            "Mpk::run: need v_cols-1 <= mv_cols <= v_cols (got {v_cols}, {mv_cols})"
        );
        assert_eq!(v.n(), n, "Mpk::run: v row mismatch");
        assert_eq!(mv.n(), n, "Mpk::run: mv row mismatch");
        assert_eq!(w.len(), n, "Mpk::run: seed length mismatch");
        assert!(
            params.degree() + 1 >= v_cols,
            "Mpk::run: basis degree {} too small for {v_cols} columns",
            params.degree()
        );

        v.col_mut(0).copy_from_slice(w);
        if mv_cols > 0 {
            match known_mw {
                Some(mw) => {
                    assert_eq!(mw.len(), n, "Mpk::run: known_mw length mismatch");
                    mv.col_mut(0).copy_from_slice(mw);
                }
                None => {
                    let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
                    self.m.apply_par(&self.pk, v.col(0), mv.col_mut(0));
                    counters.record_precond(self.m.flops_per_apply());
                }
            }
        }

        let mut t = vec![0.0; n];
        for j in 0..v_cols - 1 {
            let _level = spcg_obs::span(self.track.as_ref(), Phase::MpkLevel);
            // t = A · (M⁻¹ v_j).
            {
                let _s = spcg_obs::span(self.track.as_ref(), Phase::Spmv);
                self.pk.spmv(self.a, mv.col(j), &mut t);
            }
            counters.record_spmv(self.a.spmv_flops());
            // v_{j+1} = (t − θ_j v_j − μ_{j-1} v_{j-1}) / γ_j. The axpy
            // form `t += (−θ)·v` is bitwise equal to `t −= θ·v` (IEEE
            // negation is exact), so the threaded passes reproduce the
            // historical serial recurrence exactly.
            let theta = params.theta[j];
            let inv_gamma = 1.0 / params.gamma[j];
            if theta != 0.0 {
                self.pk.axpy(-theta, v.col(j), &mut t);
            }
            if j >= 1 && params.mu[j - 1] != 0.0 {
                self.pk.axpy(-params.mu[j - 1], v.col(j - 1), &mut t);
            }
            if inv_gamma != 1.0 {
                self.pk.scale(inv_gamma, &mut t);
            }
            counters.blas1_flops += params.extra_flops_for_column(j + 1, n as u64);
            v.col_mut(j + 1).copy_from_slice(&t);
            if j + 1 < mv_cols {
                let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
                self.m.apply_par(&self.pk, v.col(j + 1), mv.col_mut(j + 1));
                counters.record_precond(self.m.flops_per_apply());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::poisson::poisson_1d;

    fn counters() -> Counters {
        Counters::new()
    }

    #[test]
    fn monomial_identity_preconditioner_gives_krylov_powers() {
        let a = poisson_1d(8);
        let m = Identity::new(8);
        let mpk = Mpk::new(&a, &m);
        let w: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let params = BasisParams::monomial(3);
        let mut v = MultiVector::zeros(8, 4);
        let mut mv = MultiVector::zeros(8, 3);
        let mut c = counters();
        mpk.run(&w, None, &params, &mut v, &mut mv, &mut c);
        // v_j = A^j w.
        let mut expect = w.clone();
        for j in 0..4 {
            for i in 0..8 {
                assert!((v.col(j)[i] - expect[i]).abs() < 1e-12, "col {j}");
            }
            let mut next = vec![0.0; 8];
            a.spmv(&expect, &mut next);
            expect = next;
        }
        // With M = I, mv mirrors v.
        for j in 0..3 {
            assert_eq!(mv.col(j), v.col(j));
        }
        assert_eq!(c.spmv_count, 3);
        assert_eq!(c.precond_count, 3);
        assert_eq!(c.blas1_flops, 0); // monomial adds nothing
    }

    #[test]
    fn preconditioned_columns_satisfy_mv_equals_minv_v() {
        let a = poisson_1d(10);
        let m = Jacobi::new(&a);
        let mpk = Mpk::new(&a, &m);
        let w: Vec<f64> = (0..10).map(|i| (i as f64 * 0.3).sin() + 1.5).collect();
        let params = BasisParams::chebyshev(0.1, 4.0, 4);
        let mut v = MultiVector::zeros(10, 5);
        let mut mv = MultiVector::zeros(10, 4);
        let mut c = counters();
        mpk.run(&w, None, &params, &mut v, &mut mv, &mut c);
        for j in 0..4 {
            let z = m.apply_alloc(v.col(j));
            for i in 0..10 {
                assert!((mv.col(j)[i] - z[i]).abs() < 1e-13, "col {j} row {i}");
            }
        }
        // Chebyshev basis charges extra BLAS1 flops.
        assert!(c.blas1_flops > 0);
    }

    #[test]
    fn columns_satisfy_three_term_recurrence_with_cob_matrix() {
        // A·(M⁻¹ V̂) must equal V·B_{s+1} — the identity sPCG relies on
        // (Alg. 5 line 8). Verified numerically for the Newton basis.
        let a = poisson_1d(12);
        let m = Jacobi::new(&a);
        let mpk = Mpk::new(&a, &m);
        let s = 4;
        let params = BasisParams::newton(&[1.0, 0.5, 2.0, 1.5], s);
        let w: Vec<f64> = (0..12).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut v = MultiVector::zeros(12, s + 1);
        let mut mv = MultiVector::zeros(12, s);
        let mut c = counters();
        mpk.run(&w, None, &params, &mut v, &mut mv, &mut c);
        let b = crate::cob::b_small(&params, s + 1);
        // Column j of A·mv must equal Σ_l B[l][j]·v_l.
        for j in 0..s {
            let mut amv = vec![0.0; 12];
            a.spmv(mv.col(j), &mut amv);
            for i in 0..12 {
                let mut acc = 0.0;
                for l in 0..=s {
                    acc += b[(l, j)] * v.col(l)[i];
                }
                assert!(
                    (amv[i] - acc).abs() < 1e-10,
                    "col {j} row {i}: {} vs {acc}",
                    amv[i]
                );
            }
        }
    }

    #[test]
    fn known_mw_skips_one_precond_application() {
        let a = poisson_1d(6);
        let m = Jacobi::new(&a);
        let mpk = Mpk::new(&a, &m);
        let w = vec![1.0; 6];
        let mw = m.apply_alloc(&w);
        let params = BasisParams::monomial(3);
        let mut v = MultiVector::zeros(6, 4);
        let mut mv = MultiVector::zeros(6, 3);
        let mut c = counters();
        mpk.run(&w, Some(&mw), &params, &mut v, &mut mv, &mut c);
        assert_eq!(c.precond_count, 2); // columns 1, 2 only
        assert_eq!(c.spmv_count, 3);
    }

    #[test]
    fn mv_cols_equal_v_cols_supported() {
        // CA-PCG needs M⁻¹ of *all* s+1 Q-columns.
        let a = poisson_1d(5);
        let m = Jacobi::new(&a);
        let mpk = Mpk::new(&a, &m);
        let params = BasisParams::monomial(3);
        let mut v = MultiVector::zeros(5, 3);
        let mut mv = MultiVector::zeros(5, 3);
        let mut c = counters();
        mpk.run(
            &[1.0, 2.0, 0.5, -1.0, 0.0],
            None,
            &params,
            &mut v,
            &mut mv,
            &mut c,
        );
        assert_eq!(c.precond_count, 3);
        let z = m.apply_alloc(v.col(2));
        for i in 0..5 {
            assert!((mv.col(2)[i] - z[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn threaded_kernel_matches_serial_bitwise() {
        let a = spcg_sparse::generators::poisson::poisson_3d(12);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let s = 4;
        let params = BasisParams::chebyshev(0.2, 11.5, s);
        let mut v_ref = MultiVector::zeros(n, s + 1);
        let mut mv_ref = MultiVector::zeros(n, s);
        let mut c_ref = counters();
        Mpk::new(&a, &m).run(&w, None, &params, &mut v_ref, &mut mv_ref, &mut c_ref);
        for t in [1usize, 2, 4, 8] {
            let pk = spcg_sparse::ParKernels::new(t);
            let mut v = MultiVector::zeros(n, s + 1);
            let mut mv = MultiVector::zeros(n, s);
            let mut c = counters();
            Mpk::new_par(&a, &m, pk).run(&w, None, &params, &mut v, &mut mv, &mut c);
            for j in 0..=s {
                assert_eq!(v.col(j), v_ref.col(j), "threads {t} v col {j}");
            }
            for j in 0..s {
                assert_eq!(mv.col(j), mv_ref.col(j), "threads {t} mv col {j}");
            }
            assert_eq!(c, c_ref, "threads {t}: counters must not change");
        }
    }

    #[test]
    #[should_panic(expected = "basis degree")]
    fn rejects_underspecified_params() {
        let a = poisson_1d(4);
        let m = Identity::new(4);
        let mpk = Mpk::new(&a, &m);
        let params = BasisParams::monomial(1);
        let mut v = MultiVector::zeros(4, 4);
        let mut mv = MultiVector::zeros(4, 3);
        mpk.run(
            &[1.0; 4],
            None,
            &params,
            &mut v,
            &mut mv,
            &mut Counters::new(),
        );
    }
}
