//! Matrix Powers Kernel (MPK): builds the s-step basis matrices.
//!
//! Computes (paper eqs. (6)–(7))
//!
//! ```text
//! V    = [P_0(AM⁻¹)·w, P_1(AM⁻¹)·w, …]          (v_cols columns)
//! M⁻¹V = [P_0(M⁻¹A)·v, P_1(M⁻¹A)·v, …]          (mv_cols columns, v = M⁻¹w)
//! ```
//!
//! using the recurrence `v_{j+1} = (A·(M⁻¹v_j) − θ_j·v_j − μ_{j-1}·v_{j-1}) / γ_j`:
//! one SpMV per new `V` column and one preconditioner application per new
//! `M⁻¹V` column. In a block-row-distributed setting the SpMV needs only
//! neighbour (halo) communication, never a global reduction — that is the
//! communication-avoiding property all three s-step methods share.
//!
//! The kernel charges the supplied [`Counters`] for the SpMVs, the
//! preconditioner applications, and the extra `≤3n` / `≤5n` FLOPs per
//! column that non-monomial bases add (paper §4.2).
//!
//! # Cache-fused multi-level sweep
//!
//! Under [`SparseFormat::Sell`] with a pointwise preconditioner the kernel
//! can *fuse* the depth-`s` power sweep: instead of streaming every column
//! through memory once per level, a band of σ-windows is carried through
//! all `s` levels while its rows are still hot in cache. Correctness rests
//! on the SELL σ-confinement property: window `w` of level `j+1` depends
//! only on windows `w−h ‥ w+h` of level `j`, where `h` is the matrix's
//! window reach half-width. The sweep keeps one cursor per level and, for
//! each tile, advances level `l` to window `(t+1)·K − (l−1)·h`; the
//! staggered targets make the dependency `done[l−1] ≥ done[l] + h` an
//! exact invariant (asserted in debug builds). Every element is produced
//! by the same scalar operations in the same order as the level-by-level
//! kernel, so results are bitwise identical. When the accumulated skew
//! `(s−1)·h` reaches the window count there is no locality left to win
//! and the kernel silently falls back to the level-by-level path.

use crate::poly::BasisParams;
use spcg_dist::Counters;
use spcg_obs::{Phase, Track};
use spcg_precond::{DistForm, Preconditioner};
use spcg_sparse::sell::{SELL_C, SELL_SIGMA};
use spcg_sparse::{CsrMatrix, MultiVector, ParKernels, SellMatrix, SparseFormat};
use std::sync::Arc;

/// Cache budget for one fused tile: the band's matrix slices plus the
/// vector columns in flight should stay resident across the tile's level
/// passes. Sized for a private mid-level (L2) cache — on machines with a
/// large shared last-level cache the whole matrix may already be
/// LLC-resident, and the fusion's win is upgrading the repeated band
/// reads from LLC to L2.
const FUSE_CACHE_BYTES: usize = 1 << 20;

/// Matrix powers kernel over `A` and `M⁻¹`.
pub struct Mpk<'a> {
    a: &'a CsrMatrix,
    m: &'a dyn Preconditioner,
    pk: ParKernels,
    track: Option<Track>,
    sell: Option<Arc<SellMatrix>>,
    fuse: bool,
}

impl<'a> Mpk<'a> {
    /// Creates the kernel for a matrix/preconditioner pair (serial
    /// execution).
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent.
    pub fn new(a: &'a CsrMatrix, m: &'a dyn Preconditioner) -> Self {
        Self::new_par(a, m, ParKernels::serial())
    }

    /// Creates the kernel with an intra-rank thread pool. The SpMV, the
    /// preconditioner applications, and the elementwise recurrence passes
    /// are row-partitioned over `pk`; results are bitwise identical to the
    /// serial kernel for every thread count.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent.
    pub fn new_par(a: &'a CsrMatrix, m: &'a dyn Preconditioner, pk: ParKernels) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "Mpk: matrix must be square");
        assert_eq!(a.nrows(), m.dim(), "Mpk: preconditioner dimension mismatch");
        Mpk {
            a,
            m,
            pk,
            track: None,
            sell: None,
            fuse: true,
        }
    }

    /// Attaches a trace track: each basis column records an
    /// [`MpkLevel`](Phase) span with the SpMV and preconditioner apply
    /// nested inside. Instrumentation only — results are unchanged. A
    /// track forces the level-by-level path so the per-level spans stay
    /// meaningful.
    pub fn with_track(mut self, track: Option<Track>) -> Self {
        self.track = track;
        self
    }

    /// Selects the sparse format for the per-level SpMVs. Under
    /// [`SparseFormat::Sell`] the matrix's cached SELL-C-σ form drives the
    /// SpMV and, when [applicable](Self::fused_applicable), the cache-fused
    /// multi-level sweep. Results are bitwise identical across formats.
    pub fn with_format(mut self, format: SparseFormat) -> Self {
        self.sell = match format {
            SparseFormat::Csr => None,
            SparseFormat::Sell => Some(self.a.sell()),
        };
        self
    }

    /// Enables or disables the cache-fused sweep (on by default; only takes
    /// effect under [`SparseFormat::Sell`]). Useful for benchmarking the
    /// fused sweep against the level-by-level SELL kernel.
    pub fn with_fused(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Whether a run with `v_cols` basis columns would take the cache-fused
    /// sweep: SELL format selected, fusion enabled, no trace track, at
    /// least two levels, a [`DistForm::Pointwise`] preconditioner, and a
    /// level skew `(levels−1)·h` smaller than the window count.
    pub fn fused_applicable(&self, v_cols: usize) -> bool {
        let Some(sell) = self.sell.as_deref() else {
            return false;
        };
        if !self.fuse || self.track.is_some() || v_cols < 3 {
            return false;
        }
        if !matches!(self.m.dist_form(), DistForm::Pointwise(_)) {
            return false;
        }
        let w_total = self.a.nrows().div_ceil(SELL_SIGMA);
        (v_cols - 2) * sell.window_reach_halfwidth() < w_total
    }

    /// Tile width in σ-windows for the fused sweep, from a per-row byte
    /// footprint (matrix slice entries plus the vector columns in flight).
    fn fused_tile_windows(&self) -> usize {
        let n = self.a.nrows().max(1);
        let w_total = self.a.nrows().div_ceil(SELL_SIGMA).max(1);
        // 10 bytes per stored entry (f64 value + u16 narrow index; banded
        // matrices take the narrow path for every slice) plus the
        // in-flight vector columns (~8 doubles of band reads and writes).
        let bytes_per_row = 10 * (self.a.nnz() / n).max(1) + 64;
        (FUSE_CACHE_BYTES / (SELL_SIGMA * bytes_per_row)).clamp(1, w_total)
    }

    /// Fills `v` (`n × v_cols`) and `mv` (`n × mv_cols`) with the basis
    /// matrices seeded by `w`.
    ///
    /// * `known_mw`: pass `M⁻¹w` if it is already available (the s-step
    ///   solvers usually have it from the previous outer iteration); this
    ///   saves one preconditioner application — the bookkeeping behind
    ///   CA-PCG's `2s−1` (not `2s+1`) preconditioner applications.
    /// * Requires `v_cols ≥ 1` and `v_cols − 1 ≤ mv_cols ≤ v_cols`: building
    ///   `v_{j+1}` consumes `M⁻¹v_j`, so all but possibly the last `V`
    ///   column must be preconditioned anyway.
    ///
    /// # Panics
    /// Panics on dimension or parameter-degree mismatches.
    pub fn run(
        &self,
        w: &[f64],
        known_mw: Option<&[f64]>,
        params: &BasisParams,
        v: &mut MultiVector,
        mv: &mut MultiVector,
        counters: &mut Counters,
    ) {
        let n = self.a.nrows();
        let v_cols = v.k();
        let mv_cols = mv.k();
        assert!(v_cols >= 1, "Mpk::run: need at least one V column");
        assert!(
            mv_cols + 1 >= v_cols && mv_cols <= v_cols,
            "Mpk::run: need v_cols-1 <= mv_cols <= v_cols (got {v_cols}, {mv_cols})"
        );
        assert_eq!(v.n(), n, "Mpk::run: v row mismatch");
        assert_eq!(mv.n(), n, "Mpk::run: mv row mismatch");
        assert_eq!(w.len(), n, "Mpk::run: seed length mismatch");
        assert!(
            params.degree() + 1 >= v_cols,
            "Mpk::run: basis degree {} too small for {v_cols} columns",
            params.degree()
        );

        v.col_mut(0).copy_from_slice(w);
        if mv_cols > 0 {
            match known_mw {
                Some(mw) => {
                    assert_eq!(mw.len(), n, "Mpk::run: known_mw length mismatch");
                    mv.col_mut(0).copy_from_slice(mw);
                }
                None => {
                    let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
                    self.m.apply_par(&self.pk, v.col(0), mv.col_mut(0));
                    counters.record_precond(self.m.flops_per_apply());
                }
            }
        }

        if self.fused_applicable(v_cols) {
            let sell = Arc::clone(self.sell.as_ref().unwrap());
            self.run_fused(&sell, params, v, mv, counters);
            return;
        }

        let mut t = vec![0.0; n];
        for j in 0..v_cols - 1 {
            let _level = spcg_obs::span(self.track.as_ref(), Phase::MpkLevel);
            // t = A · (M⁻¹ v_j).
            {
                let _s = spcg_obs::span(self.track.as_ref(), Phase::Spmv);
                match self.sell.as_deref() {
                    Some(sell) => self.pk.spmv_sell(sell, mv.col(j), &mut t),
                    None => self.pk.spmv(self.a, mv.col(j), &mut t),
                }
            }
            counters.record_spmv(self.a.spmv_flops());
            // v_{j+1} = (t − θ_j v_j − μ_{j-1} v_{j-1}) / γ_j. The axpy
            // form `t += (−θ)·v` is bitwise equal to `t −= θ·v` (IEEE
            // negation is exact), so the threaded passes reproduce the
            // historical serial recurrence exactly.
            let theta = params.theta[j];
            let inv_gamma = 1.0 / params.gamma[j];
            if theta != 0.0 {
                self.pk.axpy(-theta, v.col(j), &mut t);
            }
            if j >= 1 && params.mu[j - 1] != 0.0 {
                self.pk.axpy(-params.mu[j - 1], v.col(j - 1), &mut t);
            }
            if inv_gamma != 1.0 {
                self.pk.scale(inv_gamma, &mut t);
            }
            counters.blas1_flops += params.extra_flops_for_column(j + 1, n as u64);
            v.col_mut(j + 1).copy_from_slice(&t);
            if j + 1 < mv_cols {
                let _p = spcg_obs::span(self.track.as_ref(), Phase::Precond);
                self.m.apply_par(&self.pk, v.col(j + 1), mv.col_mut(j + 1));
                counters.record_precond(self.m.flops_per_apply());
            }
        }
    }

    /// Cache-fused sweep: carries a tile of σ-windows through all levels
    /// while its rows are hot. Every element sees the same scalar ops in
    /// the same order as the level-by-level kernel (the `axpy`/`scale`
    /// passes are plain `+= a·x[i]` / `*= a` loops, and a pointwise
    /// preconditioner applies as `w[i]·x[i]`), so results are bitwise
    /// identical to [`Self::run`]'s level-by-level path for every thread
    /// count and fusion setting.
    fn run_fused(
        &self,
        sell: &SellMatrix,
        params: &BasisParams,
        v: &mut MultiVector,
        mv: &mut MultiVector,
        counters: &mut Counters,
    ) {
        let n = self.a.nrows();
        let levels = v.k() - 1;
        let mv_cols = mv.k();
        let DistForm::Pointwise(wts) = self.m.dist_form() else {
            unreachable!("run_fused: gate admits pointwise preconditioners only");
        };
        let w_total = n.div_ceil(SELL_SIGMA);
        let h = sell.window_reach_halfwidth();
        let k_tile = self.fused_tile_windows();
        let spw = SELL_SIGMA / SELL_C;

        // `done[l]` counts σ-windows of level `l` already produced; level 0
        // (the seed columns) is complete before the sweep starts.
        let mut done = vec![0usize; levels + 1];
        done[0] = w_total;
        let mut t = vec![0.0; n];
        for tile in 1.. {
            if done[levels] >= w_total {
                break;
            }
            for lvl in 1..=levels {
                let target = (tile * k_tile).saturating_sub((lvl - 1) * h).min(w_total);
                if target <= done[lvl] {
                    continue;
                }
                debug_assert!(
                    done[lvl - 1] >= (target + h).min(w_total),
                    "fused sweep dependency violated at level {lvl}"
                );
                let (w_lo, w_hi) = (done[lvl], target);
                let j = lvl - 1;
                let r_lo = w_lo * SELL_SIGMA;
                let r_hi = (w_hi * SELL_SIGMA).min(n);
                // t[band] = A · (M⁻¹ v_j) restricted to the band's slices;
                // σ-confinement keeps every output row inside the band.
                sell.spmv_slices(
                    w_lo * spw,
                    (w_hi * spw).min(sell.nslices()),
                    mv.col(j),
                    &mut t,
                );
                let theta = params.theta[j];
                let mu = if j >= 1 { params.mu[j - 1] } else { 0.0 };
                let inv_gamma = 1.0 / params.gamma[j];
                {
                    let (head, vnext) = v.split_at_col_mut(j + 1);
                    let vj = &head[j * n..(j + 1) * n];
                    for r in r_lo..r_hi {
                        let mut val = t[r];
                        if theta != 0.0 {
                            val += -theta * vj[r];
                        }
                        if mu != 0.0 {
                            val += -mu * head[(j - 1) * n + r];
                        }
                        if inv_gamma != 1.0 {
                            val *= inv_gamma;
                        }
                        vnext[r] = val;
                    }
                }
                if j + 1 < mv_cols {
                    let vnext = v.col(j + 1);
                    let mvnext = mv.col_mut(j + 1);
                    for r in r_lo..r_hi {
                        mvnext[r] = wts[r] * vnext[r];
                    }
                }
                done[lvl] = target;
            }
        }

        // Same charges, per level, as the level-by-level path.
        for j in 0..levels {
            counters.record_spmv(self.a.spmv_flops());
            counters.blas1_flops += params.extra_flops_for_column(j + 1, n as u64);
            if j + 1 < mv_cols {
                counters.record_precond(self.m.flops_per_apply());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::{Identity, Jacobi};
    use spcg_sparse::generators::poisson::poisson_1d;

    fn counters() -> Counters {
        Counters::new()
    }

    #[test]
    fn monomial_identity_preconditioner_gives_krylov_powers() {
        let a = poisson_1d(8);
        let m = Identity::new(8);
        let mpk = Mpk::new(&a, &m);
        let w: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let params = BasisParams::monomial(3);
        let mut v = MultiVector::zeros(8, 4);
        let mut mv = MultiVector::zeros(8, 3);
        let mut c = counters();
        mpk.run(&w, None, &params, &mut v, &mut mv, &mut c);
        // v_j = A^j w.
        let mut expect = w.clone();
        for j in 0..4 {
            for i in 0..8 {
                assert!((v.col(j)[i] - expect[i]).abs() < 1e-12, "col {j}");
            }
            let mut next = vec![0.0; 8];
            a.spmv(&expect, &mut next);
            expect = next;
        }
        // With M = I, mv mirrors v.
        for j in 0..3 {
            assert_eq!(mv.col(j), v.col(j));
        }
        assert_eq!(c.spmv_count, 3);
        assert_eq!(c.precond_count, 3);
        assert_eq!(c.blas1_flops, 0); // monomial adds nothing
    }

    #[test]
    fn preconditioned_columns_satisfy_mv_equals_minv_v() {
        let a = poisson_1d(10);
        let m = Jacobi::new(&a);
        let mpk = Mpk::new(&a, &m);
        let w: Vec<f64> = (0..10).map(|i| (i as f64 * 0.3).sin() + 1.5).collect();
        let params = BasisParams::chebyshev(0.1, 4.0, 4);
        let mut v = MultiVector::zeros(10, 5);
        let mut mv = MultiVector::zeros(10, 4);
        let mut c = counters();
        mpk.run(&w, None, &params, &mut v, &mut mv, &mut c);
        for j in 0..4 {
            let z = m.apply_alloc(v.col(j));
            for i in 0..10 {
                assert!((mv.col(j)[i] - z[i]).abs() < 1e-13, "col {j} row {i}");
            }
        }
        // Chebyshev basis charges extra BLAS1 flops.
        assert!(c.blas1_flops > 0);
    }

    #[test]
    fn columns_satisfy_three_term_recurrence_with_cob_matrix() {
        // A·(M⁻¹ V̂) must equal V·B_{s+1} — the identity sPCG relies on
        // (Alg. 5 line 8). Verified numerically for the Newton basis.
        let a = poisson_1d(12);
        let m = Jacobi::new(&a);
        let mpk = Mpk::new(&a, &m);
        let s = 4;
        let params = BasisParams::newton(&[1.0, 0.5, 2.0, 1.5], s);
        let w: Vec<f64> = (0..12).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut v = MultiVector::zeros(12, s + 1);
        let mut mv = MultiVector::zeros(12, s);
        let mut c = counters();
        mpk.run(&w, None, &params, &mut v, &mut mv, &mut c);
        let b = crate::cob::b_small(&params, s + 1);
        // Column j of A·mv must equal Σ_l B[l][j]·v_l.
        for j in 0..s {
            let mut amv = vec![0.0; 12];
            a.spmv(mv.col(j), &mut amv);
            for i in 0..12 {
                let mut acc = 0.0;
                for l in 0..=s {
                    acc += b[(l, j)] * v.col(l)[i];
                }
                assert!(
                    (amv[i] - acc).abs() < 1e-10,
                    "col {j} row {i}: {} vs {acc}",
                    amv[i]
                );
            }
        }
    }

    #[test]
    fn known_mw_skips_one_precond_application() {
        let a = poisson_1d(6);
        let m = Jacobi::new(&a);
        let mpk = Mpk::new(&a, &m);
        let w = vec![1.0; 6];
        let mw = m.apply_alloc(&w);
        let params = BasisParams::monomial(3);
        let mut v = MultiVector::zeros(6, 4);
        let mut mv = MultiVector::zeros(6, 3);
        let mut c = counters();
        mpk.run(&w, Some(&mw), &params, &mut v, &mut mv, &mut c);
        assert_eq!(c.precond_count, 2); // columns 1, 2 only
        assert_eq!(c.spmv_count, 3);
    }

    #[test]
    fn mv_cols_equal_v_cols_supported() {
        // CA-PCG needs M⁻¹ of *all* s+1 Q-columns.
        let a = poisson_1d(5);
        let m = Jacobi::new(&a);
        let mpk = Mpk::new(&a, &m);
        let params = BasisParams::monomial(3);
        let mut v = MultiVector::zeros(5, 3);
        let mut mv = MultiVector::zeros(5, 3);
        let mut c = counters();
        mpk.run(
            &[1.0, 2.0, 0.5, -1.0, 0.0],
            None,
            &params,
            &mut v,
            &mut mv,
            &mut c,
        );
        assert_eq!(c.precond_count, 3);
        let z = m.apply_alloc(v.col(2));
        for i in 0..5 {
            assert!((mv.col(2)[i] - z[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn threaded_kernel_matches_serial_bitwise() {
        let a = spcg_sparse::generators::poisson::poisson_3d(12);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let s = 4;
        let params = BasisParams::chebyshev(0.2, 11.5, s);
        let mut v_ref = MultiVector::zeros(n, s + 1);
        let mut mv_ref = MultiVector::zeros(n, s);
        let mut c_ref = counters();
        Mpk::new(&a, &m).run(&w, None, &params, &mut v_ref, &mut mv_ref, &mut c_ref);
        for t in [1usize, 2, 4, 8] {
            let pk = spcg_sparse::ParKernels::new(t);
            let mut v = MultiVector::zeros(n, s + 1);
            let mut mv = MultiVector::zeros(n, s);
            let mut c = counters();
            Mpk::new_par(&a, &m, pk).run(&w, None, &params, &mut v, &mut mv, &mut c);
            for j in 0..=s {
                assert_eq!(v.col(j), v_ref.col(j), "threads {t} v col {j}");
            }
            for j in 0..s {
                assert_eq!(mv.col(j), mv_ref.col(j), "threads {t} mv col {j}");
            }
            assert_eq!(c, c_ref, "threads {t}: counters must not change");
        }
    }

    #[test]
    fn fused_sell_sweep_matches_levelwise_bitwise() {
        // poisson_3d(14): n = 2744 → 11 σ-windows, window reach h = 1, so
        // the fused gate holds up to s = 10 ((s−1)·h < 11). Exercises the
        // three basis families (θ/μ patterns) and both mv shapes.
        let a = spcg_sparse::generators::poisson::poisson_3d(14);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n)
            .map(|i| ((i * 11 % 17) as f64) * 0.25 - 2.0)
            .collect();
        for s in [2usize, 4, 10] {
            for params in [
                BasisParams::monomial(s),
                BasisParams::chebyshev(0.15, 11.8, s),
                BasisParams::newton(
                    &vec![1.0, 0.4, 2.3, 1.1, 0.9, 3.0, 0.2, 1.7, 2.8, 0.6][..s],
                    s,
                ),
            ] {
                for mv_cols in [s, s + 1] {
                    let mut v_ref = MultiVector::zeros(n, s + 1);
                    let mut mv_ref = MultiVector::zeros(n, mv_cols);
                    let mut c_ref = counters();
                    Mpk::new(&a, &m).run(&w, None, &params, &mut v_ref, &mut mv_ref, &mut c_ref);

                    let fused = Mpk::new(&a, &m).with_format(SparseFormat::Sell);
                    assert!(fused.fused_applicable(s + 1), "gate must hold for s={s}");
                    let mut v = MultiVector::zeros(n, s + 1);
                    let mut mv = MultiVector::zeros(n, mv_cols);
                    let mut c = counters();
                    fused.run(&w, None, &params, &mut v, &mut mv, &mut c);
                    for j in 0..=s {
                        assert_eq!(v.col(j), v_ref.col(j), "fused s={s} v col {j}");
                    }
                    for j in 0..mv_cols {
                        assert_eq!(mv.col(j), mv_ref.col(j), "fused s={s} mv col {j}");
                    }
                    assert_eq!(c, c_ref, "fused s={s}: counters must not change");

                    let lw = Mpk::new(&a, &m)
                        .with_format(SparseFormat::Sell)
                        .with_fused(false);
                    assert!(!lw.fused_applicable(s + 1));
                    let mut v = MultiVector::zeros(n, s + 1);
                    let mut mv = MultiVector::zeros(n, mv_cols);
                    let mut c = counters();
                    lw.run(&w, None, &params, &mut v, &mut mv, &mut c);
                    for j in 0..=s {
                        assert_eq!(v.col(j), v_ref.col(j), "sell s={s} v col {j}");
                    }
                    assert_eq!(c, c_ref, "sell s={s}: counters must not change");
                }
            }
        }
    }

    #[test]
    fn fused_gate_falls_back_when_skew_or_shape_disqualifies() {
        let a = spcg_sparse::generators::poisson::poisson_3d(8); // n = 512 → 2 windows
        let m = Jacobi::new(&a);
        let mpk = Mpk::new(&a, &m).with_format(SparseFormat::Sell);
        assert!(!mpk.fused_applicable(2), "one level is never fused");
        assert!(mpk.fused_applicable(3), "s=2 fits in 2 windows");
        assert!(!mpk.fused_applicable(5), "(s−1)·h = 3 exceeds 2 windows");
        // Fallback still runs and stays bitwise equal to CSR.
        let n = a.nrows();
        let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let s = 4;
        let params = BasisParams::chebyshev(0.2, 11.5, s);
        let mut v_ref = MultiVector::zeros(n, s + 1);
        let mut mv_ref = MultiVector::zeros(n, s);
        Mpk::new(&a, &m).run(&w, None, &params, &mut v_ref, &mut mv_ref, &mut counters());
        let mut v = MultiVector::zeros(n, s + 1);
        let mut mv = MultiVector::zeros(n, s);
        mpk.run(&w, None, &params, &mut v, &mut mv, &mut counters());
        for j in 0..=s {
            assert_eq!(v.col(j), v_ref.col(j), "fallback v col {j}");
        }
    }

    #[test]
    fn fused_sweep_is_thread_count_invariant_with_known_mw() {
        let a = spcg_sparse::generators::poisson::poisson_3d(14);
        let n = a.nrows();
        let m = Jacobi::new(&a);
        let w: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + (i % 29) as f64)).collect();
        let mw = m.apply_alloc(&w);
        let s = 6;
        let params = BasisParams::newton(&[1.0, 0.5, 2.0, 1.5, 0.8, 2.5], s);
        let mut v_ref = MultiVector::zeros(n, s + 1);
        let mut mv_ref = MultiVector::zeros(n, s);
        let mut c_ref = counters();
        Mpk::new(&a, &m).run(&w, Some(&mw), &params, &mut v_ref, &mut mv_ref, &mut c_ref);
        for t in [1usize, 2, 4] {
            let pk = spcg_sparse::ParKernels::new(t);
            let mpk = Mpk::new_par(&a, &m, pk).with_format(SparseFormat::Sell);
            assert!(mpk.fused_applicable(s + 1));
            let mut v = MultiVector::zeros(n, s + 1);
            let mut mv = MultiVector::zeros(n, s);
            let mut c = counters();
            mpk.run(&w, Some(&mw), &params, &mut v, &mut mv, &mut c);
            for j in 0..=s {
                assert_eq!(v.col(j), v_ref.col(j), "threads {t} v col {j}");
            }
            for j in 0..s {
                assert_eq!(mv.col(j), mv_ref.col(j), "threads {t} mv col {j}");
            }
            assert_eq!(c, c_ref, "threads {t}: counters must not change");
        }
    }

    #[test]
    #[should_panic(expected = "basis degree")]
    fn rejects_underspecified_params() {
        let a = poisson_1d(4);
        let m = Identity::new(4);
        let mpk = Mpk::new(&a, &m);
        let params = BasisParams::monomial(1);
        let mut v = MultiVector::zeros(4, 4);
        let mut mv = MultiVector::zeros(4, 3);
        mpk.run(
            &[1.0; 4],
            None,
            &params,
            &mut v,
            &mut mv,
            &mut Counters::new(),
        );
    }
}
