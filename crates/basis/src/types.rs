//! User-facing basis selection.

use crate::poly::BasisParams;

/// Which polynomial basis an s-step solver builds its basis matrices with.
///
/// The paper's Table 2 compares `Monomial` (the only choice available to the
/// original sPCG_mon) against `Chebyshev`; `Newton` is the third standard
/// option (§2.3) and is included as an ablation.
#[derive(Debug, Clone, PartialEq)]
pub enum BasisType {
    /// `P_j(z) = z^j`. Cheapest, numerically fragile for s ≳ 5.
    Monomial,
    /// `P_j(z) = Π_{i<j}(z − σ_i)` with Leja-ordered Ritz shifts σ.
    Newton {
        /// Leja-ordered shifts; at least `s` values.
        shifts: Vec<f64>,
    },
    /// Scaled/shifted Chebyshev polynomials on `[lambda_min, lambda_max]`.
    Chebyshev {
        /// Lower end of the target interval (estimated λ_min of `M⁻¹A`).
        lambda_min: f64,
        /// Upper end of the target interval (estimated λ_max of `M⁻¹A`).
        lambda_max: f64,
    },
}

impl BasisType {
    /// Recurrence parameters for polynomials up to `P_degree`.
    pub fn params(&self, degree: usize) -> BasisParams {
        match self {
            BasisType::Monomial => BasisParams::monomial(degree),
            BasisType::Newton { shifts } => BasisParams::newton(shifts, degree),
            BasisType::Chebyshev {
                lambda_min,
                lambda_max,
            } => BasisParams::chebyshev(*lambda_min, *lambda_max, degree),
        }
    }

    /// Short name for result tables.
    pub fn name(&self) -> &'static str {
        match self {
            BasisType::Monomial => "monomial",
            BasisType::Newton { .. } => "newton",
            BasisType::Chebyshev { .. } => "chebyshev",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_dispatch() {
        assert_eq!(BasisType::Monomial.params(3), BasisParams::monomial(3));
        let n = BasisType::Newton {
            shifts: vec![1.0, 2.0, 3.0],
        };
        assert_eq!(n.params(2).theta, vec![1.0, 2.0]);
        let c = BasisType::Chebyshev {
            lambda_min: 0.0,
            lambda_max: 2.0,
        };
        assert_eq!(c.params(2).theta, vec![1.0, 1.0]);
    }

    #[test]
    fn names() {
        assert_eq!(BasisType::Monomial.name(), "monomial");
        assert_eq!(BasisType::Newton { shifts: vec![] }.name(), "newton");
        assert_eq!(
            BasisType::Chebyshev {
                lambda_min: 0.0,
                lambda_max: 1.0
            }
            .name(),
            "chebyshev"
        );
    }
}
