//! Modified Leja ordering for Newton-basis shifts.
//!
//! Using Ritz values as Newton shifts in their natural (sorted) order makes
//! the basis as unstable as the monomial one: consecutive shifts are nearly
//! equal, so consecutive basis vectors become nearly parallel. Leja ordering
//! picks each next shift to maximize the product of distances to all
//! previously chosen shifts, which keeps the Newton basis well conditioned
//! (Hoemmen \[14\], §7.3). Products are accumulated in log space to avoid
//! overflow for large shift sets.

/// Orders `candidates` by the (real) Leja rule, returning a new vector with
/// the same multiset of values.
///
/// `z_0 = argmax |z|`, then `z_k = argmax Σ_{i<k} log|z − z_i|`.
/// Ties are broken by the original index, making the order deterministic.
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn leja_order(candidates: &[f64]) -> Vec<f64> {
    assert!(!candidates.is_empty(), "leja_order: empty candidate set");
    let m = candidates.len();
    let mut chosen: Vec<f64> = Vec::with_capacity(m);
    let mut used = vec![false; m];

    // First: largest magnitude.
    let first = (0..m)
        .max_by(|&i, &j| {
            candidates[i]
                .abs()
                .partial_cmp(&candidates[j].abs())
                .expect("leja_order: NaN candidate")
        })
        .unwrap();
    used[first] = true;
    chosen.push(candidates[first]);

    // Remaining: maximize the log-product of distances to chosen shifts.
    // log(0) = -inf correctly sends duplicates to the back of each round.
    for _ in 1..m {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..m {
            if used[i] {
                continue;
            }
            let score: f64 = chosen.iter().map(|&z| (candidates[i] - z).abs().ln()).sum();
            match best {
                None => best = Some((i, score)),
                Some((_, s)) if score > s => best = Some((i, score)),
                _ => {}
            }
        }
        let (i, _) = best.expect("leja_order: no unused candidate left");
        used[i] = true;
        chosen.push(candidates[i]);
    }
    chosen
}

/// Convenience for Newton shifts: Leja-orders the Ritz values and repeats
/// them cyclically if fewer than `s` are available.
pub fn newton_shifts(ritz: &[f64], s: usize) -> Vec<f64> {
    let ordered = leja_order(ritz);
    (0..s).map(|i| ordered[i % ordered.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_is_largest_magnitude() {
        let out = leja_order(&[1.0, -3.0, 2.0]);
        assert_eq!(out[0], -3.0);
    }

    #[test]
    fn preserves_multiset() {
        let input = vec![0.5, 2.0, 1.0, 1.5, 0.1];
        let mut out = leja_order(&input);
        let mut sorted_in = input.clone();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted_in.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(out, sorted_in);
    }

    #[test]
    fn second_choice_maximizes_distance() {
        // After 4.0, the farthest candidate is 0.1 (not 2.0).
        let out = leja_order(&[2.0, 4.0, 0.1]);
        assert_eq!(out[0], 4.0);
        assert_eq!(out[1], 0.1);
        assert_eq!(out[2], 2.0);
    }

    #[test]
    fn alternates_across_interval() {
        // Leja ordering of a uniform grid jumps between the ends before
        // filling the middle; in particular the first three picks are the
        // two extremes plus a point near the center.
        let grid: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let out = leja_order(&grid);
        assert_eq!(out[0], 10.0);
        assert_eq!(out[1], 0.0);
        assert!(
            (out[2] - 5.0).abs() <= 1.0,
            "third pick {} not central",
            out[2]
        );
    }

    #[test]
    fn handles_duplicates() {
        let out = leja_order(&[1.0, 1.0, 3.0]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], 3.0);
    }

    #[test]
    fn newton_shifts_cycle() {
        let shifts = newton_shifts(&[1.0, 2.0], 5);
        assert_eq!(shifts.len(), 5);
        assert_eq!(shifts[0], shifts[2]);
        assert_eq!(shifts[1], shifts[3]);
    }

    #[test]
    #[should_panic(expected = "empty candidate set")]
    fn rejects_empty() {
        leja_order(&[]);
    }
}
